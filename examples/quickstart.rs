//! Quickstart: generate a dataset, train logistic regression with
//! synchronous SGD and with Hogwild, print the convergence behaviour,
//! then checkpoint the trained model, reload it from disk, and serve it
//! — verifying the round trip is bit-exact.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sgd_study::core::{
    reference_optimum, step_size_grid, Configuration, DeviceKind, Engine, RunOptions, Strategy,
};
use sgd_study::datagen::{generate, Dataset, DatasetProfile, GenOptions};
use sgd_study::linalg::CpuExec;
use sgd_study::models::{lr, Batch, Examples};
use sgd_study::serve::{Checkpoint, CheckpointPublisher, ModelRegistry, TaskDescriptor};

fn main() {
    // A scaled-down copy of the paper's `w8a` dataset: 300 features,
    // log-normal sparsity, labels planted from a linear separator.
    let profile = DatasetProfile::w8a().scaled(0.05);
    let ds = generate(&profile, &GenOptions::default());
    println!(
        "dataset: {} ({} examples x {} features, {} non-zeros)",
        ds.name,
        ds.n(),
        ds.d(),
        ds.x.nnz()
    );

    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);

    // The paper's convergence protocol: find the best reachable loss,
    // then measure time to get within 1 % of it.
    let optimum = reference_optimum(&task, &batch, 200);
    println!("reference optimal loss: {optimum:.6}");

    let opts = RunOptions { max_epochs: 300, target_loss: Some(optimum), ..Default::default() };

    // Synchronous SGD (batch gradient descent) on one CPU core and on the
    // simulated Tesla K80, with the step size gridded as in the paper.
    let grid = step_size_grid();
    for device in [DeviceKind::CpuSeq, DeviceKind::Gpu] {
        let cfg = Configuration::new(device, Strategy::Sync);
        let rep = Engine::grid_search(&cfg, &task, &batch, optimum, &grid, &opts);
        report(&rep.label, rep.summarize(optimum).time_to_1pct(), rep.time_per_epoch());
    }

    // Asynchronous (Hogwild) SGD: lock-free concurrent updates.
    let cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Hogwild);
    let async_opts = RunOptions { threads: 4, ..opts.clone() };
    let rep = Engine::grid_search(&cfg, &task, &batch, optimum, &grid, &async_opts);
    report(&rep.label, rep.summarize(optimum).time_to_1pct(), rep.time_per_epoch());

    // Train-to-serve: publish best-so-far checkpoints at epoch
    // boundaries, persist the final one, reload it from disk, and check
    // the served scores match the in-memory model bit-for-bit.
    serve_round_trip(&ds, &opts);
}

fn serve_round_trip(ds: &Dataset, opts: &RunOptions) {
    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let registry = ModelRegistry::new();
    let dir = std::env::temp_dir();
    let mut publisher = CheckpointPublisher::new(
        &registry,
        "quickstart",
        TaskDescriptor::LogisticRegression { dim: ds.d() as u64 },
    )
    .with_directory(&dir);
    let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync);
    let train_opts = RunOptions { max_epochs: 20, target_loss: None, ..opts.clone() };
    Engine::run_observed(&cfg, &task, &batch, 0.1, &train_opts, &mut publisher);

    let snap = registry.get("quickstart").expect("training published a model");
    println!(
        "published rev {} at epoch {} (loss {:.6}), checkpoints: {}",
        snap.revision, snap.epoch, snap.loss, publisher.published
    );

    let path = dir.join("quickstart.ckpt");
    let reloaded = Checkpoint::load(&path).expect("checkpoint reloads");
    std::fs::remove_file(&path).ok();
    let served = sgd_study::serve::ServableModel::from_checkpoint(&reloaded)
        .expect("reloaded checkpoint is servable");

    let x = Examples::Sparse(&ds.x);
    let live = snap.model.predict_batch(&mut CpuExec::seq(), &x);
    let cold = served.predict_batch(&mut CpuExec::seq(), &x);
    let bit_equal =
        live.len() == cold.len() && live.iter().zip(&cold).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_equal, "disk round trip must serve bitwise-identical scores");
    println!("serve round trip: {} scores, disk == memory bit-for-bit", cold.len());
}

fn report(label: &str, ttc: Option<f64>, tpe: f64) {
    match ttc {
        Some(secs) => {
            println!("{label:32} converged to 1% in {secs:.4}s  ({:.3} ms/epoch)", tpe * 1e3)
        }
        None => println!("{label:32} did not reach the 1% band  ({:.3} ms/epoch)", tpe * 1e3),
    }
}
