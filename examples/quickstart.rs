//! Quickstart: generate a dataset, train logistic regression with
//! synchronous SGD and with Hogwild, and print the convergence behaviour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sgd_study::core::{
    reference_optimum, step_size_grid, Configuration, DeviceKind, Engine, RunOptions, Strategy,
};
use sgd_study::datagen::{generate, DatasetProfile, GenOptions};
use sgd_study::models::{lr, Batch, Examples};

fn main() {
    // A scaled-down copy of the paper's `w8a` dataset: 300 features,
    // log-normal sparsity, labels planted from a linear separator.
    let profile = DatasetProfile::w8a().scaled(0.05);
    let ds = generate(&profile, &GenOptions::default());
    println!(
        "dataset: {} ({} examples x {} features, {} non-zeros)",
        ds.name,
        ds.n(),
        ds.d(),
        ds.x.nnz()
    );

    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);

    // The paper's convergence protocol: find the best reachable loss,
    // then measure time to get within 1 % of it.
    let optimum = reference_optimum(&task, &batch, 200);
    println!("reference optimal loss: {optimum:.6}");

    let opts = RunOptions { max_epochs: 300, target_loss: Some(optimum), ..Default::default() };

    // Synchronous SGD (batch gradient descent) on one CPU core and on the
    // simulated Tesla K80, with the step size gridded as in the paper.
    let grid = step_size_grid();
    for device in [DeviceKind::CpuSeq, DeviceKind::Gpu] {
        let cfg = Configuration::new(device, Strategy::Sync);
        let rep = Engine::grid_search(&cfg, &task, &batch, optimum, &grid, &opts);
        report(&rep.label, rep.summarize(optimum).time_to_1pct(), rep.time_per_epoch());
    }

    // Asynchronous (Hogwild) SGD: lock-free concurrent updates.
    let cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Hogwild);
    let async_opts = RunOptions { threads: 4, ..opts };
    let rep = Engine::grid_search(&cfg, &task, &batch, optimum, &grid, &async_opts);
    report(&rep.label, rep.summarize(optimum).time_to_1pct(), rep.time_per_epoch());
}

fn report(label: &str, ttc: Option<f64>, tpe: f64) {
    match ttc {
        Some(secs) => {
            println!("{label:32} converged to 1% in {secs:.4}s  ({:.3} ms/epoch)", tpe * 1e3)
        }
        None => println!("{label:32} did not reach the 1% band  ({:.3} ms/epoch)", tpe * 1e3),
    }
}
