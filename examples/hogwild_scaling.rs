//! Hogwild thread scaling: the cache-coherency story.
//!
//! Sweeps the modeled thread count for Hogwild on a dense low-dimensional
//! dataset (covtype-like: every update touches every model line) and a
//! sparse high-dimensional one (news-like: conflicts are negligible).
//! Parallelism *hurts* the first and helps the second — the paper's
//! central asynchronous-CPU finding (Table III).
//!
//! ```text
//! cargo run --release --example hogwild_scaling
//! ```

use sgd_study::core::{
    Configuration, CpuModelConfig, DeviceKind, Engine, RunOptions, Strategy, Timing,
};
use sgd_study::datagen::{generate, DatasetProfile, GenOptions};
use sgd_study::models::{lr, Batch, Examples};

fn main() {
    let dense = generate(&DatasetProfile::covtype().scaled(0.01), &GenOptions::default());
    let sparse = generate(&DatasetProfile::news().scaled(0.05), &GenOptions::default());
    let opts = RunOptions { max_epochs: 3, ..Default::default() };

    println!(
        "{:>8} | {:>16} {:>9} | {:>16} {:>9}",
        "threads", "covtype ms/ep", "speedup", "news ms/ep", "speedup"
    );
    let mut base = [0.0f64; 2];
    for threads in [1usize, 2, 4, 8, 16, 28, 56] {
        let device = if threads == 1 { DeviceKind::CpuSeq } else { DeviceKind::CpuPar };
        let cfg = Configuration::new(device, Strategy::Hogwild)
            .with_timing(Timing::Modeled(CpuModelConfig::paper_machine(threads)));
        let mut cols = [0.0f64; 2];
        for (i, ds) in [&dense, &sparse].into_iter().enumerate() {
            let task = lr(ds.d());
            let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
            let rep = Engine::run(&cfg, &task, &batch, 0.1, &opts);
            cols[i] = rep.time_per_epoch() * 1e3;
        }
        if threads == 1 {
            base = cols;
        }
        println!(
            "{:>8} | {:>16.4} {:>8.2}x | {:>16.4} {:>8.2}x",
            threads,
            cols[0],
            base[0] / cols[0],
            cols[1],
            base[1] / cols[1],
        );
    }
    println!(
        "\nDense, low-dimensional models slow down under concurrency (coherency\n\
         conflicts on the handful of model cache lines); sparse, high-dimensional\n\
         models scale until random-access memory throughput saturates."
    );
}
