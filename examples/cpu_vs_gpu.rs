//! The paper's central question on one dataset: multi-core CPU or GPU,
//! synchronous or asynchronous?
//!
//! Runs all four corners (sync/async x CPU/GPU) of the exploratory cube
//! for logistic regression on a scaled `rcv1` and prints hardware
//! efficiency, statistical efficiency, and time to convergence — plus the
//! GPU simulator's architectural counters (coalescing, divergence, update
//! conflicts) that explain the result.
//!
//! ```text
//! cargo run --release --example cpu_vs_gpu
//! ```

use sgd_study::core::{
    reference_optimum, step_size_grid, Configuration, CpuModelConfig, DeviceKind, Engine,
    RunOptions, RunReport, Strategy, Timing,
};
use sgd_study::datagen::{generate, DatasetProfile, GenOptions};
use sgd_study::models::{lr, Batch, Examples};

fn main() {
    let ds = generate(&DatasetProfile::rcv1().scaled(0.01), &GenOptions::default());
    println!(
        "dataset: {} ({} x {}, {:.3}% dense)\n",
        ds.name,
        ds.n(),
        ds.d(),
        100.0 * ds.x.density()
    );

    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let optimum = reference_optimum(&task, &batch, 200);
    let opts = RunOptions { max_epochs: 400, target_loss: Some(optimum), ..Default::default() };

    println!("{:<34} {:>12} {:>9} {:>12}", "configuration", "ms/epoch", "epochs", "ttc (s)");
    let grid = step_size_grid();
    // Each corner of the cube is one `Configuration`: the CPU columns use
    // the modeled 56-thread Xeon, the GPU columns the simulated K80.
    let cpu = |strategy: Strategy| {
        Configuration::new(DeviceKind::CpuPar, strategy)
            .with_timing(Timing::Modeled(CpuModelConfig::paper_machine(56)))
    };
    let gpu = |strategy: Strategy| Configuration::new(DeviceKind::Gpu, strategy);
    let corners =
        [cpu(Strategy::Sync), gpu(Strategy::Sync), cpu(Strategy::Hogwild), gpu(Strategy::Hogwild)];
    let reports: Vec<RunReport> = corners
        .iter()
        .map(|cfg| Engine::grid_search(cfg, &task, &batch, optimum, &grid, &opts))
        .collect();

    for rep in &reports {
        row(rep, optimum);
    }

    let async_gpu = &reports[3];
    if let Some(conflicts) = async_gpu.update_conflicts() {
        println!(
            "\nGPU warp-Hogwild lost {conflicts} updates to intra-warp conflicts — the \
             mechanism behind its statistical-efficiency penalty (Table III)."
        );
    }
}

fn row(rep: &RunReport, optimum: f64) {
    let s = rep.summarize(optimum);
    println!(
        "{:<34} {:>12.4} {:>9} {:>12}",
        rep.label,
        rep.time_per_epoch() * 1e3,
        s.epochs_to_1pct().map_or("∞".into(), |e| e.to_string()),
        s.time_to_1pct().map_or("∞".into(), |t| format!("{t:.4}")),
    );
}
