//! The paper's central question on one dataset: multi-core CPU or GPU,
//! synchronous or asynchronous?
//!
//! Runs all four corners (sync/async x CPU/GPU) of the exploratory cube
//! for logistic regression on a scaled `rcv1` and prints hardware
//! efficiency, statistical efficiency, and time to convergence — plus the
//! GPU simulator's architectural counters (coalescing, divergence, update
//! conflicts) that explain the result.
//!
//! ```text
//! cargo run --release --example cpu_vs_gpu
//! ```

use sgd_study::core::{
    grid_search, reference_optimum, run_gpu_hogwild, run_hogwild_modeled, run_sync,
    run_sync_modeled, step_size_grid, CpuModelConfig, DeviceKind, GpuAsyncOptions, RunOptions,
    RunReport,
};
use sgd_study::datagen::{generate, DatasetProfile, GenOptions};
use sgd_study::models::{lr, Batch, Examples};

fn main() {
    let ds = generate(&DatasetProfile::rcv1().scaled(0.01), &GenOptions::default());
    println!("dataset: {} ({} x {}, {:.3}% dense)\n", ds.name, ds.n(), ds.d(), 100.0 * ds.x.density());

    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let optimum = reference_optimum(&task, &batch, 200);
    let opts = RunOptions { max_epochs: 400, target_loss: Some(optimum), ..Default::default() };

    println!("{:<34} {:>12} {:>9} {:>12}", "configuration", "ms/epoch", "epochs", "ttc (s)");
    let grid = step_size_grid();
    // Synchronous: parallel CPU (modeled 56-thread Xeon) vs simulated K80.
    let sync_cpu = grid_search(optimum, &grid, |a| {
        run_sync_modeled(&task, &batch, &CpuModelConfig::paper_machine(56), a, &opts)
    });
    let sync_gpu = grid_search(optimum, &grid, |a| run_sync(&task, &batch, DeviceKind::Gpu, a, &opts));
    // Asynchronous: Hogwild on the modeled CPU vs warp-Hogwild on the GPU.
    let async_cpu = grid_search(optimum, &grid, |a| {
        run_hogwild_modeled(&task, &batch, &CpuModelConfig::paper_machine(56), a, &opts)
    });
    let async_gpu = grid_search(optimum, &grid, |a| {
        run_gpu_hogwild(&task, &batch, a, &opts, &GpuAsyncOptions::default())
    });

    for rep in [&sync_cpu, &sync_gpu, &async_cpu, &async_gpu] {
        row(rep, optimum);
    }

    if let Some(conflicts) = async_gpu.update_conflicts {
        println!(
            "\nGPU warp-Hogwild lost {conflicts} updates to intra-warp conflicts — the \
             mechanism behind its statistical-efficiency penalty (Table III)."
        );
    }
}

fn row(rep: &RunReport, optimum: f64) {
    let s = rep.summarize(optimum);
    println!(
        "{:<34} {:>12.4} {:>9} {:>12}",
        rep.label,
        rep.time_per_epoch() * 1e3,
        s.epochs_to_1pct().map_or("∞".into(), |e| e.to_string()),
        s.time_to_1pct().map_or("∞".into(), |t| format!("{t:.4}")),
    );
}
