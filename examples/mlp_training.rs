//! Deep-net training on the paper's feature-grouped data: synchronous
//! batch GD versus Hogbatch, and our implementation versus the
//! TensorFlow-like graph executor.
//!
//! ```text
//! cargo run --release --example mlp_training
//! ```

use sgd_study::core::{Configuration, DeviceKind, Engine, RunOptions, Strategy};
use sgd_study::datagen::{
    generate, group_features, normalize_rows, plant_labels, DatasetProfile, GenOptions,
};
use sgd_study::frameworks::run_tensorflow;
use sgd_study::models::{Batch, Examples, MlpTask, Task};

fn main() {
    // real-sim, grouped to the paper's 50-input MLP and re-normalized.
    let ds = generate(&DatasetProfile::real_sim().scaled(0.01), &GenOptions::default());
    let grouped = normalize_rows(&group_features(&ds, 50).x);
    let x = grouped.to_dense();
    let (y, _) = plant_labels(&grouped, 7, 0.02);
    let task = MlpTask::new(vec![50, 10, 5, 2], 42);
    println!(
        "MLP {} on grouped {} ({} x {}), {} parameters\n",
        task.arch_string(),
        ds.name,
        x.rows(),
        x.cols(),
        task.dim()
    );

    let full = Batch::new(Examples::Dense(&x), &y);
    // No plateau cut-off: we want the full 800-epoch trajectories to
    // compare the strategies' curves directly.
    let opts = RunOptions { max_epochs: 800, max_secs: 60.0, plateau: None, ..Default::default() };
    let alpha = 1.0;

    // Synchronous batch GD on the simulated GPU.
    let sync_cfg = Configuration::new(DeviceKind::Gpu, Strategy::Sync);
    let sync = Engine::run(&sync_cfg, &task, &full, alpha, &opts);
    // Hogbatch (asynchronous mini-batches of 256) on two CPU workers.
    let hog_cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Hogbatch { batch_size: 256 });
    let hog_opts = RunOptions { threads: 2, ..opts.clone() };
    let hog = Engine::run(&hog_cfg, &task, &full, alpha, &hog_opts);
    // The TensorFlow-like dataflow executor, same initialization.
    let tf_cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync);
    let tf = run_tensorflow(&tf_cfg, &[50, 10, 5, 2], &x, &y, alpha, &opts);

    for rep in [&sync, &hog, &tf] {
        let pts = rep.trace.points();
        println!(
            "{:<38} loss {:.4} -> {:.4} over {} epochs",
            rep.label,
            pts.first().expect("trace nonempty").1,
            pts.last().expect("trace nonempty").1,
            rep.trace.epochs()
        );
    }
    println!(
        "\nThe graph executor follows exactly the same trajectory as our sync\n\
         implementation (same math, same init) — it only differs in execution\n\
         profile (one kernel per op), which is what Fig. 9 measures."
    );
}
