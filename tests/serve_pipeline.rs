//! End-to-end train→checkpoint→reload→serve pipeline (the serving
//! acceptance criterion): a model trained through the engine, published
//! via the epoch hook, written to disk, and reloaded must serve
//! bitwise-identical predictions to the in-memory model — on every
//! backend — and corrupt checkpoint bytes must surface as typed errors.

use sgd_study::core::{Configuration, DeviceKind, Engine, RunOptions, Strategy};
use sgd_study::datagen::{generate, Dataset, DatasetProfile, GenOptions};
use sgd_study::models::{lr, Batch, Examples};
use sgd_study::serve::{
    run_open_loop, BatchPolicy, Checkpoint, CheckpointError, CheckpointPublisher, ModelRegistry,
    RequestPool, ServableModel, ServeBackend, ServeTiming, Server, TaskDescriptor,
};

fn small_dataset() -> Dataset {
    let opts = GenOptions { seed: 11, scale: 0.003, ..GenOptions::default() };
    generate(&DatasetProfile::w8a(), &opts)
}

fn backends() -> [ServeBackend; 3] {
    [ServeBackend::CpuSeq, ServeBackend::CpuPar { threads: 4 }, ServeBackend::GpuSim]
}

#[test]
fn trained_checkpointed_reloaded_model_serves_identical_predictions() {
    let ds = small_dataset();
    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);

    let registry = ModelRegistry::new();
    let dir = std::env::temp_dir().join("sgd-serve-pipeline-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut publisher = CheckpointPublisher::new(
        &registry,
        "pipeline",
        TaskDescriptor::LogisticRegression { dim: ds.d() as u64 },
    )
    .with_directory(&dir);

    let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync);
    let opts = RunOptions { max_epochs: 8, ..Default::default() };
    let report = Engine::run_observed(&cfg, &task, &batch, 0.1, &opts, &mut publisher);

    // The hook saw every improvement, and the final publication is the
    // same model the report calls best.
    assert!(publisher.published > 0, "training never improved: nothing published");
    assert!(publisher.last_error.is_none(), "{:?}", publisher.last_error);
    let snap = registry.get("pipeline").expect("hook published to the registry");
    let best = report.best_model.as_deref().expect("supervisor kept a best model");
    assert_eq!(snap.model.weights(), best, "registry holds RunReport::best_model");

    // Reload from disk (a byte-level fresh deserialization — nothing is
    // shared with the live model) and serve the same workload on every
    // backend: scores must match bit-for-bit.
    let path = dir.join("pipeline.ckpt");
    let reloaded = Checkpoint::load(&path).expect("published checkpoint loads");
    let served = ServableModel::from_checkpoint(&reloaded).expect("servable");
    let pool = RequestPool::from_dataset(&ds);
    let arrivals = vec![0.0; 48];
    let policy = BatchPolicy::new(8, 1e-3);
    for backend in backends() {
        let mut live_srv = Server::new(backend, ServeTiming::Modeled);
        let mut cold_srv = Server::new(backend, ServeTiming::Modeled);
        let live = run_open_loop(&mut live_srv, &snap.model, &pool, &policy, &arrivals);
        let cold = run_open_loop(&mut cold_srv, &served, &pool, &policy, &arrivals);
        assert_eq!(live.decisions.len(), cold.decisions.len());
        for (i, (a, b)) in live.decisions.iter().zip(&cold.decisions).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: request {i} diverged after disk round trip",
                backend.label()
            );
        }
    }

    // Corrupting any payload byte must be a typed CRC failure, never a
    // panic or a silently-different model.
    let mut bytes = std::fs::read(&path).expect("checkpoint bytes");
    std::fs::remove_file(&path).ok();
    let mid = bytes.len() / 2;
    if let Some(b) = bytes.get_mut(mid) {
        *b ^= 0x40;
    }
    match Checkpoint::from_bytes(&bytes) {
        Err(CheckpointError::ChecksumMismatch { .. }) => {}
        other => panic!("corrupt checkpoint must fail CRC, got {other:?}"),
    }
}

#[test]
fn training_hot_swaps_a_live_registry() {
    let ds = small_dataset();
    let task = lr(ds.d());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let registry = ModelRegistry::new();

    // Publish a deliberately bad model first; training must replace it.
    let stale = Checkpoint::new(
        TaskDescriptor::LogisticRegression { dim: ds.d() as u64 },
        vec![0.0; ds.d()],
    )
    .expect("dims");
    let first_rev = registry.publish(
        "live",
        ServableModel::from_checkpoint(&stale).expect("valid"),
        0,
        f64::INFINITY,
    );

    let mut publisher = CheckpointPublisher::new(
        &registry,
        "live",
        TaskDescriptor::LogisticRegression { dim: ds.d() as u64 },
    );
    let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync);
    let opts = RunOptions { max_epochs: 5, ..Default::default() };
    Engine::run_observed(&cfg, &task, &batch, 0.1, &opts, &mut publisher);

    let snap = registry.get("live").expect("still published");
    assert!(snap.revision > first_rev, "training hot-swapped the stale model");
    assert!(snap.model.weights().iter().any(|&w| w != 0.0), "a real model is live");
    assert!(snap.loss.is_finite());
}
