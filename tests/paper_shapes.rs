//! The paper's qualitative findings, asserted end to end at reduced scale
//! with modeled CPU time and the simulated K80 (see EXPERIMENTS.md for the
//! quantitative comparison).

use sgd_study::core::{
    Configuration, CpuModelConfig, DeviceKind, Engine, RunOptions, Strategy, Timing,
};
use sgd_study::datagen::{generate, DatasetProfile, GenOptions};
use sgd_study::models::{lr, Batch, Examples};

const SCALE: f64 = 0.01;

fn run_opts(max_epochs: usize) -> RunOptions {
    RunOptions {
        max_epochs,
        max_secs: 30.0,
        gpu_spec: Some(sgd_study::gpusim::DeviceSpec::tesla_k80().scaled(SCALE)),
        ..Default::default()
    }
}

fn mc(threads: usize) -> CpuModelConfig {
    let mut mc = CpuModelConfig::paper_machine(threads);
    mc.spec = mc.spec.scaled(SCALE);
    mc
}

/// Modeled-CPU corner: one thread is the sequential device, more is the
/// parallel one.
fn modeled(threads: usize, strategy: Strategy) -> Configuration {
    let device = if threads == 1 { DeviceKind::CpuSeq } else { DeviceKind::CpuPar };
    Configuration::new(device, strategy).with_timing(Timing::Modeled(mc(threads)))
}

fn gpu(strategy: Strategy) -> Configuration {
    Configuration::new(DeviceKind::Gpu, strategy)
}

/// Finding 1 (Table II): for synchronous SGD, GPU beats parallel CPU in
/// time per iteration on the dense dataset.
#[test]
fn sync_gpu_beats_parallel_cpu_on_dense_data() {
    let ds = generate(&DatasetProfile::covtype().scaled(SCALE), &GenOptions::default());
    let dense = ds.x.to_dense();
    let batch = Batch::new(Examples::Dense(&dense), &ds.y);
    let task = lr(ds.d());
    let o = run_opts(4);
    let gpu = Engine::run(&gpu(Strategy::Sync), &task, &batch, 0.1, &o);
    let par = Engine::run(&modeled(56, Strategy::Sync), &task, &batch, 0.1, &o);
    let seq = Engine::run(&modeled(1, Strategy::Sync), &task, &batch, 0.1, &o);
    assert!(
        gpu.time_per_epoch() < par.time_per_epoch(),
        "gpu {} vs cpu-par {}",
        gpu.time_per_epoch(),
        par.time_per_epoch()
    );
    // And parallelism helps the CPU.
    assert!(par.time_per_epoch() < seq.time_per_epoch());
}

/// Finding 2 (Table III): parallel Hogwild is slower than sequential on
/// dense low-dimensional data (cache-coherency conflicts) but faster on
/// sparse high-dimensional data.
#[test]
fn hogwild_parallelism_helps_sparse_hurts_dense() {
    let o = run_opts(3);

    let dense = generate(&DatasetProfile::covtype().scaled(SCALE), &GenOptions::default());
    let dm = dense.x.to_dense();
    let db = Batch::new(Examples::Dense(&dm), &dense.y);
    let task_d = lr(dense.d());
    let seq = Engine::run(&modeled(1, Strategy::Hogwild), &task_d, &db, 0.1, &o);
    let par = Engine::run(&modeled(56, Strategy::Hogwild), &task_d, &db, 0.1, &o);
    assert!(
        par.time_per_epoch() > seq.time_per_epoch(),
        "dense: par {} should exceed seq {}",
        par.time_per_epoch(),
        seq.time_per_epoch()
    );

    let sparse = generate(&DatasetProfile::news().scaled(0.05), &GenOptions::default());
    let sb = Batch::new(Examples::Sparse(&sparse.x), &sparse.y);
    let task_s = lr(sparse.d());
    let seq = Engine::run(&modeled(1, Strategy::Hogwild), &task_s, &sb, 0.1, &o);
    let par = Engine::run(&modeled(56, Strategy::Hogwild), &task_s, &sb, 0.1, &o);
    let speedup = seq.time_per_epoch() / par.time_per_epoch();
    assert!(speedup > 2.0, "sparse speedup {speedup}");
}

/// Finding 3 (Table III): on dense data the GPU's asynchronous kernel
/// needs far more epochs than the sequential CPU at the same step size —
/// intra-warp conflicts destroy statistical efficiency.
#[test]
fn async_gpu_statistical_penalty_on_dense_data() {
    let ds = generate(&DatasetProfile::covtype().scaled(0.003), &GenOptions::default());
    let dm = ds.x.to_dense();
    let batch = Batch::new(Examples::Dense(&dm), &ds.y);
    let task = lr(ds.d());
    let o = run_opts(3);
    let alpha = 0.02;
    let seq = Engine::run(&modeled(1, Strategy::Hogwild), &task, &batch, alpha, &o);
    let gpu = Engine::run(&gpu(Strategy::Hogwild), &task, &batch, alpha, &o);
    let l0 = seq.trace.points()[0].1;
    let progress_seq = l0 - seq.trace.points()[3].1;
    let progress_gpu = l0 - gpu.trace.points()[3].1;
    assert!(progress_seq > 0.0);
    assert!(progress_gpu < 0.5 * progress_seq, "gpu progress {progress_gpu} vs seq {progress_seq}");
    assert!(gpu.update_conflicts().expect("recorded") > 0);
    // The per-epoch instrumentation carries the same counters.
    assert_eq!(
        gpu.metrics.epochs.iter().map(|e| e.update_conflicts).sum::<u64>(),
        gpu.update_conflicts().expect("recorded")
    );
}

/// Finding 4 (Fig. 8 direction): our sync GPU speedup over parallel CPU is
/// at least BIDMach's on skewed sparse data.
#[test]
fn ours_matches_or_beats_bidmach_speedup_on_sparse() {
    let ds = generate(&DatasetProfile::real_sim().scaled(0.005), &GenOptions::default());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let task = lr(ds.d());
    let o = run_opts(4);
    let ours_gpu = Engine::run(&gpu(Strategy::Sync), &task, &batch, 0.1, &o).time_per_epoch();
    let bid_gpu = sgd_study::frameworks::run_bidmach(&gpu(Strategy::Sync), &task, &batch, 0.1, &o)
        .time_per_epoch();
    let cpu = Engine::run(&modeled(56, Strategy::Sync), &task, &batch, 0.1, &o).time_per_epoch();
    let ours_speedup = cpu / ours_gpu;
    let bid_speedup = cpu / bid_gpu;
    assert!(ours_speedup >= bid_speedup * 0.99, "ours {ours_speedup} vs bidmach {bid_speedup}");
}

/// Finding 5 (Fig. 6 direction): the parallel-CPU speedup for MLP training
/// grows with the architecture size (the ViennaCL GEMM threshold binds
/// small nets to ~sequential weight-gradient products).
#[test]
fn mlp_cpu_speedup_grows_with_architecture() {
    use sgd_study::models::MlpTask;
    let ds = generate(&DatasetProfile::real_sim().scaled(0.01), &GenOptions::default());
    let grouped =
        sgd_study::datagen::normalize_rows(&sgd_study::datagen::group_features(&ds, 50).x);
    let x = grouped.to_dense();
    let (y, _) = sgd_study::datagen::plant_labels(&grouped, 3, 0.02);
    let batch = Batch::new(Examples::Dense(&x), &y);
    let o = run_opts(2);

    let speedup = |layers: Vec<usize>| {
        let task = MlpTask::new(layers, 42);
        let seq = Engine::run(&modeled(1, Strategy::Sync), &task, &batch, 0.1, &o).time_per_epoch();
        let par =
            Engine::run(&modeled(56, Strategy::Sync), &task, &batch, 0.1, &o).time_per_epoch();
        seq / par
    };
    let small = speedup(vec![50, 10, 5, 2]);
    let large = speedup(vec![50, 500, 250, 2]);
    assert!(large > 1.5 * small, "speedup should grow with net size: small {small}, large {large}");
}
