//! Fault plans are deterministic: the same seed under modeled (or
//! simulated-GPU) timing reproduces the exact run — times, losses,
//! outcome, and every fault counter — bit for bit. Without this property
//! a fault sweep would not be an experiment, it would be weather.

use sgd_study::core::{
    Configuration, CpuModelConfig, DeviceKind, Engine, FaultPlan, RunOptions, RunReport, Strategy,
    Timing,
};
use sgd_study::linalg::{CsrMatrix, Matrix};
use sgd_study::models::{lr, Batch, Examples};

fn sparse() -> (CsrMatrix, Vec<f64>) {
    let entries: Vec<Vec<(u32, f64)>> =
        (0..64).map(|i| vec![((i % 16) as u32, if i % 2 == 0 { 1.0 } else { -1.0 })]).collect();
    let y = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    (CsrMatrix::from_row_entries(64, 16, &entries), y)
}

fn dense() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(64, 6, |i, j| {
        let s = if i % 2 == 0 { 1.0 } else { -1.0 };
        s * (((i * 3 + j) % 5) as f64 + 1.0) / 5.0
    });
    let y = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    (x, y)
}

fn plan() -> FaultPlan {
    FaultPlan::default()
        .with_seed(99)
        .with_straggler(0, 3.0)
        .with_drops(0.1)
        .with_stale_reads(0.1)
        .with_corruption(0.1, 0.5)
        .with_worker_death(2, 5)
}

fn assert_bit_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.step_size, b.step_size);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.opt_seconds, b.opt_seconds, "{}", a.label);
    assert_eq!(a.trace.epochs(), b.trace.epochs());
    for (pa, pb) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(pa.0, pb.0, "{}: epoch time not reproduced", a.label);
        assert_eq!(pa.1, pb.1, "{}: loss not reproduced", a.label);
    }
    let (fa, fb) = (a.metrics.total_faults(), b.metrics.total_faults());
    assert_eq!(fa.dropped_updates, fb.dropped_updates);
    assert_eq!(fa.stale_reads, fb.stale_reads);
    assert_eq!(fa.corrupted_updates, fb.corrupted_updates);
    assert_eq!(fa.dead_workers, fb.dead_workers);
    assert_eq!(fa.straggler_delay_secs, fb.straggler_delay_secs);
    assert_eq!(a.best_model, b.best_model);
    assert!(fa.total_events() > 0, "{}: the plan must actually inject faults", a.label);
}

#[test]
fn modeled_hogwild_fault_runs_are_bit_identical() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = RunOptions { max_epochs: 10, plateau: None, faults: plan(), ..Default::default() };
    let mc = CpuModelConfig::paper_machine(4);
    let cfg =
        Configuration::new(mc.device(), Strategy::Hogwild).with_timing(Timing::Modeled(mc.clone()));
    let a = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let b = Engine::run(&cfg, &task, &batch, 0.2, &o);
    assert_bit_identical(&a, &b);
}

#[test]
fn gpu_async_fault_runs_are_bit_identical() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = RunOptions { max_epochs: 10, plateau: None, faults: plan(), ..Default::default() };
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild);
    let a = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let b = Engine::run(&cfg, &task, &batch, 0.2, &o);
    assert_bit_identical(&a, &b);
    assert_eq!(a.update_conflicts(), b.update_conflicts());
}

#[test]
fn clean_gpu_async_runs_are_bit_identical() {
    // The simulated device must not leak host allocator state into its
    // clock: two clean runs trace identical simulated addresses and land
    // on identical simulated seconds (the buffer registry assigns device
    // addresses by first-touch order, never by host pointer value).
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = RunOptions { max_epochs: 8, plateau: None, ..Default::default() };
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild);
    let a = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let b = Engine::run(&cfg, &task, &batch, 0.2, &o);
    assert_eq!(a.opt_seconds, b.opt_seconds);
    for (pa, pb) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(pa.0, pb.0);
        assert_eq!(pa.1, pb.1);
    }
}

#[test]
fn dense_gpu_warp_conflict_metrics_are_bit_identical() {
    // Dense rows make every warp lane touch every coordinate, so the
    // per-warp pre-update map (a BTreeMap precisely so this test can
    // exist) is heavily exercised and the conflict counter is nonzero.
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let o = RunOptions { max_epochs: 10, plateau: None, faults: plan(), ..Default::default() };
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild);
    let a = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let b = Engine::run(&cfg, &task, &batch, 0.2, &o);
    assert_bit_identical(&a, &b);
    assert_eq!(a.update_conflicts(), b.update_conflicts());
    assert!(a.update_conflicts() > Some(0), "dense warps must collide on coordinates");
}

#[test]
fn gpu_hogbatch_fault_runs_are_bit_identical() {
    // Hogbatch on the simulated GPU launches one kernel per mini-batch,
    // so the device's buffer registry (host-ptr-keyed, BTreeMap) sees
    // many distinct buffers; simulated times must still reproduce.
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let o = RunOptions { max_epochs: 10, plateau: None, faults: plan(), ..Default::default() };
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogbatch { batch_size: 8 });
    let a = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let b = Engine::run(&cfg, &task, &batch, 0.2, &o);
    assert_bit_identical(&a, &b);
}

#[test]
fn different_fault_seeds_change_the_run() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let mk = |seed: u64| {
        let faults = FaultPlan::default().with_seed(seed).with_drops(0.3).with_corruption(0.3, 0.5);
        let o = RunOptions { max_epochs: 10, plateau: None, faults, ..Default::default() };
        let mc = CpuModelConfig::paper_machine(4);
        let cfg = Configuration::new(mc.device(), Strategy::Hogwild)
            .with_timing(Timing::Modeled(mc.clone()));
        Engine::run(&cfg, &task, &batch, 0.2, &o)
    };
    let (a, b) = (mk(1), mk(2));
    let same_losses = a.trace.points().iter().zip(b.trace.points()).all(|(pa, pb)| pa.1 == pb.1);
    let (fa, fb) = (a.metrics.total_faults(), b.metrics.total_faults());
    assert!(
        !same_losses
            || fa.dropped_updates != fb.dropped_updates
            || fa.corrupted_updates != fb.corrupted_updates,
        "different seeds must draw different fault decisions"
    );
}
