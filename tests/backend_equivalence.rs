//! Backend ↔ direct-execution equivalence for the PR 6 `ComputeBackend`
//! refactor.
//!
//! The training runners and the serving batcher now share one dispatch
//! path: `ComputeBackend::dispatch` driving an `ExecTask` over the
//! cpu-seq, cpu-par (persistent pool), or simulated-GPU executor. These
//! tests pin the refactor three ways:
//!
//! 1. dispatching through the trait is *bitwise* identical to driving
//!    the executors directly, for every backend and model family;
//! 2. the serving batcher's decisions are bitwise identical across
//!    backends and across runs (the paper's determinism discipline,
//!    applied to inference);
//! 3. the GPU serving path is warm and bit-deterministic: named buffer
//!    bindings give repeated batches the same virtual addresses, so the
//!    simulated L2 hit ratio strictly improves from the first batch to
//!    the second and the cycle count replays exactly — the regression
//!    the old host-pointer cache keys made impossible to pin.

use sgd_study::core::{BackendSession, ComputeBackend, ExecTask};
use sgd_study::gpusim::kernels::GpuExec;
use sgd_study::gpusim::GpuDevice;
use sgd_study::linalg::pool::with_threads;
use sgd_study::linalg::{CpuExec, CsrMatrix, Exec, Matrix};
use sgd_study::models::Examples;
use sgd_study::serve::{
    run_open_loop, BatchPolicy, Checkpoint, RequestPool, ServableModel, ServeTiming, Server,
    TaskDescriptor,
};

/// Deterministic non-trivial weights for a descriptor's model dim.
fn model_for(descriptor: TaskDescriptor) -> ServableModel {
    let dim = descriptor.model_dim().expect("descriptor has a model dim");
    let weights: Vec<f64> = (0..dim).map(|i| ((i * 37 + 11) % 19) as f64 / 7.0 - 1.3).collect();
    let ck = Checkpoint::new(descriptor, weights).expect("weights match descriptor");
    ServableModel::from_checkpoint(&ck).expect("checkpoint is valid")
}

fn dense_rows(n: usize, d: usize) -> Matrix {
    Matrix::from_fn(n, d, |i, j| {
        let s = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
        s * (((i * 5 + j * 3) % 11) as f64 + 1.0) / 11.0
    })
}

fn sparse_rows(n: usize, d: usize) -> CsrMatrix {
    let entries: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|i| {
            (0..4)
                .map(|k| {
                    let col = ((i * 7 + k * 13) % d) as u32;
                    (col, if (i + k) % 2 == 0 { 1.0 } else { -0.5 })
                })
                .collect()
        })
        .map(|mut row: Vec<(u32, f64)>| {
            row.sort_by_key(|&(c, _)| c);
            row.dedup_by_key(|&mut (c, _)| c);
            row
        })
        .collect();
    CsrMatrix::from_row_entries(n, d, &entries)
}

/// The serving batcher's job shape, reproduced here so the test drives
/// the executors directly on one side of the comparison.
struct PredictJob<'a> {
    model: &'a ServableModel,
    x: &'a Examples<'a>,
}

impl ExecTask for PredictJob<'_> {
    type Out = Vec<f64>;
    fn run<E: Exec>(&mut self, e: &mut E) -> Vec<f64> {
        self.model.predict_batch(e, self.x)
    }
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {i} diverged ({x} vs {y})");
    }
}

/// (1) Trait dispatch ≡ direct executor, bitwise, for every backend ×
/// model family × representation.
#[test]
fn dispatch_matches_direct_execution_bitwise() {
    let d = 24;
    let dense = dense_rows(48, d);
    let sparse = sparse_rows(48, d);
    let cases: Vec<(ServableModel, Examples<'_>, &str)> = vec![
        (
            model_for(TaskDescriptor::LogisticRegression { dim: d as u64 }),
            Examples::Dense(&dense),
            "lr-dense",
        ),
        (
            model_for(TaskDescriptor::LogisticRegression { dim: d as u64 }),
            Examples::Sparse(&sparse),
            "lr-sparse",
        ),
        (
            model_for(TaskDescriptor::LinearSvm { dim: d as u64 }),
            Examples::Sparse(&sparse),
            "svm-sparse",
        ),
        (
            model_for(TaskDescriptor::Mlp { layers: vec![d as u32, 8, 2], seed: 7 }),
            Examples::Dense(&dense),
            "mlp-dense",
        ),
    ];
    for (model, x, what) in &cases {
        // Pre-refactor paths: the executors driven by hand.
        let seq = model.predict_batch(&mut CpuExec::seq(), x);
        let par = with_threads(4, || model.predict_batch(&mut CpuExec::par(), x));
        let mut dev = GpuDevice::tesla_k80();
        let gpu = model.predict_batch(&mut GpuExec::new(&mut dev), x);

        for (backend, direct) in [
            (ComputeBackend::CpuSeq, &seq),
            (ComputeBackend::CpuPar { threads: 4 }, &par),
            (ComputeBackend::GpuSim, &gpu),
        ] {
            let mut sess = BackendSession::new();
            let mut job = PredictJob { model, x };
            let out = backend.dispatch(&mut sess, &mut job).out;
            assert_bits_eq(&out, direct, &format!("{what} via {}", backend.label()));
        }
        // And across backends: the decision values themselves agree
        // (gemv/spmv are row-parallel with per-row sequential reduction,
        // so even the parallel backends are bitwise stable).
        assert_bits_eq(&seq, &par, &format!("{what} seq vs par"));
        assert_bits_eq(&seq, &gpu, &format!("{what} seq vs gpu"));
    }
}

/// (2) Batcher decisions: bitwise across backends, bitwise across runs.
#[test]
fn serving_decisions_are_bitwise_across_backends_and_runs() {
    let d = 32;
    let model = model_for(TaskDescriptor::LogisticRegression { dim: d as u64 });
    let pool = RequestPool::sparse(sparse_rows(96, d));
    let arrivals = vec![0.0; 64];
    let policy = BatchPolicy::new(8, 2.5e-4);

    let mut reference: Option<Vec<f64>> = None;
    for backend in ComputeBackend::fixed_set(4) {
        let run = |_: ()| {
            let mut srv = Server::new(backend, ServeTiming::Modeled);
            run_open_loop(&mut srv, &model, &pool, &policy, &arrivals)
        };
        let a = run(());
        let b = run(());
        assert_bits_eq(&a.decisions, &b.decisions, &format!("{} across runs", backend.label()));
        match &reference {
            Some(r) => assert_bits_eq(r, &a.decisions, &format!("{} vs cpu-seq", backend.label())),
            None => reference = Some(a.decisions.clone()),
        }
    }
}

/// (3) The warm-cache pin: on the GPU backend, batch 2 of the same
/// logical buffers reuses batch 1's virtual addresses, so the simulated
/// L2 hit ratio strictly improves — and the whole trace replays
/// bit-identically across servers.
#[test]
fn gpu_serving_trace_is_warm_and_bit_deterministic() {
    let d = 64;
    let model = model_for(TaskDescriptor::LogisticRegression { dim: d as u64 });
    // Sparse rows: the spmv kernels are the traced (memory-side) path.
    let sparse = sparse_rows(32, d);
    let x = Examples::Sparse(&sparse);

    let serve_two_batches = |_: ()| {
        let mut srv = Server::new(ComputeBackend::GpuSim, ServeTiming::Modeled);
        let (_, secs1) = srv.predict(&model, &x);
        let first = *srv.last_gpu_dispatch().expect("gpu dispatch recorded");
        let (_, secs2) = srv.predict(&model, &x);
        let second = *srv.last_gpu_dispatch().expect("gpu dispatch recorded");
        (secs1, first, secs2, second)
    };

    let (secs1, first, secs2, second) = serve_two_batches(());
    assert!(first.l2_hit_ratio().is_finite(), "sparse predict traces the L2");
    assert!(
        second.l2_hit_ratio() > first.l2_hit_ratio(),
        "warm batch must improve the hit ratio ({} -> {})",
        first.l2_hit_ratio(),
        second.l2_hit_ratio()
    );
    assert!(secs2 < secs1, "warm batch must be faster ({secs1} vs {secs2})");

    // Replay: a fresh server walks the identical simulated trace.
    let (r1, rf, r2, rs) = serve_two_batches(());
    assert_eq!(secs1.to_bits(), r1.to_bits(), "batch 1 sim time replays exactly");
    assert_eq!(secs2.to_bits(), r2.to_bits(), "batch 2 sim time replays exactly");
    assert_eq!(first.cycles.to_bits(), rf.cycles.to_bits(), "batch 1 cycles replay exactly");
    assert_eq!(second.cycles.to_bits(), rs.cycles.to_bits(), "batch 2 cycles replay exactly");
    assert_eq!(first.l2_hits, rf.l2_hits);
    assert_eq!(first.l2_misses, rf.l2_misses);
    assert_eq!(second.l2_hits, rs.l2_hits);
    assert_eq!(second.l2_misses, rs.l2_misses);
}

/// Router determinism at the integration level: identical arrival
/// traces produce identical per-batch backend choices and bitwise
/// latencies, and the choices split by batch shape.
#[test]
fn router_decisions_replay_exactly() {
    let d = 64;
    let model = model_for(TaskDescriptor::LogisticRegression { dim: d as u64 });
    let pool = RequestPool::dense(dense_rows(512, d));
    // A bursty trace: lone requests (cpu-seq territory) alternating with
    // 256-deep bursts (deep enough that a single gemv amortizes the
    // simulated kernel-launch overhead past the CPU's compute time).
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    for _ in 0..4 {
        arrivals.push(t);
        t += 1e-3;
        for _ in 0..256 {
            arrivals.push(t);
        }
        t += 1e-3;
    }
    let policy = BatchPolicy::new(256, 1e-4);

    let run = |_: ()| {
        let mut srv = Server::routed(ComputeBackend::fixed_set(4).to_vec(), ServeTiming::Modeled);
        run_open_loop(&mut srv, &model, &pool, &policy, &arrivals)
    };
    let a = run(());
    let b = run(());
    assert_eq!(a.batch_backends, b.batch_backends, "routing decisions replay exactly");
    assert_bits_eq(&a.decisions, &b.decisions, "router decisions");
    let latencies_match = a.summary.mean.to_bits() == b.summary.mean.to_bits()
        && a.summary.p99.to_bits() == b.summary.p99.to_bits();
    assert!(latencies_match, "router latency accounting replays exactly");
    // The mixed trace exercises both sides of the cost model.
    let used_cpu = a.batch_backends.iter().any(|l| l.starts_with("cpu"));
    let used_gpu = a.batch_backends.iter().any(|l| l == "gpu-sim");
    assert!(used_cpu && used_gpu, "bursty trace splits across backends: {:?}", a.batch_backends);
}
