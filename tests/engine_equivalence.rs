//! Engine ↔ legacy equivalence: every corner of the 2×2×2 configuration
//! cube dispatched through `Engine::run` must reproduce the report of the
//! deprecated `run_*` entry point it replaced.
//!
//! Corners whose wall-clock execution is deterministic (sequential,
//! modeled, or simulated-GPU time) are pinned bit-for-bit: identical
//! labels, epoch counts, and loss trajectories. Corners that race real
//! threads (wall-clock Hogwild/Hogbatch/replicated with >1 worker) are
//! nondeterministic by construction, so only the report shape — label,
//! device, and a non-empty trace — is compared.
#![allow(deprecated)]

use sgd_study::core::{
    make_batches, run_gpu_hogbatch, run_gpu_hogwild, run_hogbatch, run_hogbatch_modeled,
    run_hogwild, run_hogwild_modeled, run_replicated_hogwild, run_sync, run_sync_modeled,
    Configuration, CpuModelConfig, DeviceKind, Engine, FaultPlan, GpuAsyncOptions, Replication,
    RunOptions, RunReport, Strategy, Timing,
};
use sgd_study::linalg::{CsrMatrix, Matrix};
use sgd_study::models::{lr, Batch, Examples, MlpTask};

fn dense() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(64, 6, |i, j| {
        let s = if i % 2 == 0 { 1.0 } else { -1.0 };
        s * (((i * 3 + j) % 5) as f64 + 1.0) / 5.0
    });
    let y = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    (x, y)
}

fn sparse() -> (CsrMatrix, Vec<f64>) {
    let entries: Vec<Vec<(u32, f64)>> =
        (0..64).map(|i| vec![((i % 16) as u32, if i % 2 == 0 { 1.0 } else { -1.0 })]).collect();
    let y = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    (CsrMatrix::from_row_entries(64, 16, &entries), y)
}

fn opts() -> RunOptions {
    RunOptions { max_epochs: 8, plateau: None, ..Default::default() }
}

/// Bit-identical comparison for deterministic corners.
fn assert_identical(engine: &RunReport, legacy: &RunReport) {
    assert_eq!(engine.label, legacy.label);
    assert_eq!(engine.device, legacy.device);
    assert_eq!(engine.step_size, legacy.step_size);
    assert_eq!(engine.trace.epochs(), legacy.trace.epochs());
    for (e, l) in engine.trace.points().iter().zip(legacy.trace.points()) {
        assert_eq!(e.1, l.1, "loss diverged: {} vs {}", e.1, l.1);
    }
    assert_eq!(engine.metrics.epochs.len(), engine.trace.epochs());
    assert_eq!(engine.outcome, legacy.outcome);
}

/// Shape-only comparison for racy wall-clock corners.
fn assert_same_shape(engine: &RunReport, legacy: &RunReport) {
    assert_eq!(engine.label, legacy.label);
    assert_eq!(engine.device, legacy.device);
    assert!(engine.trace.epochs() > 0);
    assert!(legacy.trace.epochs() > 0);
    assert_eq!(engine.metrics.epochs.len(), engine.trace.epochs());
}

#[test]
fn sync_wall_matches_legacy_on_every_device() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let o = opts();
    for device in [DeviceKind::CpuSeq, DeviceKind::CpuPar, DeviceKind::Gpu] {
        let cfg = Configuration::new(device, Strategy::Sync);
        let engine = Engine::run(&cfg, &task, &batch, 0.5, &o);
        let legacy = run_sync(&task, &batch, device, 0.5, &o);
        assert_identical(&engine, &legacy);
    }
}

#[test]
fn sync_modeled_matches_legacy() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = opts();
    for threads in [1usize, 4] {
        let mc = CpuModelConfig::paper_machine(threads);
        let device = mc.device();
        let cfg =
            Configuration::new(device, Strategy::Sync).with_timing(Timing::Modeled(mc.clone()));
        let engine = Engine::run(&cfg, &task, &batch, 0.5, &o);
        let legacy = run_sync_modeled(&task, &batch, &mc, 0.5, &o);
        assert_identical(&engine, &legacy);
    }
}

#[test]
fn hogwild_wall_single_thread_matches_legacy() {
    // One worker: no races, the interleaving is fixed, so the engine and
    // the shim must agree bit-for-bit.
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = RunOptions { threads: 1, ..opts() };
    let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogwild);
    let engine = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let legacy = run_hogwild(&task, &batch, 1, 0.2, &o);
    assert_identical(&engine, &legacy);
}

#[test]
fn hogwild_wall_multithread_matches_legacy_shape() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = RunOptions { threads: 4, ..opts() };
    let cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Hogwild);
    let engine = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let legacy = run_hogwild(&task, &batch, 4, 0.2, &o);
    assert_same_shape(&engine, &legacy);
}

#[test]
fn hogwild_modeled_matches_legacy() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = opts();
    let mc = CpuModelConfig::paper_machine(4);
    let cfg =
        Configuration::new(mc.device(), Strategy::Hogwild).with_timing(Timing::Modeled(mc.clone()));
    let engine = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let legacy = run_hogwild_modeled(&task, &batch, &mc, 0.2, &o);
    assert_identical(&engine, &legacy);
}

#[test]
fn gpu_hogwild_matches_legacy_including_conflicts() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = opts();
    let gopts = GpuAsyncOptions::default();
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild).with_gpu_async(gopts.clone());
    let engine = Engine::run(&cfg, &task, &batch, 0.2, &o);
    let legacy = run_gpu_hogwild(&task, &batch, 0.2, &o, &gopts);
    assert_identical(&engine, &legacy);
    assert_eq!(engine.update_conflicts(), legacy.update_conflicts());
}

#[test]
fn hogbatch_wall_single_thread_matches_legacy() {
    let (x, y) = dense();
    let full = Batch::new(Examples::Dense(&x), &y);
    let task = MlpTask::new(vec![6, 4, 2], 42);
    let o = RunOptions { threads: 1, ..opts() };
    let cfg = Configuration::new(DeviceKind::CpuSeq, Strategy::Hogbatch { batch_size: 16 });
    let engine = Engine::run(&cfg, &task, &full, 0.5, &o);
    // The engine slices mini-batches internally; mirror it for the shim.
    let owned = make_batches(&x, &y, 16);
    let batches: Vec<Batch<'_>> =
        owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
    let legacy = run_hogbatch(&task, &full, &batches, 1, 0.5, &o);
    assert_identical(&engine, &legacy);
}

#[test]
fn hogbatch_wall_multithread_matches_legacy_shape() {
    let (x, y) = dense();
    let full = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let o = RunOptions { threads: 2, ..opts() };
    let cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Hogbatch { batch_size: 16 });
    let engine = Engine::run(&cfg, &task, &full, 0.2, &o);
    let owned = make_batches(&x, &y, 16);
    let batches: Vec<Batch<'_>> =
        owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
    let legacy = run_hogbatch(&task, &full, &batches, 2, 0.2, &o);
    assert_same_shape(&engine, &legacy);
}

#[test]
fn hogbatch_modeled_matches_legacy() {
    let (x, y) = dense();
    let full = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let o = opts();
    let mc = CpuModelConfig::paper_machine(4);
    let cfg = Configuration::new(mc.device(), Strategy::Hogbatch { batch_size: 16 })
        .with_timing(Timing::Modeled(mc.clone()));
    let engine = Engine::run(&cfg, &task, &full, 0.2, &o);
    let owned = make_batches(&x, &y, 16);
    let batches: Vec<Batch<'_>> =
        owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
    let legacy = run_hogbatch_modeled(&task, &full, &batches, &mc, 0.2, &o);
    assert_identical(&engine, &legacy);
}

#[test]
fn gpu_hogbatch_matches_legacy() {
    let (x, y) = dense();
    let full = Batch::new(Examples::Dense(&x), &y);
    let task = MlpTask::new(vec![6, 4, 2], 42);
    let o = opts();
    let gopts = GpuAsyncOptions::default();
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogbatch { batch_size: 16 })
        .with_gpu_async(gopts.clone());
    let engine = Engine::run(&cfg, &task, &full, 0.5, &o);
    let owned = make_batches(&x, &y, 16);
    let batches: Vec<Batch<'_>> =
        owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
    let legacy = run_gpu_hogbatch(&task, &full, &batches, 0.5, &o, &gopts);
    assert_identical(&engine, &legacy);
}

#[test]
fn empty_fault_plan_is_bit_identical_on_every_deterministic_corner() {
    // A plan that configures nothing harmful — even with a custom seed
    // and a 1.0x "straggler" — must route every runner through its
    // unmodified code path: times, losses, and outcomes bit-identical to
    // a run with default options.
    let noop = FaultPlan::default().with_seed(1234).with_straggler(0, 1.0);
    assert!(noop.is_empty());
    let o = opts();
    let fo = RunOptions { faults: noop, ..opts() };

    // `det_time`: wall-clock CPU corners time real execution, so only
    // losses are comparable across two runs; modeled/simulated corners
    // must also reproduce their clocks exactly.
    let check = |run: &dyn Fn(&RunOptions) -> RunReport, det_time: bool| {
        let clean = run(&o);
        let gated = run(&fo);
        assert_identical(&clean, &gated);
        if det_time {
            assert_eq!(clean.opt_seconds, gated.opt_seconds, "{}", clean.label);
            for (c, g) in clean.trace.points().iter().zip(gated.trace.points()) {
                assert_eq!(c.0, g.0, "epoch time drifted under an empty plan");
            }
        }
        assert_eq!(gated.metrics.total_faults().total_events(), 0);
    };

    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    for device in [DeviceKind::CpuSeq, DeviceKind::CpuPar, DeviceKind::Gpu] {
        let cfg = Configuration::new(device, Strategy::Sync);
        check(&|ro| Engine::run(&cfg, &task, &batch, 0.5, ro), device == DeviceKind::Gpu);
    }
    let mc = CpuModelConfig::paper_machine(4);
    for strategy in [Strategy::Sync, Strategy::Hogwild] {
        let cfg =
            Configuration::new(mc.device(), strategy).with_timing(Timing::Modeled(mc.clone()));
        check(&|ro| Engine::run(&cfg, &task, &batch, 0.2, ro), true);
    }
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild);
    check(&|ro| Engine::run(&cfg, &task, &batch, 0.2, ro), true);

    let (x, yd) = dense();
    let full = Batch::new(Examples::Dense(&x), &yd);
    let dtask = lr(6);
    let cfg = Configuration::new(mc.device(), Strategy::Hogbatch { batch_size: 16 })
        .with_timing(Timing::Modeled(mc.clone()));
    check(&|ro| Engine::run(&cfg, &dtask, &full, 0.2, ro), true);
    let cfg = Configuration::new(DeviceKind::Gpu, Strategy::Hogbatch { batch_size: 16 });
    check(&|ro| Engine::run(&cfg, &dtask, &full, 0.2, ro), true);
}

#[test]
fn replicated_hogwild_matches_legacy_shape() {
    let (xs, y) = sparse();
    let batch = Batch::new(Examples::Sparse(&xs), &y);
    let task = lr(16);
    let o = RunOptions { threads: 4, ..opts() };
    for repl in [Replication::PerMachine, Replication::PerNode { nodes: 2 }, Replication::PerCore] {
        let cfg = Configuration::new(
            DeviceKind::CpuPar,
            Strategy::ReplicatedHogwild { replication: repl },
        );
        let engine = Engine::run(&cfg, &task, &batch, 0.2, &o);
        let legacy = run_replicated_hogwild(&task, &batch, 4, 0.2, repl, &o);
        assert_same_shape(&engine, &legacy);
    }
}

#[test]
fn sync_training_through_the_backend_replays_exactly_on_every_device() {
    // PR 6 folds the sync runner's cpu-seq / cpu-par / gpu-sim arms into
    // one `ComputeBackend::dispatch` path. Per device, two runs through
    // that path must produce bit-identical loss trajectories (the legacy
    // comparison above already pins dispatch ≡ pre-refactor bitwise);
    // across devices the trajectories agree at the tolerances the core
    // suite has always pinned — bitwise is not promised there because
    // parallel gradient reductions may legally reorder by an ULP.
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let o = RunOptions { threads: 4, ..opts() };
    let run =
        |d: DeviceKind| Engine::run(&Configuration::new(d, Strategy::Sync), &task, &batch, 0.5, &o);
    let seq = run(DeviceKind::CpuSeq);
    for device in [DeviceKind::CpuSeq, DeviceKind::CpuPar, DeviceKind::Gpu] {
        let a = run(device);
        let b = run(device);
        assert_eq!(a.trace.epochs(), b.trace.epochs(), "{}", a.label);
        for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
            assert_eq!(
                p.1.to_bits(),
                q.1.to_bits(),
                "{}: loss not bit-deterministic across runs ({} vs {})",
                a.label,
                p.1,
                q.1
            );
        }
        assert_eq!(seq.trace.epochs(), a.trace.epochs(), "{}", a.label);
        for (p, q) in seq.trace.points().iter().zip(a.trace.points()) {
            assert!(
                (p.1 - q.1).abs() < 1e-9,
                "{}: loss drifted from cpu-seq ({} vs {})",
                a.label,
                p.1,
                q.1
            );
        }
    }
}

#[test]
fn run_options_kernel_tier_scalar_pins_the_default_trajectory() {
    // `RunOptions::tier` defaults to Scalar; setting it explicitly must be
    // a no-op down to the bit — times included, since modeled timing is
    // deterministic.
    use sgd_study::linalg::KernelTier;
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let mc = CpuModelConfig::paper_machine(4);
    let cfg =
        Configuration::new(mc.device(), Strategy::Sync).with_timing(Timing::Modeled(mc.clone()));
    let default_run = Engine::run(&cfg, &task, &batch, 0.5, &opts());
    let pinned =
        Engine::run(&cfg, &task, &batch, 0.5, &RunOptions { tier: KernelTier::Scalar, ..opts() });
    assert_identical(&default_run, &pinned);
    for (p, q) in default_run.trace.points().iter().zip(pinned.trace.points()) {
        assert_eq!(p.0.to_bits(), q.0.to_bits(), "modeled epoch time drifted");
        assert_eq!(p.1.to_bits(), q.1.to_bits(), "loss drifted under an explicit Scalar tier");
    }
}

#[test]
fn engine_tier_sweep_is_deterministic_and_vector_tiers_agree() {
    // The tier-sweep smoke for full training runs: every tier converges,
    // each tier replays bit-identically, and the two vector tiers (AVX2
    // when available, portable otherwise vs. forced-portable) agree
    // bitwise on any data — the same discipline `pool_bit_identity.rs`
    // pins for bare kernels, now through `Engine::run`.
    use sgd_study::linalg::KernelTier;
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let mc = CpuModelConfig::paper_machine(4);
    let cfg =
        Configuration::new(mc.device(), Strategy::Sync).with_timing(Timing::Modeled(mc.clone()));
    let run =
        |tier: KernelTier| Engine::run(&cfg, &task, &batch, 0.5, &RunOptions { tier, ..opts() });
    let mut by_tier = Vec::new();
    for tier in [KernelTier::Scalar, KernelTier::Simd, KernelTier::SimdPortable] {
        let a = run(tier);
        let b = run(tier);
        assert!(a.best_loss().is_finite(), "{tier:?} produced a non-finite loss");
        assert!(a.best_loss() < 0.5, "{tier:?} failed to make progress: {}", a.best_loss());
        assert_eq!(a.trace.epochs(), b.trace.epochs(), "{tier:?} epoch count not replayable");
        for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
            assert_eq!(p.1.to_bits(), q.1.to_bits(), "{tier:?} not bit-deterministic");
        }
        by_tier.push(a);
    }
    let (simd, portable) = (&by_tier[1], &by_tier[2]);
    assert_eq!(simd.trace.epochs(), portable.trace.epochs());
    for (p, q) in simd.trace.points().iter().zip(portable.trace.points()) {
        assert_eq!(p.1.to_bits(), q.1.to_bits(), "Simd vs SimdPortable trajectories diverge");
    }
}

#[test]
fn dispatch_modes_agree_bitwise_on_a_deterministic_parallel_corner() {
    // The persistent pool and the measured fork-join baseline split work
    // into identical chunks (assignment depends only on the requested
    // width, never on the dispatch mechanism), so a deterministic corner
    // whose kernels cross MIN_PARALLEL_LEN must produce bit-identical
    // reports under either dispatch mode.
    use sgd_study::linalg::pool::{with_dispatch, Dispatch};
    use sgd_study::linalg::MIN_PARALLEL_LEN;

    let n = MIN_PARALLEL_LEN + 101;
    let x = Matrix::from_fn(n, 6, |i, j| {
        let s = if i % 2 == 0 { 1.0 } else { -1.0 };
        s * (((i * 3 + j) % 5) as f64 + 1.0) / 5.0
    });
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(6);
    let cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Sync);
    for threads in [2usize, 4] {
        let o = RunOptions { threads, max_epochs: 4, plateau: None, ..Default::default() };
        let pooled = with_dispatch(Dispatch::Pool, || Engine::run(&cfg, &task, &batch, 0.5, &o));
        let forked =
            with_dispatch(Dispatch::ForkJoin, || Engine::run(&cfg, &task, &batch, 0.5, &o));
        assert_identical(&pooled, &forked);
    }
}
