//! Smoke tests for the full table/figure reproduction pipelines: every
//! regenerator must run end to end at tiny scale and emit well-formed
//! output. (The quantitative shapes are asserted in `paper_shapes.rs` and
//! in the bench crate's unit tests.)

use sgd_bench::{fig6, fig7, fig8, fig9, table1, table2, table3, ExperimentConfig};

fn smoke() -> ExperimentConfig {
    ExperimentConfig::smoke()
}

#[test]
fn table1_pipeline() {
    let out = table1::render(&smoke());
    assert!(out.contains("Table I"));
    assert!(out.contains("w8a"));
    assert!(out.lines().count() >= 3);
}

#[test]
fn table2_pipeline() {
    let rows = table2::rows(&smoke());
    assert_eq!(rows.len(), 3, "LR, SVM, MLP for the selected dataset");
    for r in &rows {
        assert!(r.tpi_ms.iter().all(|&t| t.is_finite() && t > 0.0), "{r:?}");
        assert!(r.speedup_seq_over_par.is_finite());
    }
    assert!(table2::render(&smoke()).contains("synchronous"));
}

#[test]
fn table3_pipeline() {
    let rows = table3::rows(&smoke());
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.tpi_ms.iter().all(|&t| t.is_finite() && t > 0.0), "{r:?}");
    }
    assert!(table3::render(&smoke()).contains("asynchronous"));
}

#[test]
fn fig6_pipeline() {
    let mut cfg = smoke();
    cfg.scale = 0.002; // fig6 always runs on real-sim
    let pts = fig6::points(&cfg);
    assert_eq!(pts.len(), fig6::architectures().len());
    assert!(fig6::render(&cfg).contains("real-sim"));
}

#[test]
fn fig7_pipeline() {
    let out = fig7::render(&smoke());
    assert!(out.contains("sync-gpu"));
    assert!(out.contains("async-cpu"));
    assert!(out.contains("lower final loss"));
}

#[test]
fn fig8_pipeline() {
    let bars = fig8::bars(&smoke());
    assert_eq!(bars.len(), 2);
    assert!(bars.iter().all(|b| b.ours_sync > 0.0 && b.bidmach > 0.0 && b.ours_async > 0.0));
    assert!(fig8::render(&smoke()).contains("BIDMach"));
}

#[test]
fn fig9_pipeline() {
    let bars = fig9::bars(&smoke());
    assert_eq!(bars.len(), 1);
    assert!(bars[0].tensorflow > 0.0);
    assert!(fig9::render(&smoke()).contains("TensorFlow"));
}

#[test]
fn cli_round_trip_matches_defaults() {
    let parsed = ExperimentConfig::from_args(Vec::<String>::new()).expect("no args is valid");
    let def = ExperimentConfig::default();
    assert_eq!(parsed.scale, def.scale);
    assert_eq!(parsed.grid, def.grid);
    assert_eq!(parsed.model_threads, def.model_threads);
}
