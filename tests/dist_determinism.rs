//! The modeled parameter-server cluster is deterministic: the same seed
//! and fault plan replay the exact run — event times, losses, staleness
//! counts, fault counters, outcome, and best model — bit for bit, in
//! both consistency modes and through elastic-membership churn. This is
//! the distributed analog of `fault_determinism.rs`: without it a
//! scale-out sweep would not be an experiment.

use sgd_study::core::{FaultPlan, RunOptions, RunOutcome, RunReport};
use sgd_study::dist::{run_dist_modeled, ConsistencyMode, DistConfig, StalePolicy};
use sgd_study::linalg::Matrix;
use sgd_study::models::{lr, svm, Batch, Examples, Task};

fn dense() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(96, 8, |i, j| {
        let s = if i % 2 == 0 { 1.0 } else { -1.0 };
        s * (((i * 5 + j) % 11) as f64 + 1.0) / 11.0
    });
    let y = (0..96).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    (x, y)
}

fn opts(seed: u64) -> RunOptions {
    RunOptions { max_epochs: 10, plateau: None, seed, ..Default::default() }
}

fn assert_bit_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.outcome, b.outcome, "{}", a.label);
    assert_eq!(a.opt_seconds.to_bits(), b.opt_seconds.to_bits(), "{}", a.label);
    assert_eq!(a.trace.epochs(), b.trace.epochs(), "{}", a.label);
    for (pa, pb) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(pa.0.to_bits(), pb.0.to_bits(), "{}: event time not replayed", a.label);
        assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "{}: loss not replayed", a.label);
    }
    assert_eq!(a.metrics.epochs.len(), b.metrics.epochs.len());
    for (ma, mb) in a.metrics.epochs.iter().zip(&b.metrics.epochs) {
        assert_eq!(ma.staleness_rounds, mb.staleness_rounds, "{}", a.label);
        assert_eq!(ma.faults.dead_workers, mb.faults.dead_workers, "{}", a.label);
        assert_eq!(
            ma.faults.straggler_delay_secs.to_bits(),
            mb.faults.straggler_delay_secs.to_bits(),
            "{}",
            a.label
        );
    }
    assert_eq!(a.best_model, b.best_model, "{}", a.label);
}

fn modes() -> [ConsistencyMode; 3] {
    [
        ConsistencyMode::Sync { grads_to_wait: 3 },
        ConsistencyMode::Async { max_staleness: 2, policy: StalePolicy::Reject },
        ConsistencyMode::Async { max_staleness: 1, policy: StalePolicy::DownWeight },
    ]
}

#[test]
fn clean_runs_replay_bit_for_bit_in_every_mode() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(8);
    for mode in modes() {
        let cfg = DistConfig { workers: 4, shards: 8, mode, ..Default::default() };
        let a = run_dist_modeled(&task, &batch, &cfg, 0.3, &opts(42));
        let b = run_dist_modeled(&task, &batch, &cfg, 0.3, &opts(42));
        assert_bit_identical(&a, &b);
    }
}

#[test]
fn the_seed_steers_the_lease_order() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(8);
    let cfg = DistConfig {
        workers: 3,
        shards: 9,
        mode: ConsistencyMode::Async { max_staleness: 4, policy: StalePolicy::Reject },
        ..Default::default()
    };
    let a = run_dist_modeled(&task, &batch, &cfg, 0.3, &opts(1));
    let b = run_dist_modeled(&task, &batch, &cfg, 0.3, &opts(2));
    let differs = a
        .trace
        .points()
        .iter()
        .zip(b.trace.points())
        .any(|(pa, pb)| pa.1.to_bits() != pb.1.to_bits());
    assert!(differs, "different seeds must permute shards into a different trajectory");
}

#[test]
fn straggler_runs_replay_bit_for_bit() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = svm(8);
    for mode in modes() {
        let cfg = DistConfig { workers: 4, shards: 8, mode, ..Default::default() };
        let mut o = opts(7);
        o.faults = FaultPlan::default().with_seed(7).with_straggler(1, 6.0);
        let a = run_dist_modeled(&task, &batch, &cfg, 0.2, &o);
        let b = run_dist_modeled(&task, &batch, &cfg, 0.2, &o);
        assert_bit_identical(&a, &b);
        let delay: f64 = a.metrics.epochs.iter().map(|m| m.faults.straggler_delay_secs).sum();
        assert!(delay > 0.0, "{}: the straggler must actually charge delay", a.label);
    }
}

#[test]
fn death_and_rejoin_runs_replay_bit_for_bit_in_every_mode() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(8);
    for mode in modes() {
        let cfg = DistConfig { workers: 3, shards: 6, mode, ..Default::default() };
        let mut o = opts(11);
        o.faults = FaultPlan::default().with_seed(11).with_worker_death(2, 3).with_rejoin(2, 6);
        let a = run_dist_modeled(&task, &batch, &cfg, 0.3, &o);
        let b = run_dist_modeled(&task, &batch, &cfg, 0.3, &o);
        assert_bit_identical(&a, &b);
        let dead: u64 = a.metrics.epochs.iter().map(|m| m.faults.dead_workers).sum();
        assert_eq!(dead, 1, "{}: exactly one death event", a.label);
        assert_eq!(a.trace.epochs(), 10, "{}: the cluster survives the churn", a.label);
    }
}

#[test]
fn a_churned_run_still_reaches_a_convergence_target() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(8);
    let cfg = DistConfig {
        workers: 3,
        shards: 6,
        mode: ConsistencyMode::Sync { grads_to_wait: 2 },
        ..Default::default()
    };
    let mut probe = opts(11);
    probe.faults = FaultPlan::default().with_seed(11).with_worker_death(1, 2).with_rejoin(1, 5);
    let rep = run_dist_modeled(&task, &batch, &cfg, 0.3, &probe);
    let mut o = probe.clone();
    o.target_loss = Some(rep.best_loss() * 1.02);
    let rep2 = run_dist_modeled(&task, &batch, &cfg, 0.3, &o);
    assert_eq!(rep2.outcome, RunOutcome::Converged, "death + rejoin still converges");
}

#[test]
fn one_worker_sync_is_bitwise_the_single_node_trajectory() {
    let (x, y) = dense();
    let batch = Batch::new(Examples::Dense(&x), &y);
    let task = lr(8);
    let cfg = DistConfig {
        workers: 1,
        shards: 1,
        mode: ConsistencyMode::Sync { grads_to_wait: 1 },
        ..Default::default()
    };
    let rep = run_dist_modeled(&task, &batch, &cfg, 0.4, &opts(42));
    // Reference loop on the same exact kernels.
    let mut e = sgd_study::linalg::CpuExec::seq();
    let mut w = task.init_model();
    let mut g = vec![0.0; 8];
    for point in rep.trace.points().iter().skip(1) {
        use sgd_study::linalg::Exec;
        task.gradient(&mut e, &batch, &w, &mut g);
        e.axpy(-0.4, &g, &mut w);
        let loss = task.loss(&mut e, &batch, &w);
        assert_eq!(point.1.to_bits(), loss.to_bits(), "dist x1 == single-node, bitwise");
    }
}
