//! End-to-end convergence: every optimizer in the study must actually
//! optimize every task on generated data, and configurations that share
//! update semantics must agree exactly.
//!
//! This suite deliberately drives the deprecated `run_*` entry points so
//! the legacy shims stay covered; `engine_equivalence.rs` pins them to
//! `Engine::run`.
#![allow(deprecated)]

use sgd_study::core::{
    make_batches, reference_optimum, run_gpu_hogbatch, run_gpu_hogwild, run_hogbatch, run_hogwild,
    run_hogwild_modeled, run_sync, run_sync_modeled, CpuModelConfig, DeviceKind, GpuAsyncOptions,
    RunOptions,
};
use sgd_study::datagen::{
    generate, group_features, normalize_rows, plant_labels, DatasetProfile, GenOptions,
};
use sgd_study::models::{lr, svm, Batch, Examples, MlpTask, Task};

fn w8a_small() -> sgd_study::datagen::Dataset {
    generate(&DatasetProfile::w8a().scaled(0.02), &GenOptions::default())
}

fn opts(max_epochs: usize) -> RunOptions {
    RunOptions { max_epochs, max_secs: 20.0, ..Default::default() }
}

#[test]
fn sync_converges_on_all_tasks_and_devices() {
    let ds = w8a_small();
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    for device in [DeviceKind::CpuSeq, DeviceKind::CpuPar, DeviceKind::Gpu] {
        let lr_rep = run_sync(&lr(ds.d()), &batch, device, 10.0, &opts(150));
        assert!(lr_rep.best_loss() < 0.3, "{device:?} LR loss {}", lr_rep.best_loss());
        let svm_rep = run_sync(&svm(ds.d()), &batch, device, 10.0, &opts(150));
        assert!(svm_rep.best_loss() < 0.45, "{device:?} SVM loss {}", svm_rep.best_loss());
    }
}

#[test]
fn sync_statistical_efficiency_is_device_independent() {
    // The paper: "the statistical efficiency is identical in synchronous
    // SGD" — trajectories must agree to machine precision between seq CPU
    // and the simulated GPU, and to reduction-reordering tolerance for the
    // parallel CPU.
    let ds = w8a_small();
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let task = lr(ds.d());
    let o = opts(20);
    let seq = run_sync(&task, &batch, DeviceKind::CpuSeq, 1.0, &o);
    let par = run_sync(&task, &batch, DeviceKind::CpuPar, 1.0, &o);
    let gpu = run_sync(&task, &batch, DeviceKind::Gpu, 1.0, &o);
    let modeled = run_sync_modeled(&task, &batch, &CpuModelConfig::paper_machine(56), 1.0, &o);
    for (((s, p), g), m) in seq
        .trace
        .points()
        .iter()
        .zip(par.trace.points())
        .zip(gpu.trace.points())
        .zip(modeled.trace.points())
    {
        assert!((s.1 - g.1).abs() < 1e-12);
        assert!((s.1 - m.1).abs() < 1e-12);
        assert!((s.1 - p.1).abs() < 1e-9);
    }
}

#[test]
fn hogwild_converges_across_thread_counts() {
    let ds = w8a_small();
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let task = lr(ds.d());
    for threads in [1, 2, 4] {
        let rep = run_hogwild(&task, &batch, threads, 0.5, &opts(80));
        assert!(rep.best_loss() < 0.25, "threads {threads}: {}", rep.best_loss());
    }
    // Modeled variant converges too.
    let rep =
        run_hogwild_modeled(&task, &batch, &CpuModelConfig::paper_machine(56), 0.5, &opts(80));
    assert!(rep.best_loss() < 0.25, "modeled: {}", rep.best_loss());
}

#[test]
fn gpu_hogwild_converges_on_sparse_data() {
    let ds = w8a_small();
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let task = lr(ds.d());
    let rep = run_gpu_hogwild(&task, &batch, 0.5, &opts(120), &GpuAsyncOptions::default());
    // Warp-Hogwild loses most intra-warp updates on colliding coordinates,
    // so its statistical efficiency is far worse than CPU Hogwild (the
    // paper's central asynchronous-GPU finding); it converges, slowly.
    assert!(rep.best_loss() < 0.4, "loss {}", rep.best_loss());
    assert!(rep.update_conflicts().is_some());
}

#[test]
fn mlp_pipeline_converges_end_to_end() {
    // The full MLP data path: generate -> group -> normalize -> re-plant
    // -> train with sync, Hogbatch, and GPU Hogbatch.
    let ds = generate(&DatasetProfile::w8a().scaled(0.01), &GenOptions::default());
    let grouped = normalize_rows(&group_features(&ds, 300).x);
    let x = grouped.to_dense();
    let (y, _) = plant_labels(&grouped, 3, 0.02);
    let task = MlpTask::new(vec![300, 10, 5, 2], 42);
    let full = Batch::new(Examples::Dense(&x), &y);
    let o = RunOptions { max_epochs: 600, max_secs: 30.0, plateau: None, ..Default::default() };

    let start = task.loss(&mut sgd_study::linalg::CpuExec::seq(), &full, &task.init_model());
    let sync = run_sync(&task, &full, DeviceKind::Gpu, 3.0, &o);
    assert!(sync.best_loss() < 0.8 * start, "sync: {} -> {}", start, sync.best_loss());

    let owned = make_batches(&x, &y, 128);
    let batches: Vec<Batch<'_>> =
        owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
    let hog = run_hogbatch(&task, &full, &batches, 2, 1.0, &o);
    assert!(hog.best_loss() < 0.8 * start, "hogbatch: {}", hog.best_loss());

    let gpu = run_gpu_hogbatch(&task, &full, &batches, 1.0, &o, &GpuAsyncOptions::default());
    assert!(gpu.best_loss() < 0.8 * start, "gpu hogbatch: {}", gpu.best_loss());
}

#[test]
fn reference_optimum_is_a_lower_bound_for_grid_runs() {
    let ds = w8a_small();
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let task = svm(ds.d());
    let optimum = reference_optimum(&task, &batch, 100);
    for alpha in [0.1, 1.0, 10.0] {
        let rep = run_sync(&task, &batch, DeviceKind::CpuSeq, alpha, &opts(100));
        assert!(
            rep.best_loss() >= optimum - 1e-9,
            "alpha {alpha}: run found {} below reference {optimum}",
            rep.best_loss()
        );
    }
}
