//! Umbrella crate for the SGD-on-modern-hardware study.
//!
//! Re-exports the public API of every member crate so examples and
//! downstream users need a single dependency. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

pub use sgd_core as core;
pub use sgd_datagen as datagen;
pub use sgd_dist as dist;
pub use sgd_frameworks as frameworks;
pub use sgd_gpusim as gpusim;
pub use sgd_linalg as linalg;
pub use sgd_models as models;
pub use sgd_serve as serve;
