//! Cost model for asynchronous (Hogwild) epochs.
//!
//! Incremental SGD is scalar, latency-bound code: for each example it
//! gathers the model coordinates of the example's non-zeros, computes the
//! margin, and scatters the update back. Under concurrency the scatters
//! contend through the cache-coherency protocol: a write to a line that
//! another core holds costs an invalidation round-trip, and contended
//! lines ping-pong. This term is what makes parallel Hogwild *slower* than
//! sequential on dense, low-dimensional models (covtype in Table III)
//! while sparse, high-dimensional models scale (news).

use crate::bandwidth::{effective_stream_bw_gbps, random_line_cost_ns};
use crate::exec::RANDOM_PARALLEL_CAP;
use crate::spec::CpuSpec;

/// Incremental SGD does not vectorize across examples: effective scalar
/// FMA throughput per core per cycle.
const SCALAR_FLOPS_PER_CYCLE: f64 = 2.0;

/// Hogwild epoch cost model for one machine/thread-count.
#[derive(Clone, Debug)]
pub struct HogwildCost {
    /// The modeled machine.
    pub spec: CpuSpec,
    /// Concurrent worker threads.
    pub threads: usize,
}

impl HogwildCost {
    /// A model for the paper's machine.
    pub fn paper_machine(threads: usize) -> Self {
        HogwildCost { spec: CpuSpec::xeon_e5_2660_v4_dual(), threads: threads.max(1) }
    }

    /// Fraction of updates whose target cache line is concurrently written
    /// by another thread. Modeled at line granularity: an update touches
    /// `min(avg_nnz, model_lines)` distinct lines, another thread's write
    /// lands in the coherency window with a small duty factor, and the
    /// rate saturates at 1. Dense low-dimensional models (covtype: the
    /// whole model is 7 lines) saturate; news-like sparsity is negligible.
    pub fn conflict_rate(&self, avg_nnz: f64, model_dim: usize) -> f64 {
        if self.threads <= 1 || model_dim == 0 {
            return 0.0;
        }
        const DUTY: f64 = 0.02; // fraction of time a thread spends inside a write window
        let model_lines = (model_dim * 8 / self.spec.cacheline).max(1) as f64;
        let update_lines = avg_nnz.min(model_lines);
        ((self.threads - 1) as f64 * update_lines / model_lines * DUTY).min(1.0)
    }

    /// Modeled seconds for one epoch over `examples` examples with
    /// `avg_nnz` non-zeros each, a model of `model_dim` coordinates, and
    /// `data_bytes` of training data streamed per pass.
    pub fn epoch_secs(
        &self,
        examples: usize,
        avg_nnz: f64,
        model_dim: usize,
        data_bytes: usize,
    ) -> f64 {
        let spec = &self.spec;
        let touches = examples as f64 * avg_nnz;
        let model_bytes = model_dim * 8;

        // Scalar compute: one FMA for the margin and one for the update
        // per non-zero, plus per-example overhead.
        let scalar_rate =
            spec.effective_cores(self.threads) * spec.clock_ghz * 1e9 * SCALAR_FLOPS_PER_CYCLE;
        let t_compute = (4.0 * touches + 16.0 * examples as f64) / scalar_rate;

        // Model gathers + update scatters: random line accesses whose cost
        // depends on where the model lives in the hierarchy; aggregate
        // random throughput saturates early.
        let eff_random = spec.effective_cores(self.threads).min(RANDOM_PARALLEL_CAP);
        let t_model = 2.0 * touches * random_line_cost_ns(spec, model_bytes) * 1e-9 / eff_random;

        // Training data streams once per epoch.
        let bw = effective_stream_bw_gbps(spec, self.threads, data_bytes) * 1e9;
        let t_data = data_bytes as f64 / bw;

        // Coherency: conflicting writes serialize per line; distinct lines
        // ping-pong concurrently, with diminishing overlap (square-root
        // scaling, bounded by the core count).
        let model_lines = (model_bytes / spec.cacheline).max(1) as f64;
        let pipelines = model_lines.sqrt().min(spec.effective_cores(self.threads)).max(1.0);
        let t_coherency =
            touches * self.conflict_rate(avg_nnz, model_dim) * spec.coherency_inval_ns * 1e-9
                / pipelines;

        (t_compute + t_model).max(t_data).max(t_coherency)
            + if self.threads > 1 { spec.fork_join_secs } else { 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's full-scale dataset shapes (Table I).
    const COVTYPE: (usize, f64, usize, usize) = (581_012, 54.0, 54, 485 << 20);
    const NEWS: (usize, f64, usize, usize) = (19_996, 455.0, 1_355_191, 134 << 20);
    const W8A: (usize, f64, usize, usize) = (64_700, 12.0, 300, 44 << 20);

    fn secs(threads: usize, d: (usize, f64, usize, usize)) -> f64 {
        HogwildCost::paper_machine(threads).epoch_secs(d.0, d.1, d.2, d.3)
    }

    #[test]
    fn conflict_rate_shapes() {
        let m = HogwildCost::paper_machine(56);
        // Dense low-dimensional: saturated.
        assert_eq!(m.conflict_rate(54.0, 54), 1.0);
        // news-like sparsity: negligible.
        assert!(m.conflict_rate(455.0, 1_355_191) < 0.02);
        // Single thread never conflicts.
        assert_eq!(HogwildCost::paper_machine(1).conflict_rate(54.0, 54), 0.0);
    }

    #[test]
    fn dense_low_dim_parallel_is_slower_than_sequential() {
        // The covtype finding of Table III: coherency conflicts make
        // 56-thread Hogwild slower per epoch than one thread.
        let seq = secs(1, COVTYPE);
        let par = secs(56, COVTYPE);
        assert!(par > seq, "par {par} vs seq {seq}");
    }

    #[test]
    fn sparse_high_dim_scales_but_saturates() {
        // The news finding: parallel Hogwild helps, by single-digit
        // factors (the paper reports ~6X), not by the thread count.
        let seq = secs(1, NEWS);
        let par = secs(56, NEWS);
        let speedup = seq / par;
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(speedup < 15.0, "speedup {speedup}");
    }

    #[test]
    fn moderate_density_lands_between() {
        let seq = secs(1, W8A);
        let par = secs(56, W8A);
        let w8a_speedup = seq / par;
        let covtype_speedup = secs(1, COVTYPE) / secs(56, COVTYPE);
        let news_speedup = secs(1, NEWS) / secs(56, NEWS);
        assert!(w8a_speedup > covtype_speedup, "{w8a_speedup} vs covtype {covtype_speedup}");
        assert!(w8a_speedup < news_speedup, "{w8a_speedup} vs news {news_speedup}");
    }

    #[test]
    fn epoch_cost_scales_linearly_in_examples() {
        let a = secs(1, (10_000, 50.0, 10_000, 10 << 20));
        let b = secs(1, (20_000, 50.0, 10_000, 20 << 20));
        assert!(b > 1.8 * a && b < 2.2 * a, "a {a} b {b}");
    }

    #[test]
    fn magnitudes_are_in_the_papers_ballpark() {
        // Paper Table III covtype LR: cpu-seq 150 ms, cpu-par 251 ms.
        let seq = secs(1, COVTYPE);
        let par = secs(56, COVTYPE);
        assert!(seq > 0.02 && seq < 0.8, "seq {seq}");
        assert!(par > 0.05 && par < 1.5, "par {par}");
    }
}
