//! CPU hardware parameters.

/// Static description of a modeled multicore (NUMA) CPU machine.
///
/// The default preset is the paper's machine (Fig. 5): two 14-core
/// Xeon E5-2660 v4 sockets, 2-way SMT, 56 hardware threads.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuSpec {
    /// Machine name.
    pub name: &'static str,
    /// NUMA sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core (SMT).
    pub smt: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Double-precision FLOPs per core per cycle (AVX2 FMA: 2 x 4 x 2).
    pub flops_per_core_cycle: f64,
    /// Streaming bandwidth one core can sustain, GB/s.
    pub stream_bw_core_gbps: f64,
    /// Streaming bandwidth one socket can sustain, GB/s.
    pub stream_bw_socket_gbps: f64,
    /// Effective cost of one random (uncached) cache-line access per core,
    /// in nanoseconds, after memory-level parallelism.
    pub random_line_ns: f64,
    /// L1 data cache per core, bytes.
    pub l1_bytes: usize,
    /// L2 cache per core, bytes.
    pub l2_bytes: usize,
    /// L3 cache per socket, bytes.
    pub l3_bytes: usize,
    /// Cache line size, bytes.
    pub cacheline: usize,
    /// Serialized cost of one coherency invalidation (a write to a line
    /// another core holds), nanoseconds.
    pub coherency_inval_ns: f64,
    /// Fork/join overhead of one parallel region, seconds.
    pub fork_join_secs: f64,
    /// Throughput contribution of the second SMT thread on a core
    /// (0.0 – 1.0).
    pub smt_yield: f64,
    /// Scaled-simulation knob: when experiments run on datasets scaled to
    /// a fraction of their published size, cache capacities are scaled by
    /// the same fraction **for data-tier decisions only**, so that "does
    /// the training data fit in cache" is answered as it would be at full
    /// scale. Model-sized structures (whose dimensionality does not
    /// scale) always see the full capacities.
    pub cache_scale: f64,
}

impl CpuSpec {
    /// The paper's machine: dual-socket Xeon E5-2660 v4 (2 x 14 cores x 2
    /// threads, 2.0 GHz, 35 MB L3 per socket, 256 GB RAM).
    pub fn xeon_e5_2660_v4_dual() -> Self {
        CpuSpec {
            name: "2x Xeon E5-2660 v4 (56 threads)",
            sockets: 2,
            cores_per_socket: 14,
            smt: 2,
            clock_ghz: 2.0,
            flops_per_core_cycle: 16.0,
            stream_bw_core_gbps: 12.0,
            stream_bw_socket_gbps: 65.0,
            random_line_ns: 8.0,
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 35 * 1024 * 1024,
            cacheline: 64,
            coherency_inval_ns: 20.0,
            fork_join_secs: 8e-6,
            smt_yield: 0.3,
            cache_scale: 1.0,
        }
    }

    /// A small 4-core desktop preset for sensitivity studies.
    pub fn quad_core() -> Self {
        CpuSpec {
            name: "4-core desktop",
            sockets: 1,
            cores_per_socket: 4,
            smt: 2,
            clock_ghz: 3.0,
            flops_per_core_cycle: 16.0,
            stream_bw_core_gbps: 15.0,
            stream_bw_socket_gbps: 40.0,
            random_line_ns: 7.0,
            l1_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 8 * 1024 * 1024,
            cacheline: 64,
            coherency_inval_ns: 6.0,
            fork_join_secs: 5e-6,
            smt_yield: 0.3,
            cache_scale: 1.0,
        }
    }

    /// Returns a copy with fixed costs and data-tier cache capacities
    /// scaled by `f` (see [`CpuSpec::cache_scale`]); bandwidths and
    /// latencies are physical properties and do not scale.
    pub fn scaled(&self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        let mut s = self.clone();
        s.cache_scale = self.cache_scale * f;
        s.fork_join_secs = self.fork_join_secs * f;
        s
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware threads (the paper's "56").
    pub fn total_threads(&self) -> usize {
        self.total_cores() * self.smt
    }

    /// Effective core-equivalents delivered by `threads` hardware threads
    /// (SMT threads beyond the physical cores contribute `smt_yield`).
    pub fn effective_cores(&self, threads: usize) -> f64 {
        let threads = threads.clamp(1, self.total_threads());
        let physical = threads.min(self.total_cores());
        let smt_extra = threads.saturating_sub(self.total_cores());
        physical as f64 + smt_extra as f64 * self.smt_yield
    }

    /// Peak double-precision FLOPs/s of `threads` hardware threads.
    pub fn peak_flops(&self, threads: usize) -> f64 {
        self.effective_cores(threads) * self.flops_per_core_cycle * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_counts() {
        let s = CpuSpec::xeon_e5_2660_v4_dual();
        assert_eq!(s.total_cores(), 28);
        assert_eq!(s.total_threads(), 56);
    }

    #[test]
    fn effective_cores_saturate() {
        let s = CpuSpec::xeon_e5_2660_v4_dual();
        assert_eq!(s.effective_cores(1), 1.0);
        assert_eq!(s.effective_cores(28), 28.0);
        assert!((s.effective_cores(56) - (28.0 + 28.0 * 0.3)).abs() < 1e-12);
        // Clamped beyond the machine.
        assert_eq!(s.effective_cores(100), s.effective_cores(56));
        assert_eq!(s.effective_cores(0), 1.0);
    }

    #[test]
    fn peak_flops_scales_with_cores() {
        let s = CpuSpec::xeon_e5_2660_v4_dual();
        // One core at 2 GHz with 16 flops/cycle = 32 GFLOPs.
        assert!((s.peak_flops(1) - 32e9).abs() < 1e3);
        assert!(s.peak_flops(56) > 20.0 * s.peak_flops(1));
    }
}
