//! A performance model of the paper's multicore NUMA CPU.
//!
//! The paper measures wall-clock time on a dual-socket 14-core/28-thread
//! Xeon E5-2660 v4 machine (56 hardware threads). When this repository
//! runs on a host with fewer cores — including single-core CI containers —
//! wall-clock measurements cannot exhibit the paper's parallel-CPU
//! behaviour at all, so the reproduction binaries default to *modeled* CPU
//! time from this crate (pass `--timing wall` to measure the real host
//! instead). Functional results are bit-identical either way; only the
//! reported seconds differ.
//!
//! The model captures exactly the mechanisms the paper's analysis relies
//! on:
//!
//! * a compute/bandwidth roofline per primitive, with **saturating**
//!   bandwidth curves (a single core cannot use the whole machine's
//!   bandwidth, many cores saturate the sockets);
//! * **cache-fit tiers**: working sets that fit the aggregate private L2
//!   or shared L3 enjoy multiplied bandwidth — the source of the paper's
//!   super-linear parallel speedups on `w8a`/`real-sim`/`covtype`;
//! * **random-access costs** for sparse model gathers/scatters at cache-line
//!   granularity — why sparse SGD is latency-bound and parallel speedup
//!   saturates near 6X on `news`;
//! * **cache-coherency conflicts** for Hogwild: concurrent writes to the
//!   same model lines serialize through the coherency protocol — why
//!   parallel Hogwild is *slower* than sequential on dense low-dimensional
//!   data (Table III, covtype);
//! * the ViennaCL small-GEMM no-parallelism threshold and element-wise
//!   parallel cut-off, matching `sgd-linalg`'s real backend.

mod bandwidth;
mod exec;
mod hogwild_cost;
mod spec;

pub use bandwidth::{effective_stream_bw_gbps, random_line_cost_ns, stream_bw_gbps};
pub use exec::CpuModelExec;
pub use hogwild_cost::HogwildCost;
pub use spec::CpuSpec;
