//! `Exec` implementation with modeled time.

use sgd_linalg::{Backend, CsrMatrix, Exec, Matrix, Scalar};

use crate::bandwidth::{effective_stream_bw_gbps, random_line_cost_ns};
use crate::spec::CpuSpec;

/// Aggregate random-access throughput saturates well before streaming
/// bandwidth does: gathers/scatters from many cores contend in the L3 and
/// the memory controllers. Calibrated so the paper's best sparse Hogwild
/// speedup (~6X on news) is reproduced.
pub(crate) const RANDOM_PARALLEL_CAP: f64 = 8.0;

/// A CPU executor that computes functionally exact results (via the
/// sequential reference backend) while charging modeled time for the
/// paper's machine at a chosen thread count.
///
/// Parallelization rules mirror the real `sgd-linalg` backend: matrix
/// products below the ViennaCL result-size threshold stay sequential, and
/// element-wise kernels below the fork/join cut-off stay sequential.
pub struct CpuModelExec {
    spec: CpuSpec,
    threads: usize,
    /// ViennaCL's GEMM result-size threshold (0 = always parallel).
    pub gemm_parallel_threshold: usize,
    min_parallel_len: usize,
    elapsed: f64,
    functional: Backend,
}

impl CpuModelExec {
    /// A modeled executor for `threads` hardware threads on `spec`.
    pub fn new(spec: CpuSpec, threads: usize) -> Self {
        CpuModelExec {
            threads: threads.max(1),
            spec,
            gemm_parallel_threshold: sgd_linalg::DEFAULT_GEMM_PARALLEL_THRESHOLD,
            min_parallel_len: 4096,
            elapsed: 0.0,
            functional: Backend::seq(),
        }
    }

    /// The paper's machine at the given thread count.
    pub fn paper_machine(threads: usize) -> Self {
        CpuModelExec::new(CpuSpec::xeon_e5_2660_v4_dual(), threads)
    }

    /// Modeled seconds accumulated so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed
    }

    /// Resets the modeled clock.
    pub fn reset(&mut self) {
        self.elapsed = 0.0;
    }

    /// The modeled machine.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Modeled thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Charges a streaming primitive: `flops` of arithmetic over `bytes`
    /// of traffic with the given working set, on `threads_used` threads.
    fn charge_stream(&mut self, flops: f64, bytes: f64, working_set: usize, threads_used: usize) {
        let t_compute = flops / self.spec.peak_flops(threads_used);
        let bw = effective_stream_bw_gbps(&self.spec, threads_used, working_set) * 1e9;
        let t_mem = bytes / bw;
        self.elapsed += t_compute.max(t_mem);
        if threads_used > 1 {
            self.elapsed += self.spec.fork_join_secs;
        }
    }

    /// Charges `lines` random cache-line accesses into a structure of
    /// `struct_bytes` (gathers/scatters), on `threads_used` threads.
    fn charge_random(&mut self, lines: f64, struct_bytes: usize, threads_used: usize) {
        let per_line = random_line_cost_ns(&self.spec, struct_bytes) * 1e-9;
        let eff = self.spec.effective_cores(threads_used).min(RANDOM_PARALLEL_CAP);
        self.elapsed += lines * per_line / eff;
    }

    fn elementwise_threads(&self, n: usize) -> usize {
        if n >= self.min_parallel_len {
            self.threads
        } else {
            1
        }
    }

    fn gemm_threads(&self, result_len: usize) -> usize {
        if result_len >= self.gemm_parallel_threshold.max(1) {
            self.threads
        } else {
            1
        }
    }
}

impl Exec for CpuModelExec {
    fn dot(&mut self, x: &[Scalar], y: &[Scalar]) -> Scalar {
        let n = x.len() as f64;
        self.charge_stream(2.0 * n, 16.0 * n, 16 * x.len(), self.elementwise_threads(x.len()));
        self.functional.dot(x, y)
    }

    fn axpy(&mut self, a: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        let n = x.len() as f64;
        self.charge_stream(2.0 * n, 24.0 * n, 16 * x.len(), self.elementwise_threads(x.len()));
        self.functional.axpy(a, x, y)
    }

    fn scale(&mut self, a: Scalar, x: &mut [Scalar]) {
        let n = x.len() as f64;
        self.charge_stream(n, 16.0 * n, 8 * x.len(), self.elementwise_threads(x.len()));
        self.functional.scale(a, x)
    }

    fn sum(&mut self, x: &[Scalar]) -> Scalar {
        let n = x.len() as f64;
        self.charge_stream(n, 8.0 * n, 8 * x.len(), self.elementwise_threads(x.len()));
        self.functional.sum(x)
    }

    fn gemv(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        let (r, c) = (a.rows() as f64, a.cols() as f64);
        self.charge_stream(2.0 * r * c, 8.0 * (r * c + r + c), 8 * a.len(), self.threads);
        self.functional.gemv(a, x, y)
    }

    fn gemv_t(&mut self, a: &Matrix, x: &[Scalar], y: &mut [Scalar]) {
        let (r, c) = (a.rows() as f64, a.cols() as f64);
        // Per-chunk partial buffers add one extra write/read of y per chunk
        // (the backend caps scatter partials at 8, a two-level reduction).
        let extra = 16.0 * c * self.threads.min(8) as f64;
        self.charge_stream(2.0 * r * c, 8.0 * (r * c + r + c) + extra, 8 * a.len(), self.threads);
        self.functional.gemv_t(a, x, y)
    }

    fn gemm(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (n, k, m) = (a.rows() as f64, a.cols() as f64, b.cols() as f64);
        let threads = self.gemm_threads(c.len());
        self.charge_stream(
            2.0 * n * k * m,
            8.0 * (n * k + k * m + n * m),
            8 * (a.len() + b.len() + c.len()),
            threads,
        );
        self.functional.gemm(a, b, c)
    }

    fn gemm_nt(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (n, k, m) = (a.rows() as f64, a.cols() as f64, b.rows() as f64);
        let threads = self.gemm_threads(c.len());
        self.charge_stream(
            2.0 * n * k * m,
            8.0 * (n * k + k * m + n * m),
            8 * (a.len() + b.len() + c.len()),
            threads,
        );
        self.functional.gemm_nt(a, b, c)
    }

    fn gemm_tn(&mut self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (k, n, m) = (a.cols() as f64, a.rows() as f64, b.cols() as f64);
        let threads = self.gemm_threads(c.len());
        self.charge_stream(
            2.0 * k * n * m,
            8.0 * (n * k + n * m + k * m),
            8 * (a.len() + b.len() + c.len()),
            threads,
        );
        self.functional.gemm_tn(a, b, c)
    }

    fn spmv(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        let nnz = a.nnz() as f64;
        // Values + column indices stream; x is gathered randomly.
        self.charge_stream(
            2.0 * nnz,
            12.0 * nnz + 8.0 * a.rows() as f64,
            a.sparse_size_bytes(),
            self.threads,
        );
        self.charge_random(nnz, 8 * x.len(), self.threads);
        self.functional.spmv(a, x, y)
    }

    fn spmv_t(&mut self, a: &CsrMatrix, x: &[Scalar], y: &mut [Scalar]) {
        let nnz = a.nnz() as f64;
        self.charge_stream(
            2.0 * nnz,
            12.0 * nnz + 8.0 * a.rows() as f64,
            a.sparse_size_bytes(),
            self.threads,
        );
        // Scatter into y (plus the capped per-chunk partial reduction).
        self.charge_random(nnz, 8 * y.len(), self.threads);
        let extra = 16.0 * y.len() as f64 * self.threads.min(8) as f64;
        self.charge_stream(0.0, extra, 8 * y.len(), self.threads);
        self.functional.spmv_t(a, x, y)
    }

    fn map<F>(&mut self, x: &mut [Scalar], flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar) -> Scalar + Sync + Send,
    {
        let n = x.len() as f64;
        self.charge_stream(
            flops_per_elem * n,
            16.0 * n,
            8 * x.len(),
            self.elementwise_threads(x.len()),
        );
        self.functional.map_inplace(x, f)
    }

    fn zip<F>(&mut self, a: &[Scalar], b: &[Scalar], out: &mut [Scalar], flops_per_elem: f64, f: F)
    where
        F: Fn(Scalar, Scalar) -> Scalar + Sync + Send,
    {
        let n = a.len() as f64;
        self.charge_stream(
            flops_per_elem * n,
            24.0 * n,
            16 * a.len(),
            self.elementwise_threads(a.len()),
        );
        self.functional.zip_map(a, b, out, f)
    }

    fn add_row_bias(&mut self, c: &mut Matrix, b: &[Scalar]) {
        let n = c.len() as f64;
        self.charge_stream(n, 16.0 * n, 8 * c.len(), self.elementwise_threads(c.len()));
        sgd_linalg::CpuExec::seq().add_row_bias(c, b)
    }

    fn col_sums(&mut self, a: &Matrix, out: &mut [Scalar]) {
        let n = a.len() as f64;
        self.charge_stream(n, 8.0 * n, 8 * a.len(), self.elementwise_threads(a.len()));
        sgd_linalg::CpuExec::seq().col_sums(a, out)
    }

    fn softmax_xent(&mut self, z: &mut Matrix, classes: &[usize]) -> Scalar {
        let n = z.len() as f64;
        self.charge_stream(6.0 * n, 16.0 * n, 8 * z.len(), self.elementwise_threads(z.len()));
        sgd_linalg::softmax_xent_reference(z, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_linalg::approx_eq_slice;

    #[test]
    fn functional_results_match_reference() {
        let a = Matrix::from_fn(20, 8, |i, j| ((i * 8 + j) % 7) as Scalar - 3.0);
        let x: Vec<Scalar> = (0..8).map(|i| i as Scalar * 0.5).collect();
        let mut e = CpuModelExec::paper_machine(56);
        let mut y1 = vec![0.0; 20];
        e.gemv(&a, &x, &mut y1);
        let mut y2 = vec![0.0; 20];
        Backend::seq().gemv(&a, &x, &mut y2);
        assert!(approx_eq_slice(&y1, &y2, 1e-12));
        assert!(e.elapsed_secs() > 0.0);
    }

    #[test]
    fn more_threads_model_less_time_on_large_work() {
        let a = Matrix::from_fn(400, 300, |i, j| ((i + j) % 5) as Scalar);
        let x = vec![1.0; 300];
        let mut y = vec![0.0; 400];
        let mut seq = CpuModelExec::paper_machine(1);
        seq.gemv(&a, &x, &mut y);
        let mut par = CpuModelExec::paper_machine(56);
        par.gemv(&a, &x, &mut y);
        assert!(par.elapsed_secs() < seq.elapsed_secs());
    }

    #[test]
    fn small_gemm_is_not_parallelized() {
        // A 10x10 result stays below the ViennaCL threshold: the modeled
        // time must equal the single-thread time (plus no fork/join).
        let a = Matrix::from_fn(10, 2000, |i, j| ((i + j) % 3) as Scalar);
        let b = Matrix::from_fn(2000, 10, |i, j| ((i * j) % 3) as Scalar);
        let mut c = Matrix::zeros(10, 10);
        let mut par = CpuModelExec::paper_machine(56);
        par.gemm(&a, &b, &mut c);
        let mut seq = CpuModelExec::paper_machine(1);
        seq.gemm(&a, &b, &mut c);
        assert!((par.elapsed_secs() - seq.elapsed_secs()).abs() < 1e-12);

        // Lifting the threshold parallelizes it.
        let mut unconditional = CpuModelExec::paper_machine(56);
        unconditional.gemm_parallel_threshold = 0;
        unconditional.gemm(&a, &b, &mut c);
        assert!(unconditional.elapsed_secs() < seq.elapsed_secs());
    }

    #[test]
    fn tiny_elementwise_kernels_stay_sequential() {
        let mut x = vec![1.0; 100];
        let mut par = CpuModelExec::paper_machine(56);
        par.scale(2.0, &mut x);
        let mut seq = CpuModelExec::paper_machine(1);
        let mut x2 = vec![1.0; 100];
        seq.scale(2.0, &mut x2);
        assert!((par.elapsed_secs() - seq.elapsed_secs()).abs() < 1e-15);
    }

    #[test]
    fn sparse_gather_cost_grows_with_model_size() {
        // Same nnz, bigger model vector => costlier random gathers.
        let small_cols = 512usize;
        let large_cols = 4 << 20;
        let rows = 64;
        let make = |cols: usize| {
            let entries: Vec<Vec<(u32, Scalar)>> = (0..rows)
                .map(|i| {
                    (0..8).map(|k| (((i * 131 + k * 977) % cols) as u32, 1.0)).collect::<Vec<_>>()
                })
                .map(|mut v| {
                    v.sort_by_key(|e| e.0);
                    v.dedup_by_key(|e| e.0);
                    v
                })
                .collect();
            CsrMatrix::from_row_entries(rows, cols, &entries)
        };
        let a_small = make(small_cols);
        let a_large = make(large_cols);
        let mut e1 = CpuModelExec::paper_machine(1);
        let mut y = vec![0.0; rows];
        e1.spmv(&a_small, &vec![0.5; small_cols], &mut y);
        let t_small = e1.elapsed_secs();
        let mut e2 = CpuModelExec::paper_machine(1);
        e2.spmv(&a_large, &vec![0.5; large_cols], &mut y);
        let t_large = e2.elapsed_secs();
        assert!(t_large > t_small, "{t_large} vs {t_small}");
    }

    #[test]
    fn reset_clears_clock() {
        let mut e = CpuModelExec::paper_machine(4);
        let mut x = vec![1.0; 10_000];
        e.scale(0.5, &mut x);
        assert!(e.elapsed_secs() > 0.0);
        e.reset();
        assert_eq!(e.elapsed_secs(), 0.0);
    }
}
