//! Saturating bandwidth curves and cache-fit tiers.

use crate::spec::CpuSpec;

/// Streaming bandwidth available to `threads` hardware threads, GB/s:
/// per-core bandwidth scales until the sockets saturate. Threads are
/// assumed to be spread across sockets (the OS scheduler and the paper's
/// NUMA-aware placement both do this).
pub fn stream_bw_gbps(spec: &CpuSpec, threads: usize) -> f64 {
    let eff = spec.effective_cores(threads);
    (eff * spec.stream_bw_core_gbps).min(spec.stream_bw_socket_gbps * spec.sockets as f64)
}

/// Bandwidth multiplier when `working_set` bytes fit in a cache tier
/// available to `threads` threads. The aggregate-private-L2 tier is what
/// produces the paper's super-linear parallel speedups: a dataset that
/// thrashes a single core's cache fits entirely in the union of 28 L2s.
fn cache_fit_multiplier(spec: &CpuSpec, threads: usize, working_set: usize) -> f64 {
    let cores = spec.effective_cores(threads).ceil();
    let scale = spec.cache_scale;
    let l1_agg = spec.l1_bytes as f64 * cores * scale;
    let l2_agg = spec.l2_bytes as f64 * cores * scale;
    let l3_total = (spec.l3_bytes * spec.sockets) as f64 * scale;
    let ws = working_set as f64;
    if ws <= l1_agg {
        8.0
    } else if ws <= l2_agg {
        4.0
    } else if ws <= l3_total {
        2.0
    } else {
        1.0
    }
}

/// Effective streaming bandwidth for a primitive with the given working
/// set, GB/s.
pub fn effective_stream_bw_gbps(spec: &CpuSpec, threads: usize, working_set: usize) -> f64 {
    stream_bw_gbps(spec, threads) * cache_fit_multiplier(spec, threads, working_set)
}

/// Cost of one random (gather/scatter) cache-line access in nanoseconds,
/// for a structure of `struct_bytes` accessed by `threads` threads:
/// cached tiers are cheap, DRAM-resident structures pay the full random
/// latency. This is the per-access cost seen by *one* thread; aggregate
/// random throughput saturates like streaming bandwidth, which callers
/// model by dividing total work by [`CpuSpec::effective_cores`] and
/// flooring at the machine's random-access capability.
pub fn random_line_cost_ns(spec: &CpuSpec, struct_bytes: usize) -> f64 {
    if struct_bytes <= spec.l1_bytes {
        0.8 // L1-resident: ~a couple of cycles
    } else if struct_bytes <= spec.l2_bytes {
        2.0
    } else if struct_bytes <= spec.l3_bytes * spec.sockets {
        4.0
    } else {
        spec.random_line_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::xeon_e5_2660_v4_dual()
    }

    #[test]
    fn stream_bw_saturates() {
        let s = spec();
        assert!((stream_bw_gbps(&s, 1) - 12.0).abs() < 1e-9);
        // 28 cores x 12 GB/s would be 336; the sockets cap at 130.
        assert!((stream_bw_gbps(&s, 56) - 130.0).abs() < 1e-9);
        assert!(stream_bw_gbps(&s, 4) > stream_bw_gbps(&s, 1));
    }

    #[test]
    fn cache_tiers_order() {
        let s = spec();
        // 4 MB working set: thrashes one core's L2, fits 28 cores' L2s.
        let seq = effective_stream_bw_gbps(&s, 1, 4 << 20);
        let par = effective_stream_bw_gbps(&s, 28, 4 << 20);
        assert!(par / seq > 20.0, "super-linear region: {seq} vs {par}");
        // A DRAM-sized working set scales sub-linearly.
        let seq_big = effective_stream_bw_gbps(&s, 1, 1 << 30);
        let par_big = effective_stream_bw_gbps(&s, 28, 1 << 30);
        assert!(par_big / seq_big < 28.0);
    }

    #[test]
    fn random_cost_by_tier() {
        let s = spec();
        assert!(random_line_cost_ns(&s, 1024) < 1.0);
        assert!(random_line_cost_ns(&s, 100 * 1024) <= 2.0);
        assert!(random_line_cost_ns(&s, 10 << 20) <= 4.0);
        assert_eq!(random_line_cost_ns(&s, 1 << 30), s.random_line_ns);
        // Monotone in structure size.
        let sizes = [1024usize, 100 * 1024, 10 << 20, 1 << 30];
        let costs: Vec<f64> = sizes.iter().map(|&b| random_line_cost_ns(&s, b)).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }
}
