//! Criterion micro-benchmarks of the linear-algebra substrate: the
//! sequential-vs-parallel primitive costs that underlie every synchronous
//! epoch. (Wall-clock; meaningful on multicore hosts.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgd_datagen::{generate, DatasetProfile, GenOptions};
use sgd_linalg::{Backend, Matrix};

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv");
    for &n in &[256usize, 2048] {
        let a = Matrix::from_fn(n, 128, |i, j| ((i * 31 + j * 7) % 13) as f64 / 13.0);
        let x = vec![0.5; 128];
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| Backend::seq().gemv(&a, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("par", n), &n, |b, _| {
            b.iter(|| Backend::par().gemv(&a, &x, &mut y))
        });
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let ds = generate(&DatasetProfile::w8a().scaled(0.05), &GenOptions::default());
    let x = vec![0.5; ds.d()];
    let mut y = vec![0.0; ds.n()];
    let mut group = c.benchmark_group("spmv_w8a");
    group.bench_function("seq", |b| b.iter(|| Backend::seq().spmv(&ds.x, &x, &mut y)));
    group.bench_function("par", |b| b.iter(|| Backend::par().spmv(&ds.x, &x, &mut y)));
    group.finish();
}

fn bench_gemm_threshold(c: &mut Criterion) {
    // The ViennaCL quirk: a small-result product is not parallelized.
    let a = Matrix::from_fn(50, 4096, |i, j| ((i + j) % 7) as f64);
    let b_m = Matrix::from_fn(4096, 10, |i, j| ((i * j) % 5) as f64);
    let mut cm = Matrix::zeros(50, 10);
    let mut group = c.benchmark_group("gemm_small_result");
    group.bench_function("viennacl_threshold", |b| {
        b.iter(|| Backend::par().gemm(&a, &b_m, &mut cm))
    });
    group.bench_function("always_parallel", |b| {
        b.iter(|| Backend::par_unconditional().gemm(&a, &b_m, &mut cm))
    });
    group.finish();
}

criterion_group!(benches, bench_gemv, bench_spmv, bench_gemm_threshold);
criterion_main!(benches);
