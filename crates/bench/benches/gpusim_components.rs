//! Criterion benchmarks of the GPU simulator itself: how much host time
//! the trace machinery costs per simulated kernel. Keeps the simulator
//! honest as a substrate (tracing must stay cheap enough to run whole
//! epochs).

use criterion::{criterion_group, criterion_main, Criterion};
use sgd_datagen::{generate, DatasetProfile, GenOptions};
use sgd_gpusim::{kernels, CoalescingAnalyzer, GpuDevice, L2Cache};

fn bench_coalescing(c: &mut Criterion) {
    let a = CoalescingAnalyzer;
    let coalesced: Vec<(u64, u32)> = (0..32).map(|l| (l * 8, 8)).collect();
    let scattered: Vec<(u64, u32)> = (0..32).map(|l| (l * 4096, 8)).collect();
    let mut group = c.benchmark_group("coalescing_analyzer");
    group.bench_function("coalesced_warp", |b| b.iter(|| a.transaction_count(&coalesced)));
    group.bench_function("scattered_warp", |b| b.iter(|| a.transaction_count(&scattered)));
    group.finish();
}

fn bench_l2(c: &mut Criterion) {
    c.bench_function("l2_access_mixed", |b| {
        let mut cache = L2Cache::new(1536 * 1024, 16);
        let mut line = 0u64;
        b.iter(|| {
            line = (line * 1103515245 + 12345) % 50_000;
            cache.access_line(line)
        })
    });
}

fn bench_traced_spmv(c: &mut Criterion) {
    let ds = generate(&DatasetProfile::w8a().scaled(0.02), &GenOptions::default());
    let x = vec![0.5; ds.d()];
    let mut y = vec![0.0; ds.n()];
    let mut group = c.benchmark_group("traced_spmv");
    group.sample_size(20);
    group.bench_function("warp_per_row", |b| {
        b.iter(|| {
            let mut dev = GpuDevice::tesla_k80();
            kernels::spmv_warp_per_row(&mut dev, &ds.x, &x, &mut y);
            dev.elapsed_secs()
        })
    });
    group.bench_function("thread_per_row", |b| {
        b.iter(|| {
            let mut dev = GpuDevice::tesla_k80();
            kernels::spmv_thread_per_row(&mut dev, &ds.x, &x, &mut y);
            dev.elapsed_secs()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coalescing, bench_l2, bench_traced_spmv);
criterion_main!(benches);
