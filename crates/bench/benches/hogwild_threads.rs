//! Criterion benchmark of real (wall-clock) Hogwild epochs across thread
//! counts, dense versus sparse. On a multicore host this reproduces the
//! paper's scaling behaviour directly; on a single-core host it documents
//! the thread overhead (the modeled numbers come from `sgd-cpusim`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgd_core::{Configuration, DeviceKind, Engine, RunOptions, Strategy};
use sgd_datagen::{generate, DatasetProfile, GenOptions};
use sgd_models::{lr, Batch, Examples};

fn hogwild_corner(threads: usize) -> Configuration {
    let device = if threads == 1 { DeviceKind::CpuSeq } else { DeviceKind::CpuPar };
    Configuration::new(device, Strategy::Hogwild)
}

fn bench_hogwild(c: &mut Criterion) {
    let sparse = generate(&DatasetProfile::w8a().scaled(0.05), &GenOptions::default());
    let dense_ds = generate(&DatasetProfile::covtype().scaled(0.002), &GenOptions::default());
    let dense = dense_ds.x.to_dense();

    let mut group = c.benchmark_group("hogwild_epoch");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("sparse_w8a", threads), &threads, |b, &t| {
            let task = lr(sparse.d());
            let batch = Batch::new(Examples::Sparse(&sparse.x), &sparse.y);
            let opts =
                RunOptions { max_epochs: 1, threads: t, plateau: None, ..Default::default() };
            b.iter(|| Engine::run(&hogwild_corner(t), &task, &batch, 0.1, &opts))
        });
        group.bench_with_input(BenchmarkId::new("dense_covtype", threads), &threads, |b, &t| {
            let task = lr(dense_ds.d());
            let batch = Batch::new(Examples::Dense(&dense), &dense_ds.y);
            let opts =
                RunOptions { max_epochs: 1, threads: t, plateau: None, ..Default::default() };
            b.iter(|| Engine::run(&hogwild_corner(t), &task, &batch, 0.1, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hogwild);
criterion_main!(benches);
