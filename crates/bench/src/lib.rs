//! Reproduction harness: one module (and one binary) per table/figure of
//! the paper, plus shared CLI/dataset-preparation plumbing.
//!
//! Every experiment accepts an [`ExperimentConfig`] whose `scale` shrinks
//! the published dataset sizes so the full study runs on a laptop. GPU
//! numbers are simulated kernel time (see `sgd-gpusim`); CPU numbers are
//! wall-clock. Absolute values therefore differ from the paper, but each
//! experiment's *shape* — who wins, by what factor, where crossovers fall
//! — reproduces the published finding; `EXPERIMENTS.md` records both.

pub mod ablation;
pub mod cli;
pub mod faults;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kernels;
pub mod pool;
pub mod prep;
pub mod ps;
mod render;
pub mod router;
pub mod serve;
pub mod soak;
pub mod table1;
pub mod table2;
pub mod table3;

pub use cli::{ExperimentConfig, TimingMode};
