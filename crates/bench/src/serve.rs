//! Serving bench: micro-batched inference vs unbatched dispatch.
//!
//! Not a paper figure, but the paper's thesis applied to inference: the
//! fixed per-dispatch cost (kernel launch on the GPU, pool hand-off /
//! call overhead on the CPU) is amortized by batching requests exactly
//! as dense batched SGD amortizes kernel launches during training. The
//! sweep trains an LR model through the engine's publish hook, then
//! replays a deterministic open-loop workload against every backend ×
//! batch-size cell and reports p50/p95/p99 latency plus throughput.
//! Under the modeled service clock every number is bit-deterministic
//! for a fixed seed — `check` pins that, plus the batching win and a
//! disk round trip, and runs in CI.

use sgd_core::{Configuration, DeviceKind, Engine, RunOptions, Strategy, Timing};
use sgd_serve::{
    open_loop_arrivals, run_open_loop, BatchPolicy, Checkpoint, CheckpointPublisher, ModelRegistry,
    RequestPool, ServableModel, ServeBackend, ServeOutcome, ServeTiming, Server, TaskDescriptor,
};

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};

/// Micro-batcher sizes swept (1 is the unbatched baseline).
pub const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];

/// Requests per serving run.
pub const REQUESTS: usize = 512;

/// Flush deadline for partial batches, seconds.
pub const MAX_WAIT_SECS: f64 = 2.5e-4;

/// The three serving backends swept.
pub fn backends() -> [ServeBackend; 3] {
    [ServeBackend::CpuSeq, ServeBackend::CpuPar { threads: 4 }, ServeBackend::GpuSim]
}

/// One (dataset, backend, batch-size) cell of the sweep.
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// Dataset name.
    pub dataset: String,
    /// Backend label.
    pub backend: String,
    /// Micro-batcher max batch size (1 = unbatched).
    pub batch: usize,
    /// Requests served.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
}

/// Trains an LR model on the prepared dataset through the engine and the
/// serve-layer publish hook, returning the best-so-far published model.
pub fn train_published_model(cfg: &ExperimentConfig, p: &Prepared) -> ServableModel {
    let task = sgd_models::lr(p.ds.d());
    let batch = p.linear_batch();
    let registry = ModelRegistry::new();
    let descriptor = TaskDescriptor::LogisticRegression { dim: p.ds.d() as u64 };
    let mut publisher = CheckpointPublisher::new(&registry, p.name(), descriptor.clone());
    let corner = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync).with_timing(Timing::Wall);
    let opts = RunOptions {
        max_epochs: cfg.max_epochs.min(5),
        target_loss: None,
        plateau: None,
        ..cfg.run_options()
    };
    Engine::run_observed(&corner, &task, &batch, 0.1, &opts, &mut publisher);
    match registry.get(p.name()) {
        Some(snap) => snap.model.clone(),
        // An LR epoch at this step size always improves on the zero
        // model, but fall back to serving zeros rather than panicking.
        None => {
            let ck = Checkpoint::new(descriptor, vec![0.0; p.ds.d()])
                .expect("descriptor matches its own dimension");
            ServableModel::from_checkpoint(&ck).expect("zero model is valid")
        }
    }
}

/// Request pool for a prepared dataset: dense rows for the paper's dense
/// profile (covtype), CSR rows otherwise — the same representation the
/// training batch uses.
pub fn request_pool(p: &Prepared) -> RequestPool {
    match &p.dense {
        Some(m) => RequestPool::dense(m.clone()),
        None => RequestPool::from_dataset(&p.ds),
    }
}

/// Unbatched single-request service time on a fresh server — the probe
/// that anchors the offered load (shared with the router sweep).
pub fn probe_service_secs(backend: ServeBackend, model: &ServableModel, pool: &RequestPool) -> f64 {
    let mut srv = Server::new(backend, ServeTiming::Modeled);
    let out = run_open_loop(&mut srv, model, pool, &BatchPolicy::unbatched(), &[0.0]);
    out.service_secs.max(1e-9)
}

/// Runs one cell of the sweep.
fn serve_cell(
    backend: ServeBackend,
    model: &ServableModel,
    pool: &RequestPool,
    batch: usize,
    arrivals: &[f64],
) -> ServeOutcome {
    let mut srv = Server::new(backend, ServeTiming::Modeled);
    let policy = BatchPolicy::new(batch, MAX_WAIT_SECS);
    run_open_loop(&mut srv, model, pool, &policy, arrivals)
}

/// Runs the sweep: every selected dataset × backend × batch size, at an
/// offered load of twice the backend's unbatched capacity (so the
/// unbatched baseline saturates and batching has something to win).
pub fn rows(cfg: &ExperimentConfig) -> Vec<ServeRow> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        let model = train_published_model(cfg, &p);
        let pool = request_pool(&p);
        for backend in backends() {
            let probe = probe_service_secs(backend, &model, &pool);
            let rate = 2.0 / probe;
            let arrivals = open_loop_arrivals(rate, REQUESTS, cfg.seed);
            for batch in BATCH_SIZES {
                let o = serve_cell(backend, &model, &pool, batch, &arrivals);
                out.push(ServeRow {
                    dataset: p.name().to_string(),
                    backend: backend.label(),
                    batch,
                    requests: o.summary.n,
                    batches: o.batches,
                    rate_rps: rate,
                    p50_ms: o.summary.p50 * 1e3,
                    p95_ms: o.summary.p95 * 1e3,
                    p99_ms: o.summary.p99 * 1e3,
                    throughput_rps: o.summary.throughput,
                });
            }
        }
    }
    out
}

/// Hand-rolled JSON for `BENCH_serve.json` (the repo carries no JSON
/// dependency; every float the sweep emits is finite).
pub fn to_json(rows: &[ServeRow]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"serve-microbatch\",\n  \"unit\": \"ms latency / requests per second\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"batch\": {}, \
             \"requests\": {}, \"batches\": {}, \"rate_rps\": {:.1}, \"p50_ms\": {:.6}, \
             \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"throughput_rps\": {:.1}}}{}\n",
            r.dataset,
            r.backend,
            r.batch,
            r.requests,
            r.batches,
            r.rate_rps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.throughput_rps,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable table for stdout.
pub fn render(rows: &[ServeRow]) -> String {
    let mut out = String::from(
        "Serve sweep: micro-batched inference, open loop at 2x unbatched capacity (LR)\n",
    );
    out.push_str(&format!(
        "{:<9} {:<9} {:>5} {:>8} | {:>10} {:>10} {:>10} {:>12}\n",
        "dataset", "backend", "batch", "batches", "p50-ms", "p95-ms", "p99-ms", "rps"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<9} {:>5} {:>8} | {:>10.4} {:>10.4} {:>10.4} {:>12.1}\n",
            r.dataset,
            r.backend,
            r.batch,
            r.batches,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.throughput_rps
        ));
    }
    out
}

/// CI smoke mode. Asserts, on a tiny dataset:
/// 1. the modeled-timing sweep is bit-deterministic for a fixed seed;
/// 2. for at least one backend, some batched cell beats the unbatched
///    baseline on throughput at equal-or-better p99;
/// 3. a model trained through the engine, checkpointed to disk,
///    reloaded, and served returns bitwise-identical decisions to the
///    in-memory model;
/// 4. the cost-model router holds its CI gate on the mixed workload
///    (see [`crate::router::check`]): deterministic, within 5% of the
///    best fixed backend in every cell, strictly better than the best
///    single fixed backend in at least one.
pub fn check(cfg: &ExperimentConfig) -> Result<(), String> {
    // (1) Determinism: two full sweeps must agree bitwise.
    let a = rows(cfg);
    let b = rows(cfg);
    if a.len() != b.len() {
        return Err(format!("sweep size diverged across runs ({} vs {})", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(&b) {
        let same = x.p50_ms.to_bits() == y.p50_ms.to_bits()
            && x.p99_ms.to_bits() == y.p99_ms.to_bits()
            && x.throughput_rps.to_bits() == y.throughput_rps.to_bits()
            && x.batches == y.batches;
        if !same {
            return Err(format!(
                "{} {} batch={} not bit-deterministic across runs",
                x.dataset, x.backend, x.batch
            ));
        }
    }

    // (2) The batching win, per backend.
    let mut any_win = false;
    for backend in backends() {
        let label = backend.label();
        let cells: Vec<&ServeRow> = a.iter().filter(|r| r.backend == label).collect();
        let Some(base) = cells.iter().find(|r| r.batch == 1) else {
            return Err(format!("no unbatched baseline for backend {label}"));
        };
        let win = cells.iter().any(|r| {
            r.batch > 1 && r.throughput_rps > base.throughput_rps && r.p99_ms <= base.p99_ms
        });
        if win {
            any_win = true;
        }
    }
    if !any_win {
        return Err(
            "no backend beat unbatched dispatch on throughput at equal-or-better p99".to_string()
        );
    }

    // (3) Disk round trip: checkpoint → fresh reload → bitwise-equal
    // decisions on every backend.
    for p in prepare_all(cfg) {
        let model = train_published_model(cfg, &p);
        let pool = request_pool(&p);
        let ck = model.to_checkpoint().map_err(|e| e.to_string())?;
        let path = std::env::temp_dir().join(format!("sgd-serve-check-{}.ckpt", p.name()));
        ck.save(&path).map_err(|e| e.to_string())?;
        let reloaded = Checkpoint::load(&path).map_err(|e| e.to_string())?;
        std::fs::remove_file(&path).ok();
        let served = ServableModel::from_checkpoint(&reloaded).map_err(|e| e.to_string())?;
        let arrivals = vec![0.0; 32];
        for backend in backends() {
            let pol = BatchPolicy::new(8, MAX_WAIT_SECS);
            let mut s1 = Server::new(backend, ServeTiming::Modeled);
            let mut s2 = Server::new(backend, ServeTiming::Modeled);
            let live = run_open_loop(&mut s1, &model, &pool, &pol, &arrivals);
            let cold = run_open_loop(&mut s2, &served, &pool, &pol, &arrivals);
            for (i, (x, y)) in live.decisions.iter().zip(&cold.decisions).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "{} {}: reloaded model diverged at request {i} ({x} vs {y})",
                        p.name(),
                        backend.label()
                    ));
                }
            }
        }
    }

    // (4) The router gate, on its own mixed sparse + dense workload.
    crate::router::check(cfg)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_on_the_smoke_config() {
        check(&ExperimentConfig::smoke()).expect("serve check must pass");
    }

    #[test]
    fn sweep_produces_a_full_grid_and_valid_json() {
        let cfg = ExperimentConfig::smoke();
        let rows = rows(&cfg);
        assert_eq!(rows.len(), BATCH_SIZES.len() * backends().len(), "one dataset, full grid");
        for r in &rows {
            assert_eq!(r.requests, REQUESTS);
            assert!(r.batches >= REQUESTS / r.batch.max(1), "batches bounded below");
            assert!(r.p50_ms.is_finite() && r.p99_ms.is_finite());
            assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms);
            assert!(r.throughput_rps > 0.0);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"serve-microbatch\""));
        assert_eq!(json.matches("\"backend\"").count(), rows.len());
        let table = render(&rows);
        assert!(table.contains("p99-ms"));
    }

    #[test]
    fn trained_model_beats_zero_weights() {
        let cfg = ExperimentConfig::smoke();
        let p = &prepare_all(&cfg)[0];
        let model = train_published_model(&cfg, p);
        assert!(model.weights().iter().any(|&w| w != 0.0), "training published a real model");
    }
}
