//! Kernel roofline microbench — scalar vs SIMD vs cache-blocked.
//!
//! Not a paper figure: this experiment sizes the SIMD kernel tier added
//! with the vectorization PR. Each (kernel, shape, tier, threads) cell
//! times the hot loop long enough to amortize the timer, then reports
//! achieved GFLOP/s and GB/s next to the analytic roofline bound
//! `min(peak_flops, intensity * peak_bw)` — the same peak-rate constants
//! the serving cost model prices CPU work with
//! ([`sgd_core::CPU_FLOPS_PER_CORE`] /
//! [`sgd_core::CPU_SIMD_FLOPS_PER_CORE`]), so a drifting measurement
//! shows up as a visible gap against the model column instead of
//! silently skewing the router.
//!
//! Shapes are sized against the cpusim cache tiers: an L1-resident dense
//! gemv (the acceptance shape for the committed >= 1.5x SIMD speedup at
//! width 1), an L2-resident one, and a memory-bound one where every tier
//! collapses onto the bandwidth roof. `check` is the CI smoke: tiers
//! must agree bitwise on integer data, two runs must agree bitwise on
//! any data, and (unless `--force-portable`, which exercises the
//! non-AVX2 fallback leg) the L1 gemv SIMD speedup must clear half the
//! committed acceptance floor — loose enough for noisy CI machines,
//! tight enough to catch an accidentally descalarized kernel.

use std::time::Instant;

use sgd_core::{CPU_FLOPS_PER_CORE, CPU_PAR_EFFICIENCY, CPU_SIMD_FLOPS_PER_CORE};
use sgd_linalg::pool::{self};
use sgd_linalg::{Backend, BlockedCsr, CsrMatrix, KernelTier, Matrix, Scalar, SoaMatrix};

/// Thread counts swept per cell (same axis as the pool bench).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Modeled shared-bus memory bandwidth, bytes/s. One socket's worth; it
/// deliberately does not scale with threads (the flop roof does).
pub const MODEL_PEAK_BW_BYTES: f64 = 2.0e10;

/// The committed acceptance floor: SIMD dense gemv at width 1 on the
/// L1-resident shape must beat scalar-seq by this factor.
pub const GEMV_SIMD_ACCEPT_SPEEDUP: f64 = 1.5;

/// One timed (kernel, shape, tier, threads) cell.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel name (`dot`, `axpy`, `scale`, `gemv`, `gemv_t`, `spmv`,
    /// `gemv_blocked`, `spmv_blocked`).
    pub kernel: String,
    /// Shape label (`n=2048` or `64x64`).
    pub shape: String,
    /// `scalar`, `simd`, or `blocked` (blocked runs under the SIMD tier).
    pub tier: String,
    /// Requested kernel width.
    pub threads: usize,
    /// Seconds per call.
    pub secs: f64,
    /// Achieved flop rate, GFLOP/s.
    pub gflops: f64,
    /// Achieved traffic, GB/s (analytic bytes / measured seconds).
    pub gbps: f64,
    /// Arithmetic intensity, flops/byte.
    pub intensity: f64,
    /// Roofline bound at this tier and width, GFLOP/s.
    pub model_gflops: f64,
    /// Achieved rate over the scalar tier's single-thread rate on the
    /// same kernel and shape.
    pub speedup_vs_scalar_seq: f64,
}

/// Sweep options (the binary's extra flags).
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelBenchOpts {
    /// Replace the hardware-SIMD tier with the portable fixed-lane
    /// mirror — the leg a machine without AVX2 runs.
    pub force_portable: bool,
}

impl KernelBenchOpts {
    fn simd_tier(&self) -> KernelTier {
        if self.force_portable {
            KernelTier::SimdPortable
        } else {
            KernelTier::Simd
        }
    }
}

/// Deterministic fractional fill (order-sensitive sums, no rand dep).
fn vec_data(n: usize, seed: usize) -> Vec<Scalar> {
    (0..n).map(|i| ((i * 13 + seed * 7 + 5) % 97) as Scalar * 0.017 - 0.8).collect()
}

fn dense(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| ((i * 29 + j * 11 + seed) % 83) as Scalar * 0.023 - 0.9)
}

/// ~25% dense CSR matrix.
fn sparse(rows: usize, cols: usize) -> CsrMatrix {
    CsrMatrix::from_dense(&Matrix::from_fn(rows, cols, |i, j| {
        if (i * 3 + j) % 4 == 0 {
            ((i * 7 + j * 13) % 31) as Scalar * 0.031 - 0.45
        } else {
            0.0
        }
    }))
}

/// Times `f` with a geometrically growing iteration count until one
/// batch exceeds `min_secs`, returning seconds per call.
fn time_secs(min_secs: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm caches and the pool
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= min_secs {
            return dt / iters as f64;
        }
        let grow = (min_secs / dt.max(1e-9) * 1.3) as u64;
        iters = iters.saturating_mul(grow.clamp(2, 64)).max(iters + 1);
    }
}

/// One kernel invocation closure per cell, plus its analytic flop/byte
/// counts.
struct Cell {
    kernel: &'static str,
    shape: String,
    flops: f64,
    bytes: f64,
}

fn peak_gflops(tier: &str, threads: usize) -> f64 {
    let per_core = if tier == "scalar" { CPU_FLOPS_PER_CORE } else { CPU_SIMD_FLOPS_PER_CORE };
    per_core * (1.0 + CPU_PAR_EFFICIENCY * (threads.max(1) - 1) as f64) / 1e9
}

fn row_from(cell: &Cell, tier: &str, threads: usize, secs: f64, scalar_seq_secs: f64) -> KernelRow {
    let intensity = cell.flops / cell.bytes;
    KernelRow {
        kernel: cell.kernel.to_string(),
        shape: cell.shape.clone(),
        tier: tier.to_string(),
        threads,
        secs,
        gflops: cell.flops / secs / 1e9,
        gbps: cell.bytes / secs / 1e9,
        intensity,
        model_gflops: peak_gflops(tier, threads).min(intensity * MODEL_PEAK_BW_BYTES / 1e9),
        speedup_vs_scalar_seq: scalar_seq_secs / secs,
    }
}

/// Dense vector lengths: L1-resident and memory-bound.
const VEC_LENS: [usize; 2] = [2048, 262_144];

/// Dense gemv shapes: L1-resident (32 KiB matrix — the acceptance
/// shape), L2-resident (256 KiB), memory-bound (4 MiB).
const GEMV_SHAPES: [(usize, usize); 3] = [(64, 64), (256, 128), (1024, 512)];

/// Sparse shape (~25% density: nnz ~= rows * cols / 4).
const SPMV_SHAPE: (usize, usize) = (512, 256);

/// Runs the full sweep. `min_secs` is the per-cell timing budget (the
/// binary uses 0.02; `check` shrinks it to keep CI fast).
pub fn rows(opts: &KernelBenchOpts, min_secs: f64) -> Vec<KernelRow> {
    let mut out = Vec::new();
    let simd = opts.simd_tier();

    // (tier label, ambient tier) sweeps; blocked is appended separately.
    let tiers = [("scalar", KernelTier::Scalar), ("simd", simd)];

    // Vector kernels.
    for &n in &VEC_LENS {
        let x = vec_data(n, 1);
        let yv = vec_data(n, 2);
        let cells = [
            Cell {
                kernel: "dot",
                shape: format!("n={n}"),
                flops: 2.0 * n as f64,
                bytes: 16.0 * n as f64,
            },
            Cell {
                kernel: "axpy",
                shape: format!("n={n}"),
                flops: 2.0 * n as f64,
                bytes: 24.0 * n as f64,
            },
            Cell {
                kernel: "scale",
                shape: format!("n={n}"),
                flops: n as f64,
                bytes: 16.0 * n as f64,
            },
        ];
        for cell in &cells {
            let mut scalar_seq = f64::NAN;
            for (label, tier) in tiers {
                for threads in THREAD_COUNTS {
                    let be = if threads == 1 { Backend::seq() } else { Backend::par() };
                    let secs = pool::with_threads(threads, || {
                        pool::with_tier(tier, || match cell.kernel {
                            "dot" => time_secs(min_secs, || {
                                std::hint::black_box(be.dot(&x, &yv));
                            }),
                            "axpy" => {
                                let mut y = yv.clone();
                                time_secs(min_secs, || be.axpy(1.0000003, &x, &mut y))
                            }
                            _ => {
                                let mut y = yv.clone();
                                time_secs(min_secs, || be.scale(1.0000007, &mut y))
                            }
                        })
                    });
                    if label == "scalar" && threads == 1 {
                        scalar_seq = secs;
                    }
                    out.push(row_from(cell, label, threads, secs, scalar_seq));
                }
            }
        }
    }

    // Dense gemv / gemv_t.
    for &(r, c) in &GEMV_SHAPES {
        let a = dense(r, c, 3);
        let x = vec_data(c, 4);
        let xt = vec_data(r, 5);
        let fl = 2.0 * (r * c) as f64;
        let by = 8.0 * (r * c + r + c) as f64;
        let gv = Cell { kernel: "gemv", shape: format!("{r}x{c}"), flops: fl, bytes: by };
        let gvt = Cell { kernel: "gemv_t", shape: format!("{r}x{c}"), flops: fl, bytes: by };
        for cell in [&gv, &gvt] {
            let mut scalar_seq = f64::NAN;
            for (label, tier) in tiers {
                for threads in THREAD_COUNTS {
                    let be = if threads == 1 { Backend::seq() } else { Backend::par() };
                    let secs = pool::with_threads(threads, || {
                        pool::with_tier(tier, || {
                            if cell.kernel == "gemv" {
                                let mut y = vec![0.0; r];
                                time_secs(min_secs, || be.gemv(&a, &x, &mut y))
                            } else {
                                let mut y = vec![0.0; c];
                                time_secs(min_secs, || be.gemv_t(&a, &xt, &mut y))
                            }
                        })
                    });
                    if label == "scalar" && threads == 1 {
                        scalar_seq = secs;
                    }
                    out.push(row_from(cell, label, threads, secs, scalar_seq));
                }
            }
        }
        // Cache-blocked SoA layout, single-threaded, SIMD tier.
        let soa = SoaMatrix::from_matrix(&a);
        let cell = Cell { kernel: "gemv_blocked", shape: format!("{r}x{c}"), flops: fl, bytes: by };
        let scalar_seq = out
            .iter()
            .find(|row| {
                row.kernel == "gemv"
                    && row.shape == cell.shape
                    && row.tier == "scalar"
                    && row.threads == 1
            })
            .map(|row| row.secs)
            .unwrap_or(f64::NAN);
        let secs = pool::with_tier(simd, || {
            let mut y = vec![0.0; r];
            time_secs(min_secs, || {
                y.iter_mut().for_each(|v| *v = 0.0);
                soa.gemv(&x, &mut y);
            })
        });
        out.push(row_from(&cell, "blocked", 1, secs, scalar_seq));
    }

    // Sparse spmv and its blocked layout.
    let (sr, sc) = SPMV_SHAPE;
    let s = sparse(sr, sc);
    let x = vec_data(sc, 6);
    let nnz = s.nnz();
    let cell = Cell {
        kernel: "spmv",
        shape: format!("{sr}x{sc}"),
        flops: 2.0 * nnz as f64,
        // 8B value + 4B column index per nonzero, plus x reads and y writes.
        bytes: 12.0 * nnz as f64 + 8.0 * (sr + sc) as f64,
    };
    let mut scalar_seq = f64::NAN;
    for (label, tier) in tiers {
        for threads in THREAD_COUNTS {
            let be = if threads == 1 { Backend::seq() } else { Backend::par() };
            let secs = pool::with_threads(threads, || {
                pool::with_tier(tier, || {
                    let mut y = vec![0.0; sr];
                    time_secs(min_secs, || be.spmv(&s, &x, &mut y))
                })
            });
            if label == "scalar" && threads == 1 {
                scalar_seq = secs;
            }
            out.push(row_from(&cell, label, threads, secs, scalar_seq));
        }
    }
    let blocked = BlockedCsr::from_csr(&s);
    let bcell = Cell { kernel: "spmv_blocked", shape: cell.shape.clone(), ..cell };
    let secs = pool::with_tier(simd, || {
        let mut y = vec![0.0; sr];
        time_secs(min_secs, || blocked.spmv(&x, &mut y))
    });
    out.push(row_from(&bcell, "blocked", 1, secs, scalar_seq));

    out
}

/// Hand-rolled JSON for `BENCH_kernels.json` (no JSON dependency; every
/// float the sweep emits is finite).
pub fn to_json(rows: &[KernelRow], opts: &KernelBenchOpts) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"kernel-roofline\",\n  \"force_portable\": {},\n  \
         \"model\": {{\"scalar_peak_gflops\": {:.3}, \"simd_peak_gflops\": {:.3}, \
         \"bw_gbps\": {:.3}}},\n  \"rows\": [\n",
        opts.force_portable,
        CPU_FLOPS_PER_CORE / 1e9,
        CPU_SIMD_FLOPS_PER_CORE / 1e9,
        MODEL_PEAK_BW_BYTES / 1e9,
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"tier\": \"{}\", \"threads\": {}, \
             \"gflops\": {:.4}, \"gbps\": {:.4}, \"intensity\": {:.4}, \
             \"model_gflops\": {:.4}, \"speedup_vs_scalar_seq\": {:.3}}}{}\n",
            r.kernel,
            r.shape,
            r.tier,
            r.threads,
            r.gflops,
            r.gbps,
            r.intensity,
            r.model_gflops,
            r.speedup_vs_scalar_seq,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable roofline table for stdout.
pub fn render(rows: &[KernelRow]) -> String {
    let mut out = String::from("Kernel roofline sweep: scalar vs SIMD vs blocked\n");
    out.push_str(&format!(
        "{:<13} {:<10} {:<8} {:>3} | {:>9} {:>8} {:>7} {:>9} {:>8}\n",
        "kernel", "shape", "tier", "t", "GFLOP/s", "GB/s", "AI", "model", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:<10} {:<8} {:>3} | {:>9.3} {:>8.2} {:>7.3} {:>9.3} {:>7.2}x\n",
            r.kernel,
            r.shape,
            r.tier,
            r.threads,
            r.gflops,
            r.gbps,
            r.intensity,
            r.model_gflops,
            r.speedup_vs_scalar_seq
        ));
    }
    out
}

/// CI smoke: correctness of the tiers the sweep times, plus a loose
/// perf floor on the acceptance shape.
///
/// * every kernel agrees bitwise across all three tiers on integer
///   data (dispatch can never change results);
/// * two runs under the SIMD tier agree bitwise on fractional data
///   (run-to-run determinism);
/// * blocked layouts agree bitwise with seq on integer data;
/// * unless `force_portable`, SIMD gemv at width 1 on the L1 shape must
///   reach half the committed [`GEMV_SIMD_ACCEPT_SPEEDUP`] — a loose
///   regression bound (the committed JSON records the full measurement).
pub fn check(opts: &KernelBenchOpts) -> Result<(), String> {
    let seq = Backend::seq();

    // Integer data: all tiers bitwise equal.
    let n = 1031; // uneven on purpose
    let xi: Vec<Scalar> = (0..n).map(|i| ((i * 31 + 7) % 23) as Scalar - 11.0).collect();
    let yi: Vec<Scalar> = (0..n).map(|i| ((i * 17 + 3) % 19) as Scalar - 9.0).collect();
    let ai = Matrix::from_fn(37, n, |i, j| ((i * 13 + j * 5) % 17) as Scalar - 8.0);
    let si = CsrMatrix::from_dense(&Matrix::from_fn(37, n, |i, j| {
        if (i + j) % 4 == 0 {
            ((i * 5 + j * 3) % 13) as Scalar - 6.0
        } else {
            0.0
        }
    }));
    let expect_dot = seq.dot(&xi, &yi);
    let mut expect_gemv = vec![0.0; 37];
    seq.gemv(&ai, &xi, &mut expect_gemv);
    let mut expect_spmv = vec![0.0; 37];
    seq.spmv(&si, &xi, &mut expect_spmv);
    for tier in [KernelTier::Simd, KernelTier::SimdPortable] {
        pool::with_tier(tier, || -> Result<(), String> {
            if seq.dot(&xi, &yi).to_bits() != expect_dot.to_bits() {
                return Err(format!("dot diverged from scalar on integer data at {tier:?}"));
            }
            let mut got = vec![0.0; 37];
            seq.gemv(&ai, &xi, &mut got);
            if got != expect_gemv {
                return Err(format!("gemv diverged from scalar on integer data at {tier:?}"));
            }
            let mut got = vec![0.0; 37];
            seq.spmv(&si, &xi, &mut got);
            if got != expect_spmv {
                return Err(format!("spmv diverged from scalar on integer data at {tier:?}"));
            }
            Ok(())
        })?;
    }

    // Blocked layouts: bitwise equal to seq on integer data.
    let soa = SoaMatrix::from_matrix(&ai);
    let mut got = vec![0.0; 37];
    pool::with_tier(opts.simd_tier(), || soa.gemv(&xi, &mut got));
    if got != expect_gemv {
        return Err("SoaMatrix::gemv diverged from seq on integer data".into());
    }
    let blocked = BlockedCsr::from_csr(&si);
    let mut got = vec![0.0; 37];
    pool::with_tier(opts.simd_tier(), || blocked.spmv(&xi, &mut got));
    if got != expect_spmv {
        return Err("BlockedCsr::spmv diverged from seq on integer data".into());
    }

    // Run-to-run bit determinism on fractional data under the SIMD tier.
    let xf = vec_data(n, 1);
    let af = dense(37, n, 2);
    let run = || {
        pool::with_tier(opts.simd_tier(), || {
            let mut y = vec![0.0; 37];
            seq.gemv(&af, &xf, &mut y);
            let d = seq.dot(&xf, &xf);
            (y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), d.to_bits())
        })
    };
    if run() != run() {
        return Err("SIMD tier is not run-to-run deterministic".into());
    }

    // Loose perf floor on the acceptance shape (hardware SIMD only; the
    // portable mirror's speed is the autovectorizer's business).
    if !opts.force_portable {
        let (r, c) = GEMV_SHAPES[0];
        let a = dense(r, c, 3);
        let x = vec_data(c, 4);
        let mut y = vec![0.0; r];
        let scalar =
            pool::with_tier(KernelTier::Scalar, || time_secs(0.01, || seq.gemv(&a, &x, &mut y)));
        let simd =
            pool::with_tier(KernelTier::Simd, || time_secs(0.01, || seq.gemv(&a, &x, &mut y)));
        let speedup = scalar / simd;
        let floor = GEMV_SIMD_ACCEPT_SPEEDUP * 0.5;
        if speedup < floor {
            return Err(format!(
                "SIMD gemv speedup {speedup:.2}x on {r}x{c} is below the {floor:.2}x check \
                 floor (committed acceptance is {GEMV_SIMD_ACCEPT_SPEEDUP:.1}x)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_in_both_legs() {
        check(&KernelBenchOpts { force_portable: false }).expect("hardware leg");
        check(&KernelBenchOpts { force_portable: true }).expect("portable leg");
    }

    #[test]
    fn sweep_produces_a_full_grid_and_valid_json() {
        let opts = KernelBenchOpts::default();
        let rows = rows(&opts, 1e-4);
        // 3 vector kernels x 2 lens x 2 tiers x 4 widths
        //   + 2 dense kernels x 3 shapes x 2 tiers x 4 widths + 3 blocked
        //   + spmv 2 tiers x 4 widths + 1 blocked.
        assert_eq!(rows.len(), 48 + 48 + 3 + 8 + 1);
        for r in &rows {
            assert!(r.secs > 0.0 && r.gflops.is_finite() && r.gbps.is_finite(), "{r:?}");
            assert!(r.model_gflops > 0.0 && r.intensity > 0.0, "{r:?}");
            assert!(r.speedup_vs_scalar_seq.is_finite(), "{r:?}");
        }
        let json = to_json(&rows, &opts);
        assert!(json.contains("\"kernel-roofline\""));
        assert_eq!(json.matches("\"kernel\"").count(), rows.len());
        let table = render(&rows);
        assert!(table.contains("GFLOP/s"));
    }
}
