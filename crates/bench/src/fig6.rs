//! Fig. 6 — MLP speedup on real-sim as the architecture grows.
//!
//! The paper's anomaly: for the small Table I nets the parallel CPU only
//! reaches ~2X over sequential because ViennaCL never parallelizes matrix
//! products with small result matrices (the weight-gradient GEMMs). As the
//! net grows, more of the products cross the threshold and the speedup
//! climbs toward (but never reaches) the thread count, while the
//! GPU-over-parallel-CPU speedup stays roughly flat.

use sgd_core::{DeviceKind, Engine, Strategy};
use sgd_datagen::DatasetProfile;
use sgd_models::MlpTask;

use crate::cli::ExperimentConfig;
use crate::prep::Prepared;
use crate::render::ratio;

/// The architecture sweep: the paper's real-sim net plus progressively
/// wider variants.
pub fn architectures() -> Vec<Vec<usize>> {
    vec![
        vec![50, 10, 5, 2],
        vec![50, 50, 25, 2],
        vec![50, 200, 100, 2],
        vec![50, 500, 250, 2],
        vec![50, 1000, 500, 2],
    ]
}

/// One point of Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Point {
    /// Architecture string (x axis).
    pub arch: String,
    /// Time per epoch in ms for `[gpu, cpu-seq, cpu-par]`.
    pub tpi_ms: [f64; 3],
    /// cpu-seq / cpu-par hardware-efficiency speedup.
    pub speedup_par_over_seq: f64,
    /// cpu-par / gpu hardware-efficiency speedup.
    pub speedup_gpu_over_par: f64,
}

/// Measures the sweep (hardware efficiency only: a few epochs per
/// configuration, no convergence target).
pub fn points(cfg: &ExperimentConfig) -> Vec<Fig6Point> {
    let p = Prepared::new(&DatasetProfile::real_sim(), cfg);
    let mut opts = cfg.run_options();
    opts.max_epochs = 4;
    opts.target_loss = None;
    let batch = p.mlp_batch();
    let alpha = 0.1;

    architectures()
        .into_iter()
        .map(|arch| {
            let task = MlpTask::new(arch, cfg.seed);
            let run = |device: DeviceKind| {
                let corner = cfg.configuration(device, Strategy::Sync);
                Engine::run(&corner, &task, &batch, alpha, &opts)
            };
            let gpu = run(DeviceKind::Gpu);
            let seq = run(DeviceKind::CpuSeq);
            let par = run(DeviceKind::CpuPar);
            let tpi = [gpu.time_per_epoch(), seq.time_per_epoch(), par.time_per_epoch()];
            Fig6Point {
                arch: task.arch_string(),
                tpi_ms: tpi.map(|t| t * 1e3),
                speedup_par_over_seq: ratio(tpi[1], tpi[2]),
                speedup_gpu_over_par: ratio(tpi[2], tpi[0]),
            }
        })
        .collect()
}

/// Formats the figure as a table of series.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Fig. 6: speedup on real-sim for different MLP architectures\n");
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} | {:>12} {:>12}\n",
        "architecture", "tpi-gpu(ms)", "tpi-seq(ms)", "tpi-par(ms)", "par/seq", "gpu/par"
    ));
    for pt in points(cfg) {
        out.push_str(&format!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3} | {:>12.2} {:>12.2}\n",
            pt.arch,
            pt.tpi_ms[0],
            pt.tpi_ms[1],
            pt.tpi_ms[2],
            pt.speedup_par_over_seq,
            pt.speedup_gpu_over_par
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_growing_architectures() {
        let archs = architectures();
        assert!(archs.len() >= 4);
        let sizes: Vec<usize> = archs.iter().map(|a| a.iter().product()).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "strictly growing {sizes:?}");
        assert_eq!(archs[0], vec![50, 10, 5, 2], "first point is the paper's net");
    }

    #[test]
    fn smoke_points() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.scale = 0.002;
        let pts = points(&cfg);
        assert_eq!(pts.len(), architectures().len());
        assert!(pts.iter().all(|p| p.tpi_ms.iter().all(|&t| t > 0.0)));
    }
}
