//! Table III — asynchronous SGD across devices.

use sgd_core::{reference_optimum, DeviceKind, Engine, RunReport, Strategy};
use sgd_models::{Batch, LinearLoss, LinearTask, Task};

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};
use crate::render::{fmt_opt_secs, mark_diverged, ratio};

/// The paper fixes the Hogbatch mini-batch size to 512 for all datasets.
pub const HOGBATCH_SIZE: usize = 512;

/// One (task, dataset) block of Table III. Device order: `[gpu, cpu-seq,
/// cpu-par]`.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Task name.
    pub task: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Reference optimal loss.
    pub optimum: f64,
    /// Time to 1 % convergence (seconds; `None` = ∞).
    pub ttc: [Option<f64>; 3],
    /// Time per epoch in milliseconds.
    pub tpi_ms: [f64; 3],
    /// Epochs to 1 % convergence per device (statistical efficiency now
    /// differs across devices).
    pub epochs: [Option<usize>; 3],
    /// Hardware-efficiency speedup of parallel over sequential CPU.
    pub speedup_seq_over_par: f64,
    /// Hardware-efficiency speedup of GPU over parallel CPU.
    pub speedup_gpu_over_par: f64,
    /// Intra-warp update conflicts recorded by the GPU kernel.
    pub gpu_conflicts: Option<u64>,
    /// Per-device divergence flags (`[gpu, cpu-seq, cpu-par]`); diverged
    /// cells are marked in the rendered table. `grid_search` retries
    /// diverged cells at halved step sizes, so a flag here means even the
    /// rescue pass blew up.
    pub diverged: [bool; 3],
}

fn build_row(
    task: &'static str,
    dataset: &str,
    optimum: f64,
    gpu: RunReport,
    seq: RunReport,
    par: RunReport,
) -> Table3Row {
    let s = |r: &RunReport| {
        let summary = r.summarize(optimum);
        (summary.time_to_1pct(), summary.epochs_to_1pct())
    };
    let (g, sq, pr) = (s(&gpu), s(&seq), s(&par));
    let tpi = [gpu.time_per_epoch(), seq.time_per_epoch(), par.time_per_epoch()];
    Table3Row {
        task,
        dataset: dataset.to_string(),
        optimum,
        ttc: [g.0, sq.0, pr.0],
        tpi_ms: tpi.map(|t| t * 1e3),
        epochs: [g.1, sq.1, pr.1],
        speedup_seq_over_par: ratio(tpi[1], tpi[2]),
        speedup_gpu_over_par: ratio(tpi[0], tpi[2]),
        gpu_conflicts: gpu.update_conflicts(),
        diverged: [gpu.diverged(), seq.diverged(), par.diverged()],
    }
}

/// Asynchronous cell for a linear task: Hogwild on one CPU thread, all CPU
/// threads, and the GPU warp-Hogwild kernel; the step size is gridded per
/// device (asynchronous statistical efficiency is device dependent).
pub fn async_linear_cell<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    dataset: &str,
    cfg: &ExperimentConfig,
) -> Table3Row {
    let optimum = reference_optimum(task, batch, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);

    let search = |device: DeviceKind| {
        let corner = cfg.configuration(device, Strategy::Hogwild);
        Engine::grid_search(&corner, task, batch, optimum, &cfg.grid, &opts)
    };
    let seq = search(DeviceKind::CpuSeq);
    let par = search(DeviceKind::CpuPar);
    let gpu = search(DeviceKind::Gpu);
    build_row(task.name(), dataset, optimum, gpu, seq, par)
}

/// Asynchronous cell for the MLP: Hogbatch with batch size 512 on one CPU
/// thread, all CPU threads, and the GPU (sequential kernel streams).
pub fn async_mlp_cell(p: &Prepared, cfg: &ExperimentConfig) -> Table3Row {
    let boost = cfg.mlp_epoch_boost.max(1);
    let mut cfg = cfg.clone();
    cfg.max_epochs = cfg.max_epochs.saturating_mul(boost);
    cfg.optimum_epochs = cfg.optimum_epochs.saturating_mul((boost / 2).max(1));
    cfg.max_secs *= boost as f64;
    let cfg = &cfg;
    let task = p.mlp_task(cfg.seed);
    let full = p.mlp_batch();

    let optimum = reference_optimum(&task, &full, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);

    let search = |device: DeviceKind| {
        let corner = cfg.configuration(device, Strategy::Hogbatch { batch_size: HOGBATCH_SIZE });
        Engine::grid_search(&corner, &task, &full, optimum, &cfg.grid, &opts)
    };
    let seq = search(DeviceKind::CpuSeq);
    let par = search(DeviceKind::CpuPar);
    let gpu = search(DeviceKind::Gpu);
    build_row("MLP", p.name(), optimum, gpu, seq, par)
}

/// All Table III rows.
pub fn rows(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        out.push(async_linear_cell(&sgd_models::lr(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(async_linear_cell(&sgd_models::svm(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(async_mlp_cell(&p, cfg));
    }
    out
}

/// Formats the rows like the paper's Table III.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Table III: asynchronous SGD performance to 1% convergence error\n");
    out.push_str(&format!(
        "{:<4} {:<9} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>6} {:>6} {:>6} | {:>8} {:>8} | {:>10}\n",
        "task", "dataset", "ttc-gpu", "ttc-seq", "ttc-par", "tpi-gpu", "tpi-seq", "tpi-par",
        "e-gpu", "e-seq", "e-par", "seq/par", "gpu/par", "conflicts"
    ));
    for r in rows(cfg) {
        let fe = |e: Option<usize>| e.map_or("∞".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "{:<4} {:<9} | {:>10} {:>10} {:>10} | {:>10.3} {:>10.3} {:>10.3} | {:>6} {:>6} {:>6} | {:>8.2} {:>8.2} | {:>10}\n",
            r.task,
            r.dataset,
            mark_diverged(fmt_opt_secs(r.ttc[0]), r.diverged[0]),
            mark_diverged(fmt_opt_secs(r.ttc[1]), r.diverged[1]),
            mark_diverged(fmt_opt_secs(r.ttc[2]), r.diverged[2]),
            r.tpi_ms[0],
            r.tpi_ms[1],
            r.tpi_ms[2],
            fe(r.epochs[0]),
            fe(r.epochs[1]),
            fe(r.epochs[2]),
            r.speedup_seq_over_par,
            r.speedup_gpu_over_par,
            r.gpu_conflicts.map_or("-".to_string(), |c| c.to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_models::lr;

    #[test]
    fn smoke_linear_cell() {
        let cfg = ExperimentConfig::smoke();
        let p = &prepare_all(&cfg)[0];
        let row = async_linear_cell(&lr(p.ds.d()), &p.linear_batch(), p.name(), &cfg);
        assert_eq!(row.task, "LR");
        assert!(row.tpi_ms.iter().all(|&t| t > 0.0));
        assert!(row.gpu_conflicts.is_some());
    }

    #[test]
    fn smoke_mlp_cell() {
        let cfg = ExperimentConfig::smoke();
        let p = &prepare_all(&cfg)[0];
        let row = async_mlp_cell(p, &cfg);
        assert_eq!(row.task, "MLP");
        assert!(row.tpi_ms.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn render_smoke() {
        let out = render(&ExperimentConfig::smoke());
        assert!(out.contains("asynchronous"));
        assert!(out.contains("w8a"));
    }
}
