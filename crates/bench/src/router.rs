//! Router bench: cost-model backend routing vs every fixed backend.
//!
//! PR 6's tentpole gives the serving batcher a per-batch router: the
//! shared [`sgd_core::CostModel`] estimates each candidate backend's
//! service time for the assembled batch's workload and dispatches to
//! the argmin. This sweep measures what that buys on a *mixed*
//! workload — a sparse dataset (w8a-style CSR rows, where kernel-launch
//! overhead dwarfs the arithmetic and the CPU wins) next to the paper's
//! dense profile (covtype, where a large enough micro-batch amortizes
//! the launch and the simulated GPU wins) — against the three fixed
//! backends on identical arrival traces. No single fixed backend wins
//! every (dataset × batch-size) cell; the router should match the
//! per-cell winner everywhere and beat the best *single* fixed backend
//! somewhere. `check` pins exactly that, plus bit-determinism, and runs
//! in CI as part of `serve --check`.

use sgd_serve::{
    open_loop_arrivals, run_open_loop, BatchPolicy, ServeBackend, ServeTiming, Server,
};

use crate::cli::ExperimentConfig;
use crate::prep::prepare_all;
use crate::serve::{probe_service_secs, request_pool, train_published_model};

/// Micro-batcher sizes swept. 256 is the cell where the dense GPU win
/// shows up: at the modeled rates a 256-row gemv amortizes the K80's
/// kernel-launch overhead past the CPU's dispatch-plus-compute cost.
pub const BATCH_SIZES: [usize; 3] = [1, 16, 256];

/// Requests per serving run.
pub const REQUESTS: usize = 512;

/// Flush deadline for partial batches, seconds. Longer than the serve
/// sweep's so the 256-deep cell actually fills at the offered load.
pub const MAX_WAIT_SECS: f64 = 1.0e-3;

/// Worker width for the fixed cpu-par contender and the router's
/// cpu-par candidate.
pub const PAR_THREADS: usize = 4;

/// The router's candidate set: every fixed backend.
pub fn candidates() -> [ServeBackend; 3] {
    ServeBackend::fixed_set(PAR_THREADS)
}

/// One contender in the sweep: a fixed backend, or the cost-model
/// router choosing among all of them per batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contender {
    /// Always dispatch to this backend.
    Fixed(ServeBackend),
    /// Pick the cost-model argmin per assembled batch.
    Routed,
}

impl Contender {
    /// Column label.
    pub fn label(&self) -> String {
        match self {
            Contender::Fixed(b) => b.label(),
            Contender::Routed => "router".to_string(),
        }
    }

    /// A fresh server for this contender.
    pub fn server(&self) -> Server {
        match self {
            Contender::Fixed(b) => Server::new(*b, ServeTiming::Modeled),
            Contender::Routed => Server::routed(candidates().to_vec(), ServeTiming::Modeled),
        }
    }
}

/// The four contenders, fixed backends first.
pub fn contenders() -> [Contender; 4] {
    let [seq, par, gpu] = candidates();
    [Contender::Fixed(seq), Contender::Fixed(par), Contender::Fixed(gpu), Contender::Routed]
}

/// One (dataset, contender, batch-size) cell.
#[derive(Clone, Debug)]
pub struct RouterRow {
    /// Dataset name.
    pub dataset: String,
    /// Contender label (`cpu-seq`, `cpu-par4`, `gpu-sim`, `router`).
    pub contender: String,
    /// Micro-batcher max batch size (1 = unbatched).
    pub batch: usize,
    /// Requests served.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Offered load, requests/second (shared by every contender in the
    /// dataset × batch cell).
    pub rate_rps: f64,
    /// Mean latency, milliseconds — the metric the CI gate compares.
    pub mean_ms: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Batches this contender dispatched to each backend, in
    /// `candidates()` order. A fixed contender's count is all in one
    /// slot; the router's split is the routing decision record.
    pub dispatched: [usize; 3],
}

/// Runs one cell and tallies the per-backend dispatch counts.
fn router_cell(
    contender: Contender,
    model: &sgd_serve::ServableModel,
    pool: &sgd_serve::RequestPool,
    batch: usize,
    arrivals: &[f64],
    rate: f64,
    dataset: &str,
) -> RouterRow {
    let mut srv = contender.server();
    let policy = BatchPolicy::new(batch, MAX_WAIT_SECS);
    let o = run_open_loop(&mut srv, model, pool, &policy, arrivals);
    let mut dispatched = [0usize; 3];
    for label in &o.batch_backends {
        if let Some(i) = candidates().iter().position(|b| &b.label() == label) {
            dispatched[i] += 1;
        }
    }
    RouterRow {
        dataset: dataset.to_string(),
        contender: contender.label(),
        batch,
        requests: o.summary.n,
        batches: o.batches,
        rate_rps: rate,
        mean_ms: o.summary.mean * 1e3,
        p50_ms: o.summary.p50 * 1e3,
        p99_ms: o.summary.p99 * 1e3,
        throughput_rps: o.summary.throughput,
        dispatched,
    }
}

/// Runs the sweep. Unlike the serve sweep (which re-anchors the offered
/// load per backend), every contender in a cell replays the *same*
/// arrival trace, anchored at twice the cpu-seq unbatched capacity —
/// latencies are directly comparable, which is what routing is about.
pub fn rows(cfg: &ExperimentConfig) -> Vec<RouterRow> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        let model = train_published_model(cfg, &p);
        let pool = request_pool(&p);
        let probe = probe_service_secs(ServeBackend::CpuSeq, &model, &pool);
        let rate = 2.0 / probe;
        let arrivals = open_loop_arrivals(rate, REQUESTS, cfg.seed);
        for batch in BATCH_SIZES {
            for c in contenders() {
                out.push(router_cell(c, &model, &pool, batch, &arrivals, rate, p.name()));
            }
        }
    }
    out
}

/// Hand-rolled JSON for `BENCH_router.json`.
pub fn to_json(rows: &[RouterRow]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"serve-router\",\n  \"unit\": \"ms latency / requests per second\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"contender\": \"{}\", \"batch\": {}, \
             \"requests\": {}, \"batches\": {}, \"rate_rps\": {:.1}, \"mean_ms\": {:.6}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"throughput_rps\": {:.1}, \
             \"dispatched\": {{\"cpu-seq\": {}, \"cpu-par{}\": {}, \"gpu-sim\": {}}}}}{}\n",
            r.dataset,
            r.contender,
            r.batch,
            r.requests,
            r.batches,
            r.rate_rps,
            r.mean_ms,
            r.p50_ms,
            r.p99_ms,
            r.throughput_rps,
            r.dispatched[0],
            PAR_THREADS,
            r.dispatched[1],
            r.dispatched[2],
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable table for stdout.
pub fn render(rows: &[RouterRow]) -> String {
    let mut out = String::from(
        "Router sweep: cost-model routing vs fixed backends, shared arrival traces (LR)\n",
    );
    out.push_str(&format!(
        "{:<9} {:<9} {:>5} {:>8} | {:>10} {:>10} {:>10} {:>12} | {:>17}\n",
        "dataset",
        "contender",
        "batch",
        "batches",
        "mean-ms",
        "p50-ms",
        "p99-ms",
        "rps",
        "seq/par/gpu"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<9} {:>5} {:>8} | {:>10.4} {:>10.4} {:>10.4} {:>12.1} | {:>5}/{:>5}/{:>5}\n",
            r.dataset,
            r.contender,
            r.batch,
            r.batches,
            r.mean_ms,
            r.p50_ms,
            r.p99_ms,
            r.throughput_rps,
            r.dispatched[0],
            r.dispatched[1],
            r.dispatched[2],
        ));
    }
    out
}

/// The rows of one (dataset, batch) cell, fixed contenders and router.
fn cell<'a>(rows: &'a [RouterRow], dataset: &str, batch: usize) -> Vec<&'a RouterRow> {
    rows.iter().filter(|r| r.dataset == dataset && r.batch == batch).collect()
}

/// CI gate for the router (run from `serve --check` and the router
/// bin's `--check`). On a mixed sparse + dense workload, asserts:
/// 1. the sweep is bit-deterministic across runs, routing decisions
///    included;
/// 2. the router never loses more than 5% mean latency to the best
///    fixed backend in *any* cell;
/// 3. the router strictly beats the best *single* fixed backend (the
///    one with the lowest total mean across the whole workload) in at
///    least one cell — i.e. no fixed choice dominates routing.
pub fn check(cfg: &ExperimentConfig) -> Result<(), String> {
    // The mixed workload: one CSR profile (launch-dominated, CPU wins)
    // plus the paper's dense profile (amortizable, GPU wins at depth).
    let mut cfg = cfg.clone();
    cfg.datasets = vec!["w8a".into(), "covtype".into()];

    // (1) Determinism, routing decisions included.
    let a = rows(&cfg);
    let b = rows(&cfg);
    if a.len() != b.len() {
        return Err(format!("sweep size diverged across runs ({} vs {})", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(&b) {
        let same = x.mean_ms.to_bits() == y.mean_ms.to_bits()
            && x.p99_ms.to_bits() == y.p99_ms.to_bits()
            && x.throughput_rps.to_bits() == y.throughput_rps.to_bits()
            && x.batches == y.batches
            && x.dispatched == y.dispatched;
        if !same {
            return Err(format!(
                "{} {} batch={} not bit-deterministic across runs (routing or latency diverged)",
                x.dataset, x.contender, x.batch
            ));
        }
    }

    // (2) Per cell: router within 5% of the best fixed backend.
    let datasets: Vec<String> = cfg.datasets.clone();
    for ds in &datasets {
        for batch in BATCH_SIZES {
            let rows = cell(&a, ds, batch);
            let Some(router) = rows.iter().find(|r| r.contender == "router") else {
                return Err(format!("missing router row for {ds} batch={batch}"));
            };
            let best_fixed = rows
                .iter()
                .filter(|r| r.contender != "router")
                .map(|r| r.mean_ms)
                .fold(f64::INFINITY, f64::min);
            if router.mean_ms > best_fixed * 1.05 {
                return Err(format!(
                    "{ds} batch={batch}: router mean {:.4}ms loses >5% to best fixed {:.4}ms",
                    router.mean_ms, best_fixed
                ));
            }
        }
    }

    // (3) No single fixed backend dominates the router.
    let mut best_single: Option<(String, f64)> = None;
    for c in contenders() {
        let label = c.label();
        if label == "router" {
            continue;
        }
        let total: f64 = a.iter().filter(|r| r.contender == label).map(|r| r.mean_ms).sum();
        let better = match &best_single {
            Some((_, t)) => total < *t,
            None => true,
        };
        if better {
            best_single = Some((label, total));
        }
    }
    let Some((best_label, _)) = best_single else {
        return Err("no fixed contenders in the sweep".to_string());
    };
    let beats = datasets.iter().any(|ds| {
        BATCH_SIZES.iter().any(|&batch| {
            let rows = cell(&a, ds, batch);
            let router = rows.iter().find(|r| r.contender == "router");
            let fixed = rows.iter().find(|r| r.contender == best_label);
            match (router, fixed) {
                (Some(r), Some(f)) => r.mean_ms < f.mean_ms,
                _ => false,
            }
        })
    });
    if !beats {
        return Err(format!(
            "router never strictly beat the best single fixed backend ({best_label}) in any cell"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_on_the_smoke_config() {
        check(&ExperimentConfig::smoke()).expect("router check must pass");
    }

    #[test]
    fn sweep_produces_a_full_grid_and_valid_json() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.datasets = vec!["covtype".into()];
        let rows = rows(&cfg);
        assert_eq!(rows.len(), BATCH_SIZES.len() * contenders().len(), "one dataset, full grid");
        for r in &rows {
            assert_eq!(r.requests, REQUESTS);
            assert_eq!(r.dispatched.iter().sum::<usize>(), r.batches, "every batch tallied");
            assert!(r.mean_ms.is_finite() && r.p99_ms.is_finite());
            assert!(r.throughput_rps > 0.0);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"serve-router\""));
        assert_eq!(json.matches("\"contender\"").count(), rows.len());
        let table = render(&rows);
        assert!(table.contains("seq/par/gpu"));
    }

    #[test]
    fn router_splits_the_dense_workload_across_backends() {
        // The routing story in one assertion: on the dense profile the
        // router sends shallow batches to a CPU backend and deep ones to
        // the simulated GPU.
        let mut cfg = ExperimentConfig::smoke();
        cfg.datasets = vec!["covtype".into()];
        let all = rows(&cfg);
        let shallow = all
            .iter()
            .find(|r| r.contender == "router" && r.batch == 1)
            .expect("router row at batch 1");
        assert_eq!(shallow.dispatched[2], 0, "unbatched dense requests stay off the GPU");
        let deep = all
            .iter()
            .find(|r| r.contender == "router" && r.batch == 256)
            .expect("router row at batch 256");
        assert!(
            deep.dispatched[2] > 0,
            "deep dense batches should route to the GPU: {:?}",
            deep.dispatched
        );
    }
}
