//! Ablations of the design choices DESIGN.md calls out.

use sgd_core::{
    Configuration, DeviceKind, Engine, GpuAsyncOptions, Replication, RunOptions, Strategy, Timing,
};
use sgd_datagen::{generate, DatasetProfile, GenOptions};
use sgd_gpusim::{kernels, DeviceSpec, GpuDevice};
use sgd_models::{lr, Batch, Examples, MlpTask};

use crate::cli::ExperimentConfig;
use crate::prep::Prepared;

/// DimmWitted model-replication strategies: statistical efficiency of each
/// on a sparse dataset (epochs are the meaningful axis; wall time depends
/// on the host).
pub fn replication_sweep(cfg: &ExperimentConfig) -> String {
    let ds = generate(&DatasetProfile::w8a().scaled(cfg.scale), &GenOptions::default());
    let batch = Batch::new(Examples::Sparse(&ds.x), &ds.y);
    let task = lr(ds.d());
    let opts = RunOptions { max_epochs: 60, threads: 4, ..cfg.run_options() };
    let mut out = String::from("Replication strategies (Hogwild, w8a, 4 threads):\n");
    for repl in [Replication::PerMachine, Replication::PerNode { nodes: 2 }, Replication::PerCore] {
        let corner = Configuration::new(
            DeviceKind::CpuPar,
            Strategy::ReplicatedHogwild { replication: repl },
        );
        let rep = Engine::run(&corner, &task, &batch, 0.5, &opts);
        out.push_str(&format!(
            "  {:<14} best loss {:.4} after {} epochs\n",
            repl.label(),
            rep.best_loss(),
            rep.trace.epochs()
        ));
    }
    out
}

/// GPU warp-conflict resolution: last-write-wins races versus atomic adds.
pub fn gpu_conflict_resolution(cfg: &ExperimentConfig) -> String {
    let ds = generate(&DatasetProfile::covtype().scaled(cfg.scale), &GenOptions::default());
    let dense = ds.x.to_dense();
    let batch = Batch::new(Examples::Dense(&dense), &ds.y);
    let task = lr(ds.d());
    let opts = RunOptions { max_epochs: 10, ..cfg.run_options() };
    let mut out = String::from("GPU warp-Hogwild conflict resolution (covtype, dense):\n");
    for (name, atomic) in [("last-write-wins", false), ("atomic adds", true)] {
        let gopts = GpuAsyncOptions { atomic_updates: atomic, ..Default::default() };
        let corner = Configuration::new(DeviceKind::Gpu, Strategy::Hogwild).with_gpu_async(gopts);
        let rep = Engine::run(&corner, &task, &batch, 0.1, &opts);
        out.push_str(&format!(
            "  {:<16} best loss {:.4}, {} conflicting updates, {:.3} ms/epoch\n",
            name,
            rep.best_loss(),
            rep.update_conflicts().unwrap_or(0),
            rep.time_per_epoch() * 1e3
        ));
    }
    out
}

/// Sparse kernel layout: warp-per-row versus thread-per-row under the
/// paper's nnz-variance regimes.
pub fn spmv_layouts(cfg: &ExperimentConfig) -> String {
    let mut out = String::from("GPU spmv layout (simulated ms per pass, SIMD efficiency):\n");
    for profile in [DatasetProfile::w8a(), DatasetProfile::real_sim(), DatasetProfile::news()] {
        let ds = generate(&profile.scaled(cfg.scale), &GenOptions::default());
        let x = vec![0.5; ds.d()];
        let mut y = vec![0.0; ds.n()];
        let mut row = format!("  {:<9}", ds.name);
        for thread_per_row in [false, true] {
            let mut dev = GpuDevice::new(DeviceSpec::tesla_k80().scaled(cfg.scale));
            if thread_per_row {
                kernels::spmv_thread_per_row(&mut dev, &ds.x, &x, &mut y);
            } else {
                kernels::spmv_warp_per_row(&mut dev, &ds.x, &x, &mut y);
            }
            row.push_str(&format!(
                "  {}={:.4}ms (simd {:.0}%)",
                if thread_per_row { "thread/row" } else { "warp/row" },
                dev.elapsed_secs() * 1e3,
                dev.stats().simd_efficiency() * 100.0
            ));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// The ViennaCL GEMM threshold: modeled parallel-CPU MLP epoch time with
/// and without it (the Fig. 6 mechanism in isolation).
pub fn gemm_threshold(cfg: &ExperimentConfig) -> String {
    let p = Prepared::new(&DatasetProfile::real_sim(), cfg);
    let batch = p.mlp_batch();
    let task = MlpTask::new(vec![50, 10, 5, 2], cfg.seed);
    let opts = RunOptions { max_epochs: 2, ..cfg.run_options() };
    let modeled = |mc: sgd_core::CpuModelConfig| {
        let corner =
            Configuration::new(DeviceKind::CpuPar, Strategy::Sync).with_timing(Timing::Modeled(mc));
        Engine::run(&corner, &task, &batch, 0.1, &opts)
    };
    let with = modeled(cfg.mc_par());
    let mut mc = cfg.mc_par();
    mc.gemm_parallel_threshold = 0;
    let without = modeled(mc);
    format!(
        "ViennaCL GEMM threshold (real-sim MLP, modeled 56-thread epoch):\n  \
         with threshold    {:.4} ms\n  without threshold {:.4} ms\n",
        with.time_per_epoch() * 1e3,
        without.time_per_epoch() * 1e3
    )
}

/// GPU L2 capacity sensitivity of the sparse gather path.
pub fn l2_sensitivity(cfg: &ExperimentConfig) -> String {
    let ds = generate(&DatasetProfile::rcv1().scaled(cfg.scale), &GenOptions::default());
    let x = vec![0.5; ds.d()];
    let mut y = vec![0.0; ds.n()];
    let mut out = String::from("GPU L2 capacity sensitivity (rcv1 spmv, simulated ms):\n");
    for kb in [96usize, 384, 1536, 6144] {
        let mut spec = DeviceSpec::tesla_k80().scaled(cfg.scale);
        spec.l2_bytes = kb * 1024;
        let mut dev = GpuDevice::new(spec);
        // Warm pass then measured pass.
        kernels::spmv_warp_per_row(&mut dev, &ds.x, &x, &mut y);
        let t0 = dev.elapsed_secs();
        kernels::spmv_warp_per_row(&mut dev, &ds.x, &x, &mut y);
        out.push_str(&format!(
            "  L2 {kb:>5} KB: {:.4} ms (hit ratio {:.0}%)\n",
            (dev.elapsed_secs() - t0) * 1e3,
            dev.stats().l2_hit_ratio() * 100.0
        ));
    }
    out
}

/// All ablations.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::from("Ablations (see DESIGN.md)\n\n");
    out.push_str(&replication_sweep(cfg));
    out.push('\n');
    out.push_str(&gpu_conflict_resolution(cfg));
    out.push('\n');
    out.push_str(&spmv_layouts(cfg));
    out.push('\n');
    out.push_str(&gemm_threshold(cfg));
    out.push('\n');
    out.push_str(&l2_sensitivity(cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_sections_run_at_smoke_scale() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.scale = 0.003;
        let out = render(&cfg);
        assert!(out.contains("Replication strategies"));
        assert!(out.contains("last-write-wins"));
        assert!(out.contains("warp/row"));
        assert!(out.contains("ViennaCL GEMM threshold"));
        assert!(out.contains("L2 capacity"));
    }

    #[test]
    fn larger_l2_never_hurts_the_gather_path() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.scale = 0.002;
        let ds = generate(&DatasetProfile::rcv1().scaled(cfg.scale), &GenOptions::default());
        let x = vec![0.5; ds.d()];
        let mut y = vec![0.0; ds.n()];
        let mut times = Vec::new();
        for kb in [96usize, 1536] {
            let mut spec = DeviceSpec::tesla_k80();
            spec.l2_bytes = kb * 1024;
            let mut dev = GpuDevice::new(spec);
            kernels::spmv_warp_per_row(&mut dev, &ds.x, &x, &mut y);
            let t0 = dev.elapsed_secs();
            kernels::spmv_warp_per_row(&mut dev, &ds.x, &x, &mut y);
            times.push(dev.elapsed_secs() - t0);
        }
        assert!(times[1] <= times[0] * 1.001, "{times:?}");
    }
}
