//! Small formatting helpers shared by the table and figure renderers.

/// Speedup ratio `num / den`; `NaN` when the denominator is not positive,
/// so an unmeasurable cell renders as `NaN` instead of `inf`.
pub(crate) fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::NAN
    }
}

/// Seconds-to-convergence cell: `∞` for runs that never reached the
/// threshold (the paper's notation).
pub(crate) fn fmt_opt_secs(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.4}"),
        None => "∞".into(),
    }
}

/// Marks a cell whose run diverged: the value is kept for forensics but
/// flagged so a blown-up run can never masquerade as a fast one.
pub(crate) fn mark_diverged(cell: String, diverged: bool) -> String {
    if diverged {
        format!("{cell}†div")
    } else {
        cell
    }
}

#[cfg(test)]
mod render_fault_tests {
    use super::*;

    #[test]
    fn diverged_cells_are_marked() {
        assert_eq!(mark_diverged("1.0".into(), false), "1.0");
        assert_eq!(mark_diverged("1.0".into(), true), "1.0†div");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_denominator() {
        assert!(ratio(1.0, 0.0).is_nan());
        assert!(ratio(1.0, -2.0).is_nan());
        assert!((ratio(4.0, 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_opt_secs_uses_infinity_sign() {
        assert_eq!(fmt_opt_secs(None), "∞");
        assert_eq!(fmt_opt_secs(Some(1.25)), "1.2500");
    }
}
