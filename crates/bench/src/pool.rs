//! Pool-dispatch microbench — persistent worker pool vs fork-join.
//!
//! Not a paper figure: this experiment justifies the persistent worker
//! pool in `sgd_linalg::pool` by measuring synchronous-SGD wall-clock
//! time per epoch under both dispatch modes across thread counts, on the
//! paper's dense profile (covtype) and its widest sparse one (rcv1).
//! Fork-join pays a thread spawn per kernel invocation; the pool parks
//! its workers once and hands chunks over a condvar, so the gap is pure
//! dispatch overhead. Both modes split work into identical chunks, so
//! their loss trajectories are bit-equal — `check` pins exactly that and
//! runs in CI as a smoke test.

use sgd_core::{Configuration, DeviceKind, Engine, RunOptions, Strategy, Timing};
use sgd_linalg::pool::{with_dispatch, Dispatch};

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};

/// Thread counts swept per profile (the paper varies CPU threads the
/// same way; 8 is the acceptance point for pool <= fork-join).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (profile, thread-count) comparison cell.
#[derive(Clone, Debug)]
pub struct PoolRow {
    /// Dataset name.
    pub dataset: String,
    /// Requested kernel width.
    pub threads: usize,
    /// Epochs both runs completed.
    pub epochs: usize,
    /// Wall-clock time per epoch under fork-join dispatch, milliseconds.
    pub forkjoin_tpe_ms: f64,
    /// Wall-clock time per epoch on the persistent pool, milliseconds.
    pub pool_tpe_ms: f64,
    /// Fork-join time over pool time (>1 means the pool wins).
    pub speedup: f64,
}

fn bench_options(cfg: &ExperimentConfig, threads: usize) -> RunOptions {
    RunOptions {
        threads,
        // Fixed epoch budget: no target, no plateau, so both dispatch
        // modes time exactly the same amount of arithmetic.
        target_loss: None,
        plateau: None,
        ..cfg.run_options()
    }
}

fn timed_epoch_ms(p: &Prepared, opts: &RunOptions, dispatch: Dispatch) -> (usize, f64) {
    let task = sgd_models::lr(p.ds.d());
    let batch = p.linear_batch();
    // Wall timing regardless of `--timing`: dispatch overhead is real
    // time, a modeled clock would hide it.
    let cfg = Configuration::new(DeviceKind::CpuPar, Strategy::Sync).with_timing(Timing::Wall);
    let rep = with_dispatch(dispatch, || Engine::run(&cfg, &task, &batch, 0.1, opts));
    (rep.trace.epochs(), rep.time_per_epoch() * 1e3)
}

/// Runs the sweep: every selected profile at every thread count, timing
/// one synchronous-SGD run per dispatch mode.
pub fn rows(cfg: &ExperimentConfig) -> Vec<PoolRow> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        for threads in THREAD_COUNTS {
            let opts = bench_options(cfg, threads);
            let (epochs, forkjoin_tpe_ms) = timed_epoch_ms(&p, &opts, Dispatch::ForkJoin);
            let (_, pool_tpe_ms) = timed_epoch_ms(&p, &opts, Dispatch::Pool);
            out.push(PoolRow {
                dataset: p.name().to_string(),
                threads,
                epochs,
                forkjoin_tpe_ms,
                pool_tpe_ms,
                speedup: if pool_tpe_ms > 0.0 { forkjoin_tpe_ms / pool_tpe_ms } else { 1.0 },
            });
        }
    }
    out
}

/// Hand-rolled JSON for `BENCH_pool.json` (the repo carries no JSON
/// dependency; every float the sweep emits is finite).
pub fn to_json(rows: &[PoolRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"pool-vs-forkjoin\",\n  \"unit\": \"ms per epoch\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"epochs\": {}, \
             \"forkjoin_tpe_ms\": {:.4}, \"pool_tpe_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.dataset,
            r.threads,
            r.epochs,
            r.forkjoin_tpe_ms,
            r.pool_tpe_ms,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable table for stdout.
pub fn render(rows: &[PoolRow]) -> String {
    let mut out =
        String::from("Pool dispatch sweep: fork-join vs persistent pool (sync SGD, LR)\n");
    out.push_str(&format!(
        "{:<9} {:>7} {:>7} | {:>12} {:>12} {:>8}\n",
        "dataset", "threads", "epochs", "forkjoin-ms", "pool-ms", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>7} {:>7} | {:>12.4} {:>12.4} {:>7.2}x\n",
            r.dataset, r.threads, r.epochs, r.forkjoin_tpe_ms, r.pool_tpe_ms, r.speedup
        ));
    }
    out
}

/// CI smoke mode: on a tiny dataset, the two dispatch modes must produce
/// bit-equal loss trajectories (identical chunking makes every float the
/// same), and the sweep plumbing must produce a full grid of rows.
pub fn check(cfg: &ExperimentConfig) -> Result<(), String> {
    for p in prepare_all(cfg) {
        let task = sgd_models::lr(p.ds.d());
        let batch = p.linear_batch();
        let corner =
            Configuration::new(DeviceKind::CpuPar, Strategy::Sync).with_timing(Timing::Wall);
        for threads in [2usize, 4] {
            let opts = RunOptions { threads, max_epochs: 5, ..bench_options(cfg, threads) };
            let pooled =
                with_dispatch(Dispatch::Pool, || Engine::run(&corner, &task, &batch, 0.1, &opts));
            let forked = with_dispatch(Dispatch::ForkJoin, || {
                Engine::run(&corner, &task, &batch, 0.1, &opts)
            });
            if pooled.trace.epochs() != forked.trace.epochs() {
                return Err(format!(
                    "{} @ {threads} threads: epoch counts diverged ({} vs {})",
                    p.name(),
                    pooled.trace.epochs(),
                    forked.trace.epochs()
                ));
            }
            for (e, ((_, lp), (_, lf))) in
                pooled.trace.points().iter().zip(forked.trace.points()).enumerate()
            {
                if lp.to_bits() != lf.to_bits() {
                    return Err(format!(
                        "{} @ {threads} threads, epoch {e}: loss diverged across dispatch \
                         modes ({lp} vs {lf})",
                        p.name()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_on_the_smoke_config() {
        check(&ExperimentConfig::smoke()).expect("dispatch modes must agree bitwise");
    }

    #[test]
    fn sweep_produces_a_full_grid_and_valid_json() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.max_epochs = 3;
        let rows = rows(&cfg);
        assert_eq!(rows.len(), THREAD_COUNTS.len(), "one dataset x four thread counts");
        for r in &rows {
            assert!(r.epochs > 0);
            assert!(r.forkjoin_tpe_ms.is_finite() && r.pool_tpe_ms.is_finite());
        }
        let json = to_json(&rows);
        assert!(json.contains("\"pool-vs-forkjoin\""));
        assert_eq!(json.matches("\"threads\"").count(), rows.len());
        let table = render(&rows);
        assert!(table.contains("speedup"));
    }
}
