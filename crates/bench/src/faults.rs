//! Robustness sweep — fault intensity against strategy choice.
//!
//! Not a paper figure: this experiment stresses the paper's central
//! sync-vs-async trade-off under injected faults. A synchronous barrier
//! waits for its slowest worker, so one straggler dilates the whole epoch
//! by the full slowdown; asynchronous workers only lose the straggler's
//! own share of throughput (the harmonic-mean dilation). Update-level
//! faults (drops, stale reads, corruption, a dead worker) are absorbed by
//! the async corners and surface as counters, while a dead worker stalls
//! a synchronous barrier forever and aborts the run.

use sgd_core::{reference_optimum, DeviceKind, Engine, FaultPlan, Strategy};

use crate::cli::ExperimentConfig;
use crate::prep::prepare_all;
use crate::render::{fmt_opt_secs, mark_diverged, ratio};

/// The three cube corners the sweep compares: the synchronous parallel
/// CPU (barrier per mini-batch round), asynchronous Hogwild on the same
/// cores, and the GPU warp-Hogwild kernel.
pub const CORNERS: [(&str, DeviceKind, Strategy); 3] = [
    ("sync-cpu", DeviceKind::CpuPar, Strategy::Sync),
    ("hogwild-cpu", DeviceKind::CpuPar, Strategy::Hogwild),
    ("hogwild-gpu", DeviceKind::Gpu, Strategy::Hogwild),
];

/// The fault plans swept per corner, from clean baseline to worker death.
pub fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::default()),
        ("straggler-2x", FaultPlan::default().with_straggler(0, 2.0)),
        ("straggler-4x", FaultPlan::default().with_straggler(0, 4.0)),
        ("straggler-8x", FaultPlan::default().with_straggler(0, 8.0)),
        ("lossy-5%", FaultPlan::default().with_seed(13).with_drops(0.05).with_stale_reads(0.05)),
        ("noisy-10%", FaultPlan::default().with_seed(17).with_corruption(0.10, 0.5)),
        ("death@2", FaultPlan::default().with_worker_death(1, 2)),
    ]
}

/// One cell of the sweep: a (dataset, corner, fault plan) run.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Dataset name.
    pub dataset: String,
    /// Corner name from [`CORNERS`].
    pub corner: &'static str,
    /// Fault-plan name from [`plans`].
    pub plan: &'static str,
    /// Supervisor outcome label (`converged`, `fault-aborted@k`, ...).
    pub outcome: String,
    /// Epochs the run completed before the supervisor stopped it.
    pub epochs: usize,
    /// Time to 1 % convergence (`None` = never reached).
    pub ttc: Option<f64>,
    /// Time per epoch in milliseconds.
    pub tpe_ms: f64,
    /// Time-per-epoch degradation relative to this corner's clean run.
    pub degradation: f64,
    /// Total injected fault events the run absorbed.
    pub fault_events: u64,
    /// Modeled seconds lost waiting on stragglers.
    pub straggler_delay_secs: f64,
    /// `true` when the run's outcome is `Diverged`.
    pub diverged: bool,
}

/// Runs the full sweep: every fault plan on every corner, for the first
/// two selected datasets (one sparse, one dense by default).
pub fn rows(cfg: &ExperimentConfig) -> Vec<FaultCell> {
    let mut out = Vec::new();
    for p in prepare_all(cfg).iter().take(2) {
        let task = sgd_models::lr(p.ds.d());
        let batch = p.linear_batch();
        let optimum = reference_optimum(&task, &batch, cfg.optimum_epochs);
        let mut opts = cfg.run_options();
        opts.target_loss = Some(optimum);
        for (cname, device, strategy) in CORNERS {
            let corner = cfg.configuration(device, strategy);
            // Grid the step size once per corner on the clean plan; every
            // fault plan then reruns at that fixed step size so the cells
            // differ only in the injected faults.
            let alpha =
                Engine::grid_search(&corner, &task, &batch, optimum, &cfg.grid, &opts).step_size;
            let mut clean_tpe = f64::NAN;
            for (pname, plan) in plans() {
                let mut fopts = opts.clone();
                fopts.faults = plan;
                let rep = Engine::run(&corner, &task, &batch, alpha, &fopts);
                let tpe = rep.time_per_epoch();
                if pname == "clean" {
                    clean_tpe = tpe;
                }
                let totals = rep.metrics.total_faults();
                out.push(FaultCell {
                    dataset: p.name().to_string(),
                    corner: cname,
                    plan: pname,
                    outcome: rep.outcome.label(),
                    epochs: rep.trace.epochs(),
                    ttc: rep.summarize(optimum).time_to_1pct(),
                    tpe_ms: tpe * 1e3,
                    degradation: ratio(tpe, clean_tpe),
                    fault_events: totals.total_events(),
                    straggler_delay_secs: totals.straggler_delay_secs,
                    diverged: rep.diverged(),
                });
            }
        }
    }
    out
}

/// Renders the sweep plus a headline sync-vs-async degradation summary.
pub fn render(cfg: &ExperimentConfig) -> String {
    let cells = rows(cfg);
    let mut out = String::new();
    out.push_str("Fault sweep: fault intensity x strategy (LR), degradation vs clean run\n");
    out.push_str(&format!(
        "{:<9} {:<11} {:<13} | {:<18} {:>6} | {:>10} {:>10} {:>7} | {:>7} {:>10}\n",
        "dataset",
        "corner",
        "plan",
        "outcome",
        "epochs",
        "ttc",
        "tpe-ms",
        "degrad",
        "events",
        "stall-s"
    ));
    for c in &cells {
        out.push_str(&format!(
            "{:<9} {:<11} {:<13} | {:<18} {:>6} | {:>10} {:>10.3} {:>6.2}x | {:>7} {:>10.4}\n",
            c.dataset,
            c.corner,
            c.plan,
            mark_diverged(c.outcome.clone(), c.diverged),
            c.epochs,
            fmt_opt_secs(c.ttc),
            c.tpe_ms,
            c.degradation,
            c.fault_events,
            c.straggler_delay_secs,
        ));
    }
    out.push('\n');
    for (sync_c, hog_c) in straggler_comparison(&cells) {
        out.push_str(&format!(
            "{} / {}: sync degrades {:.2}x, Hogwild degrades {:.2}x (barrier pays the full \
             slowdown; async pays the harmonic mean)\n",
            sync_c.dataset, sync_c.plan, sync_c.degradation, hog_c.degradation,
        ));
    }
    out
}

/// Pairs each straggler plan's sync cell with the matching CPU Hogwild
/// cell on the same dataset, for the headline comparison.
pub fn straggler_comparison(cells: &[FaultCell]) -> Vec<(&FaultCell, &FaultCell)> {
    let mut out = Vec::new();
    for c in cells {
        if c.corner != "sync-cpu" || !c.plan.starts_with("straggler") {
            continue;
        }
        if let Some(h) = cells
            .iter()
            .find(|h| h.corner == "hogwild-cpu" && h.plan == c.plan && h.dataset == c.dataset)
        {
            out.push((c, h));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_pays_full_straggler_cost_hogwild_strictly_less() {
        let cfg = ExperimentConfig::smoke();
        let cells = rows(&cfg);
        let pairs = straggler_comparison(&cells);
        assert_eq!(pairs.len(), 3, "three straggler intensities on one dataset");
        for (sync_c, hog_c) in pairs {
            let slowdown: f64 = match sync_c.plan {
                "straggler-2x" => 2.0,
                "straggler-4x" => 4.0,
                "straggler-8x" => 8.0,
                other => panic!("unexpected plan {other}"),
            };
            // The barrier stalls on the slowest worker: sync degrades by
            // the full slowdown under modeled timing.
            assert!(
                (sync_c.degradation - slowdown).abs() < 1e-6,
                "{}: sync degradation {} != {}",
                sync_c.plan,
                sync_c.degradation,
                slowdown
            );
            // Async absorbs the straggler: strictly less degradation.
            assert!(
                hog_c.degradation < sync_c.degradation,
                "{}: hogwild {} !< sync {}",
                sync_c.plan,
                hog_c.degradation,
                sync_c.degradation
            );
        }
    }

    #[test]
    fn dead_worker_aborts_sync_but_not_async() {
        let cfg = ExperimentConfig::smoke();
        let cells = rows(&cfg);
        let cell = |corner: &str, plan: &str| {
            cells
                .iter()
                .find(|c| c.corner == corner && c.plan == plan)
                .unwrap_or_else(|| panic!("missing cell {corner}/{plan}"))
        };
        assert!(
            cell("sync-cpu", "death@2").outcome.starts_with("fault-aborted"),
            "sync barrier cannot outlive a dead worker"
        );
        for corner in ["hogwild-cpu", "hogwild-gpu"] {
            let c = cell(corner, "death@2");
            assert!(!c.outcome.starts_with("fault-aborted"), "{corner} absorbs the death");
            assert!(c.fault_events > 0, "{corner} counts the dead worker");
        }
    }

    #[test]
    fn render_smoke_has_headline_comparison() {
        let out = render(&ExperimentConfig::smoke());
        assert!(out.contains("sync degrades"));
        assert!(out.contains("straggler-4x"));
        assert!(out.contains("clean"));
    }
}
