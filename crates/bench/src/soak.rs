//! Overload soak: admission control vs the unhardened baseline at
//! ~10^6 modeled requests.
//!
//! The serving counterpart of the paper's saturation story: past the
//! knee of the throughput curve, an unbounded queue buys no goodput —
//! it only converts overload into unbounded latency. The soak drives a
//! deterministic mixed open+closed scenario whose open-loop rate ramps
//! from below saturation to several times past it, against every fixed
//! backend and the cost-model router, twice each: once under a hardened
//! [`AdmissionPolicy`] (bounded tiered queue, backpressure, deadline)
//! and once under [`AdmissionPolicy::unbounded`] (the legacy loops'
//! behavior). Batches are priced through [`ModeledService`] — O(1) per
//! batch — which is what makes a million-request soak feasible in CI
//! time; the admission/shedding mechanics are identical to the real
//! compute path (a pinned equivalence test lives in `sgd-serve`).
//!
//! Everything is seeded and simulated: same seed ⇒ bit-identical shed
//! decisions, outcome counts, and latency summaries. `check` pins that,
//! plus the two headline properties — conservation (`completed + shed +
//! rejected == offered`, no silent drops) and the bounded tail (the
//! hardened admitted p99 stays under its policy-derived bound while the
//! unhardened baseline's p99 diverges with the ramp).

use sgd_core::ComputeBackend;
use sgd_serve::{
    offered_requests, run_admitted, AdmissionPolicy, BatchPolicy, ClosedClients, ModeledService,
    OfferedRequest,
};

use crate::cli::ExperimentConfig;
use crate::prep::prepare_all;
use crate::serve::{request_pool, train_published_model};

/// Micro-batch size the soak serves at (capacity is defined at full
/// batches of this size).
pub const BATCH: usize = 16;

/// Open-loop rate ramp, as multiples of the contender's full-batch
/// capacity: two stages below/near saturation, two well past it.
pub const RAMP_FACTORS: [f64; 4] = [0.6, 1.2, 3.0, 6.0];

/// Priority tiers of the offered load (tier 0 = highest).
pub const TIERS: usize = 4;

/// Workload size of one soak cell.
#[derive(Clone, Copy, Debug)]
pub struct SoakDims {
    /// Open-loop requests per ramp stage.
    pub per_stage: usize,
    /// Closed-loop clients running alongside the ramp.
    pub clients: usize,
    /// Requests each closed client issues.
    pub per_client: usize,
}

impl SoakDims {
    /// The full soak: ~10^6 offered requests across the 4 contenders x
    /// 2 policies (128k per cell).
    pub fn full() -> Self {
        SoakDims { per_stage: 30_000, clients: 8, per_client: 1_000 }
    }

    /// CI smoke dims: the same shape at ~2.8k requests per cell.
    pub fn smoke() -> Self {
        SoakDims { per_stage: 600, clients: 8, per_client: 50 }
    }

    /// Requests offered to one cell.
    pub fn offered(&self) -> usize {
        self.per_stage * RAMP_FACTORS.len() + self.clients * self.per_client
    }
}

/// One backend choice under soak.
struct Contender {
    label: &'static str,
    candidates: Vec<ComputeBackend>,
}

fn contenders() -> Vec<Contender> {
    vec![
        Contender { label: "cpu-seq", candidates: vec![ComputeBackend::CpuSeq] },
        Contender { label: "cpu-par4", candidates: vec![ComputeBackend::CpuPar { threads: 4 }] },
        Contender { label: "gpu-sim", candidates: vec![ComputeBackend::GpuSim] },
        Contender {
            label: "router",
            candidates: vec![
                ComputeBackend::CpuSeq,
                ComputeBackend::CpuPar { threads: 4 },
                ComputeBackend::GpuSim,
            ],
        },
    ]
}

/// One (dataset, contender, policy) cell of the soak.
#[derive(Clone, Debug)]
pub struct SoakRow {
    /// Dataset name.
    pub dataset: String,
    /// Contender label (fixed backend or `router`).
    pub backend: String,
    /// `hardened` or `unbounded`.
    pub policy: String,
    /// Requests offered (open ramp + closed clients).
    pub offered: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Shed at admission (tier over its queue share).
    pub shed_admission: usize,
    /// Shed at batch assembly (deadline expired).
    pub shed_deadline: usize,
    /// Rejected by the in-flight backpressure bound.
    pub rejected: usize,
    /// Fraction of offered requests that did not complete.
    pub shed_fraction: f64,
    /// Completed requests per second of makespan.
    pub goodput_rps: f64,
    /// Median admitted latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile admitted latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile admitted latency, milliseconds.
    pub p999_ms: f64,
    /// Policy-derived bound the admitted tail must respect
    /// (deadline + 2 full-batch service times); 0 for the unbounded
    /// baseline, whose tail has no bound.
    pub tail_bound_ms: f64,
}

/// The deterministic ramp: `RAMP_FACTORS.len()` Poisson stages
/// concatenated end to end, each at `capacity * factor`, priorities
/// hashed across [`TIERS`].
fn ramped_offered(capacity_rps: f64, per_stage: usize, seed: u64) -> Vec<OfferedRequest> {
    let mut out: Vec<OfferedRequest> = Vec::new();
    let mut t0 = 0.0f64;
    for (s, factor) in RAMP_FACTORS.iter().enumerate() {
        let stage_seed = seed.wrapping_add(17 * (s as u64 + 1));
        let stage = offered_requests(capacity_rps * factor, per_stage, stage_seed, TIERS);
        for r in &stage {
            let arrival = t0 + r.arrival;
            out.push(OfferedRequest { arrival, priority: r.priority, row: out.len() });
        }
        t0 = out.last().map(|r| r.arrival).unwrap_or(t0);
    }
    out
}

/// Runs every cell: each contender under the hardened policy and the
/// unbounded baseline, on identical offered load.
fn cells(cfg: &ExperimentConfig, dims: &SoakDims) -> Vec<SoakRow> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        let model = train_published_model(cfg, &p);
        let pool = request_pool(&p);
        for c in contenders() {
            let mut svc = ModeledService::for_predict(c.candidates.clone(), &model, &pool);
            let s_full = svc.estimate_secs(BATCH).max(1e-12);
            let capacity = BATCH as f64 / s_full;
            let batch = BatchPolicy::new(BATCH, 2.0 * s_full);
            // Bounded queue of 4 full batches; backpressure 2 batches
            // above that; deadline under the full-queue drain time so
            // both shed paths engage under the ramp's overload stages.
            let hardened = AdmissionPolicy::new(4 * BATCH, 6 * BATCH, 3.0 * s_full, TIERS);
            let open = ramped_offered(capacity, dims.per_stage, cfg.seed);
            let closed = ClosedClients {
                clients: dims.clients,
                per_client: dims.per_client,
                think: 32.0 / capacity,
                priority: 0,
            };
            for (policy, name) in
                [(hardened, "hardened"), (AdmissionPolicy::unbounded(), "unbounded")]
            {
                let o = run_admitted(&mut svc, &batch, &policy, &open, &closed);
                let tail_bound =
                    if name == "hardened" { policy.deadline + 2.0 * s_full } else { 0.0 };
                out.push(SoakRow {
                    dataset: p.name().to_string(),
                    backend: c.label.to_string(),
                    policy: name.to_string(),
                    offered: dims.offered(),
                    completed: o.counts.completed,
                    shed_admission: o.counts.shed_admission,
                    shed_deadline: o.counts.shed_deadline,
                    rejected: o.counts.rejected,
                    shed_fraction: o.summary.shed_fraction(),
                    goodput_rps: o.summary.goodput,
                    p50_ms: o.summary.p50 * 1e3,
                    p99_ms: o.summary.p99 * 1e3,
                    p999_ms: o.summary.p999 * 1e3,
                    tail_bound_ms: tail_bound * 1e3,
                });
            }
        }
    }
    out
}

/// Runs the full soak (~10^6 modeled requests on the default dims).
pub fn rows(cfg: &ExperimentConfig) -> Vec<SoakRow> {
    cells(cfg, &SoakDims::full())
}

/// Hand-rolled JSON for `BENCH_soak.json` (no JSON dependency; every
/// float emitted is finite).
pub fn to_json(rows: &[SoakRow]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"soak-overload\",\n  \"unit\": \"ms latency / requests per second\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"policy\": \"{}\", \
             \"offered\": {}, \"completed\": {}, \"shed_admission\": {}, \
             \"shed_deadline\": {}, \"rejected\": {}, \"shed_fraction\": {:.6}, \
             \"goodput_rps\": {:.1}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \
             \"p999_ms\": {:.6}, \"tail_bound_ms\": {:.6}}}{}\n",
            r.dataset,
            r.backend,
            r.policy,
            r.offered,
            r.completed,
            r.shed_admission,
            r.shed_deadline,
            r.rejected,
            r.shed_fraction,
            r.goodput_rps,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.tail_bound_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable table for stdout.
pub fn render(rows: &[SoakRow]) -> String {
    let mut out = String::from(
        "Overload soak: ramp to 6x capacity, hardened admission vs unbounded baseline\n",
    );
    out.push_str(&format!(
        "{:<9} {:<9} {:<10} {:>9} {:>9} {:>7} | {:>11} {:>11} {:>11}\n",
        "dataset", "backend", "policy", "offered", "done", "shed%", "goodput", "p99-ms", "p999-ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<9} {:<10} {:>9} {:>9} {:>6.1}% | {:>11.1} {:>11.4} {:>11.4}\n",
            r.dataset,
            r.backend,
            r.policy,
            r.offered,
            r.completed,
            r.shed_fraction * 100.0,
            r.goodput_rps,
            r.p99_ms,
            r.p999_ms,
        ));
    }
    out
}

/// CI smoke mode, on [`SoakDims::smoke`]. Asserts, per contender:
/// 1. bit-determinism: two runs agree on every count and every summary
///    float bitwise (shed decisions included — counts pin them);
/// 2. conservation: `completed + shed_admission + shed_deadline +
///    rejected == offered`, for both policies — no silent drops;
/// 3. graceful degradation: the hardened policy sheds under the ramp's
///    overload stages yet still completes work, and its admitted p99
///    respects the policy-derived tail bound;
/// 4. the contrast: the unhardened baseline completes everything but
///    its p99 diverges (at least 2x the hardened admitted p99).
pub fn check(cfg: &ExperimentConfig) -> Result<(), String> {
    let dims = SoakDims::smoke();
    let a = cells(cfg, &dims);
    let b = cells(cfg, &dims);

    // (1) Bit-determinism across full re-runs.
    if a.len() != b.len() {
        return Err(format!("soak size diverged across runs ({} vs {})", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(&b) {
        let same = x.completed == y.completed
            && x.shed_admission == y.shed_admission
            && x.shed_deadline == y.shed_deadline
            && x.rejected == y.rejected
            && x.goodput_rps.to_bits() == y.goodput_rps.to_bits()
            && x.p99_ms.to_bits() == y.p99_ms.to_bits()
            && x.p999_ms.to_bits() == y.p999_ms.to_bits();
        if !same {
            return Err(format!(
                "{} {} {}: not bit-deterministic across runs",
                x.dataset, x.backend, x.policy
            ));
        }
    }

    for r in &a {
        // (2) Conservation, every cell.
        let resolved = r.completed + r.shed_admission + r.shed_deadline + r.rejected;
        if resolved != r.offered {
            return Err(format!(
                "{} {} {}: resolution leak ({} resolved of {} offered)",
                r.dataset, r.backend, r.policy, resolved, r.offered
            ));
        }
    }

    for c in contenders() {
        let pair =
            |policy: &str| a.iter().find(|r| r.backend == c.label && r.policy == policy).cloned();
        let (Some(h), Some(u)) = (pair("hardened"), pair("unbounded")) else {
            return Err(format!("missing soak cells for contender {}", c.label));
        };
        // (3) The hardened policy sheds but keeps serving, under bound.
        let shed = h.shed_admission + h.shed_deadline + h.rejected;
        if shed == 0 {
            return Err(format!("{}: hardened policy shed nothing at 6x capacity", c.label));
        }
        if h.completed == 0 {
            return Err(format!("{}: hardened policy completed nothing", c.label));
        }
        if h.p99_ms > h.tail_bound_ms {
            return Err(format!(
                "{}: hardened admitted p99 {:.4}ms exceeds its bound {:.4}ms",
                c.label, h.p99_ms, h.tail_bound_ms
            ));
        }
        // (4) The baseline completes everything at the price of a
        // divergent tail.
        if u.completed != u.offered {
            return Err(format!("{}: unbounded baseline shed work", c.label));
        }
        if u.p99_ms < 2.0 * h.p99_ms {
            return Err(format!(
                "{}: baseline p99 {:.4}ms did not diverge past the hardened {:.4}ms",
                c.label, u.p99_ms, h.p99_ms
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_on_the_smoke_config() {
        check(&ExperimentConfig::smoke()).expect("soak check must pass");
    }

    #[test]
    fn smoke_cells_produce_a_full_grid_and_valid_json() {
        let cfg = ExperimentConfig::smoke();
        let rows = cells(&cfg, &SoakDims::smoke());
        assert_eq!(rows.len(), contenders().len() * 2, "one dataset, 4 contenders x 2 policies");
        for r in &rows {
            assert_eq!(
                r.completed + r.shed_admission + r.shed_deadline + r.rejected,
                r.offered,
                "conservation in every cell"
            );
            assert!(r.p50_ms.is_finite() && r.p999_ms.is_finite());
            assert!(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"soak-overload\""));
        assert_eq!(json.matches("\"policy\"").count(), rows.len());
        let table = render(&rows);
        assert!(table.contains("p999-ms"));
    }

    #[test]
    fn ramp_is_monotone_and_deterministic() {
        let a = ramped_offered(1000.0, 50, 7);
        let b = ramped_offered(1000.0, 50, 7);
        assert_eq!(a.len(), RAMP_FACTORS.len() * 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!((x.priority, x.row), (y.priority, y.row));
        }
        assert!(a.windows(2).all(|w| w[1].arrival >= w[0].arrival), "time moves forward");
        assert!(a.iter().any(|r| r.priority > 0), "tiers are populated");
    }
}
