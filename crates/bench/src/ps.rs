//! Parameter-server scale-out sweep: sync vs async consistency across
//! worker counts and elastic-membership churn.
//!
//! The distributed extension of the paper's sync/async axis: every cell
//! runs the modeled parameter-server cluster (`sgd-dist`) — exact
//! kernels, discrete-event time — so the sweep is deterministic and the
//! headline contrasts are properties of the protocols, not of the host.
//! Three churn plans stress each (mode, worker-count) point:
//!
//! * `clean` — the degradation baseline;
//! * `straggler-8x` — worker 0 computes 8x slower. The sync quorum
//!   repeatedly rejects the straggler's stale gradients (it recomputes
//!   while the fast workers advance the version), so sync pays far more
//!   than the straggler's throughput share; async admits the late
//!   gradient under its staleness bound and degrades gracefully.
//! * `death+rejoin` — a worker dies mid-run and rejoins later; its
//!   leases are revoked and reassigned and the run still converges. A
//!   1-worker cluster losing its only worker is the honest corner case:
//!   the run fault-aborts.

use sgd_core::{
    Configuration, DeviceKind, Engine, FaultPlan, RunOptions, RunOutcome, Strategy, Timing,
};
use sgd_dist::{run_dist_modeled, ConsistencyMode, DistConfig, StalePolicy};

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};

/// Worker counts swept.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Compute slowdown of the injected straggler.
pub const STRAGGLER: f64 = 8.0;

/// The consistency modes compared, sized to the worker count: sync waits
/// for one gradient per live worker; async bounds staleness at two
/// pipeline rounds.
pub fn modes(workers: usize) -> [ConsistencyMode; 2] {
    [
        ConsistencyMode::Sync { grads_to_wait: workers },
        ConsistencyMode::Async { max_staleness: 2 * workers as u64, policy: StalePolicy::Reject },
    ]
}

/// The churn plans swept per (mode, workers) point. The death plan kills
/// worker 1 where there is one (worker 0 on a 1-worker cluster — the
/// abort corner) at epoch 2 and rejoins it at epoch 5.
pub fn plans(workers: usize) -> Vec<(&'static str, FaultPlan)> {
    let victim = 1usize.min(workers.saturating_sub(1));
    vec![
        ("clean", FaultPlan::default()),
        ("straggler-8x", FaultPlan::default().with_straggler(0, STRAGGLER)),
        ("death+rejoin", FaultPlan::default().with_worker_death(victim, 2).with_rejoin(victim, 5)),
    ]
}

/// The modeled cluster for one cell: one modeled core per worker, two
/// shards per worker, a 50 µs modeled network round trip. The RTT is
/// scaled with the dataset scale like every other fixed cost in
/// [`ExperimentConfig::mc_seq`], so shrunken datasets keep the paper's
/// compute-to-network ratio.
pub fn cluster(cfg: &ExperimentConfig, workers: usize, mode: ConsistencyMode) -> DistConfig {
    DistConfig {
        workers,
        shards: 2 * workers,
        mode,
        mc: cfg.mc_seq(),
        net_rtt_secs: 50.0e-6 * cfg.scale,
    }
}

/// One (dataset, mode, workers, plan) cell of the sweep.
#[derive(Clone, Debug)]
pub struct PsCell {
    /// Dataset name.
    pub dataset: String,
    /// Consistency-mode label (`sync-w4`, `async-s8-reject`).
    pub mode: String,
    /// Worker count.
    pub workers: usize,
    /// Churn-plan name from [`plans`].
    pub plan: &'static str,
    /// Supervisor outcome label.
    pub outcome: String,
    /// Epochs completed.
    pub epochs: usize,
    /// Modeled time per epoch, milliseconds.
    pub tpe_ms: f64,
    /// Time-per-epoch degradation vs this (dataset, mode, workers)
    /// clean cell.
    pub degradation: f64,
    /// Stale pushes rejected or down-weighted over the run.
    pub staleness_rounds: u64,
    /// Worker-death events absorbed.
    pub dead_workers: u64,
    /// Best loss the run reached.
    pub best_loss: f64,
}

/// Picks a step size for `task` on `batch` by a tiny deterministic grid
/// over the 1-worker cluster (shared by every cell of the dataset so
/// the cells differ only in mode, scale, and churn).
fn pick_alpha<T: sgd_models::Task>(
    cfg: &ExperimentConfig,
    task: &T,
    batch: &sgd_models::Batch<'_>,
    opts: &RunOptions,
) -> f64 {
    let probe = cluster(cfg, 1, ConsistencyMode::Sync { grads_to_wait: 1 });
    let mut popts = opts.clone();
    popts.max_epochs = opts.max_epochs.min(25);
    let mut best = (f64::INFINITY, cfg.grid.first().copied().unwrap_or(1.0));
    for &alpha in &cfg.grid {
        let rep = run_dist_modeled(task, batch, &probe, alpha, &popts);
        let loss = rep.best_loss();
        if !rep.diverged() && loss.is_finite() && loss < best.0 {
            best = (loss, alpha);
        }
    }
    best.1
}

fn run_cells(cfg: &ExperimentConfig, p: &Prepared, out: &mut Vec<PsCell>) {
    let task = sgd_models::lr(p.ds.d());
    let batch = p.linear_batch();
    let opts = cfg.run_options();
    let alpha = pick_alpha(cfg, &task, &batch, &opts);
    for workers in WORKER_COUNTS {
        for mode in modes(workers) {
            let dc = cluster(cfg, workers, mode);
            let mut clean_tpe = f64::NAN;
            for (pname, plan) in plans(workers) {
                let mut fopts = opts.clone();
                fopts.faults = plan;
                let rep = run_dist_modeled(&task, &batch, &dc, alpha, &fopts);
                let tpe = rep.time_per_epoch();
                if pname == "clean" {
                    clean_tpe = tpe;
                }
                out.push(PsCell {
                    dataset: p.name().to_string(),
                    mode: mode.label(),
                    workers,
                    plan: pname,
                    outcome: rep.outcome.label(),
                    epochs: rep.trace.epochs(),
                    tpe_ms: tpe * 1e3,
                    degradation: crate::render::ratio(tpe, clean_tpe),
                    staleness_rounds: rep.metrics.epochs.iter().map(|m| m.staleness_rounds).sum(),
                    dead_workers: rep.metrics.epochs.iter().map(|m| m.faults.dead_workers).sum(),
                    best_loss: rep.best_loss(),
                });
            }
        }
    }
}

/// Runs the full sweep on the first two selected datasets (one dense,
/// one sparse on the default selection).
pub fn rows(cfg: &ExperimentConfig) -> Vec<PsCell> {
    let mut out = Vec::new();
    for p in prepare_all(cfg).iter().take(2) {
        run_cells(cfg, p, &mut out);
    }
    out
}

/// Hand-rolled JSON for `BENCH_ps.json` (no JSON dependency).
pub fn to_json(rows: &[PsCell]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"parameter-server-scaleout\",\n  \"unit\": \"ms modeled time per epoch\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"plan\": \"{}\", \
             \"outcome\": \"{}\", \"epochs\": {}, \"tpe_ms\": {:.6}, \"degradation\": {:.4}, \
             \"staleness_rounds\": {}, \"dead_workers\": {}, \"best_loss\": {:.6}}}{}\n",
            r.dataset,
            r.mode,
            r.workers,
            r.plan,
            r.outcome,
            r.epochs,
            r.tpe_ms,
            r.degradation,
            r.staleness_rounds,
            r.dead_workers,
            r.best_loss,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable table plus the straggler headline per dataset.
pub fn render(rows: &[PsCell]) -> String {
    let mut out =
        String::from("Parameter-server scale-out: consistency mode x workers x churn (LR)\n");
    out.push_str(&format!(
        "{:<9} {:<16} {:>3} {:<13} | {:<18} {:>6} | {:>10} {:>7} | {:>7} {:>5} {:>12}\n",
        "dataset",
        "mode",
        "wk",
        "plan",
        "outcome",
        "epochs",
        "tpe-ms",
        "degrad",
        "stale",
        "dead",
        "best-loss"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<16} {:>3} {:<13} | {:<18} {:>6} | {:>10.4} {:>6.2}x | {:>7} {:>5} {:>12.6}\n",
            r.dataset,
            r.mode,
            r.workers,
            r.plan,
            r.outcome,
            r.epochs,
            r.tpe_ms,
            r.degradation,
            r.staleness_rounds,
            r.dead_workers,
            r.best_loss,
        ));
    }
    out.push('\n');
    for (s, a) in straggler_comparison(rows) {
        out.push_str(&format!(
            "{} x{}: sync degrades {:.2}x, async degrades {:.2}x under the {}x straggler \
             (the quorum stalls on stale recomputes; async admits the late gradient)\n",
            s.dataset, s.workers, s.degradation, a.degradation, STRAGGLER,
        ));
    }
    out
}

/// Pairs each straggler sync cell at >= 4 workers with the async cell of
/// the same (dataset, workers), for the headline comparison.
pub fn straggler_comparison(rows: &[PsCell]) -> Vec<(&PsCell, &PsCell)> {
    let mut out = Vec::new();
    for s in rows {
        if !s.mode.starts_with("sync") || s.plan != "straggler-8x" || s.workers < 4 {
            continue;
        }
        if let Some(a) = rows.iter().find(|a| {
            a.mode.starts_with("async")
                && a.plan == s.plan
                && a.dataset == s.dataset
                && a.workers == s.workers
        }) {
            out.push((s, a));
        }
    }
    out
}

/// CI smoke mode. Pins, on a tiny dataset:
/// 1. bit-determinism: the full sweep re-run agrees on every modeled
///    time and loss bitwise;
/// 2. single-node anchor: the 1-worker 1-shard sync cluster reproduces
///    `run_sync_modeled`'s loss trajectory bit for bit;
/// 3. the straggler contrast: at every >= 4-worker point, async
///    time-per-epoch degrades strictly less than sync;
/// 4. elasticity: a death+rejoin run at >= 2 workers reaches a
///    convergence target derived from its own clean run.
pub fn check(cfg: &ExperimentConfig) -> Result<(), String> {
    let a = rows(cfg);
    let b = rows(cfg);

    // (1) Bit-determinism across full re-runs.
    if a.len() != b.len() {
        return Err(format!("sweep size diverged across runs ({} vs {})", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(&b) {
        let same = x.tpe_ms.to_bits() == y.tpe_ms.to_bits()
            && x.best_loss.to_bits() == y.best_loss.to_bits()
            && x.epochs == y.epochs
            && x.staleness_rounds == y.staleness_rounds
            && x.dead_workers == y.dead_workers
            && x.outcome == y.outcome;
        if !same {
            return Err(format!(
                "{} {} x{} {}: not bit-deterministic across runs",
                x.dataset, x.mode, x.workers, x.plan
            ));
        }
    }

    // (2) The 1-worker 1-shard sync cluster is bitwise the single-node
    // modeled sync runner.
    let Some(p) = prepare_all(cfg).into_iter().next() else {
        return Err("no dataset selected".into());
    };
    let task = sgd_models::lr(p.ds.d());
    let batch = p.linear_batch();
    let opts = RunOptions { max_epochs: 8, plateau: None, ..cfg.run_options() };
    let alpha = pick_alpha(cfg, &task, &batch, &opts);
    let mut dc = cluster(cfg, 1, ConsistencyMode::Sync { grads_to_wait: 1 });
    dc.shards = 1;
    let dist = run_dist_modeled(&task, &batch, &dc, alpha, &opts);
    let corner = Configuration::new(DeviceKind::CpuSeq, Strategy::Sync)
        .with_timing(Timing::Modeled(cfg.mc_seq()));
    let single = Engine::run(&corner, &task, &batch, alpha, &opts);
    if dist.trace.points().len() != single.trace.points().len() {
        return Err(format!(
            "1-worker trace length {} != single-node {}",
            dist.trace.points().len(),
            single.trace.points().len()
        ));
    }
    for (d, s) in dist.trace.points().iter().zip(single.trace.points()) {
        if d.1.to_bits() != s.1.to_bits() {
            return Err(format!(
                "1-worker sync loss {} != single-node {} (must be bitwise identical)",
                d.1, s.1
            ));
        }
    }

    // (3) Async absorbs the straggler better than sync at every >= 4
    // worker point.
    let pairs = straggler_comparison(&a);
    if pairs.is_empty() {
        return Err("no straggler cells at >= 4 workers".into());
    }
    for (s, y) in pairs {
        // Negated so a NaN degradation fails the check too.
        let absorbed = y.degradation < s.degradation;
        if !absorbed {
            return Err(format!(
                "{} x{}: async straggler degradation {:.3}x must be below sync {:.3}x",
                s.dataset, s.workers, y.degradation, s.degradation
            ));
        }
    }

    // (4) Death + rejoin still converges at >= 2 workers.
    let dc = cluster(cfg, 4, ConsistencyMode::Sync { grads_to_wait: 4 });
    let mut churn = opts.clone();
    churn.faults = FaultPlan::default().with_worker_death(1, 2).with_rejoin(1, 5);
    let probe = run_dist_modeled(&task, &batch, &dc, alpha, &churn);
    let mut target = churn.clone();
    target.target_loss = Some(probe.best_loss() * 1.02);
    let rep = run_dist_modeled(&task, &batch, &dc, alpha, &target);
    if rep.outcome != RunOutcome::Converged {
        return Err(format!("death+rejoin run must converge, got {:?}", rep.outcome));
    }
    let dead: u64 = rep.metrics.epochs.iter().map(|m| m.faults.dead_workers).sum();
    if dead != 1 {
        return Err(format!("death+rejoin run must absorb exactly one death, saw {dead}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_check_passes() {
        let cfg = ExperimentConfig::smoke();
        check(&cfg).expect("ps --check must hold on the smoke config");
    }

    #[test]
    fn straggler_comparison_pairs_sync_with_async() {
        let cfg = ExperimentConfig::smoke();
        let cells = rows(&cfg);
        let pairs = straggler_comparison(&cells);
        assert_eq!(pairs.len(), 2, "4- and 8-worker pairs on one dataset");
        for (s, a) in pairs {
            assert!(s.mode.starts_with("sync") && a.mode.starts_with("async"));
            assert_eq!(s.workers, a.workers);
        }
    }

    #[test]
    fn json_and_render_cover_every_cell() {
        let cfg = ExperimentConfig::smoke();
        let cells = rows(&cfg);
        assert_eq!(cells.len(), WORKER_COUNTS.len() * 2 * 3, "modes x workers x plans");
        let json = to_json(&cells);
        assert!(json.contains("\"parameter-server-scaleout\""));
        assert!(json.contains("straggler-8x"));
        assert!(json.contains("death+rejoin"));
        let table = render(&cells);
        assert!(table.contains("sync degrades"));
    }

    #[test]
    fn a_one_worker_death_is_the_abort_corner() {
        let cfg = ExperimentConfig::smoke();
        let cells = rows(&cfg);
        let corner = cells
            .iter()
            .find(|c| c.workers == 1 && c.plan == "death+rejoin" && c.mode.starts_with("sync"))
            .expect("1-worker death cell present");
        assert!(
            corner.outcome.starts_with("fault-aborted"),
            "a 1-worker cluster cannot survive its only worker: {}",
            corner.outcome
        );
    }
}
