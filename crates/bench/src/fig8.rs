//! Fig. 8 — GPU-over-parallel-CPU hardware-efficiency speedup for LR and
//! SVM: our synchronous and asynchronous implementations against BIDMach.

use sgd_core::{DeviceKind, Engine, Strategy};
use sgd_frameworks::run_bidmach;
use sgd_models::{Batch, LinearLoss, LinearTask};

use crate::cli::ExperimentConfig;
use crate::prep::prepare_all;
use crate::render::ratio;

/// One bar group of Fig. 8.
#[derive(Clone, Debug)]
pub struct Fig8Bar {
    /// Task name.
    pub task: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// GPU / cpu-par speedup of our synchronous implementation.
    pub ours_sync: f64,
    /// GPU / cpu-par speedup of our asynchronous implementation.
    pub ours_async: f64,
    /// GPU / cpu-par speedup of BIDMach.
    pub bidmach: f64,
}

fn bar<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    dataset: &str,
    cfg: &ExperimentConfig,
) -> Fig8Bar {
    // Hardware efficiency only: a few fixed epochs, no convergence target.
    let mut opts = cfg.run_options();
    opts.max_epochs = 4;
    opts.target_loss = None;
    let alpha = 0.1;

    let ours = |device: DeviceKind, strategy: Strategy| {
        let corner = cfg.configuration(device, strategy);
        Engine::run(&corner, task, batch, alpha, &opts).time_per_epoch()
    };
    let bid = |device: DeviceKind| {
        let corner = cfg.configuration(device, Strategy::Sync);
        run_bidmach(&corner, task, batch, alpha, &opts).time_per_epoch()
    };
    let ours_sync_gpu = ours(DeviceKind::Gpu, Strategy::Sync);
    let ours_async_gpu = ours(DeviceKind::Gpu, Strategy::Hogwild);
    let ours_sync_par = ours(DeviceKind::CpuPar, Strategy::Sync);
    let ours_async_par = ours(DeviceKind::CpuPar, Strategy::Hogwild);
    let bid_gpu = bid(DeviceKind::Gpu);
    let bid_par = bid(DeviceKind::CpuPar);

    Fig8Bar {
        task: sgd_models::Task::name(task),
        dataset: dataset.to_string(),
        ours_sync: ratio(ours_sync_par, ours_sync_gpu),
        ours_async: ratio(ours_async_par, ours_async_gpu),
        bidmach: ratio(bid_par, bid_gpu),
    }
}

/// All bars (LR and SVM over the selected datasets).
pub fn bars(cfg: &ExperimentConfig) -> Vec<Fig8Bar> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        out.push(bar(&sgd_models::lr(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(bar(&sgd_models::svm(p.ds.d()), &p.linear_batch(), p.name(), cfg));
    }
    out
}

/// Formats the figure (values > 1 mean the GPU is faster per epoch).
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Fig. 8: speedup in hardware efficiency of GPU over parallel CPU (LR & SVM)\n");
    out.push_str(&format!(
        "{:<4} {:<9} | {:>10} {:>11} {:>9}\n",
        "task", "dataset", "ours-sync", "ours-async", "BIDMach"
    ));
    for b in bars(cfg) {
        out.push_str(&format!(
            "{:<4} {:<9} | {:>10.2} {:>11.2} {:>9.2}\n",
            b.task, b.dataset, b.ours_sync, b.ours_async, b.bidmach
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bars_are_positive() {
        let cfg = ExperimentConfig::smoke();
        let bs = bars(&cfg);
        assert_eq!(bs.len(), 2);
        for b in &bs {
            assert!(b.ours_sync > 0.0);
            assert!(b.ours_async > 0.0);
            assert!(b.bidmach > 0.0);
        }
    }

    #[test]
    fn ours_sync_beats_bidmach_on_sparse_data() {
        // The paper's Fig. 8 finding: on sparse data our GPU kernels
        // (warp-per-row) achieve at least BIDMach's speedup.
        let mut cfg = ExperimentConfig::smoke();
        cfg.datasets = vec!["real-sim".into()];
        cfg.scale = 0.002;
        let bs = bars(&cfg);
        assert!(
            bs[0].ours_sync >= bs[0].bidmach * 0.99,
            "ours {} vs bidmach {}",
            bs[0].ours_sync,
            bs[0].bidmach
        );
    }
}
