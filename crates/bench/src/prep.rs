//! Dataset preparation shared by the experiments.

use sgd_datagen::{all_profiles, generate, group_features, Dataset, DatasetProfile, GenOptions};
use sgd_linalg::{Matrix, Scalar};
use sgd_models::{Batch, Examples, MlpTask};

use crate::cli::ExperimentConfig;

/// A dataset prepared for all three tasks at the configured scale.
pub struct Prepared {
    /// The Table I profile this dataset was generated from.
    pub profile: DatasetProfile,
    /// The scaled LR/SVM dataset (CSR).
    pub ds: Dataset,
    /// Dense materialization for the dense code paths (only for profiles
    /// that are dense in the paper, i.e. covtype).
    pub dense: Option<Matrix>,
    /// Feature-grouped dense examples for the MLP (Section IV-A).
    pub mlp_x: Matrix,
    /// Labels shared by the MLP batches.
    pub mlp_y: Vec<Scalar>,
}

impl Prepared {
    /// Generates one profile at the experiment's scale.
    pub fn new(profile: &DatasetProfile, cfg: &ExperimentConfig) -> Self {
        let opts = GenOptions { seed: cfg.seed, scale: cfg.scale, ..Default::default() };
        let ds = generate(profile, &opts);
        let dense = profile.dense.then(|| ds.x.to_dense());
        let grouped = group_features(&ds, profile.mlp_input.min(ds.d()));
        // Block averaging shrinks values by ~the block width; re-normalize
        // so the MLP trains at unit input scale.
        let grouped_x = sgd_datagen::normalize_rows(&grouped.x);
        let mlp_x = grouped_x.to_dense();
        // Grouping averages away the original planted separator, so the
        // MLP datasets get labels re-planted in the grouped feature space
        // (the paper's real datasets keep their labels; synthetic ones
        // must stay learnable for convergence to be meaningful).
        let (mlp_y, _) = sgd_datagen::plant_labels(&grouped_x, cfg.seed ^ 0x4d4c50, 0.02);
        Prepared { profile: profile.clone(), ds, dense, mlp_x, mlp_y }
    }

    /// The batch the linear tasks (LR/SVM) train on: dense for covtype,
    /// CSR otherwise — the representations the paper pairs with each
    /// dataset.
    pub fn linear_batch(&self) -> Batch<'_> {
        match &self.dense {
            Some(m) => Batch::new(Examples::Dense(m), &self.ds.y),
            None => Batch::new(Examples::Sparse(&self.ds.x), &self.ds.y),
        }
    }

    /// The full MLP batch (feature-grouped, dense).
    pub fn mlp_batch(&self) -> Batch<'_> {
        Batch::new(Examples::Dense(&self.mlp_x), &self.mlp_y)
    }

    /// The paper's MLP for this dataset (Table I architecture).
    pub fn mlp_task(&self, seed: u64) -> MlpTask {
        MlpTask::new(self.profile.mlp_architecture(), seed)
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        self.profile.name
    }
}

/// Prepares every profile selected by the configuration, in Table I order.
pub fn prepare_all(cfg: &ExperimentConfig) -> Vec<Prepared> {
    all_profiles().iter().filter(|p| cfg.wants(p.name)).map(|p| Prepared::new(p, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_prepares_only_selected() {
        let cfg = ExperimentConfig::smoke();
        let all = prepare_all(&cfg);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name(), "w8a");
        assert!(all[0].dense.is_none());
        assert!(matches!(all[0].linear_batch().x, Examples::Sparse(_)));
    }

    #[test]
    fn covtype_gets_a_dense_batch() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.datasets = vec!["covtype".into()];
        let p = &prepare_all(&cfg)[0];
        assert!(p.dense.is_some());
        assert!(matches!(p.linear_batch().x, Examples::Dense(_)));
        assert_eq!(p.mlp_x.cols(), 54);
    }

    #[test]
    fn mlp_batch_matches_architecture() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.datasets = vec!["real-sim".into()];
        cfg.scale = 0.002;
        let p = &prepare_all(&cfg)[0];
        assert_eq!(p.mlp_x.cols(), 50);
        let task = p.mlp_task(1);
        assert_eq!(task.layers(), &[50, 10, 5, 2]);
        assert_eq!(p.mlp_batch().n(), p.ds.n());
    }
}
