//! Regenerates the paper's table1 (see DESIGN.md for the experiment index).

fn main() {
    let cfg = sgd_bench::cli::config_from_env();
    print!("{}", sgd_bench::table1::render(&cfg));
}
