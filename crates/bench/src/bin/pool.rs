//! Pool dispatch sweep: persistent pool vs fork-join (see DESIGN.md).
//!
//! `--check` runs the CI smoke mode (bit-equal losses across dispatch
//! modes on a tiny dataset) instead of the timed sweep; `--out PATH`
//! overrides where the JSON lands (default `BENCH_pool.json`).

use sgd_bench::cli::ExperimentConfig;

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_pool.json");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    let mut cfg = match ExperimentConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}\nextra flags: [--check] [--out PATH]");
            std::process::exit(2);
        }
    };

    if check {
        cfg.datasets = vec!["w8a".into()];
        match sgd_bench::pool::check(&cfg) {
            Ok(()) => println!("pool --check: dispatch modes bit-equal"),
            Err(msg) => {
                eprintln!("pool --check failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Default to the paper's dense profile plus its widest sparse one.
    if cfg.datasets.is_empty() {
        cfg.datasets = vec!["covtype".into(), "rcv1".into()];
    }
    let rows = sgd_bench::pool::rows(&cfg);
    print!("{}", sgd_bench::pool::render(&rows));
    let json = sgd_bench::pool::to_json(&rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
