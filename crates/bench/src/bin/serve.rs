//! Serving sweep: micro-batched inference across every backend (see
//! DESIGN.md, "Serving layer").
//!
//! `--check` runs the CI smoke mode (bit-determinism, the batching win,
//! and a checkpoint disk round trip on a tiny dataset) instead of the
//! timed sweep; `--out PATH` overrides where the JSON lands (default
//! `BENCH_serve.json`).

use sgd_bench::cli::ExperimentConfig;

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_serve.json");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    let mut cfg = match ExperimentConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}\nextra flags: [--check] [--out PATH]");
            std::process::exit(2);
        }
    };

    if check {
        cfg.datasets = vec!["w8a".into()];
        match sgd_bench::serve::check(&cfg) {
            Ok(()) => println!(
                "serve --check: deterministic, batching wins, checkpoint round trip bit-exact"
            ),
            Err(msg) => {
                eprintln!("serve --check failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Default to the paper's dense profile plus its widest sparse one.
    if cfg.datasets.is_empty() {
        cfg.datasets = vec!["covtype".into(), "rcv1".into()];
    }
    let rows = sgd_bench::serve::rows(&cfg);
    print!("{}", sgd_bench::serve::render(&rows));
    let json = sgd_bench::serve::to_json(&rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
