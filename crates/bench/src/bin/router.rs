//! Router sweep: cost-model backend routing vs every fixed backend on
//! shared arrival traces (see DESIGN.md, "Backend layer").
//!
//! `--check` runs the CI gate (bit-determinism, router within 5% of the
//! best fixed backend in every cell, strictly better than the best
//! single fixed backend somewhere) on the mixed sparse + dense smoke
//! workload; `--out PATH` overrides where the JSON lands (default
//! `BENCH_router.json`).

use sgd_bench::cli::ExperimentConfig;

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_router.json");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    let mut cfg = match ExperimentConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}\nextra flags: [--check] [--out PATH]");
            std::process::exit(2);
        }
    };

    if check {
        // `router::check` pins its own mixed sparse + dense workload.
        match sgd_bench::router::check(&cfg) {
            Ok(()) => println!(
                "router --check: deterministic, within 5% of best fixed everywhere, \
                 beats the best single fixed backend"
            ),
            Err(msg) => {
                eprintln!("router --check failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Default to the same mixed workload the CI gate uses: the paper's
    // dense profile plus a launch-dominated sparse one.
    if cfg.datasets.is_empty() {
        cfg.datasets = vec!["w8a".into(), "covtype".into()];
    }
    let rows = sgd_bench::router::rows(&cfg);
    print!("{}", sgd_bench::router::render(&rows));
    let json = sgd_bench::router::to_json(&rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
