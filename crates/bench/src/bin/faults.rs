//! Robustness sweep: fault intensity x strategy (see DESIGN.md).

fn main() {
    let cfg = sgd_bench::cli::config_from_env();
    print!("{}", sgd_bench::faults::render(&cfg));
}
