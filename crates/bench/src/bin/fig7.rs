//! Regenerates the paper's fig7 (see DESIGN.md for the experiment index).

fn main() {
    let cfg = sgd_bench::cli::config_from_env();
    print!("{}", sgd_bench::fig7::render(&cfg));
}
