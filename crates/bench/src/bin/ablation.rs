//! Regenerates the ablation studies listed in DESIGN.md.

fn main() {
    let cfg = sgd_bench::cli::config_from_env();
    print!("{}", sgd_bench::ablation::render(&cfg));
}
