//! Overload soak: hardened admission control vs the unhardened baseline
//! at ~10^6 modeled requests (see DESIGN.md, "Overload & graceful
//! degradation").
//!
//! `--check` runs the CI smoke mode (bit-determinism of shed decisions,
//! conservation, and the bounded-tail/divergent-baseline contrast on a
//! tiny dataset) instead of the full soak; `--out PATH` overrides where
//! the JSON lands (default `BENCH_soak.json`).

use sgd_bench::cli::ExperimentConfig;

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_soak.json");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    let mut cfg = match ExperimentConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}\nextra flags: [--check] [--out PATH]");
            std::process::exit(2);
        }
    };

    if check {
        cfg.datasets = vec!["w8a".into()];
        match sgd_bench::soak::check(&cfg) {
            Ok(()) => println!(
                "soak --check: deterministic shed decisions, conservation holds, \
                 hardened tail bounded while the baseline diverges"
            ),
            Err(msg) => {
                eprintln!("soak --check failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cfg.datasets.is_empty() {
        cfg.datasets = vec!["w8a".into()];
    }
    let rows = sgd_bench::soak::rows(&cfg);
    print!("{}", sgd_bench::soak::render(&rows));
    let json = sgd_bench::soak::to_json(&rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
