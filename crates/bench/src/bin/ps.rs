//! Parameter-server scale-out sweep: consistency mode x worker count x
//! elastic-membership churn on the modeled `sgd-dist` cluster (see
//! DESIGN.md, "Distributed layer").
//!
//! `--check` runs the CI smoke mode (bit-determinism of the sweep, the
//! 1-worker == single-node anchor, the async-beats-sync straggler
//! contrast, and death+rejoin convergence) instead of the full sweep;
//! `--out PATH` overrides where the JSON lands (default `BENCH_ps.json`).

use sgd_bench::cli::ExperimentConfig;

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_ps.json");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    let mut cfg = match ExperimentConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}\nextra flags: [--check] [--out PATH]");
            std::process::exit(2);
        }
    };

    if check {
        cfg.datasets = vec!["w8a".into()];
        match sgd_bench::ps::check(&cfg) {
            Ok(()) => println!(
                "ps --check: sweep bit-deterministic, 1-worker sync matches single-node \
                 bitwise, async absorbs the straggler, death+rejoin converges"
            ),
            Err(msg) => {
                eprintln!("ps --check failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cfg.datasets.is_empty() {
        cfg.datasets = vec!["covtype".into(), "rcv1".into()];
    }
    let rows = sgd_bench::ps::rows(&cfg);
    print!("{}", sgd_bench::ps::render(&rows));
    let json = sgd_bench::ps::to_json(&rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
