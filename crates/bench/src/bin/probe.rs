//! Temporary timing probe.
use sgd_bench::{prep::Prepared, ExperimentConfig};
use sgd_core::{reference_optimum, DeviceKind, Engine, RunOptions, Strategy};
use sgd_models::lr;
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::default();
    let t0 = Instant::now();
    let p = Prepared::new(&sgd_datagen::DatasetProfile::covtype(), &cfg);
    println!("prep: {:?}", t0.elapsed());

    let b = p.linear_batch();
    let task = lr(p.ds.d());
    let t0 = Instant::now();
    let opt = reference_optimum(&task, &b, cfg.optimum_epochs);
    println!("LR reference ({} epochs x 9): {:?} opt={opt:.4}", cfg.optimum_epochs, t0.elapsed());

    let t0 = Instant::now();
    let opts = RunOptions { max_epochs: 300, target_loss: Some(opt), ..cfg.run_options() };
    let corner = cfg.configuration(DeviceKind::CpuPar, Strategy::Sync);
    let rep = Engine::run(&corner, &task, &b, 1.0, &opts);
    println!("LR one sync run: {:?} ({} epochs)", t0.elapsed(), rep.trace.epochs());

    let mlp = p.mlp_task(cfg.seed);
    let mb = p.mlp_batch();
    let t0 = Instant::now();
    let mopt = reference_optimum(&mlp, &mb, cfg.optimum_epochs * cfg.mlp_epoch_boost);
    println!("MLP reference: {:?} opt={mopt:.4}", t0.elapsed());
    let t0 = Instant::now();
    let opts = RunOptions {
        max_epochs: 300 * cfg.mlp_epoch_boost,
        target_loss: Some(mopt),
        ..cfg.run_options()
    };
    let corner = cfg.configuration(DeviceKind::CpuPar, Strategy::Sync);
    let rep = Engine::run(&corner, &mlp, &mb, 1.0, &opts);
    println!("MLP one sync run: {:?} ({} epochs)", t0.elapsed(), rep.trace.epochs());
}
