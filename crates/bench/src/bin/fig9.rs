//! Regenerates the paper's fig9 (see DESIGN.md for the experiment index).

fn main() {
    let cfg = sgd_bench::cli::config_from_env();
    print!("{}", sgd_bench::fig9::render(&cfg));
}
