//! Kernel roofline sweep: scalar vs SIMD vs cache-blocked (see
//! DESIGN.md §11).
//!
//! `--check` runs the CI smoke mode (bitwise tier agreement, run-to-run
//! determinism, a loose SIMD-speedup floor) instead of the timed sweep;
//! `--force-portable` swaps the hardware-SIMD tier for the portable
//! fixed-lane mirror (the non-AVX2 leg); `--out PATH` overrides where
//! the JSON lands (default `BENCH_kernels.json`).

use sgd_bench::kernels::{check, rows, to_json, KernelBenchOpts};

fn main() {
    let mut do_check = false;
    let mut opts = KernelBenchOpts::default();
    let mut out_path = String::from("BENCH_kernels.json");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => do_check = true,
            "--force-portable" => opts.force_portable = true,
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}\nflags: [--check] [--force-portable] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    if do_check {
        match check(&opts) {
            Ok(()) => println!(
                "kernels --check: tiers bitwise-consistent{}",
                if opts.force_portable { " (portable leg)" } else { "" }
            ),
            Err(msg) => {
                eprintln!("kernels --check failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let rows = rows(&opts, 0.02);
    print!("{}", sgd_bench::kernels::render(&rows));
    let json = to_json(&rows, &opts);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
