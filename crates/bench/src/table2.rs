//! Table II — synchronous SGD across devices.

use sgd_core::{reference_optimum, DeviceKind, Engine, RunReport, Strategy};
use sgd_models::{Batch, Task};

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};
use crate::render::{fmt_opt_secs, mark_diverged, ratio};

/// One (task, dataset) block of Table II. Device order follows the paper:
/// `[gpu, cpu-seq, cpu-par]`.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Task name (`LR`, `SVM`, `MLP`).
    pub task: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Reference optimal loss used for the 1 % threshold.
    pub optimum: f64,
    /// Time to 1 % convergence in seconds per device (`None` = ∞).
    pub ttc: [Option<f64>; 3],
    /// Time per iteration (epoch) in milliseconds per device.
    pub tpi_ms: [f64; 3],
    /// Epochs to 1 % convergence (identical across devices in sync SGD).
    pub epochs: Option<usize>,
    /// Hardware-efficiency speedup of parallel over sequential CPU.
    pub speedup_seq_over_par: f64,
    /// Hardware-efficiency speedup of GPU over parallel CPU.
    pub speedup_par_over_gpu: f64,
    /// Per-device divergence flags (`[gpu, cpu-seq, cpu-par]`); diverged
    /// cells are marked in the rendered table.
    pub diverged: [bool; 3],
}

/// Runs the synchronous cell for one task/batch: grid-searches the step
/// size once (synchronous statistical efficiency is device independent),
/// then measures all three devices at the chosen step size.
pub fn sync_cell<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    dataset: &str,
    cfg: &ExperimentConfig,
) -> Table2Row {
    let optimum = reference_optimum(task, batch, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);

    let corner = |device: DeviceKind| cfg.configuration(device, Strategy::Sync);
    let par =
        Engine::grid_search(&corner(DeviceKind::CpuPar), task, batch, optimum, &cfg.grid, &opts);
    let alpha = par.step_size;
    let seq = Engine::run(&corner(DeviceKind::CpuSeq), task, batch, alpha, &opts);
    let gpu = Engine::run(&corner(DeviceKind::Gpu), task, batch, alpha, &opts);

    let summarize = |r: &RunReport| r.summarize(optimum).time_to_1pct();
    let tpi = [gpu.time_per_epoch(), seq.time_per_epoch(), par.time_per_epoch()];
    Table2Row {
        task: task.name(),
        dataset: dataset.to_string(),
        optimum,
        ttc: [summarize(&gpu), summarize(&seq), summarize(&par)],
        tpi_ms: tpi.map(|t| t * 1e3),
        epochs: par.summarize(optimum).epochs_to_1pct(),
        speedup_seq_over_par: ratio(tpi[1], tpi[2]),
        speedup_par_over_gpu: ratio(tpi[2], tpi[0]),
        diverged: [gpu.diverged(), seq.diverged(), par.diverged()],
    }
}

/// All Table II rows (LR, SVM, MLP x selected datasets).
pub fn rows(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        out.push(sync_cell(&sgd_models::lr(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(sync_cell(&sgd_models::svm(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(mlp_cell(&p, cfg));
    }
    out
}

fn mlp_cell(p: &Prepared, cfg: &ExperimentConfig) -> Table2Row {
    let task = p.mlp_task(cfg.seed);
    let mut boosted = cfg.clone();
    boosted.max_epochs = cfg.max_epochs.saturating_mul(cfg.mlp_epoch_boost.max(1));
    // The optimum search costs 9 grid points; half the boost suffices to
    // locate the reachable loss floor.
    boosted.optimum_epochs = cfg.optimum_epochs.saturating_mul((cfg.mlp_epoch_boost / 2).max(1));
    boosted.max_secs = cfg.max_secs * cfg.mlp_epoch_boost.max(1) as f64;
    sync_cell(&task, &p.mlp_batch(), p.name(), &boosted)
}

/// Formats the rows like the paper's Table II.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Table II: synchronous SGD performance to 1% convergence error\n");
    out.push_str(&format!(
        "{:<4} {:<9} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>7} | {:>8} {:>8}\n",
        "task",
        "dataset",
        "ttc-gpu",
        "ttc-seq",
        "ttc-par",
        "tpi-gpu",
        "tpi-seq",
        "tpi-par",
        "epochs",
        "seq/par",
        "par/gpu"
    ));
    out.push_str(&format!(
        "{:<4} {:<9} | {:>32} | {:>32} | {:>7} | {:>17}\n",
        "", "", "(seconds, ∞ = no convergence)", "(msec per iteration)", "", "(speedups)"
    ));
    for r in rows(cfg) {
        out.push_str(&format!(
            "{:<4} {:<9} | {:>10} {:>10} {:>10} | {:>10.3} {:>10.3} {:>10.3} | {:>7} | {:>8.2} {:>8.2}\n",
            r.task,
            r.dataset,
            mark_diverged(fmt_opt_secs(r.ttc[0]), r.diverged[0]),
            mark_diverged(fmt_opt_secs(r.ttc[1]), r.diverged[1]),
            mark_diverged(fmt_opt_secs(r.ttc[2]), r.diverged[2]),
            r.tpi_ms[0],
            r.tpi_ms[1],
            r.tpi_ms[2],
            r.epochs.map_or("∞".to_string(), |e| e.to_string()),
            r.speedup_seq_over_par,
            r.speedup_par_over_gpu,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_models::lr;

    #[test]
    fn smoke_cell_produces_consistent_row() {
        let cfg = ExperimentConfig::smoke();
        let p = &prepare_all(&cfg)[0];
        let row = sync_cell(&lr(p.ds.d()), &p.linear_batch(), p.name(), &cfg);
        assert_eq!(row.task, "LR");
        assert!(row.tpi_ms.iter().all(|&t| t > 0.0));
        // (At this 64-example smoke scale the GPU's launch overhead can
        // exceed the CPU epoch; the GPU-wins shape is asserted at realistic
        // scale in the integration tests.)
        assert!(row.optimum.is_finite());
    }

    #[test]
    fn render_smoke_has_all_tasks() {
        let out = render(&ExperimentConfig::smoke());
        assert!(out.contains("LR"));
        assert!(out.contains("SVM"));
        assert!(out.contains("MLP"));
        assert!(out.contains("w8a"));
    }
}
