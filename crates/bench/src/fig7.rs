//! Fig. 7 — loss versus time: synchronous GPU against asynchronous CPU.
//!
//! The direct comparison between the two per-strategy optimal
//! configurations, with identical hyper-parameters and initialization.
//! This is essentially batch GD (sync GPU) against stochastic GD (async
//! CPU), so the winner is task- and dataset-dependent.

use sgd_core::{reference_optimum, DeviceKind, Engine, RunReport, Strategy};
use sgd_models::Batch;

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};
use crate::table3::HOGBATCH_SIZE;

/// One panel of Fig. 7: two loss-vs-time curves for a task/dataset pair.
#[derive(Clone, Debug)]
pub struct Fig7Panel {
    /// Task name.
    pub task: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Reference optimum (the asymptote).
    pub optimum: f64,
    /// `(seconds, loss)` for synchronous GPU.
    pub sync_gpu: Vec<(f64, f64)>,
    /// `(seconds, loss)` for asynchronous parallel CPU.
    pub async_cpu: Vec<(f64, f64)>,
}

fn curve(r: &RunReport, max_points: usize) -> Vec<(f64, f64)> {
    let pts = r.trace.points();
    let stride = (pts.len() / max_points.max(1)).max(1);
    let mut out: Vec<(f64, f64)> = pts.iter().step_by(stride).map(|&(t, l)| (t, l)).collect();
    if let Some(&last) = pts.last() {
        if out.last() != Some(&last) {
            out.push(last);
        }
    }
    out
}

fn linear_panel<L: sgd_models::LinearLoss>(
    task: &sgd_models::LinearTask<L>,
    batch: &Batch<'_>,
    dataset: &str,
    cfg: &ExperimentConfig,
) -> Fig7Panel {
    let optimum = reference_optimum(task, batch, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);
    let sync_corner = cfg.configuration(DeviceKind::Gpu, Strategy::Sync);
    let sync = Engine::grid_search(&sync_corner, task, batch, optimum, &cfg.grid, &opts);
    let async_corner = cfg.configuration(DeviceKind::CpuPar, Strategy::Hogwild);
    let asyn = Engine::grid_search(&async_corner, task, batch, optimum, &cfg.grid, &opts);
    Fig7Panel {
        task: sgd_models::Task::name(task),
        dataset: dataset.to_string(),
        optimum,
        sync_gpu: curve(&sync, 40),
        async_cpu: curve(&asyn, 40),
    }
}

fn mlp_panel(p: &Prepared, cfg: &ExperimentConfig) -> Fig7Panel {
    let boost = cfg.mlp_epoch_boost.max(1);
    let mut cfg = cfg.clone();
    cfg.max_epochs = cfg.max_epochs.saturating_mul(boost);
    cfg.optimum_epochs = cfg.optimum_epochs.saturating_mul((boost / 2).max(1));
    cfg.max_secs *= boost as f64;
    let cfg = &cfg;
    let task = p.mlp_task(cfg.seed);
    let full = p.mlp_batch();
    let optimum = reference_optimum(&task, &full, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);
    let sync_corner = cfg.configuration(DeviceKind::Gpu, Strategy::Sync);
    let sync = Engine::grid_search(&sync_corner, &task, &full, optimum, &cfg.grid, &opts);
    let async_corner =
        cfg.configuration(DeviceKind::CpuPar, Strategy::Hogbatch { batch_size: HOGBATCH_SIZE });
    let asyn = Engine::grid_search(&async_corner, &task, &full, optimum, &cfg.grid, &opts);
    Fig7Panel {
        task: "MLP",
        dataset: p.name().to_string(),
        optimum,
        sync_gpu: curve(&sync, 40),
        async_cpu: curve(&asyn, 40),
    }
}

/// All panels (LR, SVM, MLP x selected datasets).
pub fn panels(cfg: &ExperimentConfig) -> Vec<Fig7Panel> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        out.push(linear_panel(&sgd_models::lr(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(linear_panel(&sgd_models::svm(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(mlp_panel(&p, cfg));
    }
    out
}

/// Renders each panel as two aligned `time loss` series.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Fig. 7: time to convergence, synchronous GPU vs asynchronous CPU\n");
    for p in panels(cfg) {
        out.push_str(&format!("\n== {} / {} (optimum {:.6}) ==\n", p.task, p.dataset, p.optimum));
        out.push_str("  sync-gpu:  ");
        for (t, l) in &p.sync_gpu {
            out.push_str(&format!("({t:.4},{l:.4}) "));
        }
        out.push_str("\n  async-cpu: ");
        for (t, l) in &p.async_cpu {
            out.push_str(&format!("({t:.4},{l:.4}) "));
        }
        out.push('\n');
        let w = |c: &Vec<(f64, f64)>| c.last().map(|&(_, l)| l).unwrap_or(f64::INFINITY);
        let winner = if w(&p.sync_gpu) < w(&p.async_cpu) { "sync-gpu" } else { "async-cpu" };
        out.push_str(&format!("  lower final loss: {winner}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panels_have_both_curves() {
        let cfg = ExperimentConfig::smoke();
        let ps = panels(&cfg);
        assert_eq!(ps.len(), 3); // LR, SVM, MLP on w8a
        for p in &ps {
            assert!(p.sync_gpu.len() >= 2, "{}", p.task);
            assert!(p.async_cpu.len() >= 2, "{}", p.task);
            // Curves start at time zero with the same initial loss.
            assert_eq!(p.sync_gpu[0].0, 0.0);
            assert_eq!(p.async_cpu[0].0, 0.0);
            assert!((p.sync_gpu[0].1 - p.async_cpu[0].1).abs() < 1e-9);
        }
    }

    #[test]
    fn curve_downsamples_and_keeps_last() {
        let mut trace = sgd_core::LossTrace::new();
        for i in 0..100 {
            trace.push(i as f64, 1.0 / (i + 1) as f64);
        }
        let rep = RunReport {
            label: "x".into(),
            device: DeviceKind::CpuSeq,
            step_size: 1.0,
            opt_seconds: 99.0,
            trace,
            timed_out: false,
            metrics: sgd_core::RunMetrics::default(),
        };
        let c = curve(&rep, 10);
        assert!(c.len() <= 12);
        assert_eq!(c.last().expect("nonempty").0, 99.0);
    }
}
