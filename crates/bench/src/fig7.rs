//! Fig. 7 — loss versus time: synchronous GPU against asynchronous CPU.
//!
//! The direct comparison between the two per-strategy optimal
//! configurations, with identical hyper-parameters and initialization.
//! This is essentially batch GD (sync GPU) against stochastic GD (async
//! CPU), so the winner is task- and dataset-dependent.

use sgd_core::{reference_optimum, DeviceKind, Engine, RunOutcome, RunReport, Strategy};
use sgd_models::Batch;

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};
use crate::table3::HOGBATCH_SIZE;

/// One panel of Fig. 7: two loss-vs-time curves for a task/dataset pair.
#[derive(Clone, Debug)]
pub struct Fig7Panel {
    /// Task name.
    pub task: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Reference optimum (the asymptote).
    pub optimum: f64,
    /// `(seconds, loss)` for synchronous GPU.
    pub sync_gpu: Vec<(f64, f64)>,
    /// `(seconds, loss)` for asynchronous parallel CPU.
    pub async_cpu: Vec<(f64, f64)>,
    /// Outcome of the synchronous GPU run.
    pub sync_outcome: RunOutcome,
    /// Outcome of the asynchronous CPU run.
    pub async_outcome: RunOutcome,
}

/// NaN-safe final loss of a curve: a diverged run never wins the panel no
/// matter what its (possibly NaN) tail looks like.
fn final_loss(curve: &[(f64, f64)], outcome: RunOutcome) -> f64 {
    if outcome.is_diverged() {
        return f64::INFINITY;
    }
    match curve.last() {
        Some(&(_, l)) if l.is_finite() => l,
        _ => f64::INFINITY,
    }
}

/// Winner label for one panel, robust to diverged/NaN curves.
pub fn winner(p: &Fig7Panel) -> &'static str {
    let s = final_loss(&p.sync_gpu, p.sync_outcome);
    let a = final_loss(&p.async_cpu, p.async_outcome);
    if s.is_infinite() && a.is_infinite() {
        "neither (both diverged)"
    } else if s < a {
        "sync-gpu"
    } else {
        "async-cpu"
    }
}

fn curve(r: &RunReport, max_points: usize) -> Vec<(f64, f64)> {
    let pts = r.trace.points();
    let stride = (pts.len() / max_points.max(1)).max(1);
    let mut out: Vec<(f64, f64)> = pts.iter().step_by(stride).map(|&(t, l)| (t, l)).collect();
    if let Some(&last) = pts.last() {
        if out.last() != Some(&last) {
            out.push(last);
        }
    }
    out
}

fn linear_panel<L: sgd_models::LinearLoss>(
    task: &sgd_models::LinearTask<L>,
    batch: &Batch<'_>,
    dataset: &str,
    cfg: &ExperimentConfig,
) -> Fig7Panel {
    let optimum = reference_optimum(task, batch, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);
    let sync_corner = cfg.configuration(DeviceKind::Gpu, Strategy::Sync);
    let sync = Engine::grid_search(&sync_corner, task, batch, optimum, &cfg.grid, &opts);
    let async_corner = cfg.configuration(DeviceKind::CpuPar, Strategy::Hogwild);
    let asyn = Engine::grid_search(&async_corner, task, batch, optimum, &cfg.grid, &opts);
    Fig7Panel {
        task: sgd_models::Task::name(task),
        dataset: dataset.to_string(),
        optimum,
        sync_gpu: curve(&sync, 40),
        async_cpu: curve(&asyn, 40),
        sync_outcome: sync.outcome,
        async_outcome: asyn.outcome,
    }
}

fn mlp_panel(p: &Prepared, cfg: &ExperimentConfig) -> Fig7Panel {
    let boost = cfg.mlp_epoch_boost.max(1);
    let mut cfg = cfg.clone();
    cfg.max_epochs = cfg.max_epochs.saturating_mul(boost);
    cfg.optimum_epochs = cfg.optimum_epochs.saturating_mul((boost / 2).max(1));
    cfg.max_secs *= boost as f64;
    let cfg = &cfg;
    let task = p.mlp_task(cfg.seed);
    let full = p.mlp_batch();
    let optimum = reference_optimum(&task, &full, cfg.optimum_epochs);
    let mut opts = cfg.run_options();
    opts.target_loss = Some(optimum);
    let sync_corner = cfg.configuration(DeviceKind::Gpu, Strategy::Sync);
    let sync = Engine::grid_search(&sync_corner, &task, &full, optimum, &cfg.grid, &opts);
    let async_corner =
        cfg.configuration(DeviceKind::CpuPar, Strategy::Hogbatch { batch_size: HOGBATCH_SIZE });
    let asyn = Engine::grid_search(&async_corner, &task, &full, optimum, &cfg.grid, &opts);
    Fig7Panel {
        task: "MLP",
        dataset: p.name().to_string(),
        optimum,
        sync_gpu: curve(&sync, 40),
        async_cpu: curve(&asyn, 40),
        sync_outcome: sync.outcome,
        async_outcome: asyn.outcome,
    }
}

/// All panels (LR, SVM, MLP x selected datasets).
pub fn panels(cfg: &ExperimentConfig) -> Vec<Fig7Panel> {
    let mut out = Vec::new();
    for p in prepare_all(cfg) {
        out.push(linear_panel(&sgd_models::lr(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(linear_panel(&sgd_models::svm(p.ds.d()), &p.linear_batch(), p.name(), cfg));
        out.push(mlp_panel(&p, cfg));
    }
    out
}

/// Renders each panel as two aligned `time loss` series.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Fig. 7: time to convergence, synchronous GPU vs asynchronous CPU\n");
    for p in panels(cfg) {
        out.push_str(&format!("\n== {} / {} (optimum {:.6}) ==\n", p.task, p.dataset, p.optimum));
        out.push_str(&format!("  sync-gpu [{}]:  ", p.sync_outcome.label()));
        for (t, l) in &p.sync_gpu {
            out.push_str(&format!("({t:.4},{l:.4}) "));
        }
        out.push_str(&format!("\n  async-cpu [{}]: ", p.async_outcome.label()));
        for (t, l) in &p.async_cpu {
            out.push_str(&format!("({t:.4},{l:.4}) "));
        }
        out.push('\n');
        out.push_str(&format!("  lower final loss: {}\n", winner(&p)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panels_have_both_curves() {
        let cfg = ExperimentConfig::smoke();
        let ps = panels(&cfg);
        assert_eq!(ps.len(), 3); // LR, SVM, MLP on w8a
        for p in &ps {
            assert!(p.sync_gpu.len() >= 2, "{}", p.task);
            assert!(p.async_cpu.len() >= 2, "{}", p.task);
            // Curves start at time zero with the same initial loss.
            assert_eq!(p.sync_gpu[0].0, 0.0);
            assert_eq!(p.async_cpu[0].0, 0.0);
            assert!((p.sync_gpu[0].1 - p.async_cpu[0].1).abs() < 1e-9);
        }
    }

    #[test]
    fn curve_downsamples_and_keeps_last() {
        let mut trace = sgd_core::LossTrace::new();
        for i in 0..100 {
            trace.push(i as f64, 1.0 / (i + 1) as f64);
        }
        let rep = RunReport {
            label: "x".into(),
            device: DeviceKind::CpuSeq,
            step_size: 1.0,
            opt_seconds: 99.0,
            trace,
            timed_out: false,
            metrics: sgd_core::RunMetrics::default(),
            outcome: RunOutcome::BudgetExhausted,
            best_model: None,
        };
        let c = curve(&rep, 10);
        assert!(c.len() <= 12);
        assert_eq!(c.last().expect("nonempty").0, 99.0);
    }

    #[test]
    fn diverged_curves_never_win_a_panel() {
        // A diverged run's NaN tail used to beat any finite loss because
        // `NaN < x` is false; the winner must be outcome-aware.
        let panel = |sync_o, async_o, sync_last: f64, async_last: f64| Fig7Panel {
            task: "LR",
            dataset: "t".into(),
            optimum: 0.0,
            sync_gpu: vec![(0.0, 1.0), (1.0, sync_last)],
            async_cpu: vec![(0.0, 1.0), (1.0, async_last)],
            sync_outcome: sync_o,
            async_outcome: async_o,
        };
        let b = RunOutcome::BudgetExhausted;
        let d = RunOutcome::Diverged { epoch: 1 };
        assert_eq!(winner(&panel(b, d, 0.5, f64::NAN)), "sync-gpu");
        assert_eq!(winner(&panel(d, b, f64::NAN, 0.5)), "async-cpu");
        assert_eq!(winner(&panel(d, d, f64::NAN, f64::NAN)), "neither (both diverged)");
        assert_eq!(winner(&panel(b, b, 0.2, 0.5)), "sync-gpu");
        assert_eq!(winner(&panel(b, b, 0.5, 0.2)), "async-cpu");
    }
}
