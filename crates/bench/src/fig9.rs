//! Fig. 9 — GPU-over-parallel-CPU hardware-efficiency speedup for the MLP:
//! our synchronous and asynchronous implementations against TensorFlow.

use sgd_core::{DeviceKind, Engine, Strategy};
use sgd_frameworks::run_tensorflow;

use crate::cli::ExperimentConfig;
use crate::prep::{prepare_all, Prepared};
use crate::render::ratio;
use crate::table3::HOGBATCH_SIZE;

/// One bar group of Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Bar {
    /// Dataset name.
    pub dataset: String,
    /// GPU / cpu-par speedup of our synchronous MLP.
    pub ours_sync: f64,
    /// GPU / cpu-par speedup of our asynchronous (Hogbatch) MLP.
    pub ours_async: f64,
    /// GPU / cpu-par speedup of the TensorFlow executor.
    pub tensorflow: f64,
}

fn bar(p: &Prepared, cfg: &ExperimentConfig) -> Fig9Bar {
    let mut opts = cfg.run_options();
    opts.max_epochs = 4;
    opts.target_loss = None;
    let alpha = 0.1;
    let task = p.mlp_task(cfg.seed);
    let full = p.mlp_batch();

    let ours = |device: DeviceKind, strategy: Strategy| {
        let corner = cfg.configuration(device, strategy);
        Engine::run(&corner, &task, &full, alpha, &opts).time_per_epoch()
    };
    let arch = p.profile.mlp_architecture();
    let tf = |device: DeviceKind| {
        let corner = cfg.configuration(device, Strategy::Sync);
        run_tensorflow(&corner, &arch, &p.mlp_x, &p.mlp_y, alpha, &opts).time_per_epoch()
    };
    let hogbatch = || Strategy::Hogbatch { batch_size: HOGBATCH_SIZE };
    let ours_sync_gpu = ours(DeviceKind::Gpu, Strategy::Sync);
    let ours_async_gpu = ours(DeviceKind::Gpu, hogbatch());
    let ours_sync_par = ours(DeviceKind::CpuPar, Strategy::Sync);
    let ours_async_par = ours(DeviceKind::CpuPar, hogbatch());
    let tf_gpu = tf(DeviceKind::Gpu);
    let tf_par = tf(DeviceKind::CpuPar);

    Fig9Bar {
        dataset: p.name().to_string(),
        ours_sync: ratio(ours_sync_par, ours_sync_gpu),
        ours_async: ratio(ours_async_par, ours_async_gpu),
        tensorflow: ratio(tf_par, tf_gpu),
    }
}

/// All bars over the selected datasets.
pub fn bars(cfg: &ExperimentConfig) -> Vec<Fig9Bar> {
    prepare_all(cfg).iter().map(|p| bar(p, cfg)).collect()
}

/// Formats the figure.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9: speedup in hardware efficiency of GPU over parallel CPU (MLP)\n");
    out.push_str(&format!(
        "{:<9} | {:>10} {:>11} {:>11}\n",
        "dataset", "ours-sync", "ours-async", "TensorFlow"
    ));
    for b in bars(cfg) {
        out.push_str(&format!(
            "{:<9} | {:>10.2} {:>11.2} {:>11.2}\n",
            b.dataset, b.ours_sync, b.ours_async, b.tensorflow
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bar_values_positive() {
        let cfg = ExperimentConfig::smoke();
        let bs = bars(&cfg);
        assert_eq!(bs.len(), 1);
        assert!(bs[0].ours_sync > 0.0);
        assert!(bs[0].ours_async > 0.0);
        assert!(bs[0].tensorflow > 0.0);
    }
}
