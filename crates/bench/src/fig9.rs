//! Fig. 9 — GPU-over-parallel-CPU hardware-efficiency speedup for the MLP:
//! our synchronous and asynchronous implementations against TensorFlow.

use sgd_core::{
    make_batches, run_gpu_hogbatch, run_hogbatch, run_hogbatch_modeled, run_sync,
    run_sync_modeled, DeviceKind,
};
use sgd_frameworks::{run_tensorflow_sync, run_tensorflow_sync_modeled};
use sgd_models::{Batch, Examples};

use crate::cli::{ExperimentConfig, TimingMode};
use crate::prep::{prepare_all, Prepared};
use crate::table2::ratio;
use crate::table3::HOGBATCH_SIZE;

/// One bar group of Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Bar {
    /// Dataset name.
    pub dataset: String,
    /// GPU / cpu-par speedup of our synchronous MLP.
    pub ours_sync: f64,
    /// GPU / cpu-par speedup of our asynchronous (Hogbatch) MLP.
    pub ours_async: f64,
    /// GPU / cpu-par speedup of the TensorFlow executor.
    pub tensorflow: f64,
}

fn bar(p: &Prepared, cfg: &ExperimentConfig) -> Fig9Bar {
    let mut opts = cfg.run_options();
    opts.max_epochs = 4;
    opts.target_loss = None;
    let alpha = 0.1;
    let task = p.mlp_task(cfg.seed);
    let full = p.mlp_batch();

    let ours_sync_gpu = run_sync(&task, &full, DeviceKind::Gpu, alpha, &opts).time_per_epoch();

    let owned = make_batches(&p.mlp_x, &p.mlp_y, HOGBATCH_SIZE.min(p.mlp_x.rows().max(1)));
    let batches: Vec<Batch<'_>> =
        owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
    let gopts = cfg.gpu_async_opts();
    let ours_async_gpu =
        run_gpu_hogbatch(&task, &full, &batches, alpha, &opts, &gopts).time_per_epoch();

    let arch = p.profile.mlp_architecture();
    let tf_gpu =
        run_tensorflow_sync(&arch, &p.mlp_x, &p.mlp_y, DeviceKind::Gpu, alpha, &opts).time_per_epoch();

    let (ours_sync_par, ours_async_par, tf_par) = match cfg.timing {
        TimingMode::Wall => (
            run_sync(&task, &full, DeviceKind::CpuPar, alpha, &opts).time_per_epoch(),
            run_hogbatch(&task, &full, &batches, cfg.threads, alpha, &opts).time_per_epoch(),
            run_tensorflow_sync(&arch, &p.mlp_x, &p.mlp_y, DeviceKind::CpuPar, alpha, &opts)
                .time_per_epoch(),
        ),
        TimingMode::Model => (
            run_sync_modeled(&task, &full, &cfg.mc_par(), alpha, &opts).time_per_epoch(),
            run_hogbatch_modeled(&task, &full, &batches, &cfg.mc_par(), alpha, &opts)
                .time_per_epoch(),
            run_tensorflow_sync_modeled(&arch, &p.mlp_x, &p.mlp_y, &cfg.mc_par(), alpha, &opts)
                .time_per_epoch(),
        ),
    };

    Fig9Bar {
        dataset: p.name().to_string(),
        ours_sync: ratio(ours_sync_par, ours_sync_gpu),
        ours_async: ratio(ours_async_par, ours_async_gpu),
        tensorflow: ratio(tf_par, tf_gpu),
    }
}

/// All bars over the selected datasets.
pub fn bars(cfg: &ExperimentConfig) -> Vec<Fig9Bar> {
    prepare_all(cfg).iter().map(|p| bar(p, cfg)).collect()
}

/// Formats the figure.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9: speedup in hardware efficiency of GPU over parallel CPU (MLP)\n");
    out.push_str(&format!(
        "{:<9} | {:>10} {:>11} {:>11}\n",
        "dataset", "ours-sync", "ours-async", "TensorFlow"
    ));
    for b in bars(cfg) {
        out.push_str(&format!(
            "{:<9} | {:>10.2} {:>11.2} {:>11.2}\n",
            b.dataset, b.ours_sync, b.ours_async, b.tensorflow
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bar_values_positive() {
        let cfg = ExperimentConfig::smoke();
        let bs = bars(&cfg);
        assert_eq!(bs.len(), 1);
        assert!(bs[0].ours_sync > 0.0);
        assert!(bs[0].ours_async > 0.0);
        assert!(bs[0].tensorflow > 0.0);
    }
}
