//! Shared experiment configuration and a dependency-free CLI parser.

pub use sgd_core::TimingMode;
use sgd_core::{Configuration, DeviceKind, Strategy, Timing};

/// Configuration shared by every reproduction binary.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Fraction of each dataset's published example count to generate.
    pub scale: f64,
    /// CPU threads for the parallel configurations (the paper's machine
    /// has 56).
    pub threads: usize,
    /// Cap on epochs per run.
    pub max_epochs: usize,
    /// Cap on optimization seconds per run (`∞` rows beyond it).
    pub max_secs: f64,
    /// Step-size grid; defaults to the paper's full `1e-6..1e2` grid so
    /// the reference optimum (computed over the same grid) is always
    /// reachable by the best run.
    pub grid: Vec<f64>,
    /// Epochs of full-batch GD used to estimate the reference optimum.
    pub optimum_epochs: usize,
    /// Restrict to these dataset names (empty = all five).
    pub datasets: Vec<String>,
    /// RNG seed.
    pub seed: u64,
    /// CPU timing source.
    pub timing: TimingMode,
    /// Epoch-budget multiplier for the MLP cells: the fully-connected nets
    /// need an order of magnitude more epochs than the linear tasks.
    pub mlp_epoch_boost: usize,
    /// Thread count for the *modeled* parallel-CPU configuration (the
    /// paper's machine has 56).
    pub model_threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.02,
            threads: sgd_core::RunOptions::default().threads,
            max_epochs: 300,
            max_secs: 10.0,
            grid: sgd_core::step_size_grid(),
            optimum_epochs: 150,
            datasets: vec![],
            seed: 42,
            timing: TimingMode::Model,
            model_threads: 56,
            mlp_epoch_boost: 5,
        }
    }
}

impl ExperimentConfig {
    /// A tiny configuration for smoke tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            scale: 0.001,
            threads: 2,
            max_epochs: 20,
            max_secs: 2.0,
            grid: vec![1.0],
            optimum_epochs: 20,
            datasets: vec!["w8a".into()],
            seed: 42,
            timing: TimingMode::Model,
            model_threads: 56,
            mlp_epoch_boost: 5,
        }
    }

    /// Modeled-CPU configuration for the sequential column (fixed costs
    /// and data-tier cache capacities scaled with the dataset scale).
    pub fn mc_seq(&self) -> sgd_core::CpuModelConfig {
        let mut mc = sgd_core::CpuModelConfig::paper_machine(1);
        mc.spec = mc.spec.scaled(self.scale);
        mc
    }

    /// Modeled-CPU configuration for the parallel column.
    pub fn mc_par(&self) -> sgd_core::CpuModelConfig {
        let mut mc = sgd_core::CpuModelConfig::paper_machine(self.model_threads);
        mc.spec = mc.spec.scaled(self.scale);
        mc
    }

    /// GPU asynchronous options with host-dispatch overhead scaled like
    /// the other fixed costs.
    pub fn gpu_async_opts(&self) -> sgd_core::GpuAsyncOptions {
        let mut g = sgd_core::GpuAsyncOptions::default();
        g.host_sync_overhead_secs *= self.scale;
        g
    }

    /// The engine [`Configuration`] for one cube corner under this
    /// experiment's timing mode: CPU corners follow `--timing` (modeled
    /// time describes `--model-threads` workers for `cpu-par`), the GPU is
    /// always simulated in wall terms.
    pub fn configuration(&self, device: DeviceKind, strategy: Strategy) -> Configuration {
        let timing = match device {
            DeviceKind::Gpu => Timing::Wall,
            DeviceKind::CpuSeq => self.timing.timing(|| self.mc_seq()),
            DeviceKind::CpuPar => self.timing.timing(|| self.mc_par()),
        };
        Configuration::new(device, strategy)
            .with_timing(timing)
            .with_gpu_async(self.gpu_async_opts())
    }

    /// Parses `--key value` style arguments:
    /// `--scale f --threads n --max-epochs n --max-secs f --full-grid
    /// --datasets a,b --seed n`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = ExperimentConfig::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--scale" => cfg.scale = parse(&value("--scale")?)?,
                "--threads" => cfg.threads = parse(&value("--threads")?)?,
                "--max-epochs" => cfg.max_epochs = parse(&value("--max-epochs")?)?,
                "--max-secs" => cfg.max_secs = parse(&value("--max-secs")?)?,
                "--optimum-epochs" => cfg.optimum_epochs = parse(&value("--optimum-epochs")?)?,
                "--seed" => cfg.seed = parse(&value("--seed")?)?,
                "--model-threads" => cfg.model_threads = parse(&value("--model-threads")?)?,
                "--mlp-epoch-boost" => cfg.mlp_epoch_boost = parse(&value("--mlp-epoch-boost")?)?,
                "--timing" => {
                    cfg.timing = match value("--timing")?.as_str() {
                        "model" => TimingMode::Model,
                        "wall" => TimingMode::Wall,
                        other => return Err(format!("unknown timing mode '{other}' (model|wall)")),
                    }
                }
                "--full-grid" => cfg.grid = sgd_core::step_size_grid(),
                "--datasets" => {
                    cfg.datasets = value("--datasets")?.split(',').map(str::to_string).collect()
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
            }
        }
        if cfg.scale <= 0.0 || cfg.scale > 1.0 {
            return Err("--scale must be in (0, 1]".into());
        }
        let known: Vec<&str> = sgd_datagen::all_profiles().iter().map(|p| p.name).collect();
        for d in &cfg.datasets {
            if !known.contains(&d.as_str()) {
                return Err(format!("unknown dataset '{d}' (known: {})", known.join(", ")));
            }
        }
        Ok(cfg)
    }

    /// Base `RunOptions` derived from this configuration.
    pub fn run_options(&self) -> sgd_core::RunOptions {
        sgd_core::RunOptions {
            max_epochs: self.max_epochs,
            max_secs: self.max_secs,
            target_loss: None,
            threads: self.threads,
            seed: self.seed,
            gpu_spec: Some(sgd_gpusim::DeviceSpec::tesla_k80().scaled(self.scale)),
            plateau: Some((50, 1e-4)),
            faults: sgd_core::FaultPlan::default(),
            tier: sgd_linalg::KernelTier::Scalar,
        }
    }

    /// `true` when `name` is selected by `--datasets` (or no filter set).
    pub fn wants(&self, name: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == name)
    }
}

const USAGE: &str = "usage: <experiment> [--scale f] [--threads n] [--max-epochs n] \
[--max-secs f] [--optimum-epochs n] [--full-grid] [--datasets a,b,c] [--seed n] \
[--timing model|wall] [--model-threads n]";

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("cannot parse '{s}': {e}"))
}

/// Entry-point helper for the reproduction binaries: parses CLI args and
/// exits with the usage string on error.
pub fn config_from_env() -> ExperimentConfig {
    match ExperimentConfig::from_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn defaults_when_no_args() {
        let cfg = ExperimentConfig::from_args(args("")).expect("empty args valid");
        assert!(cfg.scale > 0.0);
        assert!(cfg.wants("covtype"));
    }

    #[test]
    fn parses_flags() {
        let cfg = ExperimentConfig::from_args(args(
            "--scale 0.1 --threads 4 --max-epochs 7 --datasets w8a,news --seed 9",
        ))
        .expect("valid flags");
        assert!((cfg.scale - 0.1).abs() < 1e-12);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.max_epochs, 7);
        assert!(cfg.wants("w8a"));
        assert!(cfg.wants("news"));
        assert!(!cfg.wants("covtype"));
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn full_grid_restores_nine_points() {
        let cfg = ExperimentConfig::from_args(args("--full-grid")).expect("valid");
        assert_eq!(cfg.grid.len(), 9);
    }

    #[test]
    fn timing_mode_parses() {
        let cfg = ExperimentConfig::from_args(args("--timing wall")).expect("valid");
        assert_eq!(cfg.timing, TimingMode::Wall);
        let cfg =
            ExperimentConfig::from_args(args("--timing model --model-threads 8")).expect("valid");
        assert_eq!(cfg.timing, TimingMode::Model);
        assert_eq!(cfg.model_threads, 8);
        assert!(ExperimentConfig::from_args(args("--timing bogus")).is_err());
    }

    #[test]
    fn configuration_maps_devices_to_timing() {
        let cfg = ExperimentConfig::smoke(); // timing: Model
        let c = cfg.configuration(DeviceKind::CpuPar, Strategy::Sync);
        assert!(matches!(c.timing, Timing::Modeled(ref mc) if mc.threads == cfg.model_threads));
        let c = cfg.configuration(DeviceKind::CpuSeq, Strategy::Sync);
        assert!(matches!(c.timing, Timing::Modeled(ref mc) if mc.threads == 1));
        // The GPU is always simulated; modeled CPU timing never applies.
        let c = cfg.configuration(DeviceKind::Gpu, Strategy::Sync);
        assert!(matches!(c.timing, Timing::Wall));
        let mut wall = cfg;
        wall.timing = TimingMode::Wall;
        let c = wall.configuration(DeviceKind::CpuPar, Strategy::Sync);
        assert!(matches!(c.timing, Timing::Wall));
    }

    #[test]
    fn rejects_unknown_flag_and_bad_scale() {
        assert!(ExperimentConfig::from_args(args("--bogus 1")).is_err());
        assert!(ExperimentConfig::from_args(args("--scale 0")).is_err());
        assert!(ExperimentConfig::from_args(args("--scale x")).is_err());
        assert!(ExperimentConfig::from_args(args("--threads")).is_err());
        let err = ExperimentConfig::from_args(args("--datasets w8a,nosuch")).unwrap_err();
        assert!(err.contains("unknown dataset 'nosuch'"), "{err}");
    }
}
