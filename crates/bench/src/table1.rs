//! Table I — the dataset inventory.

use sgd_datagen::{table1_row, Table1Row};

use crate::cli::ExperimentConfig;
use crate::prep::prepare_all;

/// Computes the Table I rows for the generated (scaled) datasets.
pub fn rows(cfg: &ExperimentConfig) -> Vec<Table1Row> {
    prepare_all(cfg).iter().map(|p| table1_row(&p.ds, &p.profile)).collect()
}

/// Formats the full table like the paper.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table I: experimental datasets (scale = {} of published sizes)\n",
        cfg.scale
    ));
    out.push_str(&format!(
        "{:<9} {:>9} {:>9} {:>6} {:>8} {:>7}  {:>10} / {:>12}  {:>8}  {:>8}  {}\n",
        "dataset",
        "#examples",
        "#features",
        "min",
        "avg",
        "max",
        "size(s)",
        "size(d)",
        "LR/SVM sp",
        "MLP sp",
        "MLP arch"
    ));
    for r in rows(cfg) {
        out.push_str(&r.formatted());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_selected_dataset() {
        let out = render(&ExperimentConfig::smoke());
        assert!(out.contains("w8a"));
        assert!(out.contains("300-10-5-2"));
        assert!(!out.contains("covtype"));
    }

    #[test]
    fn rows_match_scale() {
        let cfg = ExperimentConfig::smoke();
        let rs = rows(&cfg);
        assert_eq!(rs.len(), 1);
        // 64,700 examples at 0.001 scale -> 64.
        assert_eq!(rs[0].examples, 64);
        assert_eq!(rs[0].features, 300);
    }
}
