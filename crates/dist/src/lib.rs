//! Parameter-server scale-out with elastic workers.
//!
//! The single-node study answers the paper's question for one machine;
//! this crate scales the same strategies *out*: a [`ParamServer`] holds
//! the authoritative, versioned model, and N workers pull it, compute
//! minibatch gradients over leased data shards through the shared
//! `ComputeBackend` kernel vocabulary, and push version-tagged gradients
//! back. Two consistency modes mirror the paper's sync/async axis at
//! cluster scale:
//!
//! * **Sync** (ElasticDL-style): the server accumulates gradients tagged
//!   with the current model version and applies their average once
//!   `grads_to_wait` fresh ones arrived; a gradient computed against a
//!   superseded version is rejected and the worker recomputes against
//!   the fresh model.
//! * **Async** (parameter-server HOGWILD!): every gradient applies
//!   immediately, subject to a `max_staleness` bound — beyond it the
//!   push is rejected or down-weighted by `1/(1 + staleness)`,
//!   configurable.
//!
//! Elastic membership is the headline: workers join, leave, die, and
//! rejoin mid-run, driven by the same `sgd-core` [`sgd_core::FaultPlan`]
//! as the single-node fault experiments. A dead worker's outstanding
//! shard leases return to the pool and are reassigned; a joining worker
//! pulls the current model and starts leasing. The sync quorum is
//! elastic too: the server waits for `min(grads_to_wait, live workers)`
//! gradients, so a shrunken cluster keeps making progress.
//!
//! Two transports sit behind one [`Transport`] trait: the in-process
//! one drives the deterministic modeled-time cluster
//! ([`run_dist_modeled`], bit-pinned per seed — the distributed
//! counterpart of `sgd-core`'s modeled runners), and a loopback-TCP one
//! reuses `sgd-serve`'s bounded line framing for a real multi-connection
//! run ([`wire::DistWireServer`]).

pub mod modeled;
pub mod server;
pub mod shard;
pub mod transport;
pub mod wire;
pub mod worker;

pub use modeled::{run_dist_modeled, DistConfig};
pub use server::{ConsistencyMode, LeaseGrant, ParamServer, PushOutcome, ServerStats, StalePolicy};
pub use shard::{make_shards, Shard};
pub use transport::{InProcTransport, Reply, Request, Transport, TransportError};
pub use wire::{run_dist_wire, DistWireClient, DistWireServer};
pub use worker::{DistWorker, GradJob};
