//! The parameter server: a passive, clock-free state machine.
//!
//! [`ParamServer`] owns the authoritative model and its version, the
//! shard-lease table, and the consistency policy. It performs no I/O
//! and reads no clock — every transition is a pure function of the
//! request sequence, which is what lets the modeled-time driver replay
//! a cluster bit-for-bit and the TCP front-end share the exact same
//! trajectory. Both transports wrap one server in a `Mutex` (the
//! `server` class of the analyzer's canonical lock order).
//!
//! ## Versioning protocol
//!
//! The model version starts at 0 and increments on every applied
//! update. A worker pulls `(version, model)`, computes a gradient, and
//! pushes it tagged with that version. In sync mode the tag must equal
//! the current version (gradient freshness); in async mode the tag may
//! trail by at most `max_staleness` applies.
//!
//! ## Shard leases
//!
//! Each epoch the shard table resets to `Pending` in a seeded order.
//! `lease` hands the next pending shard to a worker (`Pending ->
//! Leased(worker)`); an accepted push completes it (`-> Done`); a
//! worker's departure revokes its leases (`Leased -> Pending`), making
//! them available for reassignment. The epoch is data-complete when
//! every shard is `Done`.

use sgd_linalg::Scalar;

/// How the server merges incoming gradients into the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsistencyMode {
    /// ElasticDL-style synchronous aggregation: average
    /// `min(grads_to_wait, live workers)` fresh gradients per update;
    /// stale-version pushes are rejected.
    Sync {
        /// Gradients to accumulate before applying (clamped to the live
        /// worker count, so an elastic cluster never stalls).
        grads_to_wait: usize,
    },
    /// Asynchronous parameter-server updates with bounded staleness.
    Async {
        /// Largest version lag an accepted push may have.
        max_staleness: u64,
        /// What happens to a push beyond the bound.
        policy: StalePolicy,
    },
}

impl ConsistencyMode {
    /// Short label for reports (`sync-w2`, `async-s4-reject`).
    pub fn label(&self) -> String {
        match self {
            ConsistencyMode::Sync { grads_to_wait } => format!("sync-w{grads_to_wait}"),
            ConsistencyMode::Async { max_staleness, policy } => {
                let p = match policy {
                    StalePolicy::Reject => "reject",
                    StalePolicy::DownWeight => "dw",
                };
                format!("async-s{max_staleness}-{p}")
            }
        }
    }
}

/// Treatment of an async push whose staleness exceeds the bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StalePolicy {
    /// Reject it; the worker recomputes against the fresh model.
    Reject,
    /// Apply it scaled by `1 / (1 + staleness)`.
    DownWeight,
}

/// What happened to one pushed gradient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The push (alone or completing a sync quorum) updated the model;
    /// carries the new version.
    Applied {
        /// Model version after the update.
        version: u64,
    },
    /// Sync mode: accepted into the pending quorum, model unchanged.
    Accumulated,
    /// Rejected as stale; the shard lease stands and the worker must
    /// recompute against the current version.
    RejectedStale {
        /// The version the worker should pull.
        current: u64,
    },
    /// Async `DownWeight`: applied with weight `1 / (1 + staleness)`.
    DownWeighted {
        /// Model version after the (scaled) update.
        version: u64,
        /// The staleness that triggered the down-weighting.
        staleness: u64,
    },
}

/// Reply to a lease request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseGrant {
    /// Work on this shard.
    Shard(usize),
    /// No pending shard right now (epoch drained or all leased); retry
    /// after the next membership or epoch transition.
    Drained,
    /// The run is over; disconnect.
    Shutdown,
}

/// Monotonic server-side counters (for reports and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Model updates applied (sync quorums + async pushes).
    pub applied: u64,
    /// Sync pushes accepted into a quorum without applying yet.
    pub accumulated: u64,
    /// Pushes rejected for staleness.
    pub rejected: u64,
    /// Async pushes applied with a down-weight.
    pub downweighted: u64,
    /// Shard leases revoked by worker departures (reassignments).
    pub reassigned: u64,
    /// Workers admitted.
    pub joins: u64,
    /// Workers departed (voluntarily or by death).
    pub leaves: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardState {
    Pending,
    Leased(usize),
    Done,
}

/// Per-epoch shard-lease table (see the module docs for the state
/// machine).
struct ShardLeases {
    state: Vec<ShardState>,
    /// Lease order for the current epoch (a permutation of shard ids).
    order: Vec<usize>,
    done: usize,
}

impl ShardLeases {
    fn new(count: usize) -> Self {
        ShardLeases {
            state: vec![ShardState::Done; count],
            order: (0..count).collect(),
            done: count,
        }
    }

    fn reset(&mut self, order: &[usize]) {
        debug_assert_eq!(order.len(), self.state.len());
        self.order.clear();
        self.order.extend_from_slice(order);
        self.state.fill(ShardState::Pending);
        self.done = 0;
    }

    fn lease(&mut self, worker: usize) -> Option<usize> {
        for &s in &self.order {
            if self.state.get(s).copied() == Some(ShardState::Pending) {
                self.state[s] = ShardState::Leased(worker);
                return Some(s);
            }
        }
        None
    }

    fn complete(&mut self, shard: usize) {
        if let Some(st) = self.state.get_mut(shard) {
            if *st != ShardState::Done {
                *st = ShardState::Done;
                self.done += 1;
            }
        }
    }

    fn revoke(&mut self, worker: usize) -> u64 {
        let mut revoked = 0;
        for st in &mut self.state {
            if *st == ShardState::Leased(worker) {
                *st = ShardState::Pending;
                revoked += 1;
            }
        }
        revoked
    }

    fn all_done(&self) -> bool {
        self.done == self.state.len()
    }
}

/// The authoritative model plus the consistency and membership state
/// machines. See the module docs.
pub struct ParamServer {
    mode: ConsistencyMode,
    alpha: f64,
    version: u64,
    w: Vec<Scalar>,
    /// Sync-mode gradient accumulator (element sums of the pending
    /// quorum) and its size.
    acc: Vec<Scalar>,
    pending: usize,
    live: usize,
    leases: ShardLeases,
    stats: ServerStats,
    shutdown: bool,
}

impl ParamServer {
    /// A server owning `model` at version 0, updating with step size
    /// `alpha` under `mode`, over `shards` data shards (the lease table
    /// starts drained; call [`ParamServer::begin_epoch`]).
    pub fn new(model: Vec<Scalar>, alpha: f64, mode: ConsistencyMode, shards: usize) -> Self {
        let dim = model.len();
        ParamServer {
            mode,
            alpha,
            version: 0,
            w: model,
            acc: vec![0.0; dim],
            pending: 0,
            live: 0,
            leases: ShardLeases::new(shards),
            stats: ServerStats::default(),
            shutdown: false,
        }
    }

    /// Current model version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The authoritative model (borrow; transports copy it into
    /// replies).
    pub fn model(&self) -> &[Scalar] {
        &self.w
    }

    /// Live (joined, not departed) worker count.
    pub fn live_workers(&self) -> usize {
        self.live
    }

    /// Server-side counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Admits a worker; returns the `(version, model)` it starts from.
    pub fn join(&mut self, _worker: usize) -> (u64, &[Scalar]) {
        self.live += 1;
        self.stats.joins += 1;
        (self.version, &self.w)
    }

    /// Removes a worker (voluntary leave or detected death) and returns
    /// its outstanding leases to the pool for reassignment.
    pub fn leave(&mut self, worker: usize) {
        self.live = self.live.saturating_sub(1);
        self.stats.leaves += 1;
        let revoked = self.leases.revoke(worker);
        self.stats.reassigned += revoked;
        // A shrunken cluster must not stall a sync quorum sized for the
        // old membership: if the pending set already satisfies the new
        // effective quorum, apply it now.
        if self.pending >= self.effective_wait() && self.pending > 0 {
            self.apply_pending();
        }
    }

    /// The current `(version, model)` snapshot.
    pub fn pull(&self) -> (u64, &[Scalar]) {
        (self.version, &self.w)
    }

    /// Hands `worker` the next pending shard, if any.
    pub fn lease(&mut self, worker: usize) -> LeaseGrant {
        if self.shutdown {
            return LeaseGrant::Shutdown;
        }
        match self.leases.lease(worker) {
            Some(s) => LeaseGrant::Shard(s),
            None => LeaseGrant::Drained,
        }
    }

    /// Starts an epoch: every shard becomes pending, leased in `order`
    /// (a permutation of `0..shards`).
    pub fn begin_epoch(&mut self, order: &[usize]) {
        self.leases.reset(order);
    }

    /// `true` when every shard of the current epoch is done.
    pub fn epoch_done(&self) -> bool {
        self.leases.all_done()
    }

    /// Sync mode: applies a partial quorum at the epoch boundary (all
    /// shards done but fewer than `grads_to_wait` gradients pending), so
    /// no accepted gradient is ever lost. No-op when nothing is pending.
    pub fn flush_pending(&mut self) {
        if self.pending > 0 {
            self.apply_pending();
        }
    }

    /// Marks the run over: subsequent leases reply `Shutdown`.
    pub fn initiate_shutdown(&mut self) {
        self.shutdown = true;
    }

    /// The elastic sync quorum: `min(grads_to_wait, live)`, at least 1.
    fn effective_wait(&self) -> usize {
        match self.mode {
            ConsistencyMode::Sync { grads_to_wait } => grads_to_wait.min(self.live.max(1)).max(1),
            ConsistencyMode::Async { .. } => 1,
        }
    }

    /// One pushed gradient, tagged with the version it was computed
    /// against. The server never allocates here: accumulation and
    /// application are in-place over preallocated buffers.
    // analyzer: root(hot-path-alloc) -- per-gradient hot path shared by both transports; accumulation and application must stay in-place
    pub fn push(
        &mut self,
        _worker: usize,
        version: u64,
        shard: usize,
        grad: &[Scalar],
    ) -> PushOutcome {
        match self.mode {
            ConsistencyMode::Sync { .. } => {
                if version != self.version {
                    self.stats.rejected += 1;
                    return PushOutcome::RejectedStale { current: self.version };
                }
                for (a, &g) in self.acc.iter_mut().zip(grad) {
                    *a += g;
                }
                self.pending += 1;
                self.leases.complete(shard);
                if self.pending >= self.effective_wait() {
                    self.apply_pending();
                    PushOutcome::Applied { version: self.version }
                } else {
                    self.stats.accumulated += 1;
                    PushOutcome::Accumulated
                }
            }
            ConsistencyMode::Async { max_staleness, policy } => {
                let staleness = self.version.saturating_sub(version);
                if staleness > max_staleness {
                    match policy {
                        StalePolicy::Reject => {
                            self.stats.rejected += 1;
                            return PushOutcome::RejectedStale { current: self.version };
                        }
                        StalePolicy::DownWeight => {
                            let scale = 1.0 / (1.0 + staleness as f64);
                            let a = -self.alpha * scale;
                            for (w, &g) in self.w.iter_mut().zip(grad) {
                                *w += a * g;
                            }
                            self.version += 1;
                            self.stats.downweighted += 1;
                            self.stats.applied += 1;
                            self.leases.complete(shard);
                            return PushOutcome::DownWeighted { version: self.version, staleness };
                        }
                    }
                }
                let a = -self.alpha;
                for (w, &g) in self.w.iter_mut().zip(grad) {
                    *w += a * g;
                }
                self.version += 1;
                self.stats.applied += 1;
                self.leases.complete(shard);
                PushOutcome::Applied { version: self.version }
            }
        }
    }

    /// Applies the pending sync quorum: `w -= alpha * mean(grads)`.
    /// With a quorum of 1 the mean is the gradient bitwise (`x / 1.0 ==
    /// x`), pinning the 1-worker trajectory to the single-node sync
    /// runner's `axpy(-alpha, g, w)`.
    fn apply_pending(&mut self) {
        let n = self.pending as f64;
        let a = -self.alpha;
        for (w, acc) in self.w.iter_mut().zip(self.acc.iter_mut()) {
            *w += a * (*acc / n);
            *acc = 0.0;
        }
        self.pending = 0;
        self.version += 1;
        self.stats.applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(mode: ConsistencyMode, shards: usize) -> ParamServer {
        ParamServer::new(vec![0.0; 4], 0.5, mode, shards)
    }

    fn order(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn sync_waits_for_the_quorum_then_averages() {
        let mut s = server(ConsistencyMode::Sync { grads_to_wait: 2 }, 2);
        s.join(0);
        s.join(1);
        s.begin_epoch(&order(2));
        assert_eq!(s.lease(0), LeaseGrant::Shard(0));
        assert_eq!(s.lease(1), LeaseGrant::Shard(1));
        assert_eq!(s.push(0, 0, 0, &[2.0, 0.0, 0.0, 0.0]), PushOutcome::Accumulated);
        assert_eq!(s.version(), 0, "no apply before the quorum");
        assert_eq!(s.push(1, 0, 1, &[0.0, 2.0, 0.0, 0.0]), PushOutcome::Applied { version: 1 });
        // Mean of the two gradients, scaled by -alpha = -0.5.
        assert_eq!(s.model(), &[-0.5, -0.5, 0.0, 0.0]);
        assert!(s.epoch_done());
    }

    #[test]
    fn sync_rejects_stale_versions_and_keeps_the_lease() {
        let mut s = server(ConsistencyMode::Sync { grads_to_wait: 1 }, 2);
        s.join(0);
        s.join(1);
        s.begin_epoch(&order(2));
        assert_eq!(s.lease(0), LeaseGrant::Shard(0));
        assert_eq!(s.lease(1), LeaseGrant::Shard(1));
        assert_eq!(s.push(0, 0, 0, &[1.0; 4]), PushOutcome::Applied { version: 1 });
        // Worker 1 computed against version 0 -> rejected, shard 1 still
        // its lease, epoch not done.
        assert_eq!(s.push(1, 0, 1, &[1.0; 4]), PushOutcome::RejectedStale { current: 1 });
        assert!(!s.epoch_done());
        assert_eq!(s.stats().rejected, 1);
        // Recompute at the fresh version lands.
        assert_eq!(s.push(1, 1, 1, &[1.0; 4]), PushOutcome::Applied { version: 2 });
        assert!(s.epoch_done());
    }

    #[test]
    fn async_applies_immediately_and_bounds_staleness() {
        let mut s =
            server(ConsistencyMode::Async { max_staleness: 1, policy: StalePolicy::Reject }, 3);
        s.join(0);
        s.begin_epoch(&order(3));
        assert_eq!(s.push(0, 0, 0, &[1.0; 4]), PushOutcome::Applied { version: 1 });
        // Staleness 1 (computed at 0, current 1): within the bound.
        assert_eq!(s.push(0, 0, 1, &[1.0; 4]), PushOutcome::Applied { version: 2 });
        // Staleness 2: beyond the bound -> rejected.
        assert_eq!(s.push(0, 0, 2, &[1.0; 4]), PushOutcome::RejectedStale { current: 2 });
        assert_eq!(s.stats().rejected, 1);
    }

    #[test]
    fn async_downweight_scales_by_staleness() {
        let mut s =
            server(ConsistencyMode::Async { max_staleness: 0, policy: StalePolicy::DownWeight }, 3);
        s.join(0);
        s.begin_epoch(&order(3));
        assert_eq!(s.push(0, 0, 0, &[1.0; 4]), PushOutcome::Applied { version: 1 });
        // Staleness 1 beyond bound 0: applied at weight 1/2.
        let out = s.push(0, 0, 1, &[1.0; 4]);
        assert_eq!(out, PushOutcome::DownWeighted { version: 2, staleness: 1 });
        // -0.5 (full) + -0.25 (half) = -0.75.
        assert_eq!(s.model(), &[-0.75; 4]);
    }

    #[test]
    fn leave_revokes_leases_for_reassignment() {
        let mut s = server(ConsistencyMode::Sync { grads_to_wait: 1 }, 2);
        s.join(0);
        s.join(1);
        s.begin_epoch(&order(2));
        assert_eq!(s.lease(0), LeaseGrant::Shard(0));
        assert_eq!(s.lease(1), LeaseGrant::Shard(1));
        assert_eq!(s.lease(0), LeaseGrant::Drained, "everything leased");
        s.leave(1);
        assert_eq!(s.stats().reassigned, 1);
        assert_eq!(s.lease(0), LeaseGrant::Shard(1), "revoked shard is pending again");
        assert_eq!(s.live_workers(), 1);
    }

    #[test]
    fn leave_shrinks_the_sync_quorum_and_releases_a_pending_group() {
        let mut s = server(ConsistencyMode::Sync { grads_to_wait: 2 }, 2);
        s.join(0);
        s.join(1);
        s.begin_epoch(&order(2));
        assert_eq!(s.lease(0), LeaseGrant::Shard(0));
        assert_eq!(s.push(0, 0, 0, &[1.0; 4]), PushOutcome::Accumulated);
        // The second quorum member dies: the survivor's gradient must not
        // be stranded — the shrunken quorum (min(2, 1) = 1) applies it.
        s.leave(1);
        assert_eq!(s.version(), 1, "pending group applied on membership shrink");
        assert_eq!(s.model(), &[-0.5; 4]);
    }

    #[test]
    fn flush_applies_a_partial_quorum_at_epoch_end() {
        let mut s = server(ConsistencyMode::Sync { grads_to_wait: 3 }, 1);
        s.join(0);
        s.join(1);
        s.join(2);
        s.begin_epoch(&order(1));
        assert_eq!(s.push(0, 0, 0, &[3.0; 4]), PushOutcome::Accumulated);
        assert!(s.epoch_done(), "single shard done");
        s.flush_pending();
        assert_eq!(s.version(), 1);
        assert_eq!(s.model(), &[-1.5; 4], "partial mean over 1 gradient");
    }

    #[test]
    fn shutdown_turns_leases_into_shutdown() {
        let mut s = server(ConsistencyMode::Sync { grads_to_wait: 1 }, 1);
        s.join(0);
        s.begin_epoch(&order(1));
        s.initiate_shutdown();
        assert_eq!(s.lease(0), LeaseGrant::Shutdown);
    }
}
