//! Loopback-TCP transport for the parameter server, reusing
//! `sgd-serve`'s bounded line framing.
//!
//! Protocol: one request per line, one response line per request. Every
//! `f64` crosses the wire as the 16-hex-digit bit pattern of its IEEE
//! encoding (`{:016x}` of `to_bits`), so a value survives the round
//! trip *bitwise* — the property the 1-worker parity pin against the
//! modeled cluster rests on.
//!
//! * `JOIN <worker>` / `PULL` → `MODEL <version> <hex>...`
//! * `LEASE <worker>` → `LEASE SHARD <id>` | `LEASE DRAINED` |
//!   `LEASE SHUTDOWN`
//! * `PUSH <worker> <version> <shard> <hex>...` →
//!   `PUSHED APPLIED <version>` | `PUSHED ACC` | `PUSHED STALE <current>`
//!   | `PUSHED DW <version> <staleness>`
//! * `LEAVE <worker>` → `LEFT`
//! * anything else → `ERR <detail>`
//!
//! Elastic membership at the transport level: a connection that ends —
//! EOF, read timeout, or I/O error — with a `JOIN`ed worker that never
//! sent `LEAVE` is treated as a worker death, and the server revokes
//! its outstanding shard leases so survivors pick the work up. Request
//! semantics are [`serve_request`], the exact state machine the
//! in-process transport drives — the two transports cannot drift.
//!
//! Every wire byte flows through bounded, typed parsing: a malformed
//! line is an `ERR` response, never a panic, and this file is in the
//! analyzer's panic-freedom and indexing-ban scope.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sgd_core::{
    EpochMetrics, LossTrace, NullObserver, Recorder, RunOptions, RunReport, Supervisor,
};
use sgd_linalg::CpuExec;
use sgd_models::{Batch, Task};
use sgd_serve::framing::{is_timeout, lock_tolerant, read_bounded_line, LineRead};

use crate::modeled::{epoch_order, DistConfig};
use crate::server::{LeaseGrant, ParamServer, PushOutcome};
use crate::shard::make_shards;
use crate::transport::{serve_request, Reply, Request, Transport, TransportError};
use crate::worker::{DistWorker, WorkerStep};

/// How often wire-run threads poll for state they wait on (epoch
/// completion, a drained lease pool).
const POLL: Duration = Duration::from_micros(200);

/// The TCP front-end of one [`ParamServer`].
pub struct DistWireServer {
    server: Arc<Mutex<ParamServer>>,
    /// Longest accepted request line, bytes (a model of dimension `d`
    /// takes 17 bytes per weight on the wire).
    pub max_line_bytes: usize,
    /// Read timeout installed on accepted connections; an idle worker
    /// connection past it counts as a death (`None` = wait forever).
    pub read_timeout: Option<Duration>,
}

impl DistWireServer {
    /// A front-end over `server` with defaults sized for models up to
    /// ~250k weights per line.
    pub fn new(server: Arc<Mutex<ParamServer>>) -> Self {
        DistWireServer {
            server,
            max_line_bytes: 4 * 1024 * 1024,
            read_timeout: Some(Duration::from_secs(5)),
        }
    }

    /// The shared server handle.
    pub fn server(&self) -> Arc<Mutex<ParamServer>> {
        Arc::clone(&self.server)
    }

    /// Serves one accepted connection to completion.
    // analyzer: root(panic-freedom) -- wire request entry point: every byte a remote worker sends flows through here
    pub fn handle(&self, stream: TcpStream) -> std::io::Result<usize> {
        stream.set_read_timeout(self.read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.serve_lines(reader, stream)
    }

    /// Accepts `connections` connections and serves each on its own
    /// scoped thread (a worker connection is persistent, so every
    /// connection needs a live thread). Returns total lines handled.
    // analyzer: root(panic-freedom) -- wire request entry point: the accept loop serving untrusted connections
    pub fn serve_connections(
        &self,
        listener: &TcpListener,
        connections: usize,
    ) -> std::io::Result<usize> {
        let handled = Mutex::new(0usize);
        let first_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
        std::thread::scope(|s| {
            for _ in 0..connections {
                let accepted = listener.accept();
                s.spawn(|| match accepted.and_then(|(stream, _addr)| self.handle(stream)) {
                    Ok(h) => *lock_tolerant(&handled) += h,
                    Err(e) => {
                        let mut slot = lock_tolerant(&first_err);
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                });
            }
        });
        let err = lock_tolerant(&first_err).take();
        match err {
            Some(e) => Err(e),
            None => Ok(*lock_tolerant(&handled)),
        }
    }

    /// The transport-agnostic core: one request line in, one response
    /// line out, through a bounded buffer. Ending the stream (EOF,
    /// timeout, or error) with a joined worker that never sent `LEAVE`
    /// revokes that worker's membership and leases — death-on-EOF.
    // analyzer: root(panic-freedom) -- wire request entry point: the per-line protocol core
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> std::io::Result<usize> {
        use std::fmt::Write as _;
        let mut handled = 0;
        let mut line_buf: Vec<u8> = Vec::new();
        let mut response = String::new();
        // The worker this connection JOINed as, and whether it departed
        // cleanly; an unclean end revokes the membership below.
        let mut joined: Option<usize> = None;
        let mut departed = false;
        let outcome = loop {
            let read = match read_bounded_line(&mut reader, self.max_line_bytes, &mut line_buf) {
                Ok(r) => r,
                Err(e) if is_timeout(&e) => break Ok(handled),
                Err(e) => break Err(e),
            };
            response.clear();
            match read {
                None => break Ok(handled),
                Some(LineRead::TooLong) => {
                    let _ =
                        write!(response, "ERR line too long (max {} bytes)", self.max_line_bytes);
                }
                Some(LineRead::Line) => {
                    let line = String::from_utf8_lossy(&line_buf);
                    let line = line.trim_end_matches('\r');
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_request(line) {
                        Ok(req) => {
                            match &req {
                                Request::Join { worker } => {
                                    joined = Some(*worker);
                                    departed = false;
                                }
                                Request::Leave { worker } if joined == Some(*worker) => {
                                    departed = true;
                                }
                                _ => {}
                            }
                            let reply = serve_request(&self.server, req);
                            encode_reply(&reply, &mut response);
                        }
                        Err(msg) => {
                            let _ = write!(response, "ERR {msg}");
                        }
                    }
                }
            }
            let wrote = writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            if let Err(e) = wrote {
                break Err(e);
            }
            handled += 1;
        };
        if let Some(worker) = joined {
            if !departed {
                lock_tolerant(&self.server).leave(worker);
            }
        }
        outcome
    }
}

fn parse_usize(tok: Option<&str>, what: &str) -> Result<usize, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse::<usize>()
        .map_err(|_| format!("bad {what}"))
}

fn parse_u64(tok: Option<&str>, what: &str) -> Result<u64, String> {
    tok.ok_or_else(|| format!("missing {what}"))?.parse::<u64>().map_err(|_| format!("bad {what}"))
}

/// A weight or gradient component: 16 hex digits of the `f64` bit
/// pattern.
fn parse_hex_f64(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16).map(f64::from_bits).map_err(|_| format!("bad hex f64 '{tok}'"))
}

/// Parses one wire request line.
fn parse_request(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or_else(|| "empty request".to_string())?;
    match verb {
        "JOIN" => Ok(Request::Join { worker: parse_usize(toks.next(), "worker id")? }),
        "PULL" => Ok(Request::Pull),
        "LEASE" => Ok(Request::Lease { worker: parse_usize(toks.next(), "worker id")? }),
        "PUSH" => {
            let worker = parse_usize(toks.next(), "worker id")?;
            let version = parse_u64(toks.next(), "version")?;
            let shard = parse_usize(toks.next(), "shard id")?;
            let grad = toks.map(parse_hex_f64).collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Push { worker, version, shard, grad })
        }
        "LEAVE" => Ok(Request::Leave { worker: parse_usize(toks.next(), "worker id")? }),
        other => Err(format!("unknown verb '{other}'")),
    }
}

/// Encodes one reply line into `out` (cleared by the caller).
fn encode_reply(reply: &Reply, out: &mut String) {
    use std::fmt::Write as _;
    match reply {
        Reply::Model { version, model } => {
            let _ = write!(out, "MODEL {version}");
            for v in model {
                let _ = write!(out, " {:016x}", v.to_bits());
            }
        }
        Reply::Lease(LeaseGrant::Shard(s)) => {
            let _ = write!(out, "LEASE SHARD {s}");
        }
        Reply::Lease(LeaseGrant::Drained) => out.push_str("LEASE DRAINED"),
        Reply::Lease(LeaseGrant::Shutdown) => out.push_str("LEASE SHUTDOWN"),
        Reply::Pushed(PushOutcome::Applied { version }) => {
            let _ = write!(out, "PUSHED APPLIED {version}");
        }
        Reply::Pushed(PushOutcome::Accumulated) => out.push_str("PUSHED ACC"),
        Reply::Pushed(PushOutcome::RejectedStale { current }) => {
            let _ = write!(out, "PUSHED STALE {current}");
        }
        Reply::Pushed(PushOutcome::DownWeighted { version, staleness }) => {
            let _ = write!(out, "PUSHED DW {version} {staleness}");
        }
        Reply::Left => out.push_str("LEFT"),
    }
}

/// Encodes one request line into `out` (cleared by the caller).
fn encode_request(req: &Request, out: &mut String) {
    use std::fmt::Write as _;
    match req {
        Request::Join { worker } => {
            let _ = write!(out, "JOIN {worker}");
        }
        Request::Pull => out.push_str("PULL"),
        Request::Lease { worker } => {
            let _ = write!(out, "LEASE {worker}");
        }
        Request::Push { worker, version, shard, grad } => {
            let _ = write!(out, "PUSH {worker} {version} {shard}");
            for g in grad {
                let _ = write!(out, " {:016x}", g.to_bits());
            }
        }
        Request::Leave { worker } => {
            let _ = write!(out, "LEAVE {worker}");
        }
    }
}

/// Parses one reply line (client side).
fn parse_reply(line: &str) -> Result<Reply, TransportError> {
    let bad = |detail: &str| TransportError(format!("{detail}: '{line}'"));
    let mut toks = line.split_whitespace();
    match toks.next() {
        Some("MODEL") => {
            let version = parse_u64(toks.next(), "version").map_err(TransportError)?;
            let model =
                toks.map(parse_hex_f64).collect::<Result<Vec<_>, _>>().map_err(TransportError)?;
            Ok(Reply::Model { version, model })
        }
        Some("LEASE") => match toks.next() {
            Some("SHARD") => Ok(Reply::Lease(LeaseGrant::Shard(
                parse_usize(toks.next(), "shard id").map_err(TransportError)?,
            ))),
            Some("DRAINED") => Ok(Reply::Lease(LeaseGrant::Drained)),
            Some("SHUTDOWN") => Ok(Reply::Lease(LeaseGrant::Shutdown)),
            _ => Err(bad("bad lease reply")),
        },
        Some("PUSHED") => match toks.next() {
            Some("APPLIED") => Ok(Reply::Pushed(PushOutcome::Applied {
                version: parse_u64(toks.next(), "version").map_err(TransportError)?,
            })),
            Some("ACC") => Ok(Reply::Pushed(PushOutcome::Accumulated)),
            Some("STALE") => Ok(Reply::Pushed(PushOutcome::RejectedStale {
                current: parse_u64(toks.next(), "version").map_err(TransportError)?,
            })),
            Some("DW") => Ok(Reply::Pushed(PushOutcome::DownWeighted {
                version: parse_u64(toks.next(), "version").map_err(TransportError)?,
                staleness: parse_u64(toks.next(), "staleness").map_err(TransportError)?,
            })),
            _ => Err(bad("bad push reply")),
        },
        Some("LEFT") => Ok(Reply::Left),
        Some("ERR") => Err(bad("server error")),
        _ => Err(bad("unparseable reply")),
    }
}

/// The TCP transport: one persistent connection per worker.
pub struct DistWireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl DistWireClient {
    /// Connects to a [`DistWireServer`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(DistWireClient { writer, reader, line: String::new() })
    }
}

impl Transport for DistWireClient {
    fn call(&mut self, req: Request) -> Result<Reply, TransportError> {
        self.line.clear();
        encode_request(&req, &mut self.line);
        self.line.push('\n');
        self.writer
            .write_all(self.line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| TransportError(format!("send failed: {e}")))?;
        self.line.clear();
        let n = self
            .reader
            .read_line(&mut self.line)
            .map_err(|e| TransportError(format!("recv failed: {e}")))?;
        if n == 0 {
            return Err(TransportError("server closed the connection".to_string()));
        }
        parse_reply(self.line.trim_end())
    }
}

/// A real multi-connection training run over loopback TCP: one
/// [`DistWireServer`] thread per worker connection, N worker threads
/// each driving a [`DistWorker`] over a [`DistWireClient`], and a
/// coordinator steering epochs. Reports wall-clock seconds (this runner
/// is the live-hardware counterpart of [`crate::run_dist_modeled`];
/// only `cfg.workers`, `cfg.shards`, and `cfg.mode` are read, and
/// `opts.faults` is ignored — transport-level churn is EOF-driven).
///
/// Functional guarantee rather than timing determinism: at 1 worker the
/// loss trajectory is bitwise the modeled runner's (pinned in this
/// module's tests); at N workers the interleaving is real and only
/// convergence is asserted.
pub fn run_dist_wire<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    cfg: &DistConfig,
    alpha: f64,
    opts: &RunOptions,
) -> std::io::Result<RunReport> {
    let shards = make_shards(batch, cfg.shards.max(1));
    let workers = cfg.workers.max(1);
    let w0 = task.init_model();
    let server = Arc::new(Mutex::new(ParamServer::new(w0.clone(), alpha, cfg.mode, shards.len())));
    let front = DistWireServer::new(Arc::clone(&server));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;

    let mut eval = CpuExec::seq();
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, batch, &w0);
    trace.push(0.0, initial_loss);
    let mut obs = NullObserver;
    let mut rec = Recorder::new(&mut obs);
    let mut sup = Supervisor::new(opts, initial_loss);

    let worker_err: Mutex<Option<String>> = Mutex::new(None);
    let start = Instant::now();
    let mut elapsed = 0.0;
    std::thread::scope(|s| {
        let serve = s.spawn(|| front.serve_connections(&listener, workers));
        for wk in 0..workers {
            let shards = &shards;
            let worker_err = &worker_err;
            s.spawn(move || {
                let outcome = (|| -> Result<(), TransportError> {
                    let client = DistWireClient::connect(addr)
                        .map_err(|e| TransportError(format!("connect: {e}")))?;
                    let mut w = DistWorker::new(wk, client);
                    w.join()?;
                    loop {
                        w.pull()?;
                        match w.work_one(task, shards)? {
                            WorkerStep::Worked { .. } => {}
                            WorkerStep::Drained => std::thread::sleep(POLL),
                            WorkerStep::Shutdown => break,
                        }
                    }
                    w.leave()
                })();
                if let Err(e) = outcome {
                    let mut slot = lock_tolerant(worker_err);
                    if slot.is_none() {
                        *slot = Some(e.to_string());
                    }
                }
            });
        }

        // The coordinator: steer epochs on the shared server handle.
        let mut order: Vec<usize> = Vec::new();
        for epoch in 0..opts.max_epochs {
            epoch_order(shards.len(), opts.seed, epoch, &mut order);
            lock_tolerant(&server).begin_epoch(&order);
            loop {
                {
                    let srv = lock_tolerant(&server);
                    if srv.epoch_done() {
                        break;
                    }
                }
                // Two separate acquisitions: never hold the error slot
                // while taking the server lock.
                let errored = lock_tolerant(&worker_err).is_some();
                let dead_cluster = errored && lock_tolerant(&server).live_workers() == 0;
                if dead_cluster || start.elapsed().as_secs_f64() > opts.max_secs {
                    break;
                }
                std::thread::sleep(POLL);
            }
            elapsed = start.elapsed().as_secs_f64();
            let (done, loss) = {
                let mut srv = lock_tolerant(&server);
                if srv.epoch_done() {
                    srv.flush_pending();
                    (true, task.loss(&mut eval, batch, srv.model()))
                } else {
                    (false, f64::NAN)
                }
            };
            if !done {
                sup.abort(epoch + 1);
                break;
            }
            trace.push(elapsed, loss);
            rec.record(EpochMetrics::new(epoch + 1, elapsed, loss));
            let model_done = {
                let srv = lock_tolerant(&server);
                sup.observe(epoch + 1, elapsed, loss, srv.model(), &trace, &mut rec)
            };
            if model_done {
                break;
            }
        }
        lock_tolerant(&server).initiate_shutdown();
        let _ = serve.join();
    });

    let verdict = sup.finish();
    Ok(RunReport {
        label: format!("{} dist-{} x{} (wire)", task.name(), cfg.mode.label(), workers),
        device: sgd_core::DeviceKind::CpuSeq,
        step_size: alpha,
        trace,
        opt_seconds: elapsed,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    })
}

#[cfg(test)]
mod tests {
    use sgd_core::RunOutcome;
    use sgd_linalg::{Matrix, Scalar};
    use sgd_models::{lr, Examples};

    use super::*;
    use crate::modeled::run_dist_modeled;
    use crate::server::ConsistencyMode;

    fn fixture() -> (Matrix, Vec<Scalar>) {
        let n = 48;
        let d = 5;
        let x = Matrix::from_fn(n, d, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * d + j) % 7) as Scalar + 1.0) / 7.0
        });
        let y = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    fn hex(v: f64) -> String {
        format!("{:016x}", v.to_bits())
    }

    #[test]
    fn the_line_protocol_round_trips_bitwise() {
        let server = Arc::new(Mutex::new(ParamServer::new(
            vec![0.5, -1.25],
            1.0,
            ConsistencyMode::Sync { grads_to_wait: 1 },
            1,
        )));
        lock_tolerant(&server).begin_epoch(&[0]);
        let front = DistWireServer::new(server);
        let script = format!(
            "JOIN 0\nLEASE 0\nPUSH 0 0 0 {} {}\nPULL\nLEAVE 0\nNONSENSE\n",
            hex(1.0),
            hex(2.0)
        );
        let mut out = Vec::new();
        let handled = front.serve_lines(BufReader::new(script.as_bytes()), &mut out).expect("io");
        assert_eq!(handled, 6);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], format!("MODEL 0 {} {}", hex(0.5), hex(-1.25)));
        assert_eq!(lines[1], "LEASE SHARD 0");
        assert_eq!(lines[2], "PUSHED APPLIED 1");
        // w -= 1.0 * grad, exactly: 0.5 - 1.0 = -0.5; -1.25 - 2.0 = -3.25.
        assert_eq!(lines[3], format!("MODEL 1 {} {}", hex(-0.5), hex(-3.25)));
        assert_eq!(lines[4], "LEFT");
        assert!(lines[5].starts_with("ERR "), "unknown verb is typed: {}", lines[5]);
        // Round-trip the replies through the client parser too.
        assert_eq!(
            parse_reply(lines[3]).expect("model reply"),
            Reply::Model { version: 1, model: vec![-0.5, -3.25] }
        );
    }

    #[test]
    fn eof_without_leave_is_a_death_that_frees_the_lease() {
        let server = Arc::new(Mutex::new(ParamServer::new(
            vec![0.0; 2],
            0.1,
            ConsistencyMode::Sync { grads_to_wait: 1 },
            2,
        )));
        lock_tolerant(&server).begin_epoch(&[0, 1]);
        let front = DistWireServer::new(Arc::clone(&server));
        // Worker 7 joins, leases shard 0, then the connection just ends.
        let script = "JOIN 7\nLEASE 7\n";
        let mut out = Vec::new();
        front.serve_lines(BufReader::new(script.as_bytes()), &mut out).expect("io");
        let srv = lock_tolerant(&server);
        assert_eq!(srv.live_workers(), 0, "EOF revoked the membership");
        assert_eq!(srv.stats().reassigned, 1, "the leased shard went back to the pool");
        assert_eq!(srv.stats().leaves, 1);
        drop(srv);
        // A survivor can now lease the revoked shard.
        let mut out2 = Vec::new();
        front
            .serve_lines(BufReader::new("JOIN 8\nLEASE 8\nLEAVE 8\n".as_bytes()), &mut out2)
            .expect("io");
        let text = String::from_utf8(out2).expect("utf8");
        assert!(
            text.lines().nth(1).is_some_and(|l| l == "LEASE SHARD 0" || l == "LEASE SHARD 1"),
            "revoked shard is leasable again: {text}"
        );
    }

    #[test]
    fn clean_leave_is_not_double_counted_on_eof() {
        let server = Arc::new(Mutex::new(ParamServer::new(
            vec![0.0; 2],
            0.1,
            ConsistencyMode::Sync { grads_to_wait: 1 },
            1,
        )));
        let front = DistWireServer::new(Arc::clone(&server));
        let mut out = Vec::new();
        front.serve_lines(BufReader::new("JOIN 3\nLEAVE 3\n".as_bytes()), &mut out).expect("io");
        assert_eq!(lock_tolerant(&server).stats().leaves, 1, "one leave, not two");
    }

    #[test]
    fn one_worker_wire_run_matches_the_modeled_trajectory_bitwise() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(5);
        let cfg = DistConfig {
            workers: 1,
            shards: 3,
            mode: ConsistencyMode::Sync { grads_to_wait: 1 },
            ..Default::default()
        };
        let opts = RunOptions { max_epochs: 4, plateau: None, ..Default::default() };
        let modeled = run_dist_modeled(&task, &batch, &cfg, 0.4, &opts);
        let wire = run_dist_wire(&task, &batch, &cfg, 0.4, &opts).expect("loopback run");
        assert_eq!(wire.trace.points().len(), modeled.trace.points().len());
        for (w, m) in wire.trace.points().iter().zip(modeled.trace.points()) {
            assert_eq!(
                w.1.to_bits(),
                m.1.to_bits(),
                "wire and modeled single-worker losses must agree bitwise"
            );
        }
    }

    #[test]
    fn a_multi_worker_wire_run_converges() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(5);
        let cfg = DistConfig {
            workers: 3,
            shards: 6,
            mode: ConsistencyMode::Async {
                max_staleness: 4,
                policy: crate::server::StalePolicy::Reject,
            },
            ..Default::default()
        };
        let opts = RunOptions { max_epochs: 5, plateau: None, ..Default::default() };
        let rep = run_dist_wire(&task, &batch, &cfg, 0.3, &opts).expect("loopback run");
        assert_eq!(rep.trace.epochs(), 5);
        assert!(
            rep.best_loss() < rep.trace.points()[0].1,
            "three wire workers must reduce the loss"
        );
        assert!(!matches!(rep.outcome, RunOutcome::Diverged { .. }));
    }
}
