//! Data shards: contiguous row ranges of the training set.
//!
//! Shards are materialized once at setup (owned row-range copies of the
//! dense or CSR examples), so a worker's gradient job reads exactly the
//! bytes a remote worker would hold locally. Ranges are contiguous and
//! built in row order, which keeps the 1-shard case bitwise identical to
//! the full batch — the anchor of the single-node parity pin.

use sgd_linalg::{CsrMatrix, Matrix, Scalar};
use sgd_models::{Batch, Examples};

/// One worker-sized slice of the training set.
pub struct Shard {
    x: ShardExamples,
    y: Vec<Scalar>,
    /// Row range `[lo, hi)` of the full batch this shard covers.
    pub range: (usize, usize),
}

enum ShardExamples {
    Dense(Matrix),
    Sparse(CsrMatrix),
}

impl Shard {
    /// The shard's examples as a borrowed batch.
    pub fn batch(&self) -> Batch<'_> {
        match &self.x {
            ShardExamples::Dense(m) => Batch::new(Examples::Dense(m), &self.y),
            ShardExamples::Sparse(m) => Batch::new(Examples::Sparse(m), &self.y),
        }
    }

    /// Number of examples in the shard.
    pub fn rows(&self) -> usize {
        self.range.1 - self.range.0
    }
}

/// Splits `batch` into `count` contiguous shards of near-equal row
/// count (the first `n % count` shards get one extra row). `count` is
/// clamped to `[1, n]`.
pub fn make_shards(batch: &Batch<'_>, count: usize) -> Vec<Shard> {
    let n = batch.n();
    let count = count.clamp(1, n.max(1));
    let base = n / count;
    let extra = n % count;
    let mut shards = Vec::with_capacity(count);
    let mut lo = 0;
    for s in 0..count {
        let hi = lo + base + usize::from(s < extra);
        let x = match batch.x {
            Examples::Dense(m) => ShardExamples::Dense(m.row_range(lo, hi)),
            Examples::Sparse(m) => ShardExamples::Sparse(m.row_range(lo, hi)),
        };
        shards.push(Shard { x, y: batch.y[lo..hi].to_vec(), range: (lo, hi) });
        lo = hi;
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_batch() -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as Scalar);
        let y = (0..10).map(|i| i as Scalar).collect();
        (x, y)
    }

    #[test]
    fn shards_partition_the_rows() {
        let (x, y) = dense_batch();
        let b = Batch::new(Examples::Dense(&x), &y);
        let shards = make_shards(&b, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(Shard::rows).collect::<Vec<_>>(), vec![4, 3, 3]);
        let mut next = 0;
        for s in &shards {
            assert_eq!(s.range.0, next, "contiguous, in order");
            next = s.range.1;
            let sb = s.batch();
            assert_eq!(sb.n(), s.rows());
            // Rows and labels are bitwise copies of the original range.
            if let Examples::Dense(m) = sb.x {
                for r in 0..m.rows() {
                    assert_eq!(m.row(r), x.row(s.range.0 + r));
                }
            }
            assert_eq!(sb.y, &y[s.range.0..s.range.1]);
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn single_shard_is_the_whole_batch() {
        let (x, y) = dense_batch();
        let b = Batch::new(Examples::Dense(&x), &y);
        let shards = make_shards(&b, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].range, (0, 10));
    }

    #[test]
    fn count_clamps_to_row_count() {
        let (x, y) = dense_batch();
        let b = Batch::new(Examples::Dense(&x), &y);
        assert_eq!(make_shards(&b, 100).len(), 10, "no empty shards");
        assert_eq!(make_shards(&b, 0).len(), 1, "at least one shard");
    }
}
