//! The deterministic modeled-time cluster: discrete-event simulation of
//! a parameter server and N elastic workers.
//!
//! The distributed counterpart of `sgd-core`'s modeled runners:
//! functional results are exact (every gradient runs through the shared
//! `ComputeBackend` dispatch on the sequential CPU kernels), and time
//! comes from a discrete-event simulation — per-shard compute cost is
//! probed once on the `sgd-cpusim` performance model, network round
//! trips charge a fixed modeled RTT, and stragglers dilate their own
//! compute only. Same seed, same fault plan ⇒ bit-identical
//! [`RunReport`], which is what the determinism suite and CI pin.
//!
//! Event order is a total order: the event heap sorts by `(time,
//! sequence number)` with `f64::total_cmp`, so ties (and NaNs, which
//! cannot arise but would still order) are broken deterministically by
//! scheduling order.
//!
//! Elastic membership follows the run's [`FaultPlan`]: a worker whose
//! death epoch arrives dies at its *first event of that epoch* — after
//! it leased a shard, so the server demonstrably revokes and reassigns
//! mid-epoch work — and a worker with a configured rejoin is readmitted
//! at the start of its rejoin epoch, pulling the then-current model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sgd_cpusim::CpuModelExec;
use sgd_linalg::{CpuExec, Scalar};
use sgd_models::{Batch, Task};

use sgd_core::{
    BackendSession, ComputeBackend, CpuModelConfig, EpochMetrics, FaultCounters, FaultPlan,
    LossTrace, NullObserver, Recorder, RunOptions, RunReport, Supervisor,
};

use crate::server::{ConsistencyMode, LeaseGrant, ParamServer, PushOutcome};
use crate::shard::{make_shards, Shard};
use crate::worker::GradJob;

/// Shape of the modeled cluster.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Worker count (at least 1).
    pub workers: usize,
    /// Data shards the epoch is divided into (clamped to the row count).
    pub shards: usize,
    /// Consistency mode of the parameter server.
    pub mode: ConsistencyMode,
    /// The machine each worker models (threads = per-worker threads).
    pub mc: CpuModelConfig,
    /// Modeled network round-trip seconds charged per server call pair
    /// (lease+pull before a compute, and the push delivery after it).
    pub net_rtt_secs: f64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 4,
            shards: 8,
            mode: ConsistencyMode::Sync { grads_to_wait: 4 },
            mc: CpuModelConfig::paper_machine(1),
            net_rtt_secs: 50.0e-6,
        }
    }
}

/// One scheduled event: worker `worker`'s in-flight push arrives at the
/// server at time `t`. `seq` breaks time ties in scheduling order.
struct Ev {
    t: f64,
    seq: u64,
    worker: usize,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.total_cmp(&other.t).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// One simulated worker's replica state.
struct WorkerSim {
    alive: bool,
    idle: bool,
    /// Shard of the in-flight (or just-delivered) push.
    shard: usize,
    /// Version the in-flight gradient was computed against.
    version: u64,
    w: Vec<Scalar>,
    g: Vec<Scalar>,
}

/// SplitMix64 finalizer (same construction the fault plan uses).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates permutation of `0..shards` for one epoch's lease
/// order, written into `buf`. Shared with the wire runner so the
/// 1-worker wire trajectory is bitwise the 1-worker modeled one.
pub(crate) fn epoch_order(shards: usize, seed: u64, epoch: usize, buf: &mut Vec<usize>) {
    buf.clear();
    buf.extend(0..shards);
    let mut state = mix64(seed ^ mix64(epoch as u64));
    for i in (1..shards).rev() {
        state = mix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        buf.swap(i, j);
    }
}

/// Everything the event handlers thread through the simulation.
struct Sim<'a, T: Task> {
    task: &'a T,
    shards: &'a [Shard],
    /// Modeled healthy compute seconds per shard.
    costs: &'a [f64],
    plan: Option<&'a FaultPlan>,
    net_rtt_secs: f64,
    server: ParamServer,
    workers: Vec<WorkerSim>,
    session: BackendSession,
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
}

impl<T: Task> Sim<'_, T> {
    /// Pulls the current model into `wk`'s replica, computes the gradient
    /// of its shard (exact kernels, sequential CPU backend), and schedules
    /// the push delivery at `now + rtt(lease+pull) + compute + rtt(push)`.
    fn fire_compute(&mut self, wk: usize, shard: usize, now: f64, fc: &mut FaultCounters) {
        let (version, model) = self.server.pull();
        let ws = &mut self.workers[wk];
        ws.idle = false;
        ws.shard = shard;
        ws.version = version;
        if ws.w.len() == model.len() {
            ws.w.copy_from_slice(model);
        } else {
            ws.w = model.to_vec();
        }
        let mut job = GradJob::new(self.task, &self.shards[shard], &ws.w, &mut ws.g);
        ComputeBackend::CpuSeq.dispatch(&mut self.session, &mut job);
        let slowdown = self.plan.map_or(1.0, |p| p.slowdown_of(wk));
        let cost = self.costs[shard] * slowdown;
        fc.straggler_delay_secs += self.costs[shard] * (slowdown - 1.0);
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            t: now + 2.0 * self.net_rtt_secs + cost,
            seq: self.seq,
            worker: wk,
        }));
    }

    /// Leases the next shard for `wk` and fires its compute; an empty
    /// pool parks the worker idle (woken by lease revocations).
    fn schedule_work(&mut self, wk: usize, now: f64, fc: &mut FaultCounters) {
        match self.server.lease(wk) {
            LeaseGrant::Shard(s) => self.fire_compute(wk, s, now, fc),
            LeaseGrant::Drained | LeaseGrant::Shutdown => self.workers[wk].idle = true,
        }
    }

    /// Wakes every idle live worker at `now` (called after lease
    /// revocations put shards back into the pool).
    fn wake_idle(&mut self, now: f64, fc: &mut FaultCounters) {
        for wk in 0..self.workers.len() {
            if self.workers[wk].alive && self.workers[wk].idle {
                self.schedule_work(wk, now, fc);
            }
        }
    }
}

/// Runs `task` on the modeled parameter-server cluster described by
/// `cfg`, producing the same typed [`RunReport`] as the single-node
/// runners. Deterministic: same `(cfg, alpha, opts)` — seed and fault
/// plan included — yields a bit-identical report.
pub fn run_dist_modeled<T: Task>(
    task: &T,
    batch: &Batch<'_>,
    cfg: &DistConfig,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    let shards = make_shards(batch, cfg.shards.max(1));
    let dim = task.dim();
    let w0 = task.init_model();

    // Probe each shard's healthy modeled compute cost once (shape-based,
    // deterministic); the probe's functional output is discarded.
    let mut costs = Vec::with_capacity(shards.len());
    {
        let mut g = vec![0.0; dim];
        for sh in &shards {
            let mut probe = CpuModelExec::new(cfg.mc.spec.clone(), cfg.mc.threads);
            probe.gemm_parallel_threshold = cfg.mc.gemm_parallel_threshold;
            task.gradient(&mut probe, &sh.batch(), &w0, &mut g);
            costs.push(probe.elapsed_secs());
        }
    }

    let workers = cfg.workers.max(1);
    let mut sim = Sim {
        task,
        shards: &shards,
        costs: &costs,
        plan: if opts.faults.is_empty() { None } else { Some(&opts.faults) },
        net_rtt_secs: cfg.net_rtt_secs,
        server: ParamServer::new(w0.clone(), alpha, cfg.mode, shards.len()),
        workers: (0..workers)
            .map(|_| WorkerSim {
                alive: false,
                idle: true,
                shard: 0,
                version: 0,
                w: Vec::new(),
                g: Vec::new(),
            })
            .collect(),
        session: BackendSession::new(),
        heap: BinaryHeap::new(),
        seq: 0,
    };

    let mut eval = CpuExec::seq();
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, batch, &w0);
    trace.push(0.0, initial_loss);
    let mut obs = NullObserver;
    let mut rec = Recorder::new(&mut obs);
    let mut sup = Supervisor::new(opts, initial_loss);

    let mut now = 0.0;
    let mut order_buf: Vec<usize> = Vec::new();
    let mut dying: Vec<bool> = vec![false; workers];
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        let stats0 = sim.server.stats();

        // Membership transitions at the epoch boundary: the plan's dead
        // window `[death, rejoin)` decides who participates. A worker
        // outside its dead window that is not yet a member joins (epoch 0
        // bootstrap and rejoins share this path); a member whose death
        // epoch arrived dies at its first event below.
        for (wk, dying_slot) in dying.iter_mut().enumerate() {
            let dead = sim.plan.is_some_and(|p| p.worker_dead(wk, epoch));
            *dying_slot = sim.workers[wk].alive && dead;
            if !sim.workers[wk].alive && !dead {
                let (version, model) = sim.server.join(wk);
                let ws = &mut sim.workers[wk];
                ws.alive = true;
                ws.idle = true;
                ws.version = version;
                ws.w = model.to_vec();
                ws.g = vec![0.0; dim];
            }
        }
        let survivors = (0..workers).filter(|&wk| sim.workers[wk].alive && !dying[wk]).count();
        if survivors == 0 {
            sup.abort(epoch + 1);
            break;
        }

        epoch_order(shards.len(), opts.seed, epoch, &mut order_buf);
        sim.server.begin_epoch(&order_buf);
        for wk in 0..workers {
            if sim.workers[wk].alive {
                sim.schedule_work(wk, now, &mut fc);
            }
        }

        while !sim.server.epoch_done() {
            let Some(Reverse(ev)) = sim.heap.pop() else { break };
            now = ev.t;
            let wk = ev.worker;
            if !sim.workers[wk].alive {
                continue;
            }
            if dying[wk] {
                // Death surfaces at the worker's first event of its death
                // epoch: the server revokes its lease (back to the pool)
                // and idle survivors pick the shard up at this instant.
                dying[wk] = false;
                sim.workers[wk].alive = false;
                sim.server.leave(wk);
                fc.dead_workers += 1;
                sim.wake_idle(now, &mut fc);
                continue;
            }
            let shard = sim.workers[wk].shard;
            let version = sim.workers[wk].version;
            let outcome = {
                let grad = std::mem::take(&mut sim.workers[wk].g);
                let out = sim.server.push(wk, version, shard, &grad);
                sim.workers[wk].g = grad;
                out
            };
            match outcome {
                PushOutcome::RejectedStale { .. } => {
                    // Same shard, fresh model: the ElasticDL recompute.
                    sim.fire_compute(wk, shard, now, &mut fc);
                }
                _ => sim.schedule_work(wk, now, &mut fc),
            }
        }
        if !sim.server.epoch_done() {
            // The pool still holds pending shards but every worker is
            // gone: the distributed analog of a stalled barrier.
            sup.abort(epoch + 1);
            break;
        }
        sim.server.flush_pending();

        let loss = task.loss(&mut eval, batch, sim.server.model()); // untimed
        trace.push(now, loss);
        let stats = sim.server.stats();
        let staleness_rounds =
            (stats.rejected + stats.downweighted) - (stats0.rejected + stats0.downweighted);
        rec.record(EpochMetrics {
            staleness_rounds,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, now, loss)
        });
        if sup.observe(epoch + 1, now, loss, sim.server.model(), &trace, &mut rec) {
            break;
        }
    }

    let verdict = sup.finish();
    RunReport {
        label: format!("{} dist-{} x{} (modeled)", task.name(), cfg.mode.label(), workers),
        device: cfg.mc.device(),
        step_size: alpha,
        trace,
        opt_seconds: now,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

#[cfg(test)]
mod tests {
    use sgd_core::RunOutcome;
    use sgd_linalg::{Exec, Matrix};
    use sgd_models::{lr, Examples};

    use super::*;
    use crate::server::StalePolicy;

    fn fixture() -> (Matrix, Vec<Scalar>) {
        let n = 64;
        let d = 6;
        let x = Matrix::from_fn(n, d, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * d + j) % 7) as Scalar + 1.0) / 7.0
        });
        let y = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    fn opts(epochs: usize) -> RunOptions {
        RunOptions { max_epochs: epochs, plateau: None, ..Default::default() }
    }

    #[test]
    fn one_worker_one_shard_sync_matches_the_single_node_trajectory_bitwise() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        let cfg = DistConfig {
            workers: 1,
            shards: 1,
            mode: ConsistencyMode::Sync { grads_to_wait: 1 },
            ..Default::default()
        };
        let rep = run_dist_modeled(&task, &batch, &cfg, 0.5, &opts(6));
        // Reference: full-batch gradient descent on the same exact
        // kernels — gradient, axpy apply, loss eval all via CpuExec::seq.
        let mut e = CpuExec::seq();
        let mut w = task.init_model();
        let mut g = vec![0.0; 6];
        for (point, _) in rep.trace.points().iter().skip(1).zip(0..) {
            task.gradient(&mut e, &batch, &w, &mut g);
            e.axpy(-0.5, &g, &mut w);
            let loss = task.loss(&mut e, &batch, &w);
            assert_eq!(
                point.1.to_bits(),
                loss.to_bits(),
                "dist 1-worker sync must be bitwise the single-node sync trajectory"
            );
        }
        assert_eq!(rep.trace.epochs(), 6);
    }

    #[test]
    fn the_report_is_bit_identical_across_runs_in_both_modes() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        for mode in [
            ConsistencyMode::Sync { grads_to_wait: 2 },
            ConsistencyMode::Async { max_staleness: 2, policy: StalePolicy::Reject },
            ConsistencyMode::Async { max_staleness: 1, policy: StalePolicy::DownWeight },
        ] {
            let cfg = DistConfig { workers: 3, shards: 6, mode, ..Default::default() };
            let run = || run_dist_modeled(&task, &batch, &cfg, 0.3, &opts(5));
            let (a, b) = (run(), run());
            assert_eq!(a.trace.points().len(), b.trace.points().len());
            for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
                assert_eq!(p.0.to_bits(), q.0.to_bits(), "modeled times replay {mode:?}");
                assert_eq!(p.1.to_bits(), q.1.to_bits(), "losses replay {mode:?}");
            }
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn death_reassigns_shards_and_a_rejoin_readmits_the_worker() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        let cfg = DistConfig {
            workers: 3,
            shards: 6,
            mode: ConsistencyMode::Sync { grads_to_wait: 2 },
            ..Default::default()
        };
        // Worker 1 dies mid-run and comes back two epochs later.
        let mut o = opts(8);
        o.faults = FaultPlan::default().with_worker_death(1, 2).with_rejoin(1, 4);
        let rep = run_dist_modeled(&task, &batch, &cfg, 0.3, &o);
        assert_eq!(rep.trace.epochs(), 8, "the cluster survives the churn");
        let dead: u64 = rep.metrics.epochs.iter().map(|m| m.faults.dead_workers).sum();
        assert_eq!(dead, 1, "exactly one death event");
        let last = rep.trace.points().last().map(|p| p.1).unwrap_or(f64::NAN);
        let first = rep.trace.points().first().map(|p| p.1).unwrap_or(f64::NAN);
        assert!(last < first, "still optimizes through death and rejoin");
        // With a convergence target the churned run reports Converged.
        let target = rep.best_loss();
        let mut o2 = o.clone();
        o2.target_loss = Some(target * 1.02);
        let rep2 = run_dist_modeled(&task, &batch, &cfg, 0.3, &o2);
        assert_eq!(rep2.outcome, RunOutcome::Converged);
    }

    #[test]
    fn losing_every_worker_aborts_the_run() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        let cfg = DistConfig { workers: 1, shards: 2, ..Default::default() };
        let mut o = opts(6);
        o.faults = FaultPlan::default().with_worker_death(0, 2);
        let rep = run_dist_modeled(&task, &batch, &cfg, 0.3, &o);
        assert!(
            matches!(rep.outcome, RunOutcome::FaultAborted { .. }),
            "an empty cluster is a fault abort, got {:?}",
            rep.outcome
        );
    }

    #[test]
    fn async_absorbs_a_straggler_better_than_sync() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        // Zero modeled RTT: the tiny fixture's compute is nanoseconds, so
        // a nonzero network share would mask the straggler in both modes.
        let mk = |mode| DistConfig {
            workers: 4,
            shards: 8,
            mode,
            net_rtt_secs: 0.0,
            ..Default::default()
        };
        let sync = mk(ConsistencyMode::Sync { grads_to_wait: 4 });
        let asyn = mk(ConsistencyMode::Async { max_staleness: 8, policy: StalePolicy::Reject });
        let clean = opts(4);
        let mut slow = clean.clone();
        slow.faults = FaultPlan::default().with_straggler(0, 8.0);
        let sc = run_dist_modeled(&task, &batch, &sync, 0.3, &clean);
        let sf = run_dist_modeled(&task, &batch, &sync, 0.3, &slow);
        let ac = run_dist_modeled(&task, &batch, &asyn, 0.3, &clean);
        let af = run_dist_modeled(&task, &batch, &asyn, 0.3, &slow);
        let sync_ratio = sf.time_per_epoch() / sc.time_per_epoch();
        let async_ratio = af.time_per_epoch() / ac.time_per_epoch();
        assert!(
            async_ratio < sync_ratio,
            "async must degrade less under an injected straggler: \
             async {async_ratio:.3}x vs sync {sync_ratio:.3}x"
        );
    }

    #[test]
    fn staleness_events_are_counted() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        // A tight staleness bound with many racing workers forces
        // rejections.
        let cfg = DistConfig {
            workers: 4,
            shards: 8,
            mode: ConsistencyMode::Async { max_staleness: 0, policy: StalePolicy::Reject },
            ..Default::default()
        };
        let rep = run_dist_modeled(&task, &batch, &cfg, 0.3, &opts(3));
        let staleness: u64 = rep.metrics.epochs.iter().map(|m| m.staleness_rounds).sum();
        assert!(staleness > 0, "a zero staleness bound must reject racing pushes");
    }
}
