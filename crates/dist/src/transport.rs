//! The worker-to-server message vocabulary and the in-process transport.
//!
//! Both transports speak the same five-verb protocol ([`Request`] /
//! [`Reply`]); a [`DistWorker`](crate::DistWorker) is written against
//! the [`Transport`] trait only, so its control flow is byte-identical
//! whether the server is behind a mutex in the same process or behind a
//! TCP socket. The in-process transport is the deterministic one — the
//! modeled-time driver and the tests use it — while `wire.rs` provides
//! the loopback-TCP counterpart.

use std::sync::{Arc, Mutex};

use sgd_linalg::Scalar;
use sgd_serve::framing::lock_tolerant;

use crate::server::{LeaseGrant, ParamServer, PushOutcome};

/// A worker-originated message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit this worker and return the current model.
    Join {
        /// Stable worker id (unique per run).
        worker: usize,
    },
    /// Snapshot the current `(version, model)`.
    Pull,
    /// Ask for the next pending shard.
    Lease {
        /// The requesting worker.
        worker: usize,
    },
    /// Submit one gradient.
    Push {
        /// The pushing worker.
        worker: usize,
        /// Model version the gradient was computed against.
        version: u64,
        /// Shard the gradient covers.
        shard: usize,
        /// The gradient itself.
        grad: Vec<Scalar>,
    },
    /// Depart; outstanding leases return to the pool.
    Leave {
        /// The departing worker.
        worker: usize,
    },
}

/// The server's answer to a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Answer to `Join` and `Pull`: the authoritative model snapshot.
    Model {
        /// Current model version.
        version: u64,
        /// Copy of the model at that version.
        model: Vec<Scalar>,
    },
    /// Answer to `Lease`.
    Lease(LeaseGrant),
    /// Answer to `Push`.
    Pushed(PushOutcome),
    /// Answer to `Leave`.
    Left,
}

/// A transport-level failure (connection loss, protocol violation).
/// Consistency-level refusals (stale pushes, drained leases) are
/// ordinary [`Reply`] values, not errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportError(pub String);

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport error: {}", self.0)
    }
}

impl std::error::Error for TransportError {}

/// One round trip to the parameter server.
pub trait Transport {
    /// Sends `req` and waits for the server's reply.
    fn call(&mut self, req: Request) -> Result<Reply, TransportError>;
}

/// The in-process transport: a clone-able handle on the shared server
/// mutex. Every call is one lock acquisition — the same critical
/// section the TCP front-end takes per framed line.
#[derive(Clone)]
pub struct InProcTransport {
    server: Arc<Mutex<ParamServer>>,
}

impl InProcTransport {
    /// A transport speaking to `server`.
    pub fn new(server: Arc<Mutex<ParamServer>>) -> Self {
        InProcTransport { server }
    }

    /// The shared server handle (for drivers that also steer epochs).
    pub fn server(&self) -> Arc<Mutex<ParamServer>> {
        Arc::clone(&self.server)
    }
}

/// Applies one request to the server state machine. Shared verbatim by
/// the in-process transport and the TCP front-end so the two transports
/// cannot drift semantically.
pub(crate) fn serve_request(server: &Mutex<ParamServer>, req: Request) -> Reply {
    let mut s = lock_tolerant(server);
    match req {
        Request::Join { worker } => {
            let (version, model) = s.join(worker);
            Reply::Model { version, model: model.to_vec() }
        }
        Request::Pull => {
            let (version, model) = s.pull();
            Reply::Model { version, model: model.to_vec() }
        }
        Request::Lease { worker } => Reply::Lease(s.lease(worker)),
        Request::Push { worker, version, shard, grad } => {
            Reply::Pushed(s.push(worker, version, shard, &grad))
        }
        Request::Leave { worker } => {
            s.leave(worker);
            Reply::Left
        }
    }
}

impl Transport for InProcTransport {
    fn call(&mut self, req: Request) -> Result<Reply, TransportError> {
        Ok(serve_request(&self.server, req))
    }
}

/// What a push reply means for the worker's next move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PushVerdict {
    /// Shard accepted (applied, accumulated, or down-weighted): lease
    /// the next one.
    Accepted,
    /// Stale: re-pull the model and recompute the same shard.
    Recompute,
}

impl PushOutcome {
    pub(crate) fn verdict(&self) -> PushVerdict {
        match self {
            PushOutcome::Applied { .. }
            | PushOutcome::Accumulated
            | PushOutcome::DownWeighted { .. } => PushVerdict::Accepted,
            PushOutcome::RejectedStale { .. } => PushVerdict::Recompute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ConsistencyMode;

    fn shared() -> Arc<Mutex<ParamServer>> {
        let s = ParamServer::new(vec![0.0; 2], 1.0, ConsistencyMode::Sync { grads_to_wait: 1 }, 1);
        Arc::new(Mutex::new(s))
    }

    #[test]
    fn inproc_round_trips_the_protocol() {
        let server = shared();
        lock_tolerant(&server).begin_epoch(&[0]);
        let mut t = InProcTransport::new(Arc::clone(&server));
        let joined = t.call(Request::Join { worker: 0 }).expect("in-proc never fails");
        assert_eq!(joined, Reply::Model { version: 0, model: vec![0.0, 0.0] });
        assert_eq!(t.call(Request::Lease { worker: 0 }), Ok(Reply::Lease(LeaseGrant::Shard(0))));
        assert_eq!(
            t.call(Request::Push { worker: 0, version: 0, shard: 0, grad: vec![1.0, 2.0] }),
            Ok(Reply::Pushed(PushOutcome::Applied { version: 1 }))
        );
        assert_eq!(t.call(Request::Pull), Ok(Reply::Model { version: 1, model: vec![-1.0, -2.0] }));
        assert_eq!(t.call(Request::Leave { worker: 0 }), Ok(Reply::Left));
        assert_eq!(lock_tolerant(&server).live_workers(), 0);
    }

    #[test]
    fn push_verdicts_drive_the_worker_loop() {
        assert_eq!(PushOutcome::Applied { version: 3 }.verdict(), PushVerdict::Accepted);
        assert_eq!(PushOutcome::Accumulated.verdict(), PushVerdict::Accepted);
        assert_eq!(
            PushOutcome::DownWeighted { version: 3, staleness: 2 }.verdict(),
            PushVerdict::Accepted
        );
        assert_eq!(PushOutcome::RejectedStale { current: 3 }.verdict(), PushVerdict::Recompute);
    }
}
