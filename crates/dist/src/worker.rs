//! The distributed worker: pull, lease, compute, push.
//!
//! A [`DistWorker`] is written against the [`Transport`] trait only, so
//! the same control flow drives the in-process deterministic cluster
//! and the loopback-TCP one. Gradients run through the shared
//! `ComputeBackend` dispatch ([`GradJob`]), so a distributed worker
//! computes bit-for-bit the kernels a single-node run computes.

use sgd_core::{BackendSession, ComputeBackend, ExecTask};
use sgd_linalg::{Exec, Scalar};
use sgd_models::Task;

use crate::server::{LeaseGrant, PushOutcome};
use crate::shard::Shard;
use crate::transport::{PushVerdict, Reply, Request, Transport, TransportError};

/// One minibatch-gradient computation over a shard, expressed as an
/// [`ExecTask`] so it runs on any backend of the dispatch layer.
pub struct GradJob<'a, T: Task> {
    task: &'a T,
    shard: &'a Shard,
    w: &'a [Scalar],
    g: &'a mut [Scalar],
}

impl<'a, T: Task> GradJob<'a, T> {
    /// The gradient of `task` over `shard` at `w`, written into `g`.
    pub fn new(task: &'a T, shard: &'a Shard, w: &'a [Scalar], g: &'a mut [Scalar]) -> Self {
        GradJob { task, shard, w, g }
    }
}

impl<T: Task> ExecTask for GradJob<'_, T> {
    type Out = ();
    fn run<E: Exec>(&mut self, e: &mut E) -> Self::Out {
        self.task.gradient(e, &self.shard.batch(), self.w, self.g);
    }
}

/// What one [`DistWorker::work_one`] call accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerStep {
    /// Computed and landed a gradient for this shard, after this many
    /// stale-rejection recomputes.
    Worked {
        /// The shard whose gradient was accepted.
        shard: usize,
        /// Recomputes forced by stale rejections (0 = first try landed).
        recomputes: u32,
    },
    /// No pending shard right now.
    Drained,
    /// The server ended the run.
    Shutdown,
}

/// Ceiling on stale-rejection recomputes of a single shard before the
/// worker reports a transport error instead of livelocking.
const MAX_RECOMPUTES: u32 = 1000;

/// One elastic worker: a local model replica, a gradient buffer, and a
/// transport to the server.
pub struct DistWorker<C: Transport> {
    id: usize,
    transport: C,
    backend: ComputeBackend,
    session: BackendSession,
    version: u64,
    w: Vec<Scalar>,
    g: Vec<Scalar>,
}

impl<C: Transport> DistWorker<C> {
    /// A worker speaking over `transport`, computing on the sequential
    /// CPU backend (the deterministic choice; see
    /// [`DistWorker::with_backend`]).
    pub fn new(id: usize, transport: C) -> Self {
        DistWorker {
            id,
            transport,
            backend: ComputeBackend::CpuSeq,
            session: BackendSession::new(),
            version: 0,
            w: Vec::new(),
            g: Vec::new(),
        }
    }

    /// Same worker on a different compute backend.
    pub fn with_backend(mut self, backend: ComputeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// This worker's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The model version of the local replica.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The local model replica (empty before [`DistWorker::join`]).
    pub fn model(&self) -> &[Scalar] {
        &self.w
    }

    /// The last computed gradient.
    pub fn grad(&self) -> &[Scalar] {
        &self.g
    }

    fn adopt(&mut self, version: u64, model: Vec<Scalar>) {
        self.version = version;
        if self.g.len() != model.len() {
            self.g = vec![0.0; model.len()];
        }
        self.w = model;
    }

    /// Joins the cluster, adopting the server's current model.
    pub fn join(&mut self) -> Result<(), TransportError> {
        match self.transport.call(Request::Join { worker: self.id })? {
            Reply::Model { version, model } => {
                self.adopt(version, model);
                Ok(())
            }
            other => Err(TransportError(format!("join answered {other:?}"))),
        }
    }

    /// Refreshes the local replica to the server's current model.
    pub fn pull(&mut self) -> Result<(), TransportError> {
        match self.transport.call(Request::Pull)? {
            Reply::Model { version, model } => {
                self.adopt(version, model);
                Ok(())
            }
            other => Err(TransportError(format!("pull answered {other:?}"))),
        }
    }

    /// Asks for the next pending shard.
    pub fn lease(&mut self) -> Result<LeaseGrant, TransportError> {
        match self.transport.call(Request::Lease { worker: self.id })? {
            Reply::Lease(grant) => Ok(grant),
            other => Err(TransportError(format!("lease answered {other:?}"))),
        }
    }

    /// Computes the gradient of `task` over `shard` at the local
    /// replica, on this worker's backend.
    pub fn compute<T: Task>(&mut self, task: &T, shard: &Shard) {
        let mut job = GradJob::new(task, shard, &self.w, &mut self.g);
        self.backend.dispatch(&mut self.session, &mut job);
    }

    /// Pushes the last computed gradient, tagged with the replica's
    /// version, for `shard`.
    pub fn push(&mut self, shard: usize) -> Result<PushOutcome, TransportError> {
        let req =
            Request::Push { worker: self.id, version: self.version, shard, grad: self.g.clone() };
        match self.transport.call(req)? {
            Reply::Pushed(outcome) => Ok(outcome),
            other => Err(TransportError(format!("push answered {other:?}"))),
        }
    }

    /// Departs the cluster (outstanding leases return to the pool).
    pub fn leave(&mut self) -> Result<(), TransportError> {
        match self.transport.call(Request::Leave { worker: self.id })? {
            Reply::Left => Ok(()),
            other => Err(TransportError(format!("leave answered {other:?}"))),
        }
    }

    /// One full worker step: lease a shard, compute its gradient, push,
    /// and on a stale rejection re-pull and recompute the *same* shard
    /// until it lands.
    pub fn work_one<T: Task>(
        &mut self,
        task: &T,
        shards: &[Shard],
    ) -> Result<WorkerStep, TransportError> {
        let shard_id = match self.lease()? {
            LeaseGrant::Shard(s) => s,
            LeaseGrant::Drained => return Ok(WorkerStep::Drained),
            LeaseGrant::Shutdown => return Ok(WorkerStep::Shutdown),
        };
        let shard = shards
            .get(shard_id)
            .ok_or_else(|| TransportError(format!("leased unknown shard {shard_id}")))?;
        let mut recomputes = 0;
        loop {
            self.compute(task, shard);
            match self.push(shard_id)?.verdict() {
                PushVerdict::Accepted => {
                    return Ok(WorkerStep::Worked { shard: shard_id, recomputes })
                }
                PushVerdict::Recompute => {
                    recomputes += 1;
                    if recomputes > MAX_RECOMPUTES {
                        return Err(TransportError(format!(
                            "shard {shard_id} rejected {recomputes} times"
                        )));
                    }
                    self.pull()?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::{Arc, Mutex};

    use sgd_linalg::Matrix;
    use sgd_models::{lr, Batch, Examples};
    use sgd_serve::framing::lock_tolerant;

    use super::*;
    use crate::server::{ConsistencyMode, ParamServer};
    use crate::shard::make_shards;
    use crate::transport::InProcTransport;

    fn fixture() -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_fn(12, 3, |i, j| ((i * 3 + j) as Scalar * 0.37).sin());
        let y = (0..12).map(|i| (i as Scalar * 0.21).cos()).collect();
        (x, y)
    }

    #[test]
    fn a_lone_worker_drains_an_epoch_and_improves_the_loss() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(3);
        let shards = make_shards(&batch, 3);
        let w0 = vec![0.0; 3];
        let server = Arc::new(Mutex::new(ParamServer::new(
            w0.clone(),
            0.1,
            ConsistencyMode::Sync { grads_to_wait: 1 },
            shards.len(),
        )));
        lock_tolerant(&server).begin_epoch(&[0, 1, 2]);
        let mut worker = DistWorker::new(0, InProcTransport::new(Arc::clone(&server)));
        worker.join().expect("in-proc join");
        let mut worked = 0;
        loop {
            match worker.work_one(&task, &shards).expect("in-proc step") {
                WorkerStep::Worked { recomputes, .. } => {
                    assert_eq!(recomputes, 0, "lone worker is never stale");
                    worked += 1;
                    worker.pull().expect("refresh after apply");
                }
                WorkerStep::Drained => break,
                WorkerStep::Shutdown => unreachable!("no shutdown initiated"),
            }
        }
        assert_eq!(worked, 3, "every shard landed once");
        let s = lock_tolerant(&server);
        assert!(s.epoch_done());
        assert_eq!(s.version(), 3);
        let mut e = sgd_linalg::CpuExec::seq();
        let before = task.loss(&mut e, &batch, &w0);
        let after = task.loss(&mut e, &batch, s.model());
        assert!(after < before, "epoch of shard steps reduced the loss: {after} vs {before}");
    }

    #[test]
    fn a_stale_worker_recomputes_the_same_shard() {
        let (x, y) = fixture();
        let batch = Batch::new(Examples::Dense(&x), &y);
        let task = lr(3);
        let shards = make_shards(&batch, 2);
        let server = Arc::new(Mutex::new(ParamServer::new(
            vec![0.0; 3],
            0.1,
            ConsistencyMode::Sync { grads_to_wait: 1 },
            shards.len(),
        )));
        lock_tolerant(&server).begin_epoch(&[0, 1]);
        let mut a = DistWorker::new(0, InProcTransport::new(Arc::clone(&server)));
        let mut b = DistWorker::new(1, InProcTransport::new(Arc::clone(&server)));
        a.join().expect("join a");
        b.join().expect("join b");
        // Both lease and compute at version 0; a pushes first (applies),
        // so b's first push is stale and work_one must recompute.
        let step = {
            // Drive b's lease before a's push by interleaving manually.
            let grant_b = b.lease().expect("lease b");
            assert_eq!(grant_b, LeaseGrant::Shard(0));
            b.compute(&task, &shards[0]);
            let grant_a = a.lease().expect("lease a");
            assert_eq!(grant_a, LeaseGrant::Shard(1));
            a.compute(&task, &shards[1]);
            assert_eq!(a.push(1).expect("push a"), PushOutcome::Applied { version: 1 });
            // b is now one version behind.
            let out = b.push(0).expect("push b");
            assert_eq!(out, PushOutcome::RejectedStale { current: 1 });
            b.pull().expect("re-pull");
            b.compute(&task, &shards[0]);
            b.push(0).expect("push b fresh")
        };
        assert_eq!(step, PushOutcome::Applied { version: 2 });
        assert!(lock_tolerant(&server).epoch_done());
    }
}
