//! Dataset substrate: profiles of the paper's five LIBSVM datasets,
//! synthetic generators that match those profiles, a real LIBSVM parser,
//! and the MLP feature-grouping transform.
//!
//! The paper evaluates on `covtype`, `w8a`, `real-sim`, `rcv1` and
//! `news20` (Table I). Those files are not shippable here, so
//! [`generate`] synthesizes datasets with the same
//! shape: the published example/feature counts (optionally scaled), the
//! published nnz-per-example range and average (log-normal fit), a skewed
//! feature-popularity distribution (text-like), and labels planted from a
//! ground-truth linear separator plus noise so that every optimizer in the
//! study has a real optimum to converge to. Genuine LIBSVM files can be
//! loaded through [`libsvm`] and dropped into the same pipeline.

mod dataset;
mod generator;
pub mod libsvm;
mod profiles;
pub mod rng_util;
mod stats;
mod transform;

pub use dataset::Dataset;
pub use generator::{generate, plant_labels, GenOptions};
pub use libsvm::ParseError;
pub use profiles::{all_profiles, DatasetProfile};
pub use stats::{table1_row, Table1Row};
pub use transform::{group_features, normalize_rows};
