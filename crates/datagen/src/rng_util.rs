//! Small sampling utilities built on `rand`.
//!
//! The allowed dependency set does not include `rand_distr`, so the two
//! distributions the generator needs — a standard normal and a clamped
//! log-normal — are implemented here via Box–Muller.

use rand::Rng;

/// One standard-normal sample (Box–Muller, one branch of the pair).
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal sample with the given underlying `mu`/`sigma`.
pub fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Log-normal integer sample clamped to `[min, max]`, parameterized so the
/// *mean* of the unclamped distribution is `mean`.
pub fn log_normal_count<R: Rng>(
    rng: &mut R,
    mean: f64,
    sigma: f64,
    min: usize,
    max: usize,
) -> usize {
    debug_assert!(min <= max);
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) => mu = ln(mean) - sigma^2/2.
    let mu = mean.max(1.0).ln() - sigma * sigma / 2.0;
    let v = log_normal(rng, mu, sigma).round() as i64;
    (v.max(min as i64) as usize).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_count_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let v = log_normal_count(&mut rng, 73.0, 1.2, 4, 1224);
            assert!((4..=1224).contains(&v));
        }
    }

    #[test]
    fn log_normal_count_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30_000;
        let total: usize = (0..n).map(|_| log_normal_count(&mut rng, 73.0, 1.0, 1, 100_000)).sum();
        let mean = total as f64 / n as f64;
        // Clamping at 1 biases slightly upward; the target is ±15 %.
        assert!((mean - 73.0).abs() < 11.0, "mean {mean}");
    }

    #[test]
    fn degenerate_range_collapses() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(log_normal_count(&mut rng, 54.0, 1.0, 54, 54), 54);
        }
    }
}
