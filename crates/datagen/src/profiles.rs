//! The five dataset profiles of Table I.

/// Published characteristics of one experimental dataset (Table I of the
/// paper), plus the MLP architecture the paper pairs with it.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of training examples (N).
    pub examples: usize,
    /// Number of features (d).
    pub features: usize,
    /// Minimum non-zeros per example.
    pub nnz_min: usize,
    /// Average non-zeros per example.
    pub nnz_avg: usize,
    /// Maximum non-zeros per example.
    pub nnz_max: usize,
    /// Number of input units of the paper's MLP for this dataset (features
    /// are grouped down to this width before MLP training).
    pub mlp_input: usize,
    /// Hidden/output layer widths of the paper's MLP (the architecture is
    /// `mlp_input — hidden... — output`).
    pub mlp_hidden: [usize; 3],
    /// `true` when the dataset is fully dense (covtype).
    pub dense: bool,
}

impl DatasetProfile {
    /// `covtype`: 581,012 x 54, fully dense, MLP 54-10-5-2.
    pub fn covtype() -> Self {
        DatasetProfile {
            name: "covtype",
            examples: 581_012,
            features: 54,
            nnz_min: 54,
            nnz_avg: 54,
            nnz_max: 54,
            mlp_input: 54,
            mlp_hidden: [10, 5, 2],
            dense: true,
        }
    }

    /// `w8a`: 64,700 x 300, 3.88 % sparse, MLP 300-10-5-2.
    pub fn w8a() -> Self {
        DatasetProfile {
            name: "w8a",
            examples: 64_700,
            features: 300,
            nnz_min: 1, // Table I says 0; empty examples carry no signal, so we floor at 1
            nnz_avg: 12,
            nnz_max: 114,
            mlp_input: 300,
            mlp_hidden: [10, 5, 2],
            dense: false,
        }
    }

    /// `real-sim`: 72,309 x 20,958, 0.25 % sparse, MLP 50-10-5-2.
    pub fn real_sim() -> Self {
        DatasetProfile {
            name: "real-sim",
            examples: 72_309,
            features: 20_958,
            nnz_min: 1,
            nnz_avg: 51,
            nnz_max: 3_484,
            mlp_input: 50,
            mlp_hidden: [10, 5, 2],
            dense: false,
        }
    }

    /// `rcv1`: 677,399 x 47,236, 0.16 % sparse, MLP 50-10-5-2.
    pub fn rcv1() -> Self {
        DatasetProfile {
            name: "rcv1",
            examples: 677_399,
            features: 47_236,
            nnz_min: 4,
            nnz_avg: 73,
            nnz_max: 1_224,
            mlp_input: 50,
            mlp_hidden: [10, 5, 2],
            dense: false,
        }
    }

    /// `news`: 19,996 x 1,355,191, 0.03 % sparse, MLP 300-10-5-2.
    pub fn news() -> Self {
        DatasetProfile {
            name: "news",
            examples: 19_996,
            features: 1_355_191,
            nnz_min: 1,
            nnz_avg: 455,
            nnz_max: 16_423,
            mlp_input: 300,
            mlp_hidden: [10, 5, 2],
            dense: false,
        }
    }

    /// Scales the example count by `f` (features are kept: dimensionality
    /// drives the architecture comparison, data volume only drives
    /// absolute runtime). At least 64 examples are kept.
    pub fn scaled(&self, f: f64) -> Self {
        assert!(f > 0.0, "scale must be positive");
        let mut p = self.clone();
        p.examples = ((self.examples as f64 * f) as usize).max(64);
        p
    }

    /// Average-nnz / features, as the percentage reported in Table I.
    pub fn sparsity_pct(&self) -> f64 {
        100.0 * self.nnz_avg as f64 / self.features as f64
    }

    /// The full MLP architecture `[input, hidden..., output]`.
    pub fn mlp_architecture(&self) -> Vec<usize> {
        let mut arch = vec![self.mlp_input];
        arch.extend_from_slice(&self.mlp_hidden);
        arch
    }
}

/// All five profiles in the paper's Table I order.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::covtype(),
        DatasetProfile::w8a(),
        DatasetProfile::real_sim(),
        DatasetProfile::rcv1(),
        DatasetProfile::news(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers() {
        let p = DatasetProfile::rcv1();
        assert_eq!(p.examples, 677_399);
        assert_eq!(p.features, 47_236);
        assert_eq!(p.nnz_avg, 73);
        // Table I reports 0.16 % sparsity for rcv1.
        assert!((p.sparsity_pct() - 0.1545).abs() < 0.01);
    }

    #[test]
    fn covtype_is_dense() {
        let p = DatasetProfile::covtype();
        assert!(p.dense);
        assert_eq!(p.nnz_min, p.features);
        assert!((p.sparsity_pct() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_architectures_match_table1() {
        assert_eq!(DatasetProfile::covtype().mlp_architecture(), vec![54, 10, 5, 2]);
        assert_eq!(DatasetProfile::news().mlp_architecture(), vec![300, 10, 5, 2]);
        assert_eq!(DatasetProfile::real_sim().mlp_architecture(), vec![50, 10, 5, 2]);
    }

    #[test]
    fn scaling_preserves_features_and_floors_examples() {
        let p = DatasetProfile::news().scaled(0.01);
        assert_eq!(p.features, 1_355_191);
        assert_eq!(p.examples, 199);
        let tiny = DatasetProfile::news().scaled(1e-9);
        assert_eq!(tiny.examples, 64);
    }

    #[test]
    fn all_profiles_ordered_as_table1() {
        let names: Vec<&str> = all_profiles().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["covtype", "w8a", "real-sim", "rcv1", "news"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = DatasetProfile::w8a().scaled(0.0);
    }
}
