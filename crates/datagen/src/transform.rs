//! The paper's MLP feature-grouping transform.
//!
//! To keep the fully-connected nets inside GPU memory, the paper reduces
//! each dataset's input width by "grouping and reorganizing the features by
//! averaging the values of hundreds of consecutive features to match the
//! input layer size of the MLP architecture" (Section IV-A). Grouping makes
//! most datasets substantially denser — the "MLP sparsity" column of
//! Table I — which in turn changes the Hogwild conflict behaviour.

use sgd_linalg::{CsrMatrix, Scalar};

use crate::dataset::Dataset;

/// Groups the dataset's features down to `target_inputs` by averaging
/// consecutive feature blocks, reproducing the paper's MLP preprocessing.
///
/// Feature `j` maps to group `j * target / d`; each group's value is the
/// sum of its members' values divided by the block width (absent features
/// contribute zero, as in the paper's dense averaging).
///
/// # Panics
/// Panics if `target_inputs` is zero or exceeds the current width.
pub fn group_features(ds: &Dataset, target_inputs: usize) -> Dataset {
    let d = ds.d();
    assert!(target_inputs > 0 && target_inputs <= d, "invalid target width {target_inputs}");
    if target_inputs == d {
        let mut out = ds.clone();
        out.name = format!("{}-mlp", ds.name);
        out.ground_truth = None;
        return out;
    }

    let block = d as f64 / target_inputs as f64;
    let mut entries: Vec<Vec<(u32, Scalar)>> = Vec::with_capacity(ds.n());
    let mut acc: Vec<Scalar> = vec![0.0; target_inputs];
    let mut touched: Vec<u32> = Vec::new();
    for i in 0..ds.n() {
        let row = ds.x.row(i);
        for (&c, &v) in row.cols.iter().zip(row.vals) {
            let g = ((c as f64 / block) as usize).min(target_inputs - 1);
            if acc[g] == 0.0 {
                touched.push(g as u32);
            }
            acc[g] += v;
        }
        touched.sort_unstable();
        let mut row_out: Vec<(u32, Scalar)> = Vec::with_capacity(touched.len());
        for &g in &touched {
            let width = block_width(d, target_inputs, g as usize);
            let v = acc[g as usize] / width as Scalar;
            if v != 0.0 {
                row_out.push((g, v));
            }
            acc[g as usize] = 0.0;
        }
        touched.clear();
        entries.push(row_out);
    }

    let x = CsrMatrix::from_row_entries(ds.n(), target_inputs, &entries);
    let mut out = Dataset::new(format!("{}-mlp", ds.name), x, ds.y.clone());
    out.ground_truth = None; // the planted separator lives in the original space
    out
}

/// Returns a copy of `x` with every row L2-normalized (rows with zero
/// norm are left untouched). The feature-grouping transform shrinks
/// values by roughly the block width; re-normalizing keeps the MLP inputs
/// at unit scale so the same step-size grid applies.
pub fn normalize_rows(x: &CsrMatrix) -> CsrMatrix {
    let entries: Vec<Vec<(u32, Scalar)>> = (0..x.rows())
        .map(|i| {
            let row = x.row(i);
            let norm = row.norm_sq().sqrt();
            let inv = if norm > 0.0 { 1.0 / norm } else { 1.0 };
            row.cols.iter().zip(row.vals).map(|(&c, &v)| (c, v * inv)).collect()
        })
        .collect();
    CsrMatrix::from_row_entries(x.rows(), x.cols(), &entries)
}

/// Number of original features mapped to group `g`.
fn block_width(d: usize, target: usize, g: usize) -> usize {
    let block = d as f64 / target as f64;
    let lo = (g as f64 * block).ceil() as usize;
    let hi = (((g + 1) as f64) * block).ceil() as usize;
    (hi.min(d)).saturating_sub(lo).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenOptions};
    use crate::profiles::DatasetProfile;

    fn tiny() -> Dataset {
        let x = CsrMatrix::from_row_entries(
            2,
            6,
            &[vec![(0, 1.0), (1, 2.0), (5, 3.0)], vec![(2, 4.0)]],
        );
        Dataset::new("tiny", x, vec![1.0, -1.0])
    }

    #[test]
    fn grouping_averages_consecutive_blocks() {
        // 6 features -> 3 groups of 2: row 0 groups to [(1+2)/2, 0, 3/2].
        let g = group_features(&tiny(), 3);
        assert_eq!(g.d(), 3);
        let d = g.x.to_dense();
        assert!((d.at(0, 0) - 1.5).abs() < 1e-12);
        assert_eq!(d.at(0, 1), 0.0);
        assert!((d.at(0, 2) - 1.5).abs() < 1e-12);
        assert!((d.at(1, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn grouping_preserves_labels_and_names() {
        let g = group_features(&tiny(), 2);
        assert_eq!(g.y, vec![1.0, -1.0]);
        assert_eq!(g.name, "tiny-mlp");
    }

    #[test]
    fn identity_grouping_is_a_rename() {
        let t = tiny();
        let g = group_features(&t, 6);
        assert_eq!(g.x, t.x);
        assert_eq!(g.name, "tiny-mlp");
    }

    #[test]
    #[should_panic(expected = "invalid target width")]
    fn wider_than_input_rejected() {
        let _ = group_features(&tiny(), 7);
    }

    #[test]
    fn grouping_increases_density_like_table1() {
        // real-sim: LR/SVM sparsity 0.25 %, MLP sparsity (after grouping to
        // 50 inputs) 42.64 % in Table I — grouping makes it much denser.
        let ds = generate(&DatasetProfile::real_sim().scaled(0.01), &GenOptions::default());
        let before = ds.x.density();
        let g = group_features(&ds, 50);
        let after = g.x.density();
        assert!(after > 20.0 * before, "density before {before}, after {after}");
        assert!(after > 0.2, "MLP-transformed real-sim should be fairly dense, got {after}");
    }

    #[test]
    fn normalize_rows_gives_unit_norms() {
        let x = CsrMatrix::from_row_entries(
            3,
            4,
            &[vec![(0, 3.0), (1, 4.0)], vec![], vec![(2, 0.001)]],
        );
        let n = normalize_rows(&x);
        assert!((n.row(0).norm_sq() - 1.0).abs() < 1e-12);
        assert_eq!(n.row(1).nnz(), 0);
        assert!((n.row(2).norm_sq() - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((n.row(0).vals[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn block_width_partitions_all_features() {
        for (d, t) in [(6usize, 3usize), (10, 3), (1355, 300), (54, 54)] {
            let total: usize = (0..t).map(|g| block_width(d, t, g)).sum();
            // Widths cover at least all features (rounding can overlap by
            // at most target).
            assert!(total >= d - t && total <= d + t, "d={d} t={t} total={total}");
        }
    }
}
