//! Dataset statistics — the regenerator of Table I.

use crate::dataset::Dataset;
use crate::profiles::DatasetProfile;
use crate::transform::group_features;

/// One row of Table I, computed from an actual (generated or loaded)
/// dataset.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset name.
    pub name: String,
    /// Number of examples.
    pub examples: usize,
    /// Number of features.
    pub features: usize,
    /// Minimum nnz per example.
    pub nnz_min: usize,
    /// Average nnz per example.
    pub nnz_avg: f64,
    /// Maximum nnz per example.
    pub nnz_max: usize,
    /// Sparse representation size in bytes.
    pub sparse_bytes: usize,
    /// Dense representation size in bytes.
    pub dense_bytes: usize,
    /// LR/SVM sparsity percentage (avg nnz / features).
    pub lr_svm_sparsity_pct: f64,
    /// MLP sparsity percentage after feature grouping.
    pub mlp_sparsity_pct: f64,
    /// MLP architecture string, e.g. `54-10-5-2`.
    pub mlp_architecture: String,
}

impl Table1Row {
    /// Formats the row like the paper's table.
    pub fn formatted(&self) -> String {
        format!(
            "{:<9} {:>9} {:>9} {:>6} {:>8.1} {:>7}  {:>10} / {:>12}  {:>7.2}%  {:>7.2}%  {}",
            self.name,
            self.examples,
            self.features,
            self.nnz_min,
            self.nnz_avg,
            self.nnz_max,
            human_bytes(self.sparse_bytes),
            human_bytes(self.dense_bytes),
            self.lr_svm_sparsity_pct,
            self.mlp_sparsity_pct,
            self.mlp_architecture,
        )
    }
}

/// Computes a Table I row for a dataset generated from (or matching)
/// `profile`.
pub fn table1_row(ds: &Dataset, profile: &DatasetProfile) -> Table1Row {
    let (nnz_min, nnz_avg, nnz_max) = ds.x.nnz_per_row_stats();
    let mlp = group_features(ds, profile.mlp_input.min(ds.d()));
    let (_, mlp_avg, _) = mlp.x.nnz_per_row_stats();
    let arch: Vec<String> = profile.mlp_architecture().iter().map(|u| u.to_string()).collect();
    Table1Row {
        name: ds.name.clone(),
        examples: ds.n(),
        features: ds.d(),
        nnz_min,
        nnz_avg,
        nnz_max,
        sparse_bytes: ds.x.sparse_size_bytes(),
        dense_bytes: ds.x.dense_size_bytes(),
        lr_svm_sparsity_pct: 100.0 * nnz_avg / ds.d() as f64,
        mlp_sparsity_pct: 100.0 * mlp_avg / mlp.d() as f64,
        mlp_architecture: arch.join("-"),
    }
}

/// Human-readable byte count (binary units, one decimal).
pub fn human_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}{}", UNITS[0])
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenOptions};

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn row_reflects_generated_data() {
        let p = DatasetProfile::w8a().scaled(0.02);
        let ds = generate(&p, &GenOptions::default());
        let row = table1_row(&ds, &p);
        assert_eq!(row.examples, p.examples);
        assert_eq!(row.features, 300);
        assert!(row.lr_svm_sparsity_pct < 10.0);
        // w8a keeps its width for the MLP, so the sparsities coincide.
        assert!((row.mlp_sparsity_pct - row.lr_svm_sparsity_pct).abs() < 1e-9);
        assert_eq!(row.mlp_architecture, "300-10-5-2");
        assert!(row.sparse_bytes < row.dense_bytes);
    }

    #[test]
    fn grouped_profile_reports_denser_mlp_column() {
        let p = DatasetProfile::real_sim().scaled(0.005);
        let ds = generate(&p, &GenOptions::default());
        let row = table1_row(&ds, &p);
        assert!(row.mlp_sparsity_pct > 5.0 * row.lr_svm_sparsity_pct);
    }

    #[test]
    fn formatted_row_contains_key_fields() {
        let p = DatasetProfile::covtype().scaled(0.001);
        let ds = generate(&p, &GenOptions::default());
        let s = table1_row(&ds, &p).formatted();
        assert!(s.contains("covtype"));
        assert!(s.contains("54-10-5-2"));
        assert!(s.contains("100.00%"));
    }
}
