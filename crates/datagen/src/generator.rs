//! Synthetic dataset generation matched to the Table I profiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgd_linalg::{CsrMatrix, Scalar};

use crate::dataset::Dataset;
use crate::profiles::DatasetProfile;
use crate::rng_util::{log_normal_count, normal};

/// Knobs of the synthetic generator.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// RNG seed; identical seeds produce identical datasets.
    pub seed: u64,
    /// Example-count scale applied to the profile (1.0 = published size).
    pub scale: f64,
    /// Probability of flipping a planted label (irreducible noise, keeps
    /// the optimum loss away from zero like real data).
    pub label_noise: f64,
    /// Spread (sigma) of the log-normal nnz-per-example distribution. The
    /// published min/avg/max spans of the sparse datasets correspond to
    /// sigma around 1.0–1.3.
    pub nnz_sigma: f64,
    /// Zipf exponent of feature popularity (text-like skew; 0 = uniform).
    pub feature_skew: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { seed: 42, scale: 1.0, label_noise: 0.02, nnz_sigma: 1.1, feature_skew: 1.0 }
    }
}

impl GenOptions {
    /// Default options at the given example-count scale.
    pub fn at_scale(scale: f64) -> Self {
        GenOptions { scale, ..Default::default() }
    }
}

/// Zipf-like sampler over `n` items via inverse-CDF binary search.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, skew: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(skew);
            cdf.push(total);
        }
        ZipfSampler { cdf }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("empty sampler");
        let u = rng.gen_range(0.0..total);
        self.cdf.partition_point(|&c| c < u)
    }
}

/// Generates a dataset matching `profile` (optionally scaled by
/// `opts.scale`).
///
/// Construction:
/// 1. nnz per example ~ log-normal fit to the profile's min/avg/max;
/// 2. feature indices ~ Zipf (popular features shared across examples, as
///    in text data — this is what creates Hogwild update conflicts);
/// 3. values ~ standard normal, then each row L2-normalized (the LIBSVM
///    versions of real-sim/rcv1/news are tf-idf row-normalized);
/// 4. labels planted from a dense ground-truth separator with
///    `label_noise` flips, so losses have a meaningful minimum.
///
/// To keep feature order uninformative the sampled Zipf ranks are hashed
/// over the feature range; the mapping is deterministic per seed.
pub fn generate(profile: &DatasetProfile, opts: &GenOptions) -> Dataset {
    let p =
        if (opts.scale - 1.0).abs() < 1e-12 { profile.clone() } else { profile.scaled(opts.scale) };
    let mut rng = StdRng::seed_from_u64(opts.seed ^ fxhash(p.name));
    let d = p.features;

    // Ground-truth separator: dense, ~N(0, 1) per coordinate.
    let truth: Vec<Scalar> = (0..d).map(|_| normal(&mut rng)).collect();

    let zipf = if p.dense { None } else { Some(ZipfSampler::new(d, opts.feature_skew)) };
    // A fixed random permutation-ish map so that popular features are not
    // all at low indices (multiplicative hashing by an odd constant).
    let spread = |rank: usize| -> u32 {
        ((rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % d as u64) as u32
    };

    let mut entries: Vec<Vec<(u32, Scalar)>> = Vec::with_capacity(p.examples);
    let mut labels = Vec::with_capacity(p.examples);
    let mut cols_buf: Vec<u32> = Vec::new();
    for _ in 0..p.examples {
        let nnz = if p.dense {
            d
        } else {
            log_normal_count(
                &mut rng,
                p.nnz_avg as f64,
                opts.nnz_sigma,
                p.nnz_min.max(1),
                p.nnz_max.min(d),
            )
        };
        cols_buf.clear();
        if p.dense {
            cols_buf.extend(0..d as u32);
        } else {
            let zipf = zipf.as_ref().expect("sparse profile has a sampler");
            // Sample with rejection of duplicates; the retry bound protects
            // against pathological skew.
            let mut attempts = 0usize;
            while cols_buf.len() < nnz && attempts < nnz * 20 {
                let c = spread(zipf.sample(&mut rng));
                attempts += 1;
                if !cols_buf.contains(&c) {
                    cols_buf.push(c);
                }
            }
            // Fill any remainder with uniform columns (only reachable for
            // tiny feature counts under heavy skew).
            while cols_buf.len() < nnz {
                let c = rng.gen_range(0..d as u32);
                if !cols_buf.contains(&c) {
                    cols_buf.push(c);
                }
            }
            cols_buf.sort_unstable();
        }

        let mut row: Vec<(u32, Scalar)> = cols_buf.iter().map(|&c| (c, normal(&mut rng))).collect();
        let norm: Scalar = row.iter().map(|(_, v)| v * v).sum::<Scalar>().sqrt();
        if norm > 0.0 {
            for (_, v) in row.iter_mut() {
                *v /= norm;
            }
        }

        let margin: Scalar = row.iter().map(|&(c, v)| v * truth[c as usize]).sum();
        let mut label = if margin >= 0.0 { 1.0 } else { -1.0 };
        if rng.gen::<f64>() < opts.label_noise {
            label = -label;
        }
        labels.push(label);
        entries.push(row);
    }

    let x = CsrMatrix::from_row_entries(p.examples, d, &entries);
    let mut ds = Dataset::new(p.name, x, labels);
    ds.ground_truth = Some(truth);
    ds
}

/// Plants fresh `±1` labels for an existing example matrix from a new
/// ground-truth separator (with `noise` flip probability). Used to
/// re-label the MLP's feature-grouped datasets, whose grouping averages
/// away the original separator's signal.
pub fn plant_labels(x: &CsrMatrix, seed: u64, noise: f64) -> (Vec<Scalar>, Vec<Scalar>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<Scalar> = (0..x.cols()).map(|_| normal(&mut rng)).collect();
    let labels = (0..x.rows())
        .map(|i| {
            let margin = x.row(i).dot(&truth);
            let mut label = if margin >= 0.0 { 1.0 } else { -1.0 };
            if rng.gen::<f64>() < noise {
                label = -label;
            }
            label
        })
        .collect();
    (labels, truth)
}

/// Tiny deterministic string hash to decorrelate per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(profile: DatasetProfile, scale: f64) -> Dataset {
        generate(&profile, &GenOptions::at_scale(scale))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(DatasetProfile::w8a(), 0.01);
        let b = small(DatasetProfile::w8a(), 0.01);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatasetProfile::w8a().scaled(0.01), &GenOptions::default());
        let b = generate(
            &DatasetProfile::w8a().scaled(0.01),
            &GenOptions { seed: 7, ..Default::default() },
        );
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn dense_profile_generates_full_rows() {
        let ds = small(DatasetProfile::covtype(), 0.001);
        let (min, avg, max) = ds.x.nnz_per_row_stats();
        assert_eq!((min, max), (54, 54));
        assert!((avg - 54.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_profile_matches_nnz_band() {
        let ds = small(DatasetProfile::rcv1(), 0.005);
        let (min, avg, max) = ds.x.nnz_per_row_stats();
        assert!(min >= 4, "min {min}");
        assert!(max <= 1224, "max {max}");
        // Average within ±40 % of the published 73 (clamping shifts it).
        assert!(avg > 40.0 && avg < 110.0, "avg {avg}");
    }

    #[test]
    fn rows_are_unit_normalized() {
        let ds = small(DatasetProfile::real_sim(), 0.002);
        for i in 0..ds.n().min(50) {
            let n2 = ds.x.row(i).norm_sq();
            assert!((n2 - 1.0).abs() < 1e-9, "row {i} norm^2 {n2}");
        }
    }

    #[test]
    fn labels_mostly_agree_with_ground_truth() {
        let ds = small(DatasetProfile::w8a(), 0.02);
        let truth = ds.ground_truth.as_ref().expect("synthetic data has truth");
        let mut agree = 0usize;
        for i in 0..ds.n() {
            let margin = ds.x.row(i).dot(truth);
            if (margin >= 0.0) == (ds.y[i] > 0.0) {
                agree += 1;
            }
        }
        let frac = agree as f64 / ds.n() as f64;
        assert!(frac > 0.95, "agreement {frac}");
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let ds = small(DatasetProfile::rcv1(), 0.002);
        let pos = ds.positive_fraction();
        assert!(pos > 0.25 && pos < 0.75, "positive fraction {pos}");
    }

    #[test]
    fn zipf_sampler_skews_to_low_ranks() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let low = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // Under Zipf(1.0) over 1000 items, ranks 0..10 carry ~39 % of mass;
        // uniform would give 1 %.
        assert!(low as f64 / n as f64 > 0.25);
    }

    #[test]
    fn feature_usage_is_skewed_but_spread() {
        let ds = small(DatasetProfile::real_sim(), 0.005);
        let mut counts = vec![0u32; ds.d()];
        for i in 0..ds.n() {
            for &c in ds.x.row(i).cols {
                counts[c as usize] += 1;
            }
        }
        let used = counts.iter().filter(|&&c| c > 0).count();
        let max = *counts.iter().max().expect("nonempty") as f64;
        let avg = ds.x.nnz() as f64 / used as f64;
        assert!(used > 100, "features used: {used}");
        assert!(max > 5.0 * avg, "hot features should exist (max {max}, avg {avg})");
    }
}
