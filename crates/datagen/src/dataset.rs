//! The in-memory training dataset.

use sgd_linalg::{CsrMatrix, Matrix, Scalar};

/// A labelled training dataset.
///
/// Storage is CSR (the only representation that fits for the large sparse
/// datasets — Table I shows `rcv1` at 256 GB dense); a dense
/// materialization is available for the dense code paths where it fits.
/// Labels are `±1` (the paper's LR and SVM are binary; the MLP uses two
/// output units over the same labels).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (profile name, possibly suffixed by a transform).
    pub name: String,
    /// The `N x d` example matrix.
    pub x: CsrMatrix,
    /// Per-example labels in `{-1.0, +1.0}`.
    pub y: Vec<Scalar>,
    /// The planted separator the labels were generated from, when the
    /// dataset is synthetic. Useful for sanity-checking convergence.
    pub ground_truth: Option<Vec<Scalar>>,
}

impl Dataset {
    /// Builds a dataset, validating shape agreement.
    ///
    /// # Panics
    /// Panics if `y.len() != x.rows()` or a label is not `±1`.
    pub fn new(name: impl Into<String>, x: CsrMatrix, y: Vec<Scalar>) -> Self {
        assert_eq!(x.rows(), y.len(), "one label per example required");
        assert!(y.iter().all(|&l| l == 1.0 || l == -1.0), "labels must be +/-1");
        Dataset { name: name.into(), x, y, ground_truth: None }
    }

    /// Number of examples (N).
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Number of features (d).
    pub fn d(&self) -> usize {
        self.x.cols()
    }

    /// Dense materialization of the example matrix.
    ///
    /// # Panics
    /// Panics if the dense size would exceed `limit_bytes` — the same
    /// guard the paper applies when dense `rcv1`/`news` cannot be
    /// processed even on the CPU.
    pub fn to_dense(&self, limit_bytes: usize) -> Matrix {
        let need = self.x.dense_size_bytes();
        assert!(
            need <= limit_bytes,
            "dense representation needs {need} bytes, limit is {limit_bytes}"
        );
        self.x.to_dense()
    }

    /// Fraction of positive labels.
    pub fn positive_fraction(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&l| l > 0.0).count() as f64 / self.y.len() as f64
    }

    /// A copy restricted to examples `lo..hi` (used for mini-batching
    /// tests and integration splits).
    pub fn slice(&self, lo: usize, hi: usize) -> Dataset {
        assert!(lo <= hi && hi <= self.n());
        let entries: Vec<Vec<(u32, Scalar)>> = (lo..hi)
            .map(|i| {
                let r = self.x.row(i);
                r.cols.iter().copied().zip(r.vals.iter().copied()).collect()
            })
            .collect();
        Dataset {
            name: format!("{}[{lo}..{hi}]", self.name),
            x: CsrMatrix::from_row_entries(hi - lo, self.d(), &entries),
            y: self.y[lo..hi].to_vec(),
            ground_truth: self.ground_truth.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let x = CsrMatrix::from_row_entries(
            3,
            4,
            &[vec![(0, 1.0)], vec![(1, 2.0), (3, 1.0)], vec![(2, -1.0)]],
        );
        Dataset::new("tiny", x, vec![1.0, -1.0, 1.0])
    }

    #[test]
    fn shape_accessors() {
        let d = tiny();
        assert_eq!((d.n(), d.d()), (3, 4));
        assert!((d.positive_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one label per example")]
    fn label_count_checked() {
        let x = CsrMatrix::from_row_entries(2, 2, &[vec![], vec![]]);
        let _ = Dataset::new("bad", x, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn label_values_checked() {
        let x = CsrMatrix::from_row_entries(1, 2, &[vec![]]);
        let _ = Dataset::new("bad", x, vec![0.5]);
    }

    #[test]
    fn dense_guard() {
        let d = tiny();
        let m = d.to_dense(usize::MAX);
        assert_eq!(m.at(1, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "dense representation needs")]
    fn dense_guard_rejects_oversized() {
        let _ = tiny().to_dense(8);
    }

    #[test]
    fn slice_extracts_rows_and_labels() {
        let d = tiny().slice(1, 3);
        assert_eq!(d.n(), 2);
        assert_eq!(d.y, vec![-1.0, 1.0]);
        assert_eq!(d.x.row(0).cols, &[1, 3]);
    }
}
