//! LIBSVM text-format reader/writer.
//!
//! The paper's datasets ship in this format (`label idx:val idx:val ...`,
//! 1-based indices). Real files can be dropped into the study through
//! [`read_file`]; the writer exists so synthetic datasets can be exported
//! for cross-checking against other systems.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sgd_linalg::{CsrMatrix, Scalar};

use crate::dataset::Dataset;

/// Structured parse failure from the LIBSVM reader. Every in-line variant
/// carries the 1-based line number of the offending record so malformed
/// multi-gigabyte dumps can be fixed without bisecting them by hand.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// The leading label token did not parse as a number.
    BadLabel {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The label parsed but is NaN or infinite — it would poison every
    /// loss evaluation downstream.
    NonFiniteLabel {
        /// 1-based line number.
        line: usize,
        /// The parsed non-finite value.
        value: f64,
    },
    /// A feature token was not of the `idx:val` form.
    MalformedPair {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The index half of a pair did not parse as an integer.
    BadIndex {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// LIBSVM indices are 1-based; an explicit `0:` index is malformed.
    ZeroIndex {
        /// 1-based line number.
        line: usize,
    },
    /// The value half of a pair did not parse as a number.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A feature value parsed but is NaN or infinite.
    NonFiniteValue {
        /// 1-based line number.
        line: usize,
        /// The parsed non-finite value.
        value: f64,
    },
    /// An index exceeds the caller-declared feature-space width.
    IndexOutOfRange {
        /// Largest 1-based index seen in the data.
        index: usize,
        /// The declared width it exceeds.
        features: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLabel { line, token } => {
                write!(f, "line {line}: bad label: '{token}' is not a number")
            }
            ParseError::NonFiniteLabel { line, value } => {
                write!(f, "line {line}: non-finite label {value}")
            }
            ParseError::MalformedPair { line, token } => {
                write!(f, "line {line}: expected idx:val, got '{token}'")
            }
            ParseError::BadIndex { line, token } => {
                write!(f, "line {line}: bad index: '{token}' is not an integer")
            }
            ParseError::ZeroIndex { line } => {
                write!(f, "line {line}: LIBSVM indices are 1-based")
            }
            ParseError::BadValue { line, token } => {
                write!(f, "line {line}: bad value: '{token}' is not a number")
            }
            ParseError::NonFiniteValue { line, value } => {
                write!(f, "line {line}: non-finite value {value}")
            }
            ParseError::IndexOutOfRange { index, features } => {
                write!(f, "index {index} exceeds declared features {features}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses LIBSVM text. `features` forces the feature-space width; pass 0 to
/// infer it from the data. Labels are mapped to `±1` (`<= 0` and the
/// common `0/1` and `1/2` encodings become `-1/+1`). Non-finite labels and
/// values are rejected with the offending line number.
pub fn parse_str(name: &str, text: &str, features: usize) -> Result<Dataset, ParseError> {
    let mut entries: Vec<Vec<(u32, Scalar)>> = Vec::new();
    let mut raw_labels: Vec<f64> = Vec::new();
    let mut max_col = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        let mut parts = line.split_whitespace();
        let Some(first) = parts.next() else { continue };
        let label: f64 = first
            .parse()
            .map_err(|_| ParseError::BadLabel { line: lineno, token: first.to_string() })?;
        if !label.is_finite() {
            return Err(ParseError::NonFiniteLabel { line: lineno, value: label });
        }
        let mut row: Vec<(u32, Scalar)> = Vec::new();
        for tok in parts {
            let (idx, val) = tok.split_once(':').ok_or_else(|| ParseError::MalformedPair {
                line: lineno,
                token: tok.to_string(),
            })?;
            let idx: usize = idx
                .parse()
                .map_err(|_| ParseError::BadIndex { line: lineno, token: idx.to_string() })?;
            if idx == 0 {
                return Err(ParseError::ZeroIndex { line: lineno });
            }
            let val: Scalar = val
                .parse()
                .map_err(|_| ParseError::BadValue { line: lineno, token: val.to_string() })?;
            if !val.is_finite() {
                return Err(ParseError::NonFiniteValue { line: lineno, value: val });
            }
            max_col = max_col.max(idx);
            row.push((idx as u32 - 1, val));
        }
        entries.push(row);
        raw_labels.push(label);
    }

    let d = if features > 0 {
        if max_col > features {
            return Err(ParseError::IndexOutOfRange { index: max_col, features });
        }
        features
    } else {
        max_col.max(1)
    };

    // Map labels to +/-1: the largest label value is the positive class
    // (covers the +1/-1, 1/0 and 2/1 encodings used by the five datasets).
    let hi = raw_labels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let y: Vec<Scalar> = raw_labels.iter().map(|&l| if l == hi { 1.0 } else { -1.0 }).collect();

    let x = CsrMatrix::from_row_entries(entries.len(), d, &entries);
    Ok(Dataset::new(name, x, y))
}

/// Reads a LIBSVM file from disk.
pub fn read_file(path: &Path, features: usize) -> io::Result<Dataset> {
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("libsvm").to_string();
    let mut text = String::new();
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    while reader.read_line(&mut line)? != 0 {
        text.push_str(&line);
        line.clear();
    }
    parse_str(&name, &text, features).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serializes a dataset to LIBSVM text.
pub fn to_string(ds: &Dataset) -> String {
    let mut out = String::new();
    for (i, &label) in ds.y.iter().enumerate().take(ds.n()) {
        out.push_str(if label > 0.0 { "+1" } else { "-1" });
        let row = ds.x.row(i);
        for (&c, &v) in row.cols.iter().zip(row.vals) {
            out.push_str(&format!(" {}:{}", c + 1, v));
        }
        out.push('\n');
    }
    out
}

/// Writes a dataset as a LIBSVM file.
pub fn write_file(ds: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(to_string(ds).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "+1 1:0.5 3:2\n-1 2:1\n";
        let ds = parse_str("t", text, 0).expect("valid input");
        assert_eq!((ds.n(), ds.d()), (2, 3));
        assert_eq!(ds.y, vec![1.0, -1.0]);
        assert_eq!(ds.x.row(0).cols, &[0, 2]);
        assert_eq!(ds.x.row(0).vals, &[0.5, 2.0]);
    }

    #[test]
    fn respects_declared_width_and_skips_comments() {
        let text = "# comment\n+1 1:1\n\n-1 1:2\n";
        let ds = parse_str("t", text, 10).expect("valid input");
        assert_eq!(ds.d(), 10);
        assert_eq!(ds.n(), 2);
    }

    #[test]
    fn rejects_zero_index() {
        let err = parse_str("t", "+1 0:1\n", 0).unwrap_err();
        assert_eq!(err, ParseError::ZeroIndex { line: 1 });
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn rejects_malformed_pair() {
        let err = parse_str("t", "+1 abc\n", 0).unwrap_err();
        assert_eq!(err, ParseError::MalformedPair { line: 1, token: "abc".into() });
        assert!(err.to_string().contains("idx:val"));
    }

    #[test]
    fn rejects_overflowing_index() {
        let err = parse_str("t", "+1 5:1\n", 3).unwrap_err();
        assert_eq!(err, ParseError::IndexOutOfRange { index: 5, features: 3 });
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_bad_label_and_bad_tokens_with_line_numbers() {
        // Comments and blank lines still count toward the reported line
        // number, so it matches what an editor shows.
        let err = parse_str("t", "# header\n+1 1:1\nxyz 1:1\n", 0).unwrap_err();
        assert_eq!(err, ParseError::BadLabel { line: 3, token: "xyz".into() });

        let err = parse_str("t", "+1 a:1\n", 0).unwrap_err();
        assert_eq!(err, ParseError::BadIndex { line: 1, token: "a".into() });

        let err = parse_str("t", "+1 1:x\n", 0).unwrap_err();
        assert_eq!(err, ParseError::BadValue { line: 1, token: "x".into() });
    }

    #[test]
    fn rejects_non_finite_values_and_labels() {
        let err = parse_str("t", "+1 1:1\n-1 2:nan\n", 0).unwrap_err();
        assert!(
            matches!(err, ParseError::NonFiniteValue { line: 2, value } if value.is_nan()),
            "{err:?}"
        );
        assert!(err.to_string().contains("line 2"));

        let err = parse_str("t", "+1 1:inf\n", 0).unwrap_err();
        assert!(matches!(err, ParseError::NonFiniteValue { line: 1, .. }), "{err:?}");

        let err = parse_str("t", "inf 1:1\n", 0).unwrap_err();
        assert!(matches!(err, ParseError::NonFiniteLabel { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn parse_error_converts_to_io_error_through_read_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("sgd_study_libsvm_bad_test.svm");
        std::fs::write(&path, "+1 1:nan\n").expect("write");
        let err = read_file(&path, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("non-finite value"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn maps_zero_one_labels() {
        let ds = parse_str("t", "1 1:1\n0 1:1\n", 0).expect("valid input");
        assert_eq!(ds.y, vec![1.0, -1.0]);
    }

    #[test]
    fn round_trips_through_text() {
        let text = "+1 1:0.5 3:2\n-1 2:1.25\n";
        let ds = parse_str("t", text, 3).expect("valid input");
        let ds2 = parse_str("t", &to_string(&ds), 3).expect("round trip");
        assert_eq!(ds.x, ds2.x);
        assert_eq!(ds.y, ds2.y);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sgd_study_libsvm_test.svm");
        let ds = parse_str("t", "+1 1:1 2:-2\n-1 3:0.5\n", 0).expect("valid input");
        write_file(&ds, &path).expect("write");
        let back = read_file(&path, 0).expect("read");
        assert_eq!(ds.x, back.x);
        assert_eq!(ds.y, back.y);
        std::fs::remove_file(&path).ok();
    }
}
