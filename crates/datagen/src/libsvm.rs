//! LIBSVM text-format reader/writer.
//!
//! The paper's datasets ship in this format (`label idx:val idx:val ...`,
//! 1-based indices). Real files can be dropped into the study through
//! [`read_file`]; the writer exists so synthetic datasets can be exported
//! for cross-checking against other systems.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sgd_linalg::{CsrMatrix, Scalar};

use crate::dataset::Dataset;

/// Parses LIBSVM text. `features` forces the feature-space width; pass 0 to
/// infer it from the data. Labels are mapped to `±1` (`<= 0` and the
/// common `0/1` and `1/2` encodings become `-1/+1`).
pub fn parse_str(name: &str, text: &str, features: usize) -> Result<Dataset, String> {
    let mut entries: Vec<Vec<(u32, Scalar)>> = Vec::new();
    let mut raw_labels: Vec<f64> = Vec::new();
    let mut max_col = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label: f64 = parts
            .next()
            .expect("non-empty line has a first token")
            .parse()
            .map_err(|e| format!("line {}: bad label: {e}", lineno + 1))?;
        let mut row: Vec<(u32, Scalar)> = Vec::new();
        for tok in parts {
            let (idx, val) = tok
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected idx:val, got '{tok}'", lineno + 1))?;
            let idx: usize =
                idx.parse().map_err(|e| format!("line {}: bad index: {e}", lineno + 1))?;
            if idx == 0 {
                return Err(format!("line {}: LIBSVM indices are 1-based", lineno + 1));
            }
            let val: Scalar =
                val.parse().map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
            max_col = max_col.max(idx);
            row.push((idx as u32 - 1, val));
        }
        entries.push(row);
        raw_labels.push(label);
    }

    let d = if features > 0 {
        if max_col > features {
            return Err(format!("index {max_col} exceeds declared features {features}"));
        }
        features
    } else {
        max_col.max(1)
    };

    // Map labels to +/-1: the largest label value is the positive class
    // (covers the +1/-1, 1/0 and 2/1 encodings used by the five datasets).
    let hi = raw_labels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let y: Vec<Scalar> = raw_labels.iter().map(|&l| if l == hi { 1.0 } else { -1.0 }).collect();

    let x = CsrMatrix::from_row_entries(entries.len(), d, &entries);
    Ok(Dataset::new(name, x, y))
}

/// Reads a LIBSVM file from disk.
pub fn read_file(path: &Path, features: usize) -> io::Result<Dataset> {
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("libsvm").to_string();
    let mut text = String::new();
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    while reader.read_line(&mut line)? != 0 {
        text.push_str(&line);
        line.clear();
    }
    parse_str(&name, &text, features).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serializes a dataset to LIBSVM text.
pub fn to_string(ds: &Dataset) -> String {
    let mut out = String::new();
    for i in 0..ds.n() {
        let label = if ds.y[i] > 0.0 { "+1" } else { "-1" };
        out.push_str(label);
        let row = ds.x.row(i);
        for (&c, &v) in row.cols.iter().zip(row.vals) {
            out.push_str(&format!(" {}:{}", c + 1, v));
        }
        out.push('\n');
    }
    out
}

/// Writes a dataset as a LIBSVM file.
pub fn write_file(ds: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(to_string(ds).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "+1 1:0.5 3:2\n-1 2:1\n";
        let ds = parse_str("t", text, 0).expect("valid input");
        assert_eq!((ds.n(), ds.d()), (2, 3));
        assert_eq!(ds.y, vec![1.0, -1.0]);
        assert_eq!(ds.x.row(0).cols, &[0, 2]);
        assert_eq!(ds.x.row(0).vals, &[0.5, 2.0]);
    }

    #[test]
    fn respects_declared_width_and_skips_comments() {
        let text = "# comment\n+1 1:1\n\n-1 1:2\n";
        let ds = parse_str("t", text, 10).expect("valid input");
        assert_eq!(ds.d(), 10);
        assert_eq!(ds.n(), 2);
    }

    #[test]
    fn rejects_zero_index() {
        assert!(parse_str("t", "+1 0:1\n", 0).unwrap_err().contains("1-based"));
    }

    #[test]
    fn rejects_malformed_pair() {
        assert!(parse_str("t", "+1 abc\n", 0).unwrap_err().contains("idx:val"));
    }

    #[test]
    fn rejects_overflowing_index() {
        assert!(parse_str("t", "+1 5:1\n", 3).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn maps_zero_one_labels() {
        let ds = parse_str("t", "1 1:1\n0 1:1\n", 0).expect("valid input");
        assert_eq!(ds.y, vec![1.0, -1.0]);
    }

    #[test]
    fn round_trips_through_text() {
        let text = "+1 1:0.5 3:2\n-1 2:1.25\n";
        let ds = parse_str("t", text, 3).expect("valid input");
        let ds2 = parse_str("t", &to_string(&ds), 3).expect("round trip");
        assert_eq!(ds.x, ds2.x);
        assert_eq!(ds.y, ds2.y);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sgd_study_libsvm_test.svm");
        let ds = parse_str("t", "+1 1:1 2:-2\n-1 3:0.5\n", 0).expect("valid input");
        write_file(&ds, &path).expect("write");
        let back = read_file(&path, 0).expect("read");
        assert_eq!(ds.x, back.x);
        assert_eq!(ds.y, back.y);
        std::fs::remove_file(&path).ok();
    }
}
