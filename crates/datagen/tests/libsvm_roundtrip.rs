//! Property test: the LIBSVM writer and parser are exact inverses.
//!
//! The serving wire protocol ships examples as LIBSVM lines, so a
//! writer→parser drift would silently skew every served score. Sweep
//! generated datasets across profiles, seeds, and noise settings and
//! require the round trip to preserve shape, labels, and every stored
//! value bit-for-bit (Rust's shortest-round-trip float formatting
//! guarantees the text form parses back to the same bits).

use sgd_datagen::{generate, libsvm, Dataset, DatasetProfile, GenOptions};

/// Asserts `b` is an exact reconstruction of `a`.
fn assert_bit_identical(a: &Dataset, b: &Dataset) {
    assert_eq!(a.n(), b.n(), "example count");
    assert_eq!(a.d(), b.d(), "feature count");
    assert_eq!(a.x.nnz(), b.x.nnz(), "non-zero count");
    for (ya, yb) in a.y.iter().zip(&b.y) {
        assert_eq!(ya.to_bits(), yb.to_bits(), "labels");
    }
    for i in 0..a.n() {
        let (ra, rb) = (a.x.row(i), b.x.row(i));
        assert_eq!(ra.cols, rb.cols, "row {i} column indices");
        let vals_equal = ra.vals.iter().zip(rb.vals).all(|(va, vb)| va.to_bits() == vb.to_bits());
        assert!(vals_equal, "row {i} values must round-trip bit-exactly");
    }
}

#[test]
fn writer_parser_round_trip_across_profiles_and_seeds() {
    let profiles = [DatasetProfile::w8a(), DatasetProfile::rcv1(), DatasetProfile::covtype()];
    for profile in profiles {
        for seed in [1, 7, 42] {
            let opts = GenOptions { seed, scale: 0.002, ..GenOptions::default() };
            let ds = generate(&profile, &opts);
            assert!(ds.n() > 0, "{}: empty dataset defeats the test", profile.name);
            let text = libsvm::to_string(&ds);
            let back = libsvm::parse_str(&ds.name, &text, ds.d()).unwrap_or_else(|e| {
                panic!("{} seed {seed}: writer output failed to parse: {e}", profile.name)
            });
            assert_bit_identical(&ds, &back);
        }
    }
}

#[test]
fn round_trip_survives_label_noise_and_skew() {
    for noise in [0.0, 0.1, 0.4] {
        let opts =
            GenOptions { seed: 3, scale: 0.005, label_noise: noise, ..GenOptions::default() };
        let ds = generate(&DatasetProfile::w8a(), &opts);
        // The parser maps the largest raw label to +1, so a mixed-label
        // dataset is required for the labels to survive unchanged.
        assert!(ds.y.iter().any(|&l| l > 0.0) && ds.y.iter().any(|&l| l < 0.0), "mixed labels");
        let back = libsvm::parse_str(&ds.name, &libsvm::to_string(&ds), ds.d()).expect("parses");
        assert_bit_identical(&ds, &back);
    }
}

#[test]
fn round_trip_preserves_awkward_float_values() {
    // Hand-built rows exercising values the generator rarely emits:
    // subnormals, extreme exponents, and long fractions.
    let entries = vec![
        vec![(0, 5e-324_f64), (2, 1.7976931348623157e308)],
        vec![(1, -2.2250738585072014e-308), (3, 0.1 + 0.2)],
        vec![],
        vec![(4, -123456.78901234567)],
    ];
    let x = sgd_linalg::CsrMatrix::from_row_entries(4, 5, &entries);
    let ds = Dataset::new("awkward", x, vec![1.0, -1.0, 1.0, -1.0]);
    let back = libsvm::parse_str("awkward", &libsvm::to_string(&ds), 5).expect("parses");
    assert_bit_identical(&ds, &back);
}
