//! Borrowed views of (a batch of) training examples.

use sgd_linalg::{CsrMatrix, Matrix, Scalar};

/// The example matrix of a batch, dense or CSR — the data-sparsity axis of
/// the paper's Fig. 1.
#[derive(Clone, Copy, Debug)]
pub enum Examples<'a> {
    /// Row-major dense examples.
    Dense(&'a Matrix),
    /// CSR sparse examples.
    Sparse(&'a CsrMatrix),
}

impl Examples<'_> {
    /// Number of examples.
    pub fn n(&self) -> usize {
        match self {
            Examples::Dense(m) => m.rows(),
            Examples::Sparse(m) => m.rows(),
        }
    }

    /// Number of features.
    pub fn d(&self) -> usize {
        match self {
            Examples::Dense(m) => m.cols(),
            Examples::Sparse(m) => m.cols(),
        }
    }

    /// `true` for the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, Examples::Dense(_))
    }
}

/// A batch: examples plus their `±1` labels.
#[derive(Clone, Copy, Debug)]
pub struct Batch<'a> {
    /// The examples.
    pub x: Examples<'a>,
    /// Labels, one per example, in `{-1.0, +1.0}`.
    pub y: &'a [Scalar],
}

impl<'a> Batch<'a> {
    /// Builds a batch, validating the label count.
    pub fn new(x: Examples<'a>, y: &'a [Scalar]) -> Self {
        assert_eq!(x.n(), y.len(), "one label per example required");
        Batch { x, y }
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.x.n()
    }

    /// Target class indices for the two-unit softmax output of the MLP:
    /// label `+1` is class 1, `-1` is class 0.
    pub fn classes(&self) -> Vec<usize> {
        self.y.iter().map(|&l| usize::from(l > 0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_sparse_report_shape() {
        let d = Matrix::zeros(3, 5);
        let s = CsrMatrix::from_dense(&d);
        assert_eq!((Examples::Dense(&d).n(), Examples::Dense(&d).d()), (3, 5));
        assert_eq!((Examples::Sparse(&s).n(), Examples::Sparse(&s).d()), (3, 5));
        assert!(Examples::Dense(&d).is_dense());
        assert!(!Examples::Sparse(&s).is_dense());
    }

    #[test]
    fn classes_map_labels() {
        let d = Matrix::zeros(3, 2);
        let y = [1.0, -1.0, 1.0];
        let b = Batch::new(Examples::Dense(&d), &y);
        assert_eq!(b.classes(), vec![1, 0, 1]);
        assert_eq!(b.n(), 3);
    }

    #[test]
    #[should_panic(expected = "one label per example")]
    fn batch_checks_label_count() {
        let d = Matrix::zeros(3, 2);
        let _ = Batch::new(Examples::Dense(&d), &[1.0]);
    }
}
