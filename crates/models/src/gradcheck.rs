//! Finite-difference gradient checking.

use sgd_linalg::{CpuExec, Scalar};

use crate::batch::Batch;
use crate::task::Task;

/// Verifies `task.gradient` against central finite differences of
/// `task.loss` at `w`, returning the worst relative error over the checked
/// coordinates (all of them up to 64, then a deterministic stride-sample).
///
/// Used by the test suites of every task; also useful for user-defined
/// tasks.
pub fn check_gradient<T: Task>(task: &T, batch: &Batch<'_>, w: &[Scalar]) -> f64 {
    let mut e = CpuExec::seq();
    let dim = task.dim();
    let mut g = vec![0.0; dim];
    task.gradient(&mut e, batch, w, &mut g);

    let stride = (dim / 64).max(1);
    let mut worst: f64 = 0.0;
    let mut wp = w.to_vec();
    for i in (0..dim).step_by(stride) {
        let eps = 1e-5 * w[i].abs().max(1.0);
        wp[i] = w[i] + eps;
        let lp = task.loss(&mut e, batch, &wp);
        wp[i] = w[i] - eps;
        let lm = task.loss(&mut e, batch, &wp);
        wp[i] = w[i];
        let numeric = (lp - lm) / (2.0 * eps);
        let denom = numeric.abs().max(g[i].abs()).max(1e-6);
        worst = worst.max((numeric - g[i]).abs() / denom);
    }
    worst
}
