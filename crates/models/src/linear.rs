//! Generalized linear tasks: logistic regression and linear SVM.

use sgd_linalg::{Exec, Scalar};

use crate::batch::{Batch, Examples};
use crate::task::Task;

/// A pointwise margin loss `l(m, y)` with its derivative in the margin.
///
/// This is the piece the asynchronous (Hogwild) optimizers need: for a
/// linear model the per-example gradient is `dloss(x.w, y) * x`, so the
/// incremental update touches exactly the example's non-zero coordinates.
pub trait LinearLoss: Sync + Send + Clone {
    /// Task name for reports.
    const NAME: &'static str;
    /// Loss at margin `m` with label `y in {-1, +1}`.
    fn loss(&self, m: Scalar, y: Scalar) -> Scalar;
    /// Derivative of the loss with respect to the margin.
    fn dloss(&self, m: Scalar, y: Scalar) -> Scalar;
}

/// Object-safe view of a [`LinearLoss`].
///
/// `LinearLoss` itself is not object-safe (it is `Clone` and carries an
/// associated constant), but the execution engine in `sgd-core` needs to
/// hand a pointwise loss through a uniform, non-generic interface. Every
/// `LinearLoss` implements this trait automatically.
pub trait PointwiseLoss: Sync {
    /// Task name for reports.
    fn name(&self) -> &'static str;
    /// Loss at margin `m` with label `y in {-1, +1}`.
    fn loss_at(&self, m: Scalar, y: Scalar) -> Scalar;
    /// Derivative of the loss with respect to the margin.
    fn dloss_at(&self, m: Scalar, y: Scalar) -> Scalar;
}

impl<L: LinearLoss> PointwiseLoss for L {
    fn name(&self) -> &'static str {
        L::NAME
    }

    fn loss_at(&self, m: Scalar, y: Scalar) -> Scalar {
        self.loss(m, y)
    }

    fn dloss_at(&self, m: Scalar, y: Scalar) -> Scalar {
        self.dloss(m, y)
    }
}

/// Logistic loss `ln(1 + exp(-y m))`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogisticLoss;

impl LinearLoss for LogisticLoss {
    const NAME: &'static str = "LR";

    fn loss(&self, m: Scalar, y: Scalar) -> Scalar {
        let z = -y * m;
        // Numerically stable ln(1+exp(z)).
        if z > 0.0 {
            z + (-z).exp().ln_1p()
        } else {
            z.exp().ln_1p()
        }
    }

    fn dloss(&self, m: Scalar, y: Scalar) -> Scalar {
        // -y * sigmoid(-y m)
        let z = -y * m;
        let s = if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        };
        -y * s
    }
}

/// Hinge loss `max(0, 1 - y m)` (linear SVM, no regularizer — the paper
/// omits regularization to isolate computation time).
#[derive(Clone, Copy, Debug, Default)]
pub struct HingeLoss;

impl LinearLoss for HingeLoss {
    const NAME: &'static str = "SVM";

    fn loss(&self, m: Scalar, y: Scalar) -> Scalar {
        (1.0 - y * m).max(0.0)
    }

    fn dloss(&self, m: Scalar, y: Scalar) -> Scalar {
        if y * m < 1.0 {
            -y
        } else {
            0.0
        }
    }
}

/// A linear model over `d` features with loss `L`.
///
/// The batch gradient is the textbook two-pass primitive sequence the
/// paper's synchronous SGD executes through ViennaCL:
/// `p = X w` (gemv/spmv), `r_i = l'(p_i, y_i) / B` (elementwise), and
/// `g = X^T r` (gemv_t/spmv_t).
#[derive(Clone, Debug)]
pub struct LinearTask<L: LinearLoss> {
    loss: L,
    dim: usize,
}

impl<L: LinearLoss> LinearTask<L> {
    /// A linear task over `dim` features.
    pub fn new(loss: L, dim: usize) -> Self {
        LinearTask { loss, dim }
    }

    /// The pointwise loss (used by the incremental optimizers).
    pub fn pointwise(&self) -> &L {
        &self.loss
    }

    /// Batched decision values `p = X w` (one margin per example), the
    /// inference-side half of [`Task::gradient`]'s first pass. `sgd-serve`
    /// dispatches this through whichever executor backs a request batch,
    /// so serving exercises the same gemv/spmv corners as training.
    pub fn decision_values<E: Exec>(
        &self,
        e: &mut E,
        x: &Examples<'_>,
        w: &[Scalar],
        out: &mut [Scalar],
    ) {
        assert_eq!(w.len(), self.dim, "model dimension mismatch");
        assert_eq!(out.len(), x.n(), "one decision value per example");
        if out.is_empty() {
            return;
        }
        match x {
            Examples::Dense(m) => e.gemv(m, w, out),
            Examples::Sparse(m) => e.spmv(m, w, out),
        }
    }
}

/// Logistic regression over `d` features.
pub fn lr(d: usize) -> LinearTask<LogisticLoss> {
    LinearTask::new(LogisticLoss, d)
}

/// Linear SVM over `d` features.
pub fn svm(d: usize) -> LinearTask<HingeLoss> {
    LinearTask::new(HingeLoss, d)
}

impl<L: LinearLoss> Task for LinearTask<L> {
    fn name(&self) -> &'static str {
        L::NAME
    }

    fn pointwise_loss(&self) -> Option<&dyn crate::PointwiseLoss> {
        Some(&self.loss)
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn init_model(&self) -> Vec<Scalar> {
        vec![0.0; self.dim]
    }

    fn loss<E: Exec>(&self, e: &mut E, batch: &Batch<'_>, w: &[Scalar]) -> Scalar {
        assert_eq!(w.len(), self.dim, "model dimension mismatch");
        let n = batch.n();
        if n == 0 {
            return 0.0;
        }
        let mut p = vec![0.0; n];
        match batch.x {
            Examples::Dense(m) => e.gemv(m, w, &mut p),
            Examples::Sparse(m) => e.spmv(m, w, &mut p),
        }
        let l = self.loss.clone();
        let mut per = vec![0.0; n];
        e.zip(&p, batch.y, &mut per, 6.0, move |m, y| l.loss(m, y));
        e.sum(&per) / n as Scalar
    }

    fn gradient<E: Exec>(&self, e: &mut E, batch: &Batch<'_>, w: &[Scalar], g: &mut [Scalar]) {
        assert_eq!(w.len(), self.dim, "model dimension mismatch");
        assert_eq!(g.len(), self.dim, "gradient dimension mismatch");
        let n = batch.n();
        if n == 0 {
            g.fill(0.0);
            return;
        }
        let mut p = vec![0.0; n];
        match batch.x {
            Examples::Dense(m) => e.gemv(m, w, &mut p),
            Examples::Sparse(m) => e.spmv(m, w, &mut p),
        }
        let l = self.loss.clone();
        let inv = 1.0 / n as Scalar;
        let mut r = vec![0.0; n];
        e.zip(&p, batch.y, &mut r, 6.0, move |m, y| l.dloss(m, y) * inv);
        match batch.x {
            Examples::Dense(m) => e.gemv_t(m, &r, g),
            Examples::Sparse(m) => e.spmv_t(m, &r, g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use sgd_linalg::{approx_eq_slice, CpuExec, CsrMatrix, Matrix};

    fn toy_batch() -> (Matrix, CsrMatrix, Vec<Scalar>) {
        let dense = Matrix::from_rows(&[
            &[1.0, 0.0, -0.5],
            &[0.0, 2.0, 0.0],
            &[0.5, -1.0, 1.0],
            &[0.0, 0.0, 0.25],
        ]);
        let sparse = CsrMatrix::from_dense(&dense);
        let y = vec![1.0, -1.0, 1.0, -1.0];
        (dense, sparse, y)
    }

    #[test]
    fn logistic_loss_values_and_slope() {
        let l = LogisticLoss;
        // At margin 0: ln 2, slope -y/2.
        assert!((l.loss(0.0, 1.0) - (2.0 as Scalar).ln()).abs() < 1e-12);
        assert!((l.dloss(0.0, 1.0) + 0.5).abs() < 1e-12);
        // Large correct margin: loss and slope vanish.
        assert!(l.loss(50.0, 1.0) < 1e-20);
        assert!(l.dloss(50.0, 1.0).abs() < 1e-20);
        // Large wrong margin: loss is ~linear, slope saturates at -y.
        assert!((l.loss(-50.0, 1.0) - 50.0).abs() < 1e-9);
        assert!((l.dloss(-50.0, 1.0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn logistic_loss_is_stable_at_extremes() {
        let l = LogisticLoss;
        for &m in &[-1e6, -1e3, 0.0, 1e3, 1e6] {
            for &y in &[-1.0, 1.0] {
                assert!(l.loss(m, y).is_finite());
                assert!(l.dloss(m, y).is_finite());
            }
        }
    }

    #[test]
    fn hinge_loss_kink() {
        let h = HingeLoss;
        assert_eq!(h.loss(2.0, 1.0), 0.0);
        assert_eq!(h.dloss(2.0, 1.0), 0.0);
        assert_eq!(h.loss(0.0, 1.0), 1.0);
        assert_eq!(h.dloss(0.0, 1.0), -1.0);
        assert_eq!(h.loss(0.5, -1.0), 1.5);
        assert_eq!(h.dloss(0.5, -1.0), 1.0);
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let (dense, sparse, y) = toy_batch();
        let task = lr(3);
        let w = vec![0.3, -0.2, 0.7];
        let mut e = CpuExec::seq();
        let bd = Batch::new(Examples::Dense(&dense), &y);
        let bs = Batch::new(Examples::Sparse(&sparse), &y);
        let ld = task.loss(&mut e, &bd, &w);
        let ls = task.loss(&mut e, &bs, &w);
        assert!((ld - ls).abs() < 1e-12);
        let mut gd = vec![0.0; 3];
        let mut gs = vec![0.0; 3];
        task.gradient(&mut e, &bd, &w, &mut gd);
        task.gradient(&mut e, &bs, &w, &mut gs);
        assert!(approx_eq_slice(&gd, &gs, 1e-12));
    }

    #[test]
    fn lr_gradient_checks_against_finite_differences() {
        let (dense, _, y) = toy_batch();
        let task = lr(3);
        let b = Batch::new(Examples::Dense(&dense), &y);
        let w = vec![0.1, -0.4, 0.9];
        let err = check_gradient(&task, &b, &w);
        assert!(err < 1e-6, "relative error {err}");
    }

    #[test]
    fn svm_gradient_checks_away_from_kink() {
        let (dense, _, y) = toy_batch();
        let task = svm(3);
        let b = Batch::new(Examples::Dense(&dense), &y);
        // A model where no example sits at margin exactly 1.
        let w = vec![0.13, -0.41, 0.97];
        let err = check_gradient(&task, &b, &w);
        assert!(err < 1e-6, "relative error {err}");
    }

    #[test]
    fn gradient_descends_the_loss() {
        let (dense, _, y) = toy_batch();
        let task = lr(3);
        let b = Batch::new(Examples::Dense(&dense), &y);
        let mut e = CpuExec::seq();
        let mut w = task.init_model();
        let l0 = task.loss(&mut e, &b, &w);
        let mut g = vec![0.0; 3];
        for _ in 0..50 {
            task.gradient(&mut e, &b, &w, &mut g);
            for (wi, gi) in w.iter_mut().zip(&g) {
                *wi -= 0.5 * gi;
            }
        }
        let l1 = task.loss(&mut e, &b, &w);
        assert!(l1 < l0 * 0.8, "loss {l0} -> {l1}");
    }

    #[test]
    fn empty_batch_is_harmless() {
        let dense = Matrix::zeros(0, 3);
        let y: Vec<Scalar> = vec![];
        let b = Batch::new(Examples::Dense(&dense), &y);
        let task = svm(3);
        let mut e = CpuExec::seq();
        assert_eq!(task.loss(&mut e, &b, &[0.0; 3]), 0.0);
        let mut g = vec![1.0; 3];
        task.gradient(&mut e, &b, &[0.0; 3], &mut g);
        assert_eq!(g, vec![0.0; 3]);
    }
}
