//! The task abstraction shared by all optimizers.

use sgd_linalg::{Exec, Scalar};

use crate::batch::Batch;

/// A trainable model-fitting task.
///
/// `loss` and `gradient` are *means* over the batch, which keeps step-size
/// ranges comparable across dataset scales (the paper grids step sizes per
/// configuration anyway, so the normalization convention does not affect
/// any comparison).
pub trait Task: Sync {
    /// Human-readable task name (`LR`, `SVM`, `MLP`).
    fn name(&self) -> &'static str;

    /// Dimension of the flat model vector.
    fn dim(&self) -> usize;

    /// The initial model every configuration starts from (the paper
    /// initializes all configurations identically).
    fn init_model(&self) -> Vec<Scalar>;

    /// Mean loss of `w` over the batch.
    fn loss<E: Exec>(&self, e: &mut E, batch: &Batch<'_>, w: &[Scalar]) -> Scalar;

    /// Mean gradient of the loss at `w` over the batch, written to `g`
    /// (overwritten, `g.len() == dim()`).
    fn gradient<E: Exec>(&self, e: &mut E, batch: &Batch<'_>, w: &[Scalar], g: &mut [Scalar]);

    /// The pointwise margin loss, for tasks whose per-example gradient is
    /// `dloss(x.w, y) * x` (the linear tasks). Example-at-a-time
    /// optimizers (Hogwild and its variants) require `Some`; tasks without
    /// that structure (the MLP) return `None` and train through
    /// mini-batch gradients instead.
    fn pointwise_loss(&self) -> Option<&dyn crate::PointwiseLoss> {
        None
    }
}
