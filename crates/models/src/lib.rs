//! The three training tasks of the paper: logistic regression (LR), linear
//! SVM, and fully-connected multi-layer perceptrons (MLP).
//!
//! Every task exposes batch loss/gradient computation generically over a
//! [`sgd_linalg::Exec`], so the *same* task code runs on the sequential
//! CPU, the rayon-parallel CPU, and the simulated GPU — the paper's
//! "identical implementations, different device" property. The linear
//! tasks additionally expose their pointwise loss ([`LinearLoss`]) for the
//! example-at-a-time asynchronous (Hogwild) optimizers in `sgd-core`.

mod batch;
mod gradcheck;
mod linear;
mod mlp;
mod task;

pub use batch::{Batch, Examples};
pub use gradcheck::check_gradient;
pub use linear::{lr, svm, HingeLoss, LinearLoss, LinearTask, LogisticLoss, PointwiseLoss};
pub use mlp::MlpTask;
pub use task::Task;
