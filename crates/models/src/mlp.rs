//! Fully-connected multi-layer perceptron with backpropagation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgd_linalg::{Exec, Matrix, Scalar};

use crate::batch::{Batch, Examples};
use crate::task::Task;

/// A fully-connected MLP with tanh hidden units and a softmax
/// cross-entropy output, the deep-net task of the paper (architectures
/// like `54-10-5-2` in Table I; the paper does not specify the hidden
/// activation — tanh is the zero-centered classic for shallow
/// fully-connected nets and avoids the sigmoid's long saturated warm-up).
///
/// The flat model vector is, per layer, the row-major weight matrix
/// `n_l x n_{l+1}` followed by the `n_{l+1}` biases. All computation is a
/// sequence of `Exec` primitives (gemm / bias broadcast / elementwise /
/// softmax), exactly the kernel stream the paper offloads per device.
///
/// The MLP consumes *dense* batches: the paper stores the feature-grouped
/// datasets densely for deep-net training (Section IV-A).
#[derive(Clone, Debug)]
pub struct MlpTask {
    layers: Vec<usize>,
    seed: u64,
}

impl MlpTask {
    /// Builds an MLP with the given layer widths `[input, hidden..,
    /// output]`. The output width must be at least 2 (softmax classes).
    ///
    /// # Panics
    /// Panics on fewer than two layers or a zero width.
    pub fn new(layers: Vec<usize>, seed: u64) -> Self {
        assert!(layers.len() >= 2, "an MLP needs input and output layers");
        assert!(layers.iter().all(|&u| u > 0), "layer widths must be positive");
        assert!(*layers.last().expect("nonempty") >= 2, "softmax output needs >= 2 units");
        MlpTask { layers, seed }
    }

    /// Layer widths.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Initialization seed (identifies the configuration in checkpoints).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Architecture string like `54-10-5-2`.
    pub fn arch_string(&self) -> String {
        self.layers.iter().map(|u| u.to_string()).collect::<Vec<_>>().join("-")
    }

    /// Number of weight matrices (layers - 1).
    fn n_links(&self) -> usize {
        self.layers.len() - 1
    }

    /// Offset of layer `l`'s weight block in the flat model.
    fn w_offset(&self, l: usize) -> usize {
        let mut off = 0;
        for k in 0..l {
            off += self.layers[k] * self.layers[k + 1] + self.layers[k + 1];
        }
        off
    }

    /// Copies layer `l`'s weights out of the flat model.
    fn weights(&self, w: &[Scalar], l: usize) -> Matrix {
        let (rows, cols) = (self.layers[l], self.layers[l + 1]);
        let off = self.w_offset(l);
        Matrix::from_vec(rows, cols, w[off..off + rows * cols].to_vec())
    }

    /// Layer `l`'s bias slice within the flat model.
    fn bias<'a>(&self, w: &'a [Scalar], l: usize) -> &'a [Scalar] {
        let (rows, cols) = (self.layers[l], self.layers[l + 1]);
        let off = self.w_offset(l) + rows * cols;
        &w[off..off + cols]
    }

    /// Forward pass: returns the activations of every layer
    /// (`acts[0]` = input) and the output logits.
    fn forward<E: Exec>(&self, e: &mut E, input: &Matrix, w: &[Scalar]) -> (Vec<Matrix>, Matrix) {
        let mut acts: Vec<Matrix> = vec![input.clone()];
        let mut cur = input.clone();
        for l in 0..self.n_links() {
            let wl = self.weights(w, l);
            let mut z = Matrix::zeros(cur.rows(), self.layers[l + 1]);
            e.gemm(&cur, &wl, &mut z);
            e.add_row_bias(&mut z, self.bias(w, l));
            if l + 1 < self.layers.len() - 1 {
                // tanh hidden unit (~4 flops)
                e.map(z.as_mut_slice(), 4.0, |v| v.tanh());
                acts.push(z.clone());
                cur = z;
            } else {
                return (acts, z);
            }
        }
        // analyzer: allow(panic-freedom) -- the loop returns on the last link; construction validates at least one link
        unreachable!("an MLP has at least one link");
    }

    /// Output logits for a dense batch (one row per example), the
    /// inference-side forward pass used by `sgd-serve`.
    pub fn logits<E: Exec>(&self, e: &mut E, input: &Matrix, w: &[Scalar]) -> Matrix {
        assert_eq!(w.len(), self.dim(), "model dimension mismatch");
        assert_eq!(input.cols(), self.layers[0], "input width mismatch");
        if input.rows() == 0 {
            // analyzer: allow(panic-freedom) -- layers is validated nonempty at construction
            return Matrix::zeros(0, *self.layers.last().expect("nonempty"));
        }
        let (_, logits) = self.forward(e, input, w);
        logits
    }

    /// Batched decision values: `logit(class 1) - logit(class 0)` per
    /// example, so the sign picks the class exactly as a linear margin
    /// does — the serving layer scores every task through one scalar.
    pub fn decision_values<E: Exec>(&self, e: &mut E, input: &Matrix, w: &[Scalar]) -> Vec<Scalar> {
        let logits = self.logits(e, input, w);
        logits
            .rows_iter()
            .map(|r| r.get(1).copied().unwrap_or(0.0) - r.first().copied().unwrap_or(0.0))
            .collect()
    }

    fn dense_input(batch: &Batch<'_>) -> Matrix {
        match batch.x {
            Examples::Dense(m) => m.clone(),
            // analyzer: allow(panic-freedom) -- training task contract: the serving path densifies sparse input before prediction and never reaches here
            Examples::Sparse(_) => panic!(
                "MlpTask consumes dense batches; densify the (feature-grouped) dataset first"
            ),
        }
    }
}

impl Task for MlpTask {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn dim(&self) -> usize {
        self.w_offset(self.n_links())
    }

    fn init_model(&self) -> Vec<Scalar> {
        // Xavier-style N(0, 1/fan_in) weights, zero biases, fixed seed so
        // every configuration starts identically (paper methodology).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut w = Vec::with_capacity(self.dim());
        for l in 0..self.n_links() {
            let (fan_in, fan_out) = (self.layers[l], self.layers[l + 1]);
            let std = 1.0 / (fan_in as Scalar).sqrt();
            for _ in 0..fan_in * fan_out {
                w.push(sgd_datagen_normal(&mut rng) * std);
            }
            w.extend(std::iter::repeat_n(0.0, fan_out));
        }
        w
    }

    fn loss<E: Exec>(&self, e: &mut E, batch: &Batch<'_>, w: &[Scalar]) -> Scalar {
        assert_eq!(w.len(), self.dim(), "model dimension mismatch");
        if batch.n() == 0 {
            return 0.0;
        }
        let input = Self::dense_input(batch);
        let (_, mut logits) = self.forward(e, &input, w);
        e.softmax_xent(&mut logits, &batch.classes())
    }

    fn gradient<E: Exec>(&self, e: &mut E, batch: &Batch<'_>, w: &[Scalar], g: &mut [Scalar]) {
        assert_eq!(w.len(), self.dim(), "model dimension mismatch");
        assert_eq!(g.len(), self.dim(), "gradient dimension mismatch");
        if batch.n() == 0 {
            g.fill(0.0);
            return;
        }
        let input = Self::dense_input(batch);
        let (acts, mut logits) = self.forward(e, &input, w);
        // logits -> (softmax - onehot)/B, the output delta.
        e.softmax_xent(&mut logits, &batch.classes());
        let mut delta = logits;

        for l in (0..self.n_links()).rev() {
            let a = &acts[l];
            // Weight and bias gradients of this link.
            let mut gw = Matrix::zeros(self.layers[l], self.layers[l + 1]);
            e.gemm_tn(a, &delta, &mut gw);
            let off = self.w_offset(l);
            let nw = gw.len();
            g[off..off + nw].copy_from_slice(gw.as_slice());
            e.col_sums(&delta, &mut g[off + nw..off + nw + self.layers[l + 1]]);

            if l > 0 {
                // delta_{l} = (delta_{l+1} W_l^T) .* (1 - a^2)
                let wl = self.weights(w, l);
                let mut back = Matrix::zeros(delta.rows(), self.layers[l]);
                e.gemm_nt(&delta, &wl, &mut back);
                let mut next = Matrix::zeros(back.rows(), back.cols());
                e.zip(back.as_slice(), a.as_slice(), next.as_mut_slice(), 3.0, |b, s| {
                    b * (1.0 - s * s)
                });
                delta = next;
            }
        }
    }
}

/// Standard-normal sample (Box–Muller); duplicated from `sgd-datagen` to
/// avoid a dependency cycle between the model and data crates.
fn sgd_datagen_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use sgd_linalg::CpuExec;

    fn toy_batch() -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_rows(&[
            &[0.5, -1.0, 0.25, 0.0],
            &[1.0, 0.5, -0.75, 0.3],
            &[-0.2, 0.1, 0.9, -1.1],
            &[0.0, 0.0, 0.4, 0.8],
            &[0.7, -0.3, 0.0, 0.1],
        ]);
        let y = vec![1.0, -1.0, 1.0, 1.0, -1.0];
        (x, y)
    }

    #[test]
    fn dim_counts_weights_and_biases() {
        let mlp = MlpTask::new(vec![4, 3, 2], 0);
        assert_eq!(mlp.dim(), 4 * 3 + 3 + 3 * 2 + 2);
        assert_eq!(mlp.arch_string(), "4-3-2");
    }

    #[test]
    fn init_is_deterministic_and_scaled() {
        let mlp = MlpTask::new(vec![100, 10, 2], 7);
        let a = mlp.init_model();
        let b = mlp.init_model();
        assert_eq!(a, b);
        // Weights of the first layer have std ~ 0.1.
        let w0 = &a[0..1000];
        let var = w0.iter().map(|v| v * v).sum::<Scalar>() / 1000.0;
        assert!((var.sqrt() - 0.1).abs() < 0.02, "std {}", var.sqrt());
        // Biases are zero.
        assert!(a[1000..1010].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, y) = toy_batch();
        let mlp = MlpTask::new(vec![4, 3, 2], 3);
        let b = Batch::new(Examples::Dense(&x), &y);
        let w = mlp.init_model();
        let err = check_gradient(&mlp, &b, &w);
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn deeper_net_gradient_checks() {
        let (x, y) = toy_batch();
        let mlp = MlpTask::new(vec![4, 5, 3, 2], 11);
        let b = Batch::new(Examples::Dense(&x), &y);
        // Perturb away from the symmetric init to exercise all paths.
        let mut w = mlp.init_model();
        for (i, v) in w.iter_mut().enumerate() {
            *v += 0.01 * ((i % 7) as Scalar - 3.0);
        }
        let err = check_gradient(&mlp, &b, &w);
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = toy_batch();
        let mlp = MlpTask::new(vec![4, 6, 2], 5);
        let b = Batch::new(Examples::Dense(&x), &y);
        let mut e = CpuExec::seq();
        let mut w = mlp.init_model();
        let l0 = mlp.loss(&mut e, &b, &w);
        let mut g = vec![0.0; mlp.dim()];
        for _ in 0..200 {
            mlp.gradient(&mut e, &b, &w, &mut g);
            for (wi, gi) in w.iter_mut().zip(&g) {
                *wi -= 1.0 * gi;
            }
        }
        let l1 = mlp.loss(&mut e, &b, &w);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
    }

    #[test]
    fn loss_at_uniform_output_is_ln_k() {
        // With zero weights the logits are zero, so loss = ln(2).
        let (x, y) = toy_batch();
        let mlp = MlpTask::new(vec![4, 3, 2], 0);
        let b = Batch::new(Examples::Dense(&x), &y);
        let w = vec![0.0; mlp.dim()];
        let mut e = CpuExec::seq();
        let loss = mlp.loss(&mut e, &b, &w);
        assert!((loss - (2.0 as Scalar).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dense batches")]
    fn sparse_batches_rejected() {
        let (x, y) = toy_batch();
        let sparse = sgd_linalg::CsrMatrix::from_dense(&x);
        let mlp = MlpTask::new(vec![4, 3, 2], 0);
        let b = Batch::new(Examples::Sparse(&sparse), &y);
        let mut e = CpuExec::seq();
        let _ = mlp.loss(&mut e, &b, &mlp.init_model());
    }

    #[test]
    #[should_panic(expected = "input and output")]
    fn single_layer_rejected() {
        let _ = MlpTask::new(vec![4], 0);
    }

    #[test]
    fn gradient_on_gpu_exec_matches_cpu() {
        // The same task code must produce identical numbers on the
        // simulated GPU (it executes the same primitive stream).
        let (x, y) = toy_batch();
        let mlp = MlpTask::new(vec![4, 3, 2], 3);
        let b = Batch::new(Examples::Dense(&x), &y);
        let w = mlp.init_model();
        let mut g_cpu = vec![0.0; mlp.dim()];
        mlp.gradient(&mut CpuExec::seq(), &b, &w, &mut g_cpu);

        let mut dev = sgd_gpusim_device();
        let mut e = sgd_gpusim::kernels::GpuExec::new(&mut dev);
        let mut g_gpu = vec![0.0; mlp.dim()];
        mlp.gradient(&mut e, &b, &w, &mut g_gpu);
        assert!(sgd_linalg::approx_eq_slice(&g_cpu, &g_gpu, 1e-12));
        assert!(dev.stats().kernels_launched > 5, "per-primitive kernel launches expected");
    }

    fn sgd_gpusim_device() -> sgd_gpusim::GpuDevice {
        sgd_gpusim::GpuDevice::tesla_k80()
    }
}
