//! Schedule-perturbation stress: registry hot-swap racing the wire
//! front-end's scoped worker pool.
//!
//! Four clients hammer a live TCP server while a publisher thread
//! hot-swaps (and occasionally unpublishes) the served model. A seeded
//! LCG drives per-iteration schedule perturbation — yield, spin, or
//! proceed — so reruns explore different interleavings from the same
//! deterministic decision stream. Run under `--test-threads=8` in CI's
//! flake-catcher, the invariants are:
//!
//! * every request line gets exactly one response line, in order;
//! * every `OK` score equals a weight vector that was actually
//!   published at some point (no torn or half-swapped model is ever
//!   observable);
//! * unpublish windows surface as typed `ERR`, never a panic or a
//!   dropped connection;
//! * the server's handled count equals the total lines sent.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sgd_serve::checkpoint::Checkpoint;
use sgd_serve::model::{ServableModel, TaskDescriptor};
use sgd_serve::registry::ModelRegistry;
use sgd_serve::wire::{WireConfig, WireServer};

const CLIENTS: usize = 4;
const LINES_PER_CLIENT: usize = 50;
/// The two weight vectors the publisher alternates between. A request
/// `+1 1:1` scores exactly `w[0]`, so every `OK` response must read
/// back as one of these leading weights.
const WEIGHTS_A: [f64; 2] = [1.0, 2.0];
const WEIGHTS_B: [f64; 2] = [10.0, 2.0];

fn lr_model(weights: &[f64]) -> ServableModel {
    let ck = Checkpoint::new(
        TaskDescriptor::LogisticRegression { dim: weights.len() as u64 },
        weights.to_vec(),
    )
    .expect("valid dims");
    ServableModel::from_checkpoint(&ck).expect("valid checkpoint")
}

/// Deterministic schedule perturbation: a splitmix-style step whose low
/// bits pick between proceeding, yielding, and a short spin.
fn perturb(state: &mut u64) {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    match (*state >> 60) & 0b11 {
        0 => std::thread::yield_now(),
        1 => {
            for _ in 0..((*state >> 32) & 0xff) {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

#[test]
fn hot_swap_races_wire_serving_without_torn_reads() {
    let reg = ModelRegistry::new();
    reg.publish("m", lr_model(&WEIGHTS_A), 0, 0.5);

    let cfg = WireConfig {
        workers: CLIENTS,
        read_timeout: Some(Duration::from_secs(30)),
        ..WireConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("addr");
    let done = AtomicBool::new(false);

    let handled = std::thread::scope(|s| {
        let server = s.spawn(|| {
            WireServer::with_config(&reg, "m", cfg).serve_connections(&listener, CLIENTS)
        });

        // Publisher: hot-swap the served model as fast as the schedule
        // allows, with a brief unpublish window every 16th iteration.
        let publisher = s.spawn(|| {
            let mut rng = 0x9e3779b97f4a7c15u64;
            let mut epoch = 1;
            while !done.load(Ordering::Acquire) {
                let w = if epoch % 2 == 0 { &WEIGHTS_A } else { &WEIGHTS_B };
                if epoch % 16 == 0 {
                    reg.remove("m");
                    perturb(&mut rng);
                }
                reg.publish("m", lr_model(w), epoch, 0.5);
                epoch += 1;
                perturb(&mut rng);
            }
            epoch
        });

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut rng = 0xD1B54A32D192ED03u64 ^ (c as u64);
                    let conn = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                    let mut writer = conn;
                    let mut line = String::new();
                    for i in 0..LINES_PER_CLIENT {
                        writer.write_all(b"+1 1:1\n").expect("request write");
                        perturb(&mut rng);
                        line.clear();
                        let n = reader.read_line(&mut line).expect("response read");
                        assert!(n > 0, "client {c}: connection died at request {i}");
                        let reply = line.trim_end();
                        if let Some(score) = reply.strip_prefix("OK ") {
                            let v: f64 = score.parse().expect("numeric score");
                            assert!(
                                v == WEIGHTS_A[0] || v == WEIGHTS_B[0],
                                "client {c}: torn read, score {v} matches no published model"
                            );
                        } else {
                            assert!(
                                reply.starts_with("ERR "),
                                "client {c}: malformed reply {reply:?}"
                            );
                        }
                    }
                })
            })
            .collect();

        for client in clients {
            client.join().expect("client thread");
        }
        done.store(true, Ordering::Release);
        let swaps = publisher.join().expect("publisher thread");
        assert!(swaps > 1, "publisher never ran");
        server.join().expect("server thread").expect("serve_connections")
    });

    assert_eq!(handled, CLIENTS * LINES_PER_CLIENT, "every request line answered");

    // The registry must still serve after the race: republish and score
    // one more request through a fresh connectionless pass.
    reg.publish("m", lr_model(&WEIGHTS_A), usize::MAX, 0.1);
    let srv = WireServer::new(&reg, "m");
    let mut out = Vec::new();
    srv.serve_lines(BufReader::new("+1 1:1\n".as_bytes()), &mut out).expect("io");
    assert_eq!(String::from_utf8(out).expect("utf8").trim_end(), "OK 1");
}
