//! Task descriptors and the servable model they reconstruct.
//!
//! A [`TaskDescriptor`] is the checkpoint header's answer to "what do
//! these weights parameterize": enough to rebuild the exact task object
//! (`lr`/`svm`/[`MlpTask`]) in a fresh process, so a reloaded model
//! computes bit-identical predictions to the one that was trained.

use sgd_linalg::{Exec, Matrix, Scalar};
use sgd_models::{lr, svm, Examples, MlpTask};

use crate::checkpoint::{Checkpoint, CheckpointError, Cursor};

/// Upper bound on model dimensions a checkpoint may declare; anything
/// larger is treated as a corrupt/hostile header rather than attempted
/// as an allocation.
pub const MAX_MODEL_DIM: usize = 1 << 32;

/// What model a flat weight vector parameterizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskDescriptor {
    /// Logistic regression over `dim` features.
    LogisticRegression {
        /// Feature-space width.
        dim: u64,
    },
    /// Linear SVM over `dim` features.
    LinearSvm {
        /// Feature-space width.
        dim: u64,
    },
    /// Fully-connected MLP (tanh hidden, softmax output).
    Mlp {
        /// Layer widths `[input, hidden.., output]`.
        layers: Vec<u32>,
        /// Initialization seed (part of the config fingerprint: two runs
        /// with different seeds are different configurations even at
        /// identical architecture).
        seed: u64,
    },
}

/// Task tag bytes in the checkpoint header.
const TAG_LR: u8 = 0;
const TAG_SVM: u8 = 1;
const TAG_MLP: u8 = 2;

impl TaskDescriptor {
    /// Short label for registries and logs.
    pub fn label(&self) -> String {
        match self {
            TaskDescriptor::LogisticRegression { dim } => format!("LR(d={dim})"),
            TaskDescriptor::LinearSvm { dim } => format!("SVM(d={dim})"),
            TaskDescriptor::Mlp { layers, .. } => {
                let arch: Vec<String> = layers.iter().map(|u| u.to_string()).collect();
                format!("MLP({})", arch.join("-"))
            }
        }
    }

    /// Width of the feature space this model consumes.
    pub fn input_dim(&self) -> Result<usize, CheckpointError> {
        match self {
            TaskDescriptor::LogisticRegression { dim } | TaskDescriptor::LinearSvm { dim } => {
                checked_dim(*dim)
            }
            TaskDescriptor::Mlp { layers, .. } => match layers.first() {
                Some(&w) => checked_dim(u64::from(w)),
                None => Err(CheckpointError::BadDescriptor { detail: "MLP with no layers".into() }),
            },
        }
    }

    /// Length of the flat weight vector this descriptor implies.
    pub fn model_dim(&self) -> Result<usize, CheckpointError> {
        match self {
            TaskDescriptor::LogisticRegression { dim } | TaskDescriptor::LinearSvm { dim } => {
                checked_dim(*dim)
            }
            TaskDescriptor::Mlp { layers, .. } => {
                self.validate_mlp()?;
                let mut total: usize = 0;
                for pair in layers.windows(2) {
                    let (a, b) = match (pair.first(), pair.get(1)) {
                        (Some(&a), Some(&b)) => (a as usize, b as usize),
                        _ => continue,
                    };
                    let link =
                        a.checked_mul(b).and_then(|w| w.checked_add(b)).ok_or_else(|| {
                            CheckpointError::BadDescriptor {
                                detail: "MLP dimension overflows".into(),
                            }
                        })?;
                    total = total.checked_add(link).ok_or_else(|| {
                        CheckpointError::BadDescriptor { detail: "MLP dimension overflows".into() }
                    })?;
                }
                if total > MAX_MODEL_DIM {
                    return Err(CheckpointError::BadDescriptor {
                        detail: format!("model dimension {total} exceeds the {MAX_MODEL_DIM} cap"),
                    });
                }
                Ok(total)
            }
        }
    }

    /// Checks the MLP architecture invariants [`MlpTask::new`] would
    /// otherwise assert on: these come from wire data, so violations must
    /// be typed errors, not panics.
    fn validate_mlp(&self) -> Result<(), CheckpointError> {
        let TaskDescriptor::Mlp { layers, .. } = self else {
            return Ok(());
        };
        if layers.len() < 2 {
            return Err(CheckpointError::BadDescriptor {
                detail: format!("an MLP needs >= 2 layers, descriptor has {}", layers.len()),
            });
        }
        if layers.contains(&0) {
            return Err(CheckpointError::BadDescriptor { detail: "zero-width MLP layer".into() });
        }
        if layers.last().is_some_and(|&w| w < 2) {
            return Err(CheckpointError::BadDescriptor {
                detail: "MLP softmax output needs >= 2 units".into(),
            });
        }
        Ok(())
    }

    /// Serializes the descriptor body (tag + fields, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            TaskDescriptor::LogisticRegression { dim } => {
                out.push(TAG_LR);
                out.extend_from_slice(&dim.to_le_bytes());
            }
            TaskDescriptor::LinearSvm { dim } => {
                out.push(TAG_SVM);
                out.extend_from_slice(&dim.to_le_bytes());
            }
            TaskDescriptor::Mlp { layers, seed } => {
                out.push(TAG_MLP);
                out.extend_from_slice(&seed.to_le_bytes());
                out.extend_from_slice(&(layers.len() as u32).to_le_bytes());
                for w in layers {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a descriptor body from untrusted bytes.
    pub fn decode(cur: &mut Cursor<'_>) -> Result<Self, CheckpointError> {
        let tag = cur.u8()?;
        let desc = match tag {
            TAG_LR => TaskDescriptor::LogisticRegression { dim: cur.u64()? },
            TAG_SVM => TaskDescriptor::LinearSvm { dim: cur.u64()? },
            TAG_MLP => {
                let seed = cur.u64()?;
                let n_layers = cur.u32()? as usize;
                // Cap before allocating: a hostile length field must not
                // drive a huge reservation.
                if n_layers > 1024 {
                    return Err(CheckpointError::BadDescriptor {
                        detail: format!("{n_layers} MLP layers exceeds the 1024 cap"),
                    });
                }
                let mut layers = Vec::with_capacity(n_layers);
                for _ in 0..n_layers {
                    layers.push(cur.u32()?);
                }
                TaskDescriptor::Mlp { layers, seed }
            }
            other => return Err(CheckpointError::UnknownTask { tag: other }),
        };
        // Validate eagerly so every consumer sees a well-formed model.
        desc.model_dim()?;
        Ok(desc)
    }
}

fn checked_dim(dim: u64) -> Result<usize, CheckpointError> {
    let d = usize::try_from(dim).unwrap_or(usize::MAX);
    if d == 0 || d > MAX_MODEL_DIM {
        return Err(CheckpointError::BadDescriptor {
            // analyzer: allow(hot-path-alloc) -- rejection branch only: a published model's dimension was validated at load, requests never take it
            detail: format!("model dimension {dim} outside (0, {MAX_MODEL_DIM}]"),
        });
    }
    Ok(d)
}

/// A model reconstructed from a checkpoint, ready to predict.
///
/// Predictions are *decision values*: the margin `x·w` for the linear
/// tasks, `logit(+1) − logit(−1)` for the MLP — sign gives the class,
/// and the same weights produce the same bits on every backend that
/// executes the sequential kernel order.
#[derive(Clone, Debug)]
pub enum ServableModel {
    /// Logistic regression.
    Lr {
        /// The reconstructed task.
        task: sgd_models::LinearTask<sgd_models::LogisticLoss>,
        /// Flat weights.
        weights: Vec<Scalar>,
    },
    /// Linear SVM.
    Svm {
        /// The reconstructed task.
        task: sgd_models::LinearTask<sgd_models::HingeLoss>,
        /// Flat weights.
        weights: Vec<Scalar>,
    },
    /// Multi-layer perceptron.
    Mlp {
        /// The reconstructed task.
        task: MlpTask,
        /// Flat weights.
        weights: Vec<Scalar>,
    },
}

impl ServableModel {
    /// Reconstructs the model a checkpoint describes.
    pub fn from_checkpoint(ck: &Checkpoint) -> Result<Self, CheckpointError> {
        let expected = ck.descriptor.model_dim()?;
        if ck.weights.len() != expected {
            return Err(CheckpointError::DimensionMismatch { expected, found: ck.weights.len() });
        }
        Ok(match &ck.descriptor {
            TaskDescriptor::LogisticRegression { .. } => {
                ServableModel::Lr { task: lr(expected), weights: ck.weights.clone() }
            }
            TaskDescriptor::LinearSvm { .. } => {
                ServableModel::Svm { task: svm(expected), weights: ck.weights.clone() }
            }
            TaskDescriptor::Mlp { layers, seed } => {
                ck.descriptor.validate_mlp()?;
                let widths: Vec<usize> = layers.iter().map(|&w| w as usize).collect();
                // validate_mlp upheld MlpTask::new's preconditions.
                ServableModel::Mlp {
                    task: MlpTask::new(widths, *seed),
                    weights: ck.weights.clone(),
                }
            }
        })
    }

    /// The descriptor this model round-trips to.
    pub fn descriptor(&self) -> TaskDescriptor {
        match self {
            ServableModel::Lr { weights, .. } => {
                TaskDescriptor::LogisticRegression { dim: weights.len() as u64 }
            }
            ServableModel::Svm { weights, .. } => {
                TaskDescriptor::LinearSvm { dim: weights.len() as u64 }
            }
            ServableModel::Mlp { task, .. } => TaskDescriptor::Mlp {
                layers: task.layers().iter().map(|&w| w as u32).collect(),
                seed: task.seed(),
            },
        }
    }

    /// Re-checkpoints the live model (e.g. after the registry received a
    /// fresher publication).
    pub fn to_checkpoint(&self) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::new(self.descriptor(), self.weights().to_vec())
    }

    /// The flat weight vector.
    pub fn weights(&self) -> &[Scalar] {
        match self {
            ServableModel::Lr { weights, .. }
            | ServableModel::Svm { weights, .. }
            | ServableModel::Mlp { weights, .. } => weights,
        }
    }

    /// Feature-space width of one input example.
    pub fn input_dim(&self) -> usize {
        match self {
            ServableModel::Lr { weights, .. } | ServableModel::Svm { weights, .. } => weights.len(),
            ServableModel::Mlp { task, .. } => task.layers().first().copied().unwrap_or(0),
        }
    }

    /// Human-readable model label.
    pub fn label(&self) -> String {
        self.descriptor().label()
    }

    /// Batched decision values for `x` (one per row), computed through
    /// the given executor — the serving-side mirror of training's
    /// device-generic loss/gradient path.
    pub fn predict_batch<E: Exec>(&self, e: &mut E, x: &Examples<'_>) -> Vec<Scalar> {
        match self {
            ServableModel::Lr { task, weights } => {
                let mut out = vec![0.0; x.n()];
                task.decision_values(e, x, weights, &mut out);
                out
            }
            ServableModel::Svm { task, weights } => {
                let mut out = vec![0.0; x.n()];
                task.decision_values(e, x, weights, &mut out);
                out
            }
            ServableModel::Mlp { task, weights } => match x {
                Examples::Dense(m) => task.decision_values(e, m, weights),
                Examples::Sparse(s) => {
                    // The MLP's gemm path consumes dense inputs; requests
                    // arriving sparse are densified at admission.
                    let dense: Matrix = s.to_dense();
                    task.decision_values(e, &dense, weights)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgd_models::Task;

    #[test]
    fn descriptor_encode_decode_round_trips() {
        let descs = [
            TaskDescriptor::LogisticRegression { dim: 300 },
            TaskDescriptor::LinearSvm { dim: 7 },
            TaskDescriptor::Mlp { layers: vec![54, 10, 5, 2], seed: 99 },
        ];
        for d in descs {
            let bytes = d.encode();
            let mut cur = Cursor::new(&bytes);
            let back = TaskDescriptor::decode(&mut cur).expect("round trip");
            assert_eq!(d, back);
            assert_eq!(cur.remaining(), 0);
        }
    }

    #[test]
    fn mlp_model_dim_matches_task() {
        let d = TaskDescriptor::Mlp { layers: vec![4, 3, 2], seed: 0 };
        assert_eq!(d.model_dim().expect("valid"), MlpTask::new(vec![4, 3, 2], 0).dim());
    }

    #[test]
    fn hostile_descriptors_are_typed_errors() {
        let zero = TaskDescriptor::LogisticRegression { dim: 0 };
        assert!(matches!(zero.model_dim(), Err(CheckpointError::BadDescriptor { .. })));

        let thin = TaskDescriptor::Mlp { layers: vec![4], seed: 0 };
        assert!(matches!(thin.model_dim(), Err(CheckpointError::BadDescriptor { .. })));

        let zero_layer = TaskDescriptor::Mlp { layers: vec![4, 0, 2], seed: 0 };
        assert!(matches!(zero_layer.model_dim(), Err(CheckpointError::BadDescriptor { .. })));

        let one_out = TaskDescriptor::Mlp { layers: vec![4, 3, 1], seed: 0 };
        assert!(matches!(one_out.model_dim(), Err(CheckpointError::BadDescriptor { .. })));

        let huge = TaskDescriptor::Mlp { layers: vec![u32::MAX, u32::MAX, 2], seed: 0 };
        assert!(matches!(huge.model_dim(), Err(CheckpointError::BadDescriptor { .. })));
    }

    #[test]
    fn unknown_tag_is_typed() {
        let bytes = [9u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            TaskDescriptor::decode(&mut cur),
            Err(CheckpointError::UnknownTask { tag: 9 })
        ));
    }

    #[test]
    fn servable_round_trips_through_checkpoint() {
        let task = MlpTask::new(vec![4, 3, 2], 7);
        let w = task.init_model();
        let ck = Checkpoint::new(TaskDescriptor::Mlp { layers: vec![4, 3, 2], seed: 7 }, w.clone())
            .expect("dims");
        let model = ServableModel::from_checkpoint(&ck).expect("reconstruct");
        assert_eq!(model.weights(), &w[..]);
        assert_eq!(model.input_dim(), 4);
        let ck2 = model.to_checkpoint().expect("re-encode");
        assert_eq!(ck, ck2);
    }
}
