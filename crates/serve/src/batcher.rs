//! Request micro-batcher: admission queue, batching policy, and batched
//! dispatch through the unified backend layer.
//!
//! Single-example predict requests enter an admission queue; the batcher
//! coalesces them into batches under a policy (max batch size `B`, max
//! wait `W`) and dispatches each batch as *one* gemv/spmv/gemm stream
//! through [`sgd_core::ComputeBackend`] — the same dispatch
//! implementation training uses. `B = 1, W = 0` degenerates to unbatched
//! per-request dispatch — the baseline the bench compares against.
//!
//! Queueing is simulated as a deterministic discrete-event system over
//! request arrival timestamps: given identical arrivals, policy, and a
//! modeled service clock, every latency in the outcome is bit-identical
//! across runs. The batch trigger rule is the classic one: a batch
//! launches when `B` requests are pending or the oldest pending request
//! has waited `W`, whichever comes first, and never before the server is
//! free again.
//!
//! Service time comes from a [`ServeTiming`]: `Modeled` charges the
//! shared [`CostModel`] estimate (bit-exact across runs; the
//! serving-side analog of `Timing::Modeled` in the engine), `Wall`
//! measures the real computation with `Instant`. The simulated GPU
//! always uses its simulated clock — and because the server's
//! [`sgd_core::BackendSession`] holds one persistent device whose batch
//! buffers are bound to stable logical names, consecutive GPU batches
//! trace a *warm* L2 (the PR-5 cold-device bug) while staying
//! bit-deterministic across runs.
//!
//! A server can also be built with [`Server::routed`]: it then picks the
//! backend per batch from the shared cost model (dense/large → gpu-sim,
//! small/sparse → cpu), turning the paper's guidance table into a live
//! scheduling policy.

use sgd_core::{
    BackendFault, BackendSession, ComputeBackend, CostModel, ExecTask, FaultPlan, GpuDispatch,
    Workload,
};
use sgd_linalg::{pool, Exec, Scalar};
use sgd_models::Examples;

use crate::admission::{OutcomeCounts, RequestOutcome};
use crate::loadgen::RequestPool;
use crate::model::ServableModel;
use crate::stats::LatencySummary;

/// The serving backend *is* the training backend: one enum, one axis.
pub type ServeBackend = ComputeBackend;

/// Batching policy of the admission queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are pending (>= 1).
    pub max_batch: usize,
    /// Dispatch once the oldest pending request has waited this many
    /// seconds, even if the batch is not full.
    pub max_wait: f64,
}

impl BatchPolicy {
    /// A policy coalescing up to `max_batch` requests within `max_wait`
    /// seconds. A zero `max_batch` is treated as 1.
    pub fn new(max_batch: usize, max_wait: f64) -> Self {
        BatchPolicy { max_batch: max_batch.max(1), max_wait: max_wait.max(0.0) }
    }

    /// The unbatched baseline: every request dispatches alone.
    pub fn unbatched() -> Self {
        BatchPolicy { max_batch: 1, max_wait: 0.0 }
    }
}

/// Where service time comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTiming {
    /// Analytic cost model — bit-deterministic across runs.
    Modeled,
    /// Real `Instant` measurements around the computation (CPU backends
    /// only; the simulated GPU always uses its simulated clock).
    Wall,
}

/// How the server picks a backend for each batch.
enum Route {
    /// Every batch goes to one fixed backend.
    Fixed(ComputeBackend),
    /// Each batch goes to whichever candidate the shared cost model
    /// predicts fastest for that batch's workload.
    Routed(Vec<ComputeBackend>),
}

/// One batched predict as a backend job.
struct PredictJob<'a> {
    model: &'a ServableModel,
    x: &'a Examples<'a>,
}

impl ExecTask for PredictJob<'_> {
    type Out = Vec<Scalar>;
    fn run<E: Exec>(&mut self, e: &mut E) -> Vec<Scalar> {
        self.model.predict_batch(e, self.x)
    }
}

/// A serving endpoint: a backend route, a service clock, and the
/// session state (persistent simulated GPU) dispatches accumulate in.
pub struct Server {
    route: Route,
    timing: ServeTiming,
    session: BackendSession,
    cost: CostModel,
    last_backend: ComputeBackend,
    last_gpu: Option<GpuDispatch>,
}

impl Server {
    /// A server on the fixed `backend` with the given service clock.
    pub fn new(backend: ServeBackend, timing: ServeTiming) -> Self {
        Server {
            route: Route::Fixed(backend),
            timing,
            session: BackendSession::new(),
            // At the ambient (default, Scalar) tier this is bit-identical
            // to `CostModel::default()`; under a SIMD tier scope the
            // model prices CPU arithmetic at the measured vector rate.
            cost: CostModel::for_tier(pool::current_tier()),
            last_backend: backend,
            last_gpu: None,
        }
    }

    /// A router server: each batch goes to whichever of `candidates` the
    /// shared cost model predicts fastest (empty candidate lists fall
    /// back to the sequential CPU).
    pub fn routed(candidates: Vec<ServeBackend>, timing: ServeTiming) -> Self {
        let first = candidates.first().copied().unwrap_or(ComputeBackend::CpuSeq);
        Server {
            route: Route::Routed(candidates),
            timing,
            session: BackendSession::new(),
            cost: CostModel::for_tier(pool::current_tier()),
            last_backend: first,
            last_gpu: None,
        }
    }

    /// The backend this server dispatches to — for a router, the backend
    /// the most recent batch was routed to.
    pub fn backend(&self) -> ServeBackend {
        match &self.route {
            Route::Fixed(b) => *b,
            Route::Routed(_) => self.last_backend,
        }
    }

    /// The shared cost model pricing this server's dispatches.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulated-device accounting of the most recent batch (`None`
    /// until a batch runs on the GPU backend).
    pub fn last_gpu_dispatch(&self) -> Option<&GpuDispatch> {
        self.last_gpu.as_ref()
    }

    /// The backend the route selects for this batch (the router's
    /// decision, made before dispatch; a fixed server always answers its
    /// one backend).
    pub fn route(&self, model: &ServableModel, x: &Examples<'_>) -> ServeBackend {
        match &self.route {
            Route::Fixed(b) => *b,
            Route::Routed(cands) => self
                .cost
                .fastest(cands.iter(), &predict_workload(model, x))
                .unwrap_or(ComputeBackend::CpuSeq),
        }
    }

    /// Installs a fault gate on the server's backend session: every
    /// subsequent [`Server::try_predict`] draws one decision from `plan`
    /// (see [`sgd_core::DispatchFaults`]). The ungated [`Server::predict`]
    /// path ignores the gate entirely.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.session.install_faults(plan);
    }

    /// Binds the batch's buffers to stable logical names before a GPU
    /// dispatch: each batch is a fresh host allocation, but a fixed name
    /// keeps the virtual address — the device L2 stays warm across
    /// batches and the trace never depends on the host allocator.
    fn bind_gpu_buffers(&mut self, model: &ServableModel, x: &Examples<'_>) {
        let dev = self.session.gpu_device();
        dev.bind_buffer("serve.weights", model.weights());
        match x {
            Examples::Dense(m) => {
                dev.bind_buffer("serve.batch", m.as_slice());
            }
            Examples::Sparse(s) => {
                dev.bind_buffer("serve.batch.vals", s.values());
                dev.bind_buffer("serve.batch.cols", s.col_idx());
            }
        }
    }

    /// Service seconds of a finished dispatch under this server's clock.
    /// The modeled CPU estimate is dilated by the dispatch's fault factor
    /// (1.0 on the ungated path); the wall and simulated-GPU clocks are
    /// already dilated by the gate itself.
    fn service_secs(
        &self,
        backend: ComputeBackend,
        model: &ServableModel,
        x: &Examples<'_>,
        wall_secs: f64,
        gpu: Option<GpuDispatch>,
        fault_dilation: f64,
    ) -> f64 {
        match (backend, self.timing) {
            // The simulated GPU always answers with its own clock.
            (ComputeBackend::GpuSim, _) => gpu.map(|g| g.sim_secs).unwrap_or(0.0),
            (_, ServeTiming::Wall) => wall_secs,
            (b, ServeTiming::Modeled) => {
                self.cost.estimate_secs(&b, &predict_workload(model, x)) * fault_dilation
            }
        }
    }

    /// Scores one batch: returns each example's decision value and the
    /// service time in seconds under this server's clock. This is the
    /// unconditional path — any installed fault gate is bypassed; fault-
    /// surfacing front-ends go through [`Server::try_predict`].
    pub fn predict(&mut self, model: &ServableModel, x: &Examples<'_>) -> (Vec<Scalar>, f64) {
        let backend = self.route(model, x);
        self.last_backend = backend;
        if backend == ComputeBackend::GpuSim {
            self.bind_gpu_buffers(model, x);
        }
        let mut job = PredictJob { model, x };
        let d = backend.dispatch(&mut self.session, &mut job);
        self.last_gpu = d.gpu.or(self.last_gpu);
        let secs = self.service_secs(backend, model, x, d.wall_secs, d.gpu, 1.0);
        (d.out, secs)
    }

    /// Scores one batch through the session's fault gate: a dead backend
    /// surfaces as a typed [`BackendFault`] (the job never runs), a
    /// straggling one completes with its service time dilated. Without
    /// an installed gate this is exactly [`Server::predict`] and never
    /// fails.
    pub fn try_predict(
        &mut self,
        model: &ServableModel,
        x: &Examples<'_>,
    ) -> Result<(Vec<Scalar>, f64), BackendFault> {
        let backend = self.route(model, x);
        self.last_backend = backend;
        if backend == ComputeBackend::GpuSim {
            self.bind_gpu_buffers(model, x);
        }
        let mut job = PredictJob { model, x };
        let d = backend.try_dispatch(&mut self.session, &mut job)?;
        self.last_gpu = d.gpu.or(self.last_gpu);
        let secs = self.service_secs(backend, model, x, d.wall_secs, d.gpu, d.fault_dilation);
        Ok((d.out, secs))
    }
}

/// Workload estimate of one batched predict — the unit the modeled CPU
/// clock charges for and the router prices backends against.
pub fn predict_workload(model: &ServableModel, x: &Examples<'_>) -> Workload {
    match model {
        ServableModel::Lr { .. } | ServableModel::Svm { .. } => match x {
            Examples::Dense(m) => {
                let (n, d) = (m.rows() as f64, m.cols() as f64);
                // One fused gemv: stream the batch, read the model, write
                // the decisions.
                Workload { flops: 2.0 * n * d, bytes: 8.0 * (n * d + d + n), kernels: 1.0 }
            }
            Examples::Sparse(s) => {
                let nnz = s.nnz() as f64;
                let n = s.rows() as f64;
                // CSR streams values+indices; model gathers are
                // uncoalesced, so charge a pessimistic line per nnz.
                Workload {
                    flops: 2.0 * nnz,
                    bytes: 12.0 * nnz + 32.0 * nnz + 8.0 * n,
                    kernels: 1.0,
                }
            }
        },
        ServableModel::Mlp { task, .. } => {
            let n = x.n() as f64;
            let mut w = Workload::default();
            for pair in task.layers().windows(2) {
                if let (Some(&a), Some(&b)) = (pair.first(), pair.get(1)) {
                    // gemm + bias + activation per link.
                    w.flops += n * (2 * a * b + 5 * b) as f64;
                    w.bytes += 8.0 * (n * (a + b) as f64 + (a * b + b) as f64);
                    w.kernels += 3.0;
                }
            }
            w.kernels = w.kernels.max(1.0);
            w
        }
    }
}

/// Floating-point operation estimate of one batched predict.
pub fn predict_flops(model: &ServableModel, x: &Examples<'_>) -> f64 {
    predict_workload(model, x).flops
}

/// Everything one serving run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Per-request latency (completion − arrival), seconds. Open loop:
    /// indexed by arrival order. Closed loop: completion order.
    pub latencies: Vec<f64>,
    /// Per-request decision values, same order as `latencies`.
    pub decisions: Vec<Scalar>,
    /// Number of batches dispatched.
    pub batches: usize,
    /// Largest batch dispatched.
    pub max_batch_seen: usize,
    /// Backend label each batch was dispatched to, in dispatch order
    /// (constant for a fixed server; the router's per-batch decisions).
    pub batch_backends: Vec<String>,
    /// Total server busy time, seconds.
    pub service_secs: f64,
    /// First arrival to last completion, seconds.
    pub makespan: f64,
    /// Latency/throughput summary.
    pub summary: LatencySummary,
    /// How each offered request resolved, indexed by request id (the
    /// legacy loops never shed, so every entry is `Completed`; the
    /// admission-controlled runner records the full taxonomy). Never a
    /// silent drop: `outcomes.len() == counts.offered()`.
    pub outcomes: Vec<RequestOutcome>,
    /// The conservation ledger over `outcomes`.
    pub counts: OutcomeCounts,
}

impl ServeOutcome {
    #[allow(clippy::too_many_arguments)]
    fn finish(
        latencies: Vec<f64>,
        decisions: Vec<Scalar>,
        batches: usize,
        max_batch_seen: usize,
        batch_backends: Vec<String>,
        service_secs: f64,
        first_arrival: f64,
        last_finish: f64,
    ) -> Self {
        let makespan = (last_finish - first_arrival).max(0.0);
        let summary = LatencySummary::from_latencies(&latencies, makespan);
        let outcomes: Vec<RequestOutcome> =
            latencies.iter().map(|&l| RequestOutcome::Completed { latency: l }).collect();
        let counts = OutcomeCounts::all_completed(outcomes.len());
        ServeOutcome {
            latencies,
            decisions,
            batches,
            max_batch_seen,
            batch_backends,
            service_secs,
            makespan,
            summary,
            outcomes,
            counts,
        }
    }
}

/// Runs an open-loop workload: request `i` (features = pool row
/// `i % pool.len()`) arrives at `arrivals[i]` regardless of server
/// progress. Returns per-request latencies in arrival order.
pub fn run_open_loop(
    server: &mut Server,
    model: &ServableModel,
    requests: &RequestPool,
    policy: &BatchPolicy,
    arrivals: &[f64],
) -> ServeOutcome {
    let n = arrivals.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (ta, tb) = (arrivals.get(a), arrivals.get(b));
        match (ta, tb) {
            (Some(x), Some(y)) => x.total_cmp(y).then(a.cmp(&b)),
            _ => a.cmp(&b),
        }
    });

    let mut latencies = vec![0.0; n];
    let mut decisions = vec![0.0; n];
    let mut batches = 0;
    let mut max_batch_seen = 0;
    let mut batch_backends = Vec::new();
    let mut service_secs = 0.0;
    let mut t_free = 0.0f64;
    let mut last_finish = 0.0f64;
    let first_arrival = order.first().and_then(|&i| arrivals.get(i)).copied().unwrap_or(0.0);

    let mut idx = 0;
    while idx < n {
        let Some(&first_id) = order.get(idx) else { break };
        let t_first = arrivals.get(first_id).copied().unwrap_or(0.0);
        // Trigger: B pending, or the oldest has waited W.
        let deadline = t_first + policy.max_wait;
        let t_full = order
            .get(idx + policy.max_batch.saturating_sub(1))
            .and_then(|&i| arrivals.get(i))
            .copied()
            .unwrap_or(f64::INFINITY);
        let trigger = deadline.min(t_full);
        let start = t_free.max(trigger);
        // Everything that has arrived by the start joins, up to B.
        let mut count = 0;
        while count < policy.max_batch {
            match order.get(idx + count).and_then(|&i| arrivals.get(i)) {
                Some(&t) if t <= start => count += 1,
                _ => break,
            }
        }
        let count = count.max(1);
        let ids: Vec<usize> = order.iter().skip(idx).take(count).copied().collect();
        let rows: Vec<usize> = ids.iter().map(|&i| i % requests.len().max(1)).collect();
        let batch = requests.assemble(&rows);
        let (out, secs) = server.predict(model, &batch.examples());
        let finish = start + secs;
        for (k, &id) in ids.iter().enumerate() {
            if let (Some(l), Some(d)) = (latencies.get_mut(id), decisions.get_mut(id)) {
                *l = finish - arrivals.get(id).copied().unwrap_or(0.0);
                *d = out.get(k).copied().unwrap_or(f64::NAN);
            }
        }
        batches += 1;
        max_batch_seen = max_batch_seen.max(count);
        batch_backends.push(server.backend().label());
        service_secs += secs;
        t_free = finish;
        last_finish = last_finish.max(finish);
        idx += count;
    }
    ServeOutcome::finish(
        latencies,
        decisions,
        batches,
        max_batch_seen,
        batch_backends,
        service_secs,
        first_arrival,
        last_finish,
    )
}

/// Runs a closed-loop workload: `clients` concurrent clients each issue
/// `per_client` requests, re-issuing `think` seconds after each
/// completion. Latencies are reported in completion order.
pub fn run_closed_loop(
    server: &mut Server,
    model: &ServableModel,
    requests: &RequestPool,
    policy: &BatchPolicy,
    clients: usize,
    per_client: usize,
    think: f64,
) -> ServeOutcome {
    // (arrival, client, row) — every pending request. New arrivals only
    // ever appear after a completion, so at each dispatch decision the
    // pending set is complete: the event simulation is exact.
    let mut pending: Vec<(f64, usize, usize)> = Vec::with_capacity(clients);
    let mut remaining = vec![per_client; clients];
    let mut issued = 0usize;
    for c in 0..clients {
        if let Some(r) = remaining.get_mut(c) {
            if *r > 0 {
                *r -= 1;
                // analyzer: allow(queue-discipline) -- unhardened baseline the soak measures against
                pending.push((0.0, c, issued % requests.len().max(1)));
                issued += 1;
            }
        }
    }

    let mut latencies = Vec::with_capacity(clients * per_client);
    let mut decisions = Vec::with_capacity(clients * per_client);
    let mut batches = 0;
    let mut max_batch_seen = 0;
    let mut batch_backends = Vec::new();
    let mut service_secs = 0.0;
    let mut t_free = 0.0f64;
    let mut last_finish = 0.0f64;

    while !pending.is_empty() {
        pending.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let t_first = pending.first().map(|p| p.0).unwrap_or(0.0);
        let deadline = t_first + policy.max_wait;
        let t_full =
            pending.get(policy.max_batch.saturating_sub(1)).map(|p| p.0).unwrap_or(f64::INFINITY);
        let start = t_free.max(deadline.min(t_full));
        let mut count = 0;
        while count < policy.max_batch {
            match pending.get(count) {
                Some(&(t, _, _)) if t <= start => count += 1,
                _ => break,
            }
        }
        let count = count.max(1).min(pending.len());
        let batch_reqs: Vec<(f64, usize, usize)> = pending.drain(..count).collect();
        let rows: Vec<usize> = batch_reqs.iter().map(|&(_, _, r)| r).collect();
        let assembled = requests.assemble(&rows);
        let (out, secs) = server.predict(model, &assembled.examples());
        let finish = start + secs;
        for (k, &(arrival, client, _)) in batch_reqs.iter().enumerate() {
            latencies.push(finish - arrival);
            decisions.push(out.get(k).copied().unwrap_or(f64::NAN));
            if let Some(r) = remaining.get_mut(client) {
                if *r > 0 {
                    *r -= 1;
                    // analyzer: allow(queue-discipline) -- unhardened baseline the soak measures against
                    pending.push((finish + think, client, issued % requests.len().max(1)));
                    issued += 1;
                }
            }
        }
        batches += 1;
        max_batch_seen = max_batch_seen.max(count);
        batch_backends.push(server.backend().label());
        service_secs += secs;
        t_free = finish;
        last_finish = last_finish.max(finish);
    }
    ServeOutcome::finish(
        latencies,
        decisions,
        batches,
        max_batch_seen,
        batch_backends,
        service_secs,
        0.0,
        last_finish,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::model::TaskDescriptor;
    use sgd_linalg::Matrix;

    fn lr_model(dim: usize) -> ServableModel {
        let w: Vec<Scalar> = (0..dim).map(|i| 0.1 * (i as Scalar + 1.0)).collect();
        let ck = Checkpoint::new(TaskDescriptor::LogisticRegression { dim: dim as u64 }, w)
            .expect("dims");
        ServableModel::from_checkpoint(&ck).expect("valid")
    }

    fn toy_pool() -> RequestPool {
        RequestPool::dense(Matrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[0.0, -1.0, 0.5],
            &[3.0, 1.0, 0.0],
        ]))
    }

    #[test]
    fn unbatched_policy_serves_one_request_per_batch() {
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let model = lr_model(3);
        let arrivals: Vec<f64> = (0..6).map(|i| i as f64 * 1e-3).collect();
        let out =
            run_open_loop(&mut srv, &model, &toy_pool(), &BatchPolicy::unbatched(), &arrivals);
        assert_eq!(out.batches, 6);
        assert_eq!(out.max_batch_seen, 1);
        assert_eq!(out.summary.n, 6);
        assert!(out.latencies.iter().all(|&l| l > 0.0));
        assert_eq!(out.batch_backends.len(), 6);
        assert!(out.batch_backends.iter().all(|b| b == "cpu-seq"));
    }

    #[test]
    fn saturating_arrivals_coalesce_into_full_batches() {
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let model = lr_model(3);
        // All 8 requests arrive at t=0: the first dispatches alone or the
        // batch fills instantly, depending on policy.
        let arrivals = vec![0.0; 8];
        let out =
            run_open_loop(&mut srv, &model, &toy_pool(), &BatchPolicy::new(4, 1.0), &arrivals);
        assert_eq!(out.batches, 2, "8 simultaneous requests at B=4 is 2 batches");
        assert_eq!(out.max_batch_seen, 4);
    }

    #[test]
    fn max_wait_flushes_partial_batches() {
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let model = lr_model(3);
        // One early request, one far later: W must flush the first alone.
        let arrivals = vec![0.0, 1.0];
        let out =
            run_open_loop(&mut srv, &model, &toy_pool(), &BatchPolicy::new(64, 0.01), &arrivals);
        assert_eq!(out.batches, 2);
        // First request waited W, then service.
        let l0 = out.latencies.first().copied().unwrap_or(0.0);
        assert!(l0 >= 0.01, "flush waited max_wait ({l0})");
        assert!(l0 < 0.02, "but not much longer ({l0})");
    }

    #[test]
    fn decisions_match_direct_computation_in_arrival_order() {
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let model = lr_model(3);
        let pool = toy_pool();
        let arrivals = vec![0.0; 5];
        let out = run_open_loop(&mut srv, &model, &pool, &BatchPolicy::new(3, 1e-3), &arrivals);
        // Request i uses pool row i % 3; compare to a direct single-row
        // predict on the same backend.
        for i in 0..5 {
            let direct = run_open_loop(
                &mut Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled),
                &model,
                &pool.slice_rows(&[i % 3]),
                &BatchPolicy::unbatched(),
                &[0.0],
            );
            assert_eq!(
                out.decisions.get(i).copied().map(f64::to_bits),
                direct.decisions.first().copied().map(f64::to_bits),
                "request {i} decision must match a direct predict bitwise"
            );
        }
    }

    #[test]
    fn modeled_timing_is_bit_deterministic() {
        let model = lr_model(3);
        let arrivals: Vec<f64> = (0..40).map(|i| i as f64 * 1e-6).collect();
        let run = || {
            let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
            run_open_loop(&mut srv, &model, &toy_pool(), &BatchPolicy::new(8, 1e-4), &arrivals)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.latencies.len(), b.latencies.len());
        for (x, y) in a.latencies.iter().zip(&b.latencies) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.decisions.iter().zip(&b.decisions) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gpu_sim_service_time_is_deterministic_and_amortizes_launches() {
        let model = lr_model(3);
        let arrivals = vec![0.0; 32];
        let serve = |policy: BatchPolicy| {
            let mut srv = Server::new(ServeBackend::GpuSim, ServeTiming::Modeled);
            run_open_loop(&mut srv, &model, &toy_pool(), &policy, &arrivals)
        };
        let unbatched = serve(BatchPolicy::unbatched());
        let unbatched2 = serve(BatchPolicy::unbatched());
        assert_eq!(
            unbatched.service_secs.to_bits(),
            unbatched2.service_secs.to_bits(),
            "simulated clock is deterministic"
        );
        let batched = serve(BatchPolicy::new(32, 1e-3));
        assert!(batched.batches < unbatched.batches);
        assert!(
            batched.service_secs < unbatched.service_secs,
            "batching amortizes per-kernel launch overhead: {} vs {}",
            batched.service_secs,
            unbatched.service_secs
        );
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let model = lr_model(3);
        let out =
            run_closed_loop(&mut srv, &model, &toy_pool(), &BatchPolicy::new(4, 1e-4), 3, 5, 0.0);
        assert_eq!(out.summary.n, 15);
        assert_eq!(out.latencies.len(), 15);
        assert!(out.batches >= 5, "at most `clients` requests per batch");
        assert!(out.max_batch_seen <= 3);
        assert!(out.summary.throughput > 0.0);
        assert_eq!(out.batch_backends.len(), out.batches);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let model = lr_model(3);
        let run = || {
            let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
            run_closed_loop(&mut srv, &model, &toy_pool(), &BatchPolicy::new(2, 1e-5), 4, 6, 1e-6)
        };
        let (a, b) = (run(), run());
        for (x, y) in a.latencies.iter().zip(&b.latencies) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn cpu_par_backend_matches_seq_decisions() {
        let model = lr_model(3);
        let arrivals = vec![0.0; 9];
        let pol = BatchPolicy::new(3, 1e-4);
        let seq = run_open_loop(
            &mut Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled),
            &model,
            &toy_pool(),
            &pol,
            &arrivals,
        );
        let par = run_open_loop(
            &mut Server::new(ServeBackend::CpuPar { threads: 4 }, ServeTiming::Modeled),
            &model,
            &toy_pool(),
            &pol,
            &arrivals,
        );
        for (s, p) in seq.decisions.iter().zip(&par.decisions) {
            assert_eq!(s.to_bits(), p.to_bits(), "backends agree bitwise");
        }
    }

    #[test]
    fn modeled_cpu_clock_charges_the_shared_cost_model() {
        // The old local constants moved into sgd_core::CostModel; the
        // modeled service time must equal its estimate exactly.
        let model = lr_model(3);
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let pool = toy_pool();
        let batch = pool.assemble(&[0, 1]);
        let x = batch.examples();
        let (_, secs) = srv.predict(&model, &x);
        let expect =
            srv.cost_model().estimate_secs(&ComputeBackend::CpuSeq, &predict_workload(&model, &x));
        assert_eq!(secs.to_bits(), expect.to_bits());
    }

    #[test]
    fn router_prefers_cpu_for_tiny_batches_and_gpu_for_large_dense() {
        let model = lr_model(64);
        let wide = Matrix::from_fn(256, 64, |i, j| ((i + j) % 7) as f64 - 3.0);
        let pool = RequestPool::dense(wide);
        let mut srv = Server::routed(ComputeBackend::fixed_set(4).to_vec(), ServeTiming::Modeled);
        let one = pool.assemble(&[0]);
        assert_eq!(srv.route(&model, &one.examples()), ComputeBackend::CpuSeq);
        let big = pool.assemble(&(0..256).collect::<Vec<_>>());
        assert_eq!(srv.route(&model, &big.examples()), ComputeBackend::GpuSim);
        // Dispatch updates `backend()` to the routed choice.
        let _ = srv.predict(&model, &big.examples());
        assert_eq!(srv.backend(), ComputeBackend::GpuSim);
    }

    #[test]
    fn routed_server_is_deterministic_and_matches_fixed_decisions() {
        let model = lr_model(3);
        let arrivals: Vec<f64> = (0..24).map(|i| i as f64 * 3e-6).collect();
        let pol = BatchPolicy::new(8, 1e-4);
        let run = || {
            let mut srv =
                Server::routed(ComputeBackend::fixed_set(4).to_vec(), ServeTiming::Modeled);
            run_open_loop(&mut srv, &model, &toy_pool(), &pol, &arrivals)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.batch_backends, b.batch_backends, "same arrivals, same routing");
        for (x, y) in a.latencies.iter().zip(&b.latencies) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let fixed = run_open_loop(
            &mut Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled),
            &model,
            &toy_pool(),
            &pol,
            &arrivals,
        );
        for (r, f) in a.decisions.iter().zip(&fixed.decisions) {
            assert_eq!(r.to_bits(), f.to_bits(), "routing never changes the math");
        }
    }
}
