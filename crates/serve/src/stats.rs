//! Latency accounting: percentile, throughput, and shed summaries.

/// Summary statistics of one serving run's per-request latencies.
///
/// Percentiles use the nearest-rank method on the full sample (no
/// interpolation), so equal inputs always summarize to equal bits —
/// the determinism contract of the modeled-timing bench. Latencies are
/// only ever recorded for *completed* requests; shed and rejected
/// requests are counted (never silently dropped) but do not pollute the
/// percentile sample — the tail of a hardened server is the tail of the
/// work it accepted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of completed requests (the percentile sample size).
    pub n: usize,
    /// Requests admitted past admission control. Without an admission
    /// layer this equals `n`.
    pub admitted: usize,
    /// Requests that resolved to a non-completed outcome (shed at
    /// admission, shed past deadline, or rejected by backpressure).
    pub shed: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// 99.9th-percentile latency, seconds — the tail the soak bench
    /// gates on; needs a sample of 1000+ to differ from `max`.
    pub p999: f64,
    /// Worst observed latency, seconds.
    pub max: f64,
    /// Resolved requests (completed + shed) per second of makespan:
    /// the rate at which the server disposed of offered work.
    pub throughput: f64,
    /// Completed requests per second of makespan — throughput that did
    /// useful work. Equals `throughput` when nothing was shed.
    pub goodput: f64,
}

impl LatencySummary {
    /// Summarizes `latencies` (seconds per completed request, any order)
    /// over a run that spanned `makespan` seconds, with no shed traffic.
    pub fn from_latencies(latencies: &[f64], makespan: f64) -> Self {
        Self::from_latencies_with_shed(latencies, makespan, 0)
    }

    /// Summarizes `latencies` over a run that also shed or rejected
    /// `shed` requests. Order-invariant and bit-deterministic: the
    /// sample is sorted by `total_cmp` before any percentile is read.
    pub fn from_latencies_with_shed(latencies: &[f64], makespan: f64, shed: usize) -> Self {
        let n = latencies.len();
        if n == 0 {
            let throughput = rate(shed, makespan);
            return LatencySummary {
                n: 0,
                admitted: 0,
                shed,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                p999: 0.0,
                max: 0.0,
                throughput,
                goodput: 0.0,
            };
        }
        let mut sorted: Vec<f64> = latencies.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let max = sorted.last().copied().unwrap_or(0.0);
        LatencySummary {
            n,
            admitted: n,
            shed,
            mean,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            p999: percentile(&sorted, 0.999),
            max,
            throughput: rate(n + shed, makespan),
            goodput: rate(n, makespan),
        }
    }

    /// Fraction of resolved requests that were shed (0 when nothing was
    /// offered).
    pub fn shed_fraction(&self) -> f64 {
        let total = self.n + self.shed;
        if total == 0 {
            return 0.0;
        }
        self.shed as f64 / total as f64
    }
}

/// Requests per second over a makespan (0 for a degenerate span).
fn rate(count: usize, makespan: f64) -> f64 {
    if makespan > 0.0 {
        count as f64 / makespan
    } else {
        0.0
    }
}

/// Nearest-rank percentile of an ascending-sorted nonempty sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted.get(rank - 1).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        let s = LatencySummary::from_latencies(&[], 1.0);
        assert_eq!(s.n, 0);
        assert_eq!(s.throughput, 0.0);
        assert_eq!(s.goodput, 0.0);
        assert_eq!(s.shed_fraction(), 0.0);
    }

    #[test]
    fn nearest_rank_on_a_known_sample() {
        // 1..=100 milliseconds: p50 = 50 ms, p95 = 95 ms, p99 = 99 ms.
        let lat: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-3).collect();
        let s = LatencySummary::from_latencies(&lat, 2.0);
        assert_eq!(s.n, 100);
        assert_eq!(s.admitted, 100);
        assert!((s.p50 - 0.050).abs() < 1e-12);
        assert!((s.p95 - 0.095).abs() < 1e-12);
        assert!((s.p99 - 0.099).abs() < 1e-12);
        assert!((s.p999 - 0.100).abs() < 1e-12, "p999 of 100 samples is the max");
        assert!((s.max - 0.100).abs() < 1e-12);
        assert!((s.throughput - 50.0).abs() < 1e-12);
        assert!((s.goodput - 50.0).abs() < 1e-12);
    }

    #[test]
    fn p999_separates_from_max_at_scale() {
        // 2000 samples with one extreme outlier: p999 is the 1999th
        // sorted value, strictly below the max.
        let mut lat: Vec<f64> = (0..1999).map(|i| 1e-3 + i as f64 * 1e-7).collect();
        lat.push(10.0);
        let s = LatencySummary::from_latencies(&lat, 1.0);
        assert!(s.p999 < s.max, "p999 {} must exclude the outlier {}", s.p999, s.max);
        assert!(s.p99 <= s.p999);
    }

    #[test]
    fn single_sample_percentiles_collapse() {
        let s = LatencySummary::from_latencies(&[0.25], 0.5);
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
        assert_eq!(s.p999, 0.25);
        assert_eq!(s.mean, 0.25);
        assert_eq!(s.throughput, 2.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = LatencySummary::from_latencies(&[0.3, 0.1, 0.2], 1.0);
        let b = LatencySummary::from_latencies(&[0.1, 0.2, 0.3], 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn shed_accounting_splits_throughput_from_goodput() {
        // 3 completed + 7 shed over 2 seconds: the server resolved 5
        // requests per second but only 1.5 of them did useful work.
        let s = LatencySummary::from_latencies_with_shed(&[0.1, 0.2, 0.3], 2.0, 7);
        assert_eq!(s.n, 3);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed, 7);
        assert!((s.throughput - 5.0).abs() < 1e-12);
        assert!((s.goodput - 1.5).abs() < 1e-12);
        assert!((s.shed_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn all_shed_run_still_accounts() {
        let s = LatencySummary::from_latencies_with_shed(&[], 1.0, 4);
        assert_eq!(s.n, 0);
        assert_eq!(s.shed, 4);
        assert_eq!(s.shed_fraction(), 1.0);
        assert!((s.throughput - 4.0).abs() < 1e-12);
        assert_eq!(s.goodput, 0.0);
    }
}
