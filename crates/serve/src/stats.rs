//! Latency accounting: percentile and throughput summaries.

/// Summary statistics of one serving run's per-request latencies.
///
/// Percentiles use the nearest-rank method on the full sample (no
/// interpolation), so equal inputs always summarize to equal bits —
/// the determinism contract of the modeled-timing bench.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of completed requests.
    pub n: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// Worst observed latency, seconds.
    pub max: f64,
    /// Completed requests per second of makespan (first arrival to last
    /// completion).
    pub throughput: f64,
}

impl LatencySummary {
    /// Summarizes `latencies` (seconds per request, any order) over a
    /// run that spanned `makespan` seconds.
    pub fn from_latencies(latencies: &[f64], makespan: f64) -> Self {
        let n = latencies.len();
        if n == 0 {
            return LatencySummary {
                n: 0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
                throughput: 0.0,
            };
        }
        let mut sorted: Vec<f64> = latencies.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let max = sorted.last().copied().unwrap_or(0.0);
        let throughput = if makespan > 0.0 { n as f64 / makespan } else { 0.0 };
        LatencySummary {
            n,
            mean,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max,
            throughput,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted nonempty sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted.get(rank - 1).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        let s = LatencySummary::from_latencies(&[], 1.0);
        assert_eq!(s.n, 0);
        assert_eq!(s.throughput, 0.0);
    }

    #[test]
    fn nearest_rank_on_a_known_sample() {
        // 1..=100 milliseconds: p50 = 50 ms, p95 = 95 ms, p99 = 99 ms.
        let lat: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-3).collect();
        let s = LatencySummary::from_latencies(&lat, 2.0);
        assert_eq!(s.n, 100);
        assert!((s.p50 - 0.050).abs() < 1e-12);
        assert!((s.p95 - 0.095).abs() < 1e-12);
        assert!((s.p99 - 0.099).abs() < 1e-12);
        assert!((s.max - 0.100).abs() < 1e-12);
        assert!((s.throughput - 50.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_percentiles_collapse() {
        let s = LatencySummary::from_latencies(&[0.25], 0.5);
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
        assert_eq!(s.mean, 0.25);
        assert_eq!(s.throughput, 2.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = LatencySummary::from_latencies(&[0.3, 0.1, 0.2], 1.0);
        let b = LatencySummary::from_latencies(&[0.1, 0.2, 0.3], 1.0);
        assert_eq!(a, b);
    }
}
