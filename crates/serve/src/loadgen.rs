//! Deterministic load generation: request pools and arrival processes.
//!
//! Open-loop arrivals are a seeded Poisson process (exponential
//! inter-arrival times from a `StdRng`): the same seed always produces
//! the same timestamps, so a modeled-timing serve run is reproducible
//! bit-for-bit. Closed-loop load (clients re-issuing on completion)
//! needs no randomness at all and lives in
//! [`crate::batcher::run_closed_loop`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgd_datagen::Dataset;
use sgd_linalg::{CsrMatrix, Matrix, Scalar};
use sgd_models::Examples;

use crate::admission::OfferedRequest;

/// The feature vectors requests draw from — request `i` scores row
/// `i % len`. Dense pools assemble dense batches (gemv/gemm path),
/// sparse pools assemble CSR batches (spmv path), so a serve run
/// exercises exactly one sparsity corner, like a training run.
#[derive(Clone, Debug)]
pub enum RequestPool {
    /// Requests are rows of a dense matrix.
    Dense(Matrix),
    /// Requests are rows of a CSR matrix.
    Sparse(CsrMatrix),
}

impl RequestPool {
    /// A pool of dense feature rows.
    pub fn dense(m: Matrix) -> Self {
        RequestPool::Dense(m)
    }

    /// A pool of sparse feature rows.
    pub fn sparse(m: CsrMatrix) -> Self {
        RequestPool::Sparse(m)
    }

    /// Requests drawn from a dataset's examples, keeping them sparse.
    pub fn from_dataset(ds: &Dataset) -> Self {
        RequestPool::Sparse(ds.x.clone())
    }

    /// Requests drawn from a dataset's examples, densified (the MLP and
    /// dense-BLAS serving path).
    pub fn densified(ds: &Dataset) -> Self {
        RequestPool::Dense(ds.x.to_dense())
    }

    /// Number of distinct request rows.
    pub fn len(&self) -> usize {
        match self {
            RequestPool::Dense(m) => m.rows(),
            RequestPool::Sparse(m) => m.rows(),
        }
    }

    /// `true` when the pool has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature-space width.
    pub fn dim(&self) -> usize {
        match self {
            RequestPool::Dense(m) => m.cols(),
            RequestPool::Sparse(m) => m.cols(),
        }
    }

    /// Builds the batch matrix for the given pool rows (out-of-range
    /// rows wrap around).
    pub fn assemble(&self, rows: &[usize]) -> AssembledBatch {
        match self {
            RequestPool::Dense(m) => {
                let n = m.rows().max(1);
                let picked: Vec<&[Scalar]> = rows.iter().map(|&r| m.row(r % n)).collect();
                AssembledBatch::Dense(Matrix::from_rows(&picked))
            }
            RequestPool::Sparse(m) => {
                let n = m.rows().max(1);
                let entries: Vec<Vec<(u32, Scalar)>> = rows
                    .iter()
                    .map(|&r| {
                        let row = m.row(r % n);
                        row.cols.iter().copied().zip(row.vals.iter().copied()).collect()
                    })
                    .collect();
                AssembledBatch::Sparse(CsrMatrix::from_row_entries(
                    entries.len(),
                    m.cols(),
                    &entries,
                ))
            }
        }
    }

    /// A new pool holding only the given rows (wrapping), preserving the
    /// representation.
    pub fn slice_rows(&self, rows: &[usize]) -> RequestPool {
        match self.assemble(rows) {
            AssembledBatch::Dense(m) => RequestPool::Dense(m),
            AssembledBatch::Sparse(m) => RequestPool::Sparse(m),
        }
    }
}

/// One coalesced batch, owning its matrix.
#[derive(Clone, Debug)]
pub enum AssembledBatch {
    /// Dense batch.
    Dense(Matrix),
    /// CSR batch.
    Sparse(CsrMatrix),
}

impl AssembledBatch {
    /// Borrowed examples view for the predict entry points.
    pub fn examples(&self) -> Examples<'_> {
        match self {
            AssembledBatch::Dense(m) => Examples::Dense(m),
            AssembledBatch::Sparse(m) => Examples::Sparse(m),
        }
    }
}

/// `n` open-loop arrival timestamps at `rate` requests/second:
/// a seeded Poisson process starting at `t = 0`'s first inter-arrival
/// gap. Non-positive rates or zero requests yield an empty workload.
pub fn open_loop_arrivals(rate: f64, n: usize, seed: u64) -> Vec<f64> {
    let positive = rate.is_finite() && rate > 0.0;
    if !positive || n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen(); // [0, 1)
        t += -(1.0 - u).ln() / rate; // Exp(rate), ln of (0, 1]
        out.push(t);
    }
    out
}

/// `n` open-loop [`OfferedRequest`]s at `rate` requests/second: Poisson
/// arrivals from [`open_loop_arrivals`] plus a deterministic priority
/// tier in `0..tiers` per request (a seeded splitmix64 draw, independent
/// of the arrival stream), request `i` scoring pool row `i`. The input
/// of the admission-controlled runner and the soak bench: same `(rate,
/// n, seed, tiers)` ⇒ bit-identical offered load.
pub fn offered_requests(rate: f64, n: usize, seed: u64, tiers: usize) -> Vec<OfferedRequest> {
    let tiers = tiers.max(1) as u64;
    open_loop_arrivals(rate, n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| OfferedRequest {
            arrival,
            priority: (mix64(seed ^ 0x9d71_f255_u64.wrapping_mul(i as u64 + 1)) % tiers) as usize,
            row: i,
        })
        .collect()
}

/// splitmix64 finalizer: a stateless, seed-stable hash for priority
/// assignment (deliberately independent of the arrival RNG stream so
/// changing `tiers` never perturbs arrival times).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_increasing_and_rate_scaled() {
        let a = open_loop_arrivals(1000.0, 500, 42);
        let b = open_loop_arrivals(1000.0, 500, 42);
        assert_eq!(a.len(), 500);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(a.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        // Mean inter-arrival ~ 1/rate within a loose statistical bound.
        let mean_gap = a.last().copied().unwrap_or(0.0) / 500.0;
        assert!((mean_gap - 1e-3).abs() < 3e-4, "mean gap {mean_gap}");
        let c = open_loop_arrivals(1000.0, 500, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y), "seed changes the process");
    }

    #[test]
    fn offered_requests_are_deterministic_with_stable_arrivals_across_tiers() {
        let a = offered_requests(500.0, 200, 7, 3);
        let b = offered_requests(500.0, 200, 7, 3);
        assert_eq!(a, b, "same inputs, same offered load");
        assert!(a.iter().all(|r| r.priority < 3));
        assert!((0..3).all(|t| a.iter().any(|r| r.priority == t)), "every tier appears");
        // Priorities come from an independent hash stream: changing the
        // tier count never perturbs arrival times.
        let c = offered_requests(500.0, 200, 7, 1);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
        }
        assert!(c.iter().all(|r| r.priority == 0));
    }

    #[test]
    fn degenerate_workloads_are_empty() {
        assert!(open_loop_arrivals(0.0, 10, 1).is_empty());
        assert!(open_loop_arrivals(-5.0, 10, 1).is_empty());
        assert!(open_loop_arrivals(f64::NAN, 10, 1).is_empty());
        assert!(open_loop_arrivals(100.0, 0, 1).is_empty());
    }

    #[test]
    fn dense_assembly_picks_and_wraps_rows() {
        let pool = RequestPool::dense(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = pool.assemble(&[1, 0, 2]); // 2 wraps to row 0
        let AssembledBatch::Dense(m) = b else { panic!("dense pool assembles dense") };
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn sparse_assembly_preserves_entries_exactly() {
        let dense = Matrix::from_rows(&[&[0.0, 1.5, 0.0], &[2.5, 0.0, -0.5]]);
        let pool = RequestPool::sparse(CsrMatrix::from_dense(&dense));
        assert_eq!((pool.len(), pool.dim()), (2, 3));
        let b = pool.assemble(&[1, 1, 0]);
        let AssembledBatch::Sparse(s) = b else { panic!("sparse pool assembles sparse") };
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0).vals, &[2.5, -0.5]);
        assert_eq!(s.row(2).cols, &[1]);
    }

    #[test]
    fn slice_rows_round_trips_through_assemble() {
        let pool = RequestPool::dense(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let sliced = pool.slice_rows(&[2, 0]);
        assert_eq!(sliced.len(), 2);
        let AssembledBatch::Dense(m) = sliced.assemble(&[0, 1]) else {
            panic!("dense stays dense")
        };
        assert_eq!(m.as_slice(), &[3.0, 1.0]);
    }
}
