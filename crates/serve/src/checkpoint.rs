//! The checkpoint format: a versioned, checksummed binary container for
//! trained models.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"SGDCKPT\0"
//! version  4  format version (currently 1)
//! task     1  0 = logistic regression, 1 = linear SVM, 2 = MLP
//! body     …  task descriptor (see below)
//! fprint   8  FNV-1a fingerprint of the descriptor bytes
//! n        8  weight count
//! weights  8n f64 *bit patterns* (to_bits/from_bits — round trips are
//!             bit-exact, including NaN payloads, -0.0, and subnormals)
//! crc      4  CRC-32 (IEEE) over everything before it
//! ```
//!
//! Linear descriptors are `dim: u64`; MLP descriptors are `seed: u64,
//! n_layers: u32, widths: u32 × n_layers`.
//!
//! Everything here treats the byte stream as untrusted wire data: reads
//! go through a bounds-checked [`Cursor`] (no slice indexing), and every
//! failure mode — truncation, corruption, a future version, an impossible
//! descriptor — surfaces as a typed [`CheckpointError`], never a panic.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use sgd_linalg::Scalar;

use crate::model::TaskDescriptor;

/// First eight bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"SGDCKPT\0";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint could not be decoded (or a model could not be
/// encoded). The reader never panics on hostile bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The bytes actually found (up to eight).
        found: Vec<u8>,
    },
    /// The version field names a format this build does not speak.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The buffer ended before a field could be read in full.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// The CRC trailer does not match the bytes preceding it.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The task tag byte is not a known task kind.
    UnknownTask {
        /// The tag found.
        tag: u8,
    },
    /// The descriptor decodes but describes an impossible model (zero
    /// layer width, too few MLP layers, an absurd dimension, …).
    BadDescriptor {
        /// What was wrong.
        detail: String,
    },
    /// The stored fingerprint disagrees with the descriptor bytes — the
    /// header was tampered with or mis-written.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: u64,
        /// Fingerprint recomputed from the descriptor.
        computed: u64,
    },
    /// The weight count does not match the descriptor's model dimension.
    DimensionMismatch {
        /// Dimension the descriptor implies.
        expected: usize,
        /// Weights actually stored.
        found: usize,
    },
    /// Bytes remained after the CRC trailer.
    TrailingBytes {
        /// How many bytes followed the trailer.
        extra: usize,
    },
    /// An I/O failure while reading or writing a checkpoint file.
    Io {
        /// The failing operation's error, stringified (io::Error is not
        /// `Clone`/`PartialEq`).
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint: magic bytes {found:02x?} != {MAGIC:02x?}")
            }
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "checkpoint version {found} unsupported (this build reads {FORMAT_VERSION})"
                )
            }
            CheckpointError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated checkpoint: next field needs {needed} bytes, {remaining} remain"
                )
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            CheckpointError::UnknownTask { tag } => write!(f, "unknown task tag {tag}"),
            CheckpointError::BadDescriptor { detail } => write!(f, "bad descriptor: {detail}"),
            CheckpointError::FingerprintMismatch { stored, computed } => {
                write!(f, "fingerprint mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            CheckpointError::DimensionMismatch { expected, found } => {
                write!(f, "weight count {found} does not match model dimension {expected}")
            }
            CheckpointError::TrailingBytes { extra } => {
                write!(f, "{extra} bytes of trailing garbage after the CRC trailer")
            }
            CheckpointError::Io { detail } => write!(f, "checkpoint I/O: {detail}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io { detail: e.to_string() }
    }
}

/// A decoded (or to-be-encoded) model checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// What model the weights parameterize.
    pub descriptor: TaskDescriptor,
    /// The flat model vector, bit-exact.
    pub weights: Vec<Scalar>,
}

impl Checkpoint {
    /// Builds a checkpoint, validating the weight count against the
    /// descriptor's model dimension.
    pub fn new(descriptor: TaskDescriptor, weights: Vec<Scalar>) -> Result<Self, CheckpointError> {
        let expected = descriptor.model_dim()?;
        if weights.len() != expected {
            return Err(CheckpointError::DimensionMismatch { expected, found: weights.len() });
        }
        Ok(Checkpoint { descriptor, weights })
    }

    /// Serializes the checkpoint to its binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let desc = self.descriptor.encode();
        let mut out = Vec::with_capacity(8 + 4 + desc.len() + 16 + 8 * self.weights.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&desc);
        out.extend_from_slice(&fingerprint(&desc).to_le_bytes());
        out.extend_from_slice(&(self.weights.len() as u64).to_le_bytes());
        for w in &self.weights {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a checkpoint from bytes, verifying magic, version, CRC,
    /// fingerprint, and dimensions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // CRC first: everything else assumes intact bytes.
        let body_len = bytes.len().checked_sub(4).ok_or(CheckpointError::Truncated {
            needed: MAGIC.len() + 4,
            remaining: bytes.len(),
        })?;
        let (body, trailer) = bytes.split_at(body_len);
        let mut cur = Cursor::new(trailer);
        let stored_crc = cur.u32()?;
        let computed_crc = crc32(body);
        let mut cur = Cursor::new(body);
        let magic = cur.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic.to_vec() });
        }
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        if stored_crc != computed_crc {
            return Err(CheckpointError::ChecksumMismatch {
                stored: stored_crc,
                computed: computed_crc,
            });
        }
        let desc_start = cur.pos();
        let descriptor = TaskDescriptor::decode(&mut cur)?;
        let desc_bytes = body
            .get(desc_start..cur.pos())
            .ok_or(CheckpointError::Truncated { needed: cur.pos(), remaining: body.len() })?;
        let stored_fprint = cur.u64()?;
        let computed_fprint = fingerprint(desc_bytes);
        if stored_fprint != computed_fprint {
            return Err(CheckpointError::FingerprintMismatch {
                stored: stored_fprint,
                computed: computed_fprint,
            });
        }
        let n = cur.u64()?;
        let expected = descriptor.model_dim()?;
        if n != expected as u64 {
            return Err(CheckpointError::DimensionMismatch {
                expected,
                found: usize::try_from(n).unwrap_or(usize::MAX),
            });
        }
        let mut weights = Vec::with_capacity(expected);
        for _ in 0..expected {
            weights.push(Scalar::from_bits(cur.u64()?));
        }
        let extra = cur.remaining();
        if extra > 0 {
            return Err(CheckpointError::TrailingBytes { extra });
        }
        Ok(Checkpoint { descriptor, weights })
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        Ok(())
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

/// A bounds-checked read cursor over untrusted bytes: every read is via
/// `get`, so malformed input surfaces as [`CheckpointError::Truncated`],
/// never an out-of-bounds panic.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current offset into the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Truncated { needed: n, remaining: self.remaining() })?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated { needed: n, remaining: self.remaining() })?;
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?.iter().copied().next().unwrap_or(0))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let mut v: u32 = 0;
        for (i, b) in self.take(4)?.iter().enumerate() {
            v |= u32::from(*b) << (8 * i);
        }
        Ok(v)
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut v: u64 = 0;
        for (i, b) in self.take(8)?.iter().enumerate() {
            v |= u64::from(*b) << (8 * i);
        }
        Ok(v)
    }
}

/// FNV-1a over the descriptor bytes — the header's config fingerprint.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xff) as usize;
        let entry = table.get(idx).copied().unwrap_or(0);
        crc = (crc >> 8) ^ entry;
    }
    crc ^ 0xffff_ffff
}

/// The 256-entry CRC-32 lookup table (computed once, no statics needed —
/// the table is tiny and checkpoint I/O is off any hot path).
fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *slot = c;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskDescriptor;

    fn lr_ckpt(weights: Vec<f64>) -> Checkpoint {
        let d = weights.len() as u64;
        Checkpoint::new(TaskDescriptor::LogisticRegression { dim: d }, weights)
            .expect("dim matches")
    }

    #[test]
    fn crc32_known_vector() {
        // The classic "123456789" check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_ordinary_weights() {
        let ck = lr_ckpt(vec![0.5, -1.25, 3.0e-5, 1e300]);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("round trip");
        assert_eq!(ck, back);
    }

    #[test]
    fn round_trip_is_bit_exact_for_pathological_floats() {
        let nan_payload = f64::from_bits(0x7ff8_0000_dead_beef);
        let neg_zero = -0.0f64;
        let subnormal = f64::from_bits(1); // smallest positive subnormal
        let ck = lr_ckpt(vec![nan_payload, neg_zero, subnormal, f64::INFINITY, f64::NEG_INFINITY]);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("round trip");
        for (a, b) in ck.weights.iter().zip(&back.weights) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let bytes = lr_ckpt(vec![1.0, 2.0, 3.0]).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = Checkpoint::from_bytes(&bad).expect_err("corruption must be caught");
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::BadMagic { .. }
                        | CheckpointError::UnsupportedVersion { .. }
                ),
                "byte {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = lr_ckpt(vec![1.0, 2.0]).to_bytes();
        for len in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..len]).expect_err("truncation");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch { .. }
                ),
                "len {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected_before_payload() {
        // Re-encode with version 2 and a recomputed CRC so only the
        // version differs.
        let mut bytes = lr_ckpt(vec![1.0]).to_bytes();
        bytes[8] = 2;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let err = Checkpoint::from_bytes(&bytes).expect_err("version gate");
        assert_eq!(err, CheckpointError::UnsupportedVersion { found: 2 });
    }

    #[test]
    fn bad_magic_is_reported_with_found_bytes() {
        let mut bytes = lr_ckpt(vec![1.0]).to_bytes();
        bytes[0] = b'X';
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let err = Checkpoint::from_bytes(&bytes).expect_err("magic gate");
        assert!(matches!(err, CheckpointError::BadMagic { .. }), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let ck = lr_ckpt(vec![1.0]);
        let mut bytes = ck.to_bytes();
        // Splice garbage *before* the CRC and recompute it, so the only
        // defect is the extra payload length.
        let crc_at = bytes.len() - 4;
        bytes.splice(crc_at..crc_at, [0u8; 3]);
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let err = Checkpoint::from_bytes(&bytes).expect_err("trailing bytes");
        // The weight count no longer matches the remaining payload, so
        // either Truncated (mid-f64) or TrailingBytes is acceptable; with
        // 3 extra bytes it is TrailingBytes... after n weights there are
        // 3 bytes left.
        assert!(
            matches!(
                err,
                CheckpointError::TrailingBytes { extra: 3 } | CheckpointError::Truncated { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let err = Checkpoint::new(TaskDescriptor::LinearSvm { dim: 4 }, vec![1.0; 3])
            .expect_err("3 weights for dim 4");
        assert_eq!(err, CheckpointError::DimensionMismatch { expected: 4, found: 3 });
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sgd_serve_ckpt_test.bin");
        let ck = lr_ckpt(vec![0.25, -0.5, f64::from_bits(0x7ff8_0000_0000_0001)]);
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        for (a, b) in ck.weights.iter().zip(&back.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/sgd_serve_nope.bin"))
            .expect_err("missing file");
        assert!(matches!(err, CheckpointError::Io { .. }), "{err:?}");
    }
}
