//! Loopback TCP front-end speaking LIBSVM-formatted request lines.
//!
//! Protocol: one request per line, in LIBSVM format
//! (`<label> <idx>:<val> ...` — the label is carried but ignored for
//! scoring); one response line per request, `OK <decision>` on success
//! or `ERR <detail>` when the line fails to parse or no model is
//! published. Requests are scored against the *current* registry
//! snapshot, so a hot-swap publication mid-connection takes effect on
//! the very next line.
//!
//! All wire bytes flow through `sgd-datagen`'s typed
//! [`ParseError`](sgd_datagen::libsvm::ParseError) path — a malformed
//! line is an `ERR` response, never a panic, and this file is in the
//! analyzer's panic-freedom and indexing-ban scope.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use sgd_datagen::libsvm;
use sgd_linalg::CpuExec;
use sgd_models::Examples;

use crate::registry::ModelRegistry;

/// A front-end serving one named registry entry over a TCP listener.
pub struct WireServer<'a> {
    registry: &'a ModelRegistry,
    model_name: String,
}

impl<'a> WireServer<'a> {
    /// A server scoring requests against `model_name` in `registry`.
    pub fn new(registry: &'a ModelRegistry, model_name: &str) -> Self {
        WireServer { registry, model_name: model_name.to_string() }
    }

    /// Serves one accepted connection to completion (client EOF).
    /// Returns the number of request lines handled.
    pub fn handle(&self, stream: TcpStream) -> std::io::Result<usize> {
        let reader = BufReader::new(stream.try_clone()?);
        self.serve_lines(reader, stream)
    }

    /// Accepts and serves `connections` sequential connections from the
    /// listener — enough for a loopback smoke without a thread-per-client
    /// accept loop. Returns total request lines handled.
    pub fn serve_connections(
        &self,
        listener: &TcpListener,
        connections: usize,
    ) -> std::io::Result<usize> {
        let mut handled = 0;
        for _ in 0..connections {
            let (stream, _addr) = listener.accept()?;
            handled += self.handle(stream)?;
        }
        Ok(handled)
    }

    /// The transport-agnostic core: reads request lines from `reader`,
    /// writes one response line each to `writer`.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<usize> {
        let mut handled = 0;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.score_line(&line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            handled += 1;
        }
        Ok(handled)
    }

    /// Scores one request line against the current snapshot.
    fn score_line(&self, line: &str) -> String {
        let Some(snap) = self.registry.get(&self.model_name) else {
            return format!("ERR no model published under '{}'", self.model_name);
        };
        let dim = snap.model.input_dim();
        let ds = match libsvm::parse_str("wire", line, dim) {
            Ok(ds) => ds,
            Err(e) => return format!("ERR {e}"),
        };
        if ds.x.rows() != 1 {
            return format!("ERR expected exactly one example per line, got {}", ds.x.rows());
        }
        let scores = snap.model.predict_batch(&mut CpuExec::seq(), &Examples::Sparse(&ds.x));
        match scores.first() {
            Some(d) => format!("OK {d}"),
            None => "ERR empty prediction".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::model::{ServableModel, TaskDescriptor};
    use std::io::{BufWriter, Read};

    fn registry_with_lr(weights: Vec<f64>) -> ModelRegistry {
        let reg = ModelRegistry::new();
        let dim = weights.len() as u64;
        let ck =
            Checkpoint::new(TaskDescriptor::LogisticRegression { dim }, weights).expect("dims");
        reg.publish("m", ServableModel::from_checkpoint(&ck).expect("valid"), 0, 0.5);
        reg
    }

    #[test]
    fn serve_lines_scores_and_reports_errors_in_order() {
        let reg = registry_with_lr(vec![1.0, 2.0, 3.0]);
        let srv = WireServer::new(&reg, "m");
        let input = "+1 1:1 3:2\n-1 2:0.5\nnot-a-label 1:1\n+1 99:1\n\n+1 1:0\n";
        let mut out = Vec::new();
        let handled = srv
            .serve_lines(BufReader::new(input.as_bytes()), BufWriter::new(&mut out))
            .expect("io");
        assert_eq!(handled, 5, "blank line skipped");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // 1*1 + 3*2 = 7; 2*0.5 = 1.
        assert_eq!(lines.first().copied(), Some("OK 7"));
        assert_eq!(lines.get(1).copied(), Some("OK 1"));
        assert!(lines.get(2).is_some_and(|l| l.starts_with("ERR ")), "bad label is typed");
        assert!(lines.get(3).is_some_and(|l| l.starts_with("ERR ")), "index out of range");
        assert_eq!(lines.get(4).copied(), Some("OK 0"));
    }

    #[test]
    fn unpublished_model_is_an_error_not_a_panic() {
        let reg = ModelRegistry::new();
        let srv = WireServer::new(&reg, "ghost");
        let mut out = Vec::new();
        srv.serve_lines(BufReader::new("+1 1:1\n".as_bytes()), &mut out).expect("io");
        assert!(String::from_utf8(out).expect("utf8").starts_with("ERR "));
    }

    #[test]
    fn loopback_tcp_round_trip_with_hot_swap() {
        let reg = registry_with_lr(vec![1.0, 0.0]);
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                WireServer::new(&reg, "m").serve_connections(&listener, 1).expect("serve")
            });
            let mut conn = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();

            conn.write_all(b"+1 1:2\n").expect("write");
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim(), "OK 2");

            // Hot-swap the model mid-connection: the next request sees it.
            let ck =
                Checkpoint::new(TaskDescriptor::LogisticRegression { dim: 2 }, vec![10.0, 0.0])
                    .expect("dims");
            reg.publish("m", ServableModel::from_checkpoint(&ck).expect("valid"), 1, 0.1);

            line.clear();
            conn.write_all(b"+1 1:2\n").expect("write");
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim(), "OK 20", "hot-swapped weights serve immediately");

            // The reader holds a cloned FD, so dropping `conn` alone
            // would not deliver EOF to the server — shut down the socket's
            // write half explicitly.
            conn.shutdown(std::net::Shutdown::Write).expect("shutdown");
            let mut rest = String::new();
            reader.read_to_string(&mut rest).ok();
            assert_eq!(server.join().expect("no panic"), 2);
        });
    }
}
