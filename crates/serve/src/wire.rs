//! Loopback TCP front-end speaking LIBSVM-formatted request lines, with
//! overload hardening.
//!
//! Protocol: one request per line, in LIBSVM format
//! (`<label> <idx>:<val> ...` — the label is carried but ignored for
//! scoring); one response line per request:
//!
//! * `OK <decision>` — scored against the *current* registry snapshot,
//!   so a hot-swap publication mid-connection takes effect on the very
//!   next line;
//! * `ERR BUSY retry_after=<secs>` — the server is over its in-flight
//!   bound ([`WireConfig::max_inflight`]); the client should back off;
//! * `ERR line too long (max <n> bytes)` — the request exceeded
//!   [`WireConfig::max_line_bytes`]; the oversized line is drained and
//!   the connection keeps serving;
//! * `ERR backend down (dispatch <n>); retry` — an injected backend
//!   fault ([`WireServer::install_faults`]) surfaced as a typed error
//!   instead of a hang;
//! * `ERR <detail>` — parse or registry failures.
//!
//! Hardening against hostile or stalled clients: request lines are read
//! through a *bounded* buffer (a client that never sends `\n` can no
//! longer grow server memory without limit), accepted connections get a
//! read timeout (a silent client ends its connection instead of
//! pinning a worker), and [`WireServer::serve_connections`] serves a
//! small bounded pool of scoped worker threads so one stalled client
//! cannot block every later connection.
//!
//! All wire bytes flow through `sgd-datagen`'s typed
//! [`ParseError`](sgd_datagen::libsvm::ParseError) path — a malformed
//! line is an `ERR` response, never a panic, and this file is in the
//! analyzer's panic-freedom and indexing-ban scope.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use sgd_core::{apply_dilation, BackendSession, ComputeBackend, ExecTask, FaultPlan};
use sgd_datagen::libsvm;
use sgd_linalg::{Exec, Scalar};
use sgd_models::Examples;

use crate::framing::{is_timeout, lock_tolerant, read_bounded_line, LineRead};
use crate::model::ServableModel;
use crate::registry::ModelRegistry;

/// Overload limits of a [`WireServer`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireConfig {
    /// Requests allowed in flight (being scored) at once before the
    /// server answers `ERR BUSY`.
    pub max_inflight: usize,
    /// Longest accepted request line, bytes; longer lines get a typed
    /// `ERR` and are drained without buffering.
    pub max_line_bytes: usize,
    /// Read timeout installed on accepted connections; a connection
    /// idle past it is closed (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Back-off hint advertised in `ERR BUSY retry_after=<secs>`.
    pub retry_after_secs: f64,
    /// Scoped worker threads accepting connections concurrently in
    /// [`WireServer::serve_connections`].
    pub workers: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_inflight: 64,
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(5)),
            retry_after_secs: 0.05,
            workers: 4,
        }
    }
}

/// Scoring one parsed request as a backend job, so injected faults gate
/// it exactly like any other dispatch.
struct ScoreJob<'a> {
    model: &'a ServableModel,
    x: &'a Examples<'a>,
}

impl ExecTask for ScoreJob<'_> {
    type Out = Vec<Scalar>;
    // analyzer: root(panic-freedom) -- backend job callback: the dispatch trait edge runs against the crate dependency direction, so traversal re-anchors here
    fn run<E: Exec>(&mut self, e: &mut E) -> Vec<Scalar> {
        self.model.predict_batch(e, self.x)
    }
}

/// A front-end serving one named registry entry over a TCP listener.
pub struct WireServer<'a> {
    registry: &'a ModelRegistry,
    model_name: String,
    config: WireConfig,
    inflight: Mutex<usize>,
    session: Mutex<BackendSession>,
    /// Shed replies, formatted once at construction: under overload the
    /// server must do *less* work per request, so the BUSY and
    /// line-too-long paths write prebuilt bytes instead of allocating.
    busy_reply: String,
    too_long_reply: String,
}

/// Decrements the in-flight count when a request finishes, even if the
/// scoring path unwinds.
struct InflightGuard<'a> {
    counter: &'a Mutex<usize>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut n = lock_tolerant(self.counter);
        *n = n.saturating_sub(1);
    }
}

impl<'a> WireServer<'a> {
    /// A server scoring requests against `model_name` in `registry`,
    /// with default overload limits.
    pub fn new(registry: &'a ModelRegistry, model_name: &str) -> Self {
        WireServer::with_config(registry, model_name, WireConfig::default())
    }

    /// A server with explicit overload limits.
    pub fn with_config(registry: &'a ModelRegistry, model_name: &str, config: WireConfig) -> Self {
        WireServer {
            registry,
            model_name: model_name.to_string(),
            inflight: Mutex::new(0),
            session: Mutex::new(BackendSession::new()),
            busy_reply: format!("ERR BUSY retry_after={}", config.retry_after_secs),
            too_long_reply: format!("ERR line too long (max {} bytes)", config.max_line_bytes),
            config,
        }
    }

    /// Installs a deterministic fault gate on the scoring backend:
    /// subsequent requests draw one decision each from `plan` (see
    /// [`sgd_core::DispatchFaults`]) — a dead backend answers
    /// `ERR backend down ...; retry`, a straggler completes slowly.
    pub fn install_faults(&self, plan: FaultPlan) {
        lock_tolerant(&self.session).install_faults(plan);
    }

    /// Serves one accepted connection to completion (client EOF, or the
    /// configured read timeout). Returns the number of request lines
    /// handled.
    // analyzer: root(panic-freedom) -- wire request entry point: every byte a client sends flows through here
    pub fn handle(&self, stream: TcpStream) -> std::io::Result<usize> {
        stream.set_read_timeout(self.config.read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.serve_lines(reader, stream)
    }

    /// Accepts `connections` connections and serves them on a small
    /// bounded pool of scoped worker threads ([`WireConfig::workers`]),
    /// so a stalled client occupies one worker instead of blocking the
    /// accept loop. Returns total request lines handled.
    // analyzer: root(panic-freedom) -- wire request entry point: the accept loop serving untrusted connections
    pub fn serve_connections(
        &self,
        listener: &TcpListener,
        connections: usize,
    ) -> std::io::Result<usize> {
        let workers = self.config.workers.max(1).min(connections.max(1));
        let handled = Mutex::new(0usize);
        let claimed = Mutex::new(0usize);
        let first_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    {
                        let mut n = lock_tolerant(&claimed);
                        if *n >= connections {
                            break;
                        }
                        *n += 1;
                    }
                    match listener.accept().and_then(|(stream, _addr)| self.handle(stream)) {
                        Ok(h) => *lock_tolerant(&handled) += h,
                        Err(e) => {
                            let mut slot = lock_tolerant(&first_err);
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            break;
                        }
                    }
                });
            }
        });
        let outcome = match lock_tolerant(&first_err).take() {
            Some(e) => Err(e),
            None => Ok(*lock_tolerant(&handled)),
        };
        outcome
    }

    /// The transport-agnostic core: reads request lines from `reader`
    /// through a bounded buffer, writes one response line each to
    /// `writer`. A read timeout ends the connection cleanly (`Ok`);
    /// other I/O errors propagate.
    // analyzer: root(panic-freedom) -- wire request entry point: the per-line protocol core
    // analyzer: root(hot-path-alloc) -- per-request reply path: shed/busy replies must not allocate under overload
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> std::io::Result<usize> {
        let mut handled = 0;
        // Per-connection scratch, reused across every request line.
        // analyzer: allow(hot-path-alloc) -- one buffer per connection, reused across requests
        let mut line_buf: Vec<u8> = Vec::new();
        // analyzer: allow(hot-path-alloc) -- one response buffer per connection, reused across requests
        let mut response = String::new();
        loop {
            let read =
                match read_bounded_line(&mut reader, self.config.max_line_bytes, &mut line_buf) {
                    Ok(r) => r,
                    Err(e) if is_timeout(&e) => break,
                    Err(e) => return Err(e),
                };
            response.clear();
            match read {
                None => break,
                Some(LineRead::TooLong) => response.push_str(&self.too_long_reply),
                Some(LineRead::Line) => {
                    let line = String::from_utf8_lossy(&line_buf);
                    let line = line.trim_end_matches('\r');
                    if line.trim().is_empty() {
                        continue;
                    }
                    match self.try_acquire() {
                        None => response.push_str(&self.busy_reply),
                        Some(_inflight) => self.score_line_into(line, &mut response),
                    }
                }
            }
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            handled += 1;
        }
        Ok(handled)
    }

    /// Claims an in-flight slot, or `None` past the bound.
    fn try_acquire(&self) -> Option<InflightGuard<'_>> {
        let mut n = lock_tolerant(&self.inflight);
        if *n >= self.config.max_inflight {
            return None;
        }
        *n += 1;
        Some(InflightGuard { counter: &self.inflight })
    }

    /// Scores one request line against the current snapshot, writing the
    /// response into `out` (cleared by the caller, capacity reused).
    ///
    /// Fault gating is split around the session lock: the decision draw
    /// (serialized, deterministic) happens under a short critical
    /// section, and the dispatch itself runs on a scratch session with
    /// no lock held — `CpuSeq` reads no session state, and holding the
    /// mutex across the dispatch would serialize all scoring behind one
    /// request.
    fn score_line_into(&self, line: &str, out: &mut String) {
        use std::fmt::Write as _;
        let Some(snap) = self.registry.get(&self.model_name) else {
            let _ = write!(out, "ERR no model published under '{}'", self.model_name);
            return;
        };
        let dim = snap.model.input_dim();
        // analyzer: allow(hot-path-alloc) -- parse output is bounded by max_line_bytes, freed per request
        let ds = match libsvm::parse_str("wire", line, dim) {
            Ok(ds) => ds,
            Err(e) => {
                let _ = write!(out, "ERR {e}");
                return;
            }
        };
        if ds.x.rows() != 1 {
            let _ = write!(out, "ERR expected exactly one example per line, got {}", ds.x.rows());
            return;
        }
        let x = Examples::Sparse(&ds.x);
        let mut job = ScoreJob { model: &snap.model, x: &x };
        let drawn = {
            let mut session = lock_tolerant(&self.session);
            session.draw_fault(&ComputeBackend::CpuSeq)
        };
        let dilation = match drawn {
            Ok(d) => d,
            Err(fault) => {
                let _ = write!(out, "ERR {fault}; retry");
                return;
            }
        };
        let mut scratch = BackendSession::new();
        // analyzer: allow(hot-path-alloc) -- scoring allocates the one-row output batch; bounded per admitted request
        let mut d = ComputeBackend::CpuSeq.dispatch(&mut scratch, &mut job);
        apply_dilation(&mut d, dilation);
        match d.out.first() {
            Some(v) => {
                let _ = write!(out, "OK {v}");
            }
            None => out.push_str("ERR empty prediction"),
        }
    }
}

/// One parsed wire response.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// `OK <decision>`.
    Ok(f64),
    /// `ERR BUSY retry_after=<secs>` — back off and retry.
    Busy {
        /// Server-advertised back-off, seconds.
        retry_after: f64,
    },
    /// Any other `ERR <detail>`; `retryable` is set for transient
    /// backend faults (`ERR backend down ...; retry`).
    Err {
        /// The server's error detail.
        detail: String,
        /// Whether the server marked the failure transient.
        retryable: bool,
    },
}

/// A loadgen client: scores lines over a wire connection, with a
/// retry-with-backoff mode that honors `ERR BUSY retry_after=` hints
/// and retries transient backend faults.
pub struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Retries [`WireClient::score_with_retry`] attempts past the first.
    pub max_retries: usize,
    /// Base back-off between fault retries (doubles each attempt);
    /// `ERR BUSY` responses use the server's hint instead.
    pub backoff: Duration,
}

impl WireClient {
    /// Connects to a wire server.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(WireClient { writer, reader, max_retries: 3, backoff: Duration::from_millis(10) })
    }

    /// Sends one LIBSVM request line, returns the parsed response.
    pub fn score(&mut self, line: &str) -> std::io::Result<WireResponse> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        Ok(parse_response(response.trim_end()))
    }

    /// Sends one request, retrying `ERR BUSY` (after the server's
    /// advertised `retry_after`) and transient backend faults (after an
    /// exponential back-off) up to `max_retries` times. Returns the
    /// final response and how many retries were spent.
    pub fn score_with_retry(&mut self, line: &str) -> std::io::Result<(WireResponse, usize)> {
        let mut backoff = self.backoff;
        let mut retries = 0;
        loop {
            let response = self.score(line)?;
            let wait = match &response {
                WireResponse::Busy { retry_after } => {
                    // A hostile server can advertise NaN; clamp passes NaN
                    // through and Duration::from_secs_f64 would panic on it.
                    let hint = if retry_after.is_finite() { *retry_after } else { 0.0 };
                    Some(Duration::from_secs_f64(hint.clamp(0.0, 1.0)))
                }
                WireResponse::Err { retryable: true, .. } => Some(backoff),
                _ => None,
            };
            match wait {
                Some(d) if retries < self.max_retries => {
                    std::thread::sleep(d);
                    backoff = backoff.saturating_mul(2);
                    retries += 1;
                }
                _ => return Ok((response, retries)),
            }
        }
    }
}

/// Parses one response line into a [`WireResponse`].
fn parse_response(line: &str) -> WireResponse {
    if let Some(rest) = line.strip_prefix("OK ") {
        return match rest.trim().parse::<f64>() {
            Ok(v) => WireResponse::Ok(v),
            Err(_) => WireResponse::Err {
                detail: format!("unparseable OK payload: {rest}"),
                retryable: false,
            },
        };
    }
    if let Some(rest) = line.strip_prefix("ERR BUSY retry_after=") {
        let retry_after = rest.trim().parse::<f64>().unwrap_or(0.05);
        return WireResponse::Busy { retry_after };
    }
    let detail = line.strip_prefix("ERR ").unwrap_or(line).to_string();
    let retryable = detail.starts_with("backend down");
    WireResponse::Err { detail, retryable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::model::{ServableModel, TaskDescriptor};
    use std::io::{BufWriter, Read};

    fn registry_with_lr(weights: Vec<f64>) -> ModelRegistry {
        let reg = ModelRegistry::new();
        let dim = weights.len() as u64;
        let ck =
            Checkpoint::new(TaskDescriptor::LogisticRegression { dim }, weights).expect("dims");
        reg.publish("m", ServableModel::from_checkpoint(&ck).expect("valid"), 0, 0.5);
        reg
    }

    #[test]
    fn serve_lines_scores_and_reports_errors_in_order() {
        let reg = registry_with_lr(vec![1.0, 2.0, 3.0]);
        let srv = WireServer::new(&reg, "m");
        let input = "+1 1:1 3:2\n-1 2:0.5\nnot-a-label 1:1\n+1 99:1\n\n+1 1:0\n";
        let mut out = Vec::new();
        let handled = srv
            .serve_lines(BufReader::new(input.as_bytes()), BufWriter::new(&mut out))
            .expect("io");
        assert_eq!(handled, 5, "blank line skipped");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // 1*1 + 3*2 = 7; 2*0.5 = 1.
        assert_eq!(lines.first().copied(), Some("OK 7"));
        assert_eq!(lines.get(1).copied(), Some("OK 1"));
        assert!(lines.get(2).is_some_and(|l| l.starts_with("ERR ")), "bad label is typed");
        assert!(lines.get(3).is_some_and(|l| l.starts_with("ERR ")), "index out of range");
        assert_eq!(lines.get(4).copied(), Some("OK 0"));
    }

    #[test]
    fn unpublished_model_is_an_error_not_a_panic() {
        let reg = ModelRegistry::new();
        let srv = WireServer::new(&reg, "ghost");
        let mut out = Vec::new();
        srv.serve_lines(BufReader::new("+1 1:1\n".as_bytes()), &mut out).expect("io");
        assert!(String::from_utf8(out).expect("utf8").starts_with("ERR "));
    }

    #[test]
    fn oversized_line_is_typed_and_bounded_not_buffered() {
        let reg = registry_with_lr(vec![1.0, 2.0]);
        let cfg = WireConfig { max_line_bytes: 32, ..WireConfig::default() };
        let srv = WireServer::with_config(&reg, "m", cfg);
        // A line far over the cap, then a normal request: the oversized
        // one gets a typed ERR and the connection keeps serving.
        let long = "a".repeat(10_000);
        let input = format!("{long}\n+1 1:2\n");
        let mut out = Vec::new();
        let handled = srv
            .serve_lines(BufReader::new(input.as_bytes()), BufWriter::new(&mut out))
            .expect("io");
        assert_eq!(handled, 2);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.first().copied(), Some("ERR line too long (max 32 bytes)"));
        assert_eq!(lines.get(1).copied(), Some("OK 2"));
    }

    #[test]
    fn zero_inflight_budget_answers_busy_with_retry_hint() {
        let reg = registry_with_lr(vec![1.0]);
        let cfg = WireConfig { max_inflight: 0, retry_after_secs: 0.25, ..WireConfig::default() };
        let srv = WireServer::with_config(&reg, "m", cfg);
        let mut out = Vec::new();
        srv.serve_lines(BufReader::new("+1 1:1\n".as_bytes()), &mut out).expect("io");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.trim_end(), "ERR BUSY retry_after=0.25");
        assert_eq!(parse_response(text.trim_end()), WireResponse::Busy { retry_after: 0.25 });
    }

    #[test]
    fn injected_backend_death_surfaces_as_typed_retryable_err() {
        let reg = registry_with_lr(vec![1.0, 2.0]);
        let srv = WireServer::new(&reg, "m");
        // cpu-seq occupies fault worker slot 0; dead from dispatch 1.
        srv.install_faults(FaultPlan::default().with_seed(3).with_worker_death(0, 1));
        let mut out = Vec::new();
        let handled =
            srv.serve_lines(BufReader::new("+1 1:1\n+1 1:1\n".as_bytes()), &mut out).expect("io");
        assert_eq!(handled, 2);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.first().copied(), Some("OK 1"), "first dispatch is healthy");
        let second = lines.get(1).copied().unwrap_or("");
        assert!(second.starts_with("ERR backend down"), "typed fault, got {second}");
        assert!(second.ends_with("; retry"));
        let parsed = parse_response(second);
        assert!(
            matches!(parsed, WireResponse::Err { retryable: true, .. }),
            "fault is marked transient"
        );
    }

    #[test]
    fn read_timeout_ends_a_silent_connection_cleanly() {
        let reg = registry_with_lr(vec![1.0]);
        let cfg =
            WireConfig { read_timeout: Some(Duration::from_millis(50)), ..WireConfig::default() };
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server =
                s.spawn(|| WireServer::with_config(&reg, "m", cfg).serve_connections(&listener, 1));
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(b"+1 1:3\n").expect("write");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim(), "OK 3");
            // Send nothing more: the server must time out and return Ok
            // instead of pinning the worker forever.
            assert_eq!(server.join().expect("no panic").expect("clean timeout"), 1);
        });
    }

    #[test]
    fn concurrent_workers_serve_past_a_stalled_connection() {
        let reg = registry_with_lr(vec![1.0]);
        let cfg = WireConfig {
            workers: 2,
            read_timeout: Some(Duration::from_millis(500)),
            ..WireConfig::default()
        };
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server =
                s.spawn(|| WireServer::with_config(&reg, "m", cfg).serve_connections(&listener, 2));
            // First client connects and stalls silently.
            let stalled = TcpStream::connect(addr).expect("connect stalled");
            // Second client must still get served while the first stalls.
            let mut client = WireClient::connect(addr).expect("connect live");
            let resp = client.score("+1 1:4").expect("score");
            assert_eq!(resp, WireResponse::Ok(4.0));
            drop(client);
            drop(stalled);
            let handled = server.join().expect("no panic").expect("serve");
            assert_eq!(handled, 1, "one line served; the stalled client timed out");
        });
    }

    #[test]
    fn client_retries_busy_then_gives_up_with_the_last_response() {
        let reg = registry_with_lr(vec![1.0]);
        let cfg = WireConfig { max_inflight: 0, retry_after_secs: 0.001, ..WireConfig::default() };
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server =
                s.spawn(|| WireServer::with_config(&reg, "m", cfg).serve_connections(&listener, 1));
            let mut client = WireClient::connect(addr).expect("connect");
            client.max_retries = 2;
            let (resp, retries) = client.score_with_retry("+1 1:1").expect("score");
            assert_eq!(resp, WireResponse::Busy { retry_after: 0.001 });
            assert_eq!(retries, 2, "both retries spent against a saturated server");
            drop(client);
            let handled = server.join().expect("no panic").expect("serve");
            assert_eq!(handled, 3, "initial attempt plus two retries all answered");
        });
    }

    #[test]
    fn client_retry_rides_out_a_transient_backend_fault() {
        let reg = registry_with_lr(vec![2.0]);
        let srv = WireServer::new(&reg, "m");
        // Dead only for dispatch 0 is not expressible (death is an
        // epoch onset), so invert: straggler first, healthy math — the
        // retry path is exercised by the BUSY test; here we pin that a
        // straggling backend still answers OK through the client.
        srv.install_faults(FaultPlan::default().with_seed(9).with_straggler(0, 8.0));
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server = s.spawn(|| srv.serve_connections(&listener, 1));
            let mut client = WireClient::connect(addr).expect("connect");
            let (resp, retries) = client.score_with_retry("+1 1:3").expect("score");
            assert_eq!(resp, WireResponse::Ok(6.0), "straggler completes, slowly");
            assert_eq!(retries, 0);
            drop(client);
            server.join().expect("no panic").expect("serve");
        });
    }

    #[test]
    fn loopback_tcp_round_trip_with_hot_swap() {
        let reg = registry_with_lr(vec![1.0, 0.0]);
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                WireServer::new(&reg, "m").serve_connections(&listener, 1).expect("serve")
            });
            let mut conn = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();

            conn.write_all(b"+1 1:2\n").expect("write");
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim(), "OK 2");

            // Hot-swap the model mid-connection: the next request sees it.
            let ck =
                Checkpoint::new(TaskDescriptor::LogisticRegression { dim: 2 }, vec![10.0, 0.0])
                    .expect("dims");
            reg.publish("m", ServableModel::from_checkpoint(&ck).expect("valid"), 1, 0.1);

            line.clear();
            conn.write_all(b"+1 1:2\n").expect("write");
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim(), "OK 20", "hot-swapped weights serve immediately");

            // The reader holds a cloned FD, so dropping `conn` alone
            // would not deliver EOF to the server — shut down the socket's
            // write half explicitly.
            conn.shutdown(std::net::Shutdown::Write).expect("shutdown");
            let mut rest = String::new();
            reader.read_to_string(&mut rest).ok();
            assert_eq!(server.join().expect("no panic"), 2);
        });
    }
}
