//! Line-framing primitives shared by every TCP front-end.
//!
//! Extracted from the scoring wire server so the distributed
//! parameter-server transport (`sgd-dist`) can speak the same bounded
//! newline-delimited protocol without re-implementing the overflow and
//! poison-tolerance discipline: one `\n`-terminated request per line, a
//! hard byte bound enforced *while reading* (an oversized line is drained,
//! never buffered), and poison-tolerant locks so one panicking handler
//! cannot wedge shared state for every later connection.

use std::io::BufRead;
use std::sync::{Mutex, MutexGuard};

/// One bounded-buffer line read.
pub enum LineRead {
    /// A complete line (terminator stripped) within the byte bound; its
    /// bytes are in the caller's buffer.
    Line,
    /// The line exceeded the bound; its bytes were drained, not kept.
    TooLong,
}

/// Reads one `\n`-terminated line through the reader's own buffer into
/// `buf` (cleared first, capacity reused across calls), never holding
/// more than `max_bytes` of it: past the bound the rest of the line is
/// consumed and discarded. `Ok(None)` is EOF.
pub fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<Option<LineRead>> {
    buf.clear();
    let mut overflow = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflow {
            if buf.len().saturating_add(take) > max_bytes {
                overflow = true;
                buf.clear();
            } else {
                // analyzer: allow(hot-path-alloc) -- growth bounded by max_line_bytes; capacity reused across requests
                buf.extend_from_slice(chunk.get(..take).unwrap_or(&[]));
            }
        }
        let eat = take + usize::from(newline.is_some());
        reader.consume(eat);
        if newline.is_some() {
            break;
        }
    }
    if overflow {
        Ok(Some(LineRead::TooLong))
    } else {
        Ok(Some(LineRead::Line))
    }
}

/// `true` for the error kinds a read timeout surfaces as.
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Poison-tolerant mutex lock: a panicking handler thread must not wedge
/// shared state for every later request (the registry's discipline,
/// applied to the front-ends).
pub fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(input: &[u8], max: usize) -> Vec<(Option<bool>, Vec<u8>)> {
        let mut reader = BufReader::with_capacity(4, input);
        let mut buf = Vec::new();
        let mut out = Vec::new();
        loop {
            match read_bounded_line(&mut reader, max, &mut buf).expect("io") {
                None => {
                    out.push((None, Vec::new()));
                    return out;
                }
                Some(LineRead::Line) => out.push((Some(true), buf.clone())),
                Some(LineRead::TooLong) => out.push((Some(false), Vec::new())),
            }
        }
    }

    #[test]
    fn lines_are_split_and_bounded() {
        let got = read_all(b"ab\ncdef\nx", 3);
        assert_eq!(got[0], (Some(true), b"ab".to_vec()));
        assert_eq!(got[1], (Some(false), Vec::new()), "4 bytes over a 3-byte bound");
        assert_eq!(got[2], (Some(true), b"x".to_vec()), "unterminated tail still read");
        assert_eq!(got[3].0, None);
    }

    #[test]
    fn oversized_line_is_drained_not_buffered() {
        // The line spans many 4-byte reader chunks; after the overflow the
        // next line must come through intact.
        let long = vec![b'z'; 64];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = read_all(&input, 8);
        assert_eq!(got[0].0, Some(false));
        assert_eq!(got[1], (Some(true), b"ok".to_vec()));
    }

    #[test]
    fn lock_tolerant_recovers_from_poison() {
        let m = Mutex::new(5);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().expect("fresh");
            panic!("poison it");
        }));
        assert_eq!(*lock_tolerant(&m), 5);
    }
}
