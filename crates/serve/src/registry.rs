//! Named models behind atomic hot-swap publication.
//!
//! The registry maps names to [`Arc<PublishedModel>`] snapshots. A read
//! clones the `Arc` (cheap, no model copy) and then serves from an
//! immutable snapshot for as long as it likes; a publish swaps the map
//! entry to a fresh `Arc`, never mutating the one in-flight readers
//! hold. That is the HOGWILD! reader discipline applied to publication:
//! writers never block readers, readers never see a half-written model.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use sgd_core::{EpochMetrics, EpochObserver};
use sgd_linalg::Scalar;

use crate::checkpoint::Checkpoint;
use crate::model::{ServableModel, TaskDescriptor};

/// One published snapshot: an immutable model plus its provenance.
#[derive(Clone, Debug)]
pub struct PublishedModel {
    /// The servable model.
    pub model: ServableModel,
    /// Epoch of the training run that produced it (0 for out-of-band
    /// publications such as a checkpoint loaded from disk).
    pub epoch: usize,
    /// Training loss at publication time (`NAN` when unknown).
    pub loss: f64,
    /// Monotone registry-wide revision: later publications compare
    /// greater, across all names.
    pub revision: u64,
}

/// The registry's write-locked state. The revision counter lives under
/// the same lock as the map so a revision is assigned and its snapshot
/// inserted in one critical section — readers can never resolve revision
/// `n+1` before `n` exists.
#[derive(Debug, Default)]
struct RegistryState {
    models: BTreeMap<String, Arc<PublishedModel>>,
    next_revision: u64,
}

/// A registry of named models with atomic hot-swap publication.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    state: RwLock<RegistryState>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Publishes `model` under `name`, replacing any previous snapshot
    /// atomically. Readers that already resolved the old `Arc` keep
    /// serving the old snapshot. Returns the assigned revision.
    pub fn publish(&self, name: &str, model: ServableModel, epoch: usize, loss: f64) -> u64 {
        let mut st = write_lock(&self.state);
        st.next_revision += 1;
        let revision = st.next_revision;
        let snap = Arc::new(PublishedModel { model, epoch, loss, revision });
        st.models.insert(name.to_string(), snap);
        revision
    }

    /// Resolves the current snapshot for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<PublishedModel>> {
        read_lock(&self.state).models.get(name).cloned()
    }

    /// Removes `name`; in-flight readers keep their snapshot.
    pub fn remove(&self, name: &str) -> Option<Arc<PublishedModel>> {
        write_lock(&self.state).models.remove(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        read_lock(&self.state).models.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        read_lock(&self.state).models.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read-locks tolerating poisoning: a panicking publisher must not take
/// the serving path down with it (same policy as `sgd_linalg::pool`).
fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The supervisor hook: an [`EpochObserver`] that turns every
/// best-so-far improvement of a training run into a registry
/// publication, so serving hot-swaps to the freshest model at epoch
/// boundaries while the run continues.
///
/// Pass it to [`sgd_core::Engine::run_observed`]; the engine calls
/// [`EpochObserver::on_best_model`] whenever an epoch improves on the
/// best finite loss so far.
pub struct CheckpointPublisher<'a> {
    registry: &'a ModelRegistry,
    name: String,
    descriptor: TaskDescriptor,
    directory: Option<std::path::PathBuf>,
    /// Publications performed so far.
    pub published: usize,
    /// Last error from a descriptor/weights mismatch or checkpoint
    /// write, kept instead of panicking inside the training loop.
    pub last_error: Option<String>,
}

impl<'a> CheckpointPublisher<'a> {
    /// A publisher that publishes improvements of a run under `name`.
    /// `descriptor` must describe the task being trained.
    pub fn new(registry: &'a ModelRegistry, name: &str, descriptor: TaskDescriptor) -> Self {
        CheckpointPublisher {
            registry,
            name: name.to_string(),
            descriptor,
            directory: None,
            published: 0,
            last_error: None,
        }
    }

    /// Additionally persists each published snapshot to
    /// `<dir>/<name>.ckpt` (the durable half of publication).
    pub fn with_directory(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.directory = Some(dir.into());
        self
    }
}

impl EpochObserver for CheckpointPublisher<'_> {
    fn on_epoch(&mut self, _m: &EpochMetrics) {}

    fn on_best_model(&mut self, epoch: usize, loss: f64, model: &[Scalar]) {
        let ck = match Checkpoint::new(self.descriptor.clone(), model.to_vec()) {
            Ok(ck) => ck,
            Err(e) => {
                self.last_error = Some(e.to_string());
                return;
            }
        };
        let servable = match ServableModel::from_checkpoint(&ck) {
            Ok(m) => m,
            Err(e) => {
                self.last_error = Some(e.to_string());
                return;
            }
        };
        if let Some(dir) = &self.directory {
            let path = dir.join(format!("{}.ckpt", self.name));
            if let Err(e) = ck.save(&path) {
                self.last_error = Some(e.to_string());
            }
        }
        self.registry.publish(&self.name, servable, epoch, loss);
        self.published += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model(bias: Scalar) -> ServableModel {
        let ck = Checkpoint::new(
            TaskDescriptor::LogisticRegression { dim: 3 },
            vec![bias, 2.0 * bias, -bias],
        )
        .expect("dims");
        ServableModel::from_checkpoint(&ck).expect("valid")
    }

    #[test]
    fn publish_and_get_round_trip() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.get("lr").is_none());
        let r1 = reg.publish("lr", toy_model(1.0), 3, 0.5);
        let snap = reg.get("lr").expect("published");
        assert_eq!(snap.revision, r1);
        assert_eq!(snap.epoch, 3);
        assert_eq!(reg.names(), vec!["lr".to_string()]);
    }

    #[test]
    fn hot_swap_leaves_old_readers_untouched() {
        let reg = ModelRegistry::new();
        reg.publish("m", toy_model(1.0), 1, 0.9);
        let old = reg.get("m").expect("first");
        let r2 = reg.publish("m", toy_model(7.0), 2, 0.4);
        // The reader's snapshot is unchanged; a fresh resolve sees v2.
        assert_eq!(old.model.weights(), &[1.0, 2.0, -1.0]);
        let new = reg.get("m").expect("second");
        assert_eq!(new.revision, r2);
        assert!(new.revision > old.revision);
        assert_eq!(new.model.weights(), &[7.0, 14.0, -7.0]);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn revisions_are_monotone_across_names() {
        let reg = ModelRegistry::new();
        let a = reg.publish("a", toy_model(1.0), 1, 0.9);
        let b = reg.publish("b", toy_model(2.0), 1, 0.8);
        let c = reg.publish("a", toy_model(3.0), 2, 0.7);
        assert!(a < b && b < c);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        reg.remove("a");
        assert_eq!(reg.names(), vec!["b".to_string()]);
    }

    #[test]
    fn publisher_publishes_improvements_only() {
        let reg = ModelRegistry::new();
        let mut p = CheckpointPublisher::new(&reg, "run", TaskDescriptor::LinearSvm { dim: 2 });
        p.on_best_model(1, 0.8, &[0.1, 0.2]);
        p.on_best_model(4, 0.3, &[0.5, 0.6]);
        assert_eq!(p.published, 2);
        assert!(p.last_error.is_none());
        let snap = reg.get("run").expect("published");
        assert_eq!(snap.epoch, 4);
        assert_eq!(snap.model.weights(), &[0.5, 0.6]);
    }

    #[test]
    fn publisher_records_mismatch_instead_of_panicking() {
        let reg = ModelRegistry::new();
        let mut p = CheckpointPublisher::new(&reg, "run", TaskDescriptor::LinearSvm { dim: 5 });
        p.on_best_model(1, 0.8, &[0.1, 0.2]); // wrong width
        assert_eq!(p.published, 0);
        assert!(p.last_error.is_some());
        assert!(reg.get("run").is_none());
    }

    #[test]
    fn publisher_persists_to_directory() {
        let dir = std::env::temp_dir().join("sgd-serve-registry-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let reg = ModelRegistry::new();
        let mut p = CheckpointPublisher::new(&reg, "durable", TaskDescriptor::LinearSvm { dim: 2 })
            .with_directory(&dir);
        p.on_best_model(2, 0.5, &[1.5, -2.5]);
        let path = dir.join("durable.ckpt");
        let ck = Checkpoint::load(&path).expect("written checkpoint loads");
        assert_eq!(ck.weights, vec![1.5, -2.5]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hot_swap_publication_proceeds_while_the_server_sheds() {
        use crate::admission::{
            run_admitted, AdmissionPolicy, ClosedClients, ComputeService, OfferedRequest,
        };
        use crate::batcher::{BatchPolicy, ServeBackend, ServeTiming, Server};
        use crate::loadgen::RequestPool;
        use sgd_linalg::Matrix;

        let reg = ModelRegistry::new();
        reg.publish("m", toy_model(1.0), 0, 1.0);
        let snap = reg.get("m").expect("published");
        let (counts, final_rev) = std::thread::scope(|s| {
            // A publisher hot-swapping revisions as fast as it can...
            let publisher = s.spawn(|| {
                let mut last = 0;
                for i in 0..50 {
                    last = reg.publish("m", toy_model(i as Scalar + 2.0), i, 0.5);
                }
                last
            });
            // ...while this thread serves an overload burst from its
            // resolved snapshot, shedding most of it. Neither side
            // blocks the other: the reader owns an immutable Arc.
            let pool = RequestPool::dense(Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]));
            let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
            let mut svc = ComputeService::new(&mut srv, &snap.model, &pool);
            let open: Vec<OfferedRequest> =
                (0..64).map(|i| OfferedRequest { arrival: 0.0, priority: 0, row: i }).collect();
            let out = run_admitted(
                &mut svc,
                &BatchPolicy::unbatched(),
                &AdmissionPolicy::new(4, usize::MAX, f64::INFINITY, 1),
                &open,
                &ClosedClients::none(),
            );
            (out.counts, publisher.join().expect("publisher lives"))
        });
        assert_eq!(counts.offered(), 64, "every request resolved during the swap storm");
        assert!(counts.completed > 0 && counts.shed_admission > 0);
        // The serving snapshot never moved; the registry did.
        assert_eq!(snap.model.weights(), &[1.0, 2.0, -1.0]);
        let fresh = reg.get("m").expect("still published");
        assert_eq!(fresh.revision, final_rev);
        assert_eq!(fresh.model.weights(), &[51.0, 102.0, -51.0]);
    }

    #[test]
    fn poisoned_lock_from_a_panicking_scorer_does_not_take_serving_down() {
        let reg = ModelRegistry::new();
        reg.publish("m", toy_model(1.0), 0, 1.0);
        // A scoring thread panics while holding the registry's write
        // lock (the worst case: mid-publish), poisoning it.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = reg.state.write().expect("not yet poisoned");
            panic!("scoring thread dies mid-request");
        }));
        assert!(died.is_err(), "the panic fired");
        assert!(reg.state.is_poisoned(), "the lock really is poisoned");
        // Reads and publishes keep working through the poison.
        assert_eq!(reg.get("m").expect("read survives").model.weights(), &[1.0, 2.0, -1.0]);
        let r2 = reg.publish("m", toy_model(3.0), 1, 0.2);
        assert_eq!(reg.get("m").expect("publish survives").revision, r2);
        assert_eq!(reg.names(), vec!["m".to_string()]);
    }

    #[test]
    fn concurrent_reads_and_publishes_stay_consistent() {
        let reg = ModelRegistry::new();
        reg.publish("m", toy_model(1.0), 0, 1.0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..200 {
                    reg.publish("m", toy_model(i as Scalar + 2.0), i, 1.0 / (i + 1) as f64);
                }
            });
            for _ in 0..4 {
                s.spawn(|| {
                    let mut last = 0;
                    for _ in 0..500 {
                        let snap = reg.get("m").expect("always present");
                        // Snapshots are internally consistent and
                        // revisions never run backwards for a reader.
                        let w = snap.model.weights();
                        assert_eq!(w.len(), 3);
                        assert_eq!(w.get(1).copied(), w.first().map(|v| 2.0 * v));
                        assert!(snap.revision >= last);
                        last = snap.revision;
                    }
                });
            }
        });
        assert_eq!(reg.get("m").expect("final").model.weights(), &[201.0, 402.0, -201.0]);
    }
}
