//! `sgd-serve`: the inference-side mirror of the training engine.
//!
//! Training in this repo ends with a [`sgd_core::RunReport`] carrying a
//! `best_model`; this crate is everything after that moment, in four
//! pieces that mirror the paper's hardware-efficiency axes at serving
//! time:
//!
//! - [`checkpoint`]: a versioned, CRC-checked binary format that
//!   round-trips `f64` weights bit-exactly and turns every corrupt,
//!   truncated, or mismatched file into a typed [`CheckpointError`] —
//!   parsing untrusted bytes never panics.
//! - [`registry`]: named models behind atomic `Arc` hot-swap, plus an
//!   [`EpochObserver`](sgd_core::EpochObserver) hook so a live training
//!   run publishes its best-so-far snapshot at epoch boundaries while
//!   requests keep scoring against the previous one (the lock-free
//!   reader discipline of HOGWILD!, applied to publication).
//! - [`batcher`]: a request micro-batcher — admission queue, max-batch /
//!   max-wait policy, batched dispatch through the same gemv/spmv
//!   kernels training uses, on cpu-seq, cpu-par (persistent pool), or
//!   the simulated GPU. Dense BLAS batches amortize dispatch overhead
//!   exactly as the paper's synchronous SGD amortizes kernel launches.
//! - [`admission`]: overload hardening for the batcher — bounded
//!   per-tier queues, backpressure, deadlines — where every offered
//!   request deterministically resolves to a typed [`RequestOutcome`]
//!   (completed, shed, or rejected; never a silent drop).
//! - [`loadgen`]: deterministic open- and closed-loop load generation
//!   with p50/p95/p99/p999 + throughput/goodput accounting, feeding the
//!   `serve` and `soak` benches.
//! - [`wire`]: an optional `std::net` loopback TCP front-end speaking
//!   LIBSVM-formatted lines through `sgd-datagen`'s typed parser, with
//!   bounded line buffers, read timeouts, an in-flight bound answering
//!   `ERR BUSY retry_after=`, and typed backend-fault surfacing.

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod checkpoint;
pub mod framing;
pub mod loadgen;
pub mod model;
pub mod registry;
pub mod stats;
pub mod wire;

pub use admission::{
    run_admitted, AdmissionPolicy, BatchService, ClosedClients, ComputeService, ModeledService,
    OfferedRequest, OutcomeCounts, RequestOutcome,
};
pub use batcher::{
    predict_workload, run_closed_loop, run_open_loop, BatchPolicy, ServeBackend, ServeOutcome,
    ServeTiming, Server,
};
pub use checkpoint::{Checkpoint, CheckpointError, FORMAT_VERSION, MAGIC};
pub use loadgen::{offered_requests, open_loop_arrivals, AssembledBatch, RequestPool};
pub use model::{ServableModel, TaskDescriptor};
pub use registry::{CheckpointPublisher, ModelRegistry, PublishedModel};
pub use stats::LatencySummary;
pub use wire::{WireClient, WireConfig, WireServer};
