//! Admission control, priority shedding, and deadline enforcement for
//! the batcher: the serving layer's graceful-degradation contract.
//!
//! The legacy open/closed loops in [`crate::batcher`] queue without
//! bound: past saturation both the queue and the latency tail diverge.
//! The async-SGD literature this repo reproduces is fundamentally about
//! *bounded* degradation under contention — stale or dropped work is
//! accounted for by design, never silently accumulated — and the serving
//! layer obeys the same discipline here. [`run_admitted`] replays the
//! batcher's deterministic discrete-event simulation with an
//! [`AdmissionPolicy`] in front of the queue, so every offered request
//! resolves to exactly one typed [`RequestOutcome`]:
//!
//! * [`RequestOutcome::Completed`] — admitted, served, latency recorded;
//! * [`RequestOutcome::RejectedBackpressure`] — the in-flight bound
//!   (queued + currently being served) was hit at arrival;
//! * [`RequestOutcome::ShedAtAdmission`] — the queue was over the
//!   request's priority tier's share at arrival (lower tiers shed
//!   earlier as depth grows);
//! * [`RequestOutcome::ShedDeadlineExceeded`] — admitted, but its
//!   deadline had expired by the time its batch started; it is removed
//!   without occupying a batch slot, which is what keeps the admitted
//!   tail bounded.
//!
//! Conservation is structural — `completed + shed + rejected == offered`
//! ([`OutcomeCounts::offered`]) — and the soak bench asserts it; there
//! is no silent-drop path. Under [`AdmissionPolicy::unbounded`] the
//! runner reproduces [`crate::batcher::run_open_loop`] bit for bit (a
//! pinned test below): the hardened path and the unhardened baseline are
//! the *same* simulation, differing only in policy. Same seed, same
//! offered load ⇒ bit-identical shed decisions, latencies, and
//! summaries.

use std::collections::VecDeque;

use sgd_core::{ComputeBackend, CostModel, Workload};
use sgd_linalg::Scalar;

use crate::batcher::{predict_workload, BatchPolicy, ServeOutcome, Server};
use crate::loadgen::RequestPool;
use crate::model::ServableModel;
use crate::stats::LatencySummary;

/// How one offered request resolved. Every request offered to
/// [`run_admitted`] maps to exactly one of these — there is no silent
/// drop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RequestOutcome {
    /// Served; `latency` is completion minus arrival, seconds.
    Completed {
        /// Completion minus arrival, seconds.
        latency: f64,
    },
    /// Refused at arrival: the request's priority tier was over its
    /// queue share.
    ShedAtAdmission,
    /// Admitted, but its deadline expired before its batch started.
    ShedDeadlineExceeded,
    /// Refused at arrival: the in-flight bound (queued + in service)
    /// was hit.
    RejectedBackpressure,
}

impl RequestOutcome {
    /// The request completed and has a latency sample.
    pub fn is_completed(&self) -> bool {
        matches!(self, RequestOutcome::Completed { .. })
    }
}

/// Tally of how a run's offered requests resolved — the conservation
/// ledger (`offered == completed + shed_admission + shed_deadline +
/// rejected`, always).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed at admission (tier over its queue share).
    pub shed_admission: usize,
    /// Admitted requests shed because their deadline expired before
    /// batch start.
    pub shed_deadline: usize,
    /// Requests rejected by the in-flight backpressure bound.
    pub rejected: usize,
}

impl OutcomeCounts {
    /// Every request offered to the run.
    pub fn offered(&self) -> usize {
        self.completed + self.shed_admission + self.shed_deadline + self.rejected
    }

    /// Requests that resolved without completing.
    pub fn shed_total(&self) -> usize {
        self.shed_admission + self.shed_deadline + self.rejected
    }

    /// A ledger for a legacy (unhardened) run: everything completed.
    pub fn all_completed(n: usize) -> Self {
        OutcomeCounts { completed: n, ..OutcomeCounts::default() }
    }

    fn record(&mut self, o: RequestOutcome) {
        match o {
            RequestOutcome::Completed { .. } => self.completed += 1,
            RequestOutcome::ShedAtAdmission => self.shed_admission += 1,
            RequestOutcome::ShedDeadlineExceeded => self.shed_deadline += 1,
            RequestOutcome::RejectedBackpressure => self.rejected += 1,
        }
    }
}

/// What the server will accept before it starts saying no.
///
/// `max_queue` bounds the admission queue; `max_inflight` bounds queued
/// plus in-service requests (the backpressure gate, checked first);
/// `deadline` bounds how stale an admitted request may be when its batch
/// starts; `tiers` grades `max_queue` across priorities so lower
/// priorities shed earlier as the queue fills (see
/// [`AdmissionPolicy::tier_cap`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum queued requests (tier 0's full share).
    pub max_queue: usize,
    /// Maximum queued + in-service requests before `RejectedBackpressure`.
    pub max_inflight: usize,
    /// Seconds an admitted request may wait before its batch starts;
    /// expired requests are `ShedDeadlineExceeded` at assembly.
    pub deadline: f64,
    /// Priority tiers (>= 1). Tier 0 is highest and keeps the full
    /// `max_queue`; each lower tier's share shrinks linearly.
    pub tiers: usize,
}

impl AdmissionPolicy {
    /// A policy with the given bounds (`tiers` is clamped to >= 1,
    /// `deadline` to >= 0).
    pub fn new(max_queue: usize, max_inflight: usize, deadline: f64, tiers: usize) -> Self {
        AdmissionPolicy {
            max_queue: max_queue.max(1),
            max_inflight: max_inflight.max(1),
            deadline: deadline.max(0.0),
            tiers: tiers.max(1),
        }
    }

    /// The legacy no-op policy: nothing is ever shed or rejected.
    /// [`run_admitted`] under this policy is bit-identical to the
    /// unhardened loops.
    pub fn unbounded() -> Self {
        AdmissionPolicy {
            max_queue: usize::MAX,
            max_inflight: usize::MAX,
            deadline: f64::INFINITY,
            tiers: 1,
        }
    }

    /// Queue depth at which requests of `priority` stop being admitted:
    /// `max_queue * (tiers - p) / tiers` for clamped priority `p`. Tier
    /// 0 keeps the whole queue; with 4 tiers, tier 3 is shed once the
    /// queue is a quarter full — graduated shedding, cheapest work
    /// first.
    pub fn tier_cap(&self, priority: usize) -> usize {
        let tiers = self.tiers.max(1) as u128;
        let p = priority.min(self.tiers.max(1) - 1) as u128;
        ((self.max_queue as u128 * (tiers - p)) / tiers) as usize
    }
}

/// One request offered by the open-loop side of a mixed scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OfferedRequest {
    /// Arrival timestamp, seconds.
    pub arrival: f64,
    /// Priority tier (0 = highest).
    pub priority: usize,
    /// Request-pool row this request scores (wraps modulo pool size).
    pub row: usize,
}

/// The closed-loop side of a mixed scenario: `clients` concurrent
/// clients each issuing `per_client` requests, re-issuing `think`
/// seconds after each *resolution* (completed or shed — a shed response
/// still answers the client, so the client keeps its cadence).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClosedClients {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each client issues over the run.
    pub per_client: usize,
    /// Seconds between a resolution and the client's next issue.
    pub think: f64,
    /// Priority tier of every closed-loop request.
    pub priority: usize,
}

impl ClosedClients {
    /// No closed-loop traffic.
    pub fn none() -> Self {
        ClosedClients { clients: 0, per_client: 0, think: 0.0, priority: 0 }
    }
}

/// How [`run_admitted`] scores a batch: the real compute path
/// ([`ComputeService`]) or the analytic cost model alone
/// ([`ModeledService`], what makes a 10^6-request soak feasible).
pub trait BatchService {
    /// Scores one batch of pool rows: per-request decision values (may
    /// be empty for modeled services — decisions then record as NaN),
    /// service seconds, and the backend label that served it.
    fn serve(&mut self, rows: &[usize]) -> (Vec<Scalar>, f64, String);
}

/// The real serving path: assembles each batch from the pool and scores
/// it through a [`Server`] (fixed backend or router), so decisions are
/// actually computed and bit-comparable to direct predicts.
pub struct ComputeService<'a> {
    server: &'a mut Server,
    model: &'a ServableModel,
    pool: &'a RequestPool,
}

impl<'a> ComputeService<'a> {
    /// A service scoring `pool` rows against `model` on `server`.
    pub fn new(server: &'a mut Server, model: &'a ServableModel, pool: &'a RequestPool) -> Self {
        ComputeService { server, model, pool }
    }
}

impl BatchService for ComputeService<'_> {
    fn serve(&mut self, rows: &[usize]) -> (Vec<Scalar>, f64, String) {
        let batch = self.pool.assemble(rows);
        let (out, secs) = self.server.predict(self.model, &batch.examples());
        (out, secs, self.server.backend().label())
    }
}

/// A service that prices batches through the shared [`CostModel`]
/// without running the math: O(1) per batch, which is what lets the
/// soak bench push ~10^6 modeled requests through every backend and the
/// router. Batch cost is affine in batch size (`fixed + n * marginal`),
/// calibrated from [`predict_workload`] at sizes 1 and 2, so its
/// estimates agree with the modeled compute path for affine workloads
/// (dense linear models exactly; sparse models at the calibration rows'
/// density).
pub struct ModeledService {
    cost: CostModel,
    candidates: Vec<ComputeBackend>,
    fixed: Workload,
    marginal: Workload,
}

impl ModeledService {
    /// A modeled service for `model` over `pool` rows. One candidate =
    /// a fixed backend; several = the router (fastest wins per batch).
    pub fn for_predict(
        candidates: Vec<ComputeBackend>,
        model: &ServableModel,
        pool: &RequestPool,
    ) -> Self {
        let w1 = predict_workload(model, &pool.assemble(&[0]).examples());
        let w2 = predict_workload(model, &pool.assemble(&[0, 1]).examples());
        let marginal = Workload {
            flops: (w2.flops - w1.flops).max(0.0),
            bytes: (w2.bytes - w1.bytes).max(0.0),
            kernels: (w2.kernels - w1.kernels).max(0.0),
        };
        let fixed = Workload {
            flops: (w1.flops - marginal.flops).max(0.0),
            bytes: (w1.bytes - marginal.bytes).max(0.0),
            kernels: (w1.kernels - marginal.kernels).max(0.0),
        };
        // Tier-aware pricing; the ambient default (Scalar) keeps this
        // bit-identical to `CostModel::default()`.
        ModeledService {
            cost: CostModel::for_tier(sgd_linalg::pool::current_tier()),
            candidates,
            fixed,
            marginal,
        }
    }

    /// The workload this service charges for an `n`-request batch.
    pub fn batch_workload(&self, n: usize) -> Workload {
        let n = n as f64;
        Workload {
            flops: self.fixed.flops + n * self.marginal.flops,
            bytes: self.fixed.bytes + n * self.marginal.bytes,
            kernels: (self.fixed.kernels + n * self.marginal.kernels).max(1.0),
        }
    }

    /// Modeled service seconds for an `n`-request batch on the backend
    /// the route would pick.
    pub fn estimate_secs(&self, n: usize) -> f64 {
        let w = self.batch_workload(n);
        self.cost.estimate_secs(&self.pick(&w), &w)
    }

    fn pick(&self, w: &Workload) -> ComputeBackend {
        if self.candidates.len() == 1 {
            self.candidates.first().copied().unwrap_or(ComputeBackend::CpuSeq)
        } else {
            self.cost.fastest(self.candidates.iter(), w).unwrap_or(ComputeBackend::CpuSeq)
        }
    }
}

impl BatchService for ModeledService {
    fn serve(&mut self, rows: &[usize]) -> (Vec<Scalar>, f64, String) {
        let w = self.batch_workload(rows.len());
        let backend = self.pick(&w);
        (Vec::new(), self.cost.estimate_secs(&backend, &w), backend.label())
    }
}

/// One queued (admitted, not yet dispatched) request.
#[derive(Clone, Copy, Debug)]
struct QueuedRequest {
    id: usize,
    arrival: f64,
    row: usize,
    client: Option<usize>,
}

/// Per-tier FIFO queues. Each queue is in arrival order (admissions
/// happen in time order); batch assembly drains tier 0 first. All queue
/// growth funnels through [`TierQueues::admit`] — the one
/// admission-checked enqueue the analyzer's queue-discipline pass
/// allows.
struct TierQueues {
    tiers: Vec<VecDeque<QueuedRequest>>,
    len: usize,
}

impl TierQueues {
    fn new(tiers: usize) -> Self {
        TierQueues { tiers: (0..tiers.max(1)).map(|_| VecDeque::new()).collect(), len: 0 }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Enqueues an already-admission-checked request. The sole growth
    /// site of the queue structures: callers must have applied the
    /// backpressure and tier-cap checks first.
    // analyzer: root(hot-path-alloc) -- admission enqueue runs per offered request; it must not allocate beyond the queue's own growth
    fn admit(&mut self, tier: usize, req: QueuedRequest) {
        if let Some(q) = self.tiers.get_mut(tier) {
            // analyzer: allow(queue-discipline) -- the one admission-checked enqueue
            q.push_back(req);
            self.len += 1;
        }
    }

    /// Arrival time of the oldest queued request.
    fn oldest_arrival(&self) -> Option<f64> {
        self.tiers.iter().filter_map(|q| q.front().map(|r| r.arrival)).min_by(|a, b| a.total_cmp(b))
    }

    /// Removes the next request in priority-then-FIFO order.
    fn pop_next(&mut self) -> Option<QueuedRequest> {
        for q in self.tiers.iter_mut() {
            if let Some(r) = q.pop_front() {
                self.len -= 1;
                return Some(r);
            }
        }
        None
    }
}

/// Where the next arrival comes from.
#[derive(Clone, Copy, Debug)]
enum Source {
    /// `open[pos]` (input order).
    Open { pos: usize },
    /// Closed client `client`'s next issue.
    Closed { client: usize },
}

/// The next arrival across the open list and the closed clients.
/// Simultaneous arrivals order deterministically: open before closed,
/// closed clients by index.
fn next_arrival(
    open: &[OfferedRequest],
    order: &[usize],
    open_idx: usize,
    next_issue: &[f64],
) -> Option<(f64, Source)> {
    let open_next = order
        .get(open_idx)
        .and_then(|&i| open.get(i).map(|r| (r.arrival, Source::Open { pos: i })));
    let mut closed_next: Option<(f64, usize)> = None;
    for (c, &t) in next_issue.iter().enumerate() {
        if t.is_finite() && closed_next.is_none_or(|(bt, _)| t < bt) {
            closed_next = Some((t, c));
        }
    }
    match (open_next, closed_next) {
        (Some((to, s)), Some((tc, c))) => {
            if to <= tc {
                Some((to, s))
            } else {
                Some((tc, Source::Closed { client: c }))
            }
        }
        (Some(o), None) => Some(o),
        (None, Some((tc, c))) => Some((tc, Source::Closed { client: c })),
        (None, None) => None,
    }
}

/// Records `id`'s resolution exactly once.
// analyzer: root(hot-path-alloc) -- shed/reject resolution runs once per offered request, including under overload; it must stay allocation-free
fn resolve(
    outcomes: &mut [Option<RequestOutcome>],
    counts: &mut OutcomeCounts,
    id: usize,
    o: RequestOutcome,
) {
    if let Some(slot) = outcomes.get_mut(id) {
        if slot.is_none() {
            *slot = Some(o);
            counts.record(o);
        }
    }
}

/// Schedules closed client `client`'s next issue at `at` (or parks it
/// if the client has no requests left).
// analyzer: root(hot-path-alloc) -- reissue scheduling runs on every shed and completion; it must stay allocation-free
fn schedule_reissue(next_issue: &mut [f64], remaining: &[usize], client: usize, at: f64) {
    if let (Some(slot), Some(&rem)) = (next_issue.get_mut(client), remaining.get(client)) {
        *slot = if rem > 0 { at } else { f64::INFINITY };
    }
}

/// Runs a mixed open+closed workload through the admission-controlled
/// batcher as one deterministic discrete-event simulation.
///
/// Offered traffic is `open` (arbitrary order; sorted internally by
/// arrival, stable by index) plus `closed.clients * closed.per_client`
/// closed-loop requests. Request ids — the index into
/// [`ServeOutcome::outcomes`] — are open requests first (input order),
/// then closed requests in chronological issue order. The batch trigger
/// is the batcher's classic rule (`max_batch` pending, or the oldest
/// has waited `max_wait`); admission checks happen at arrival time
/// (backpressure first, then the tier cap), deadline checks at batch
/// assembly. [`ServeOutcome::latencies`] / `decisions` carry completed
/// requests only, in completion order.
pub fn run_admitted<S: BatchService>(
    service: &mut S,
    batch: &BatchPolicy,
    admission: &AdmissionPolicy,
    open: &[OfferedRequest],
    closed: &ClosedClients,
) -> ServeOutcome {
    let bmax = batch.max_batch.max(1);
    let tiers_n = admission.tiers.max(1);
    let closed_total = closed.clients * closed.per_client;
    let offered = open.len() + closed_total;

    let mut order: Vec<usize> = (0..open.len()).collect();
    order.sort_by(|&a, &b| {
        let (ta, tb) = (open.get(a).map(|r| r.arrival), open.get(b).map(|r| r.arrival));
        match (ta, tb) {
            (Some(x), Some(y)) => x.total_cmp(&y).then(a.cmp(&b)),
            _ => a.cmp(&b),
        }
    });

    let mut queues = TierQueues::new(tiers_n);
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; offered];
    let mut counts = OutcomeCounts::default();
    let mut latencies: Vec<f64> = Vec::new();
    let mut decisions: Vec<Scalar> = Vec::new();
    let mut batches = 0usize;
    let mut max_batch_seen = 0usize;
    let mut batch_backends: Vec<String> = Vec::new();
    let mut service_secs = 0.0f64;
    let mut t_free = 0.0f64;
    let mut t_full = f64::INFINITY;
    let mut last_finish = 0.0f64;
    let mut in_service_count = 0usize;

    let issue0 = if closed.per_client > 0 { 0.0 } else { f64::INFINITY };
    let mut next_issue = vec![issue0; closed.clients];
    let mut remaining = vec![closed.per_client; closed.clients];
    let mut closed_issued = 0usize;
    let mut open_idx = 0usize;

    let first_open = order.first().and_then(|&i| open.get(i)).map(|r| r.arrival);
    let first_arrival = if closed_total > 0 { 0.0 } else { first_open.unwrap_or(0.0) };

    loop {
        let next = next_arrival(open, &order, open_idx, &next_issue);

        // Decide: admit the next arrival, or dispatch a batch at `start`.
        let start = if queues.len() > 0 {
            let t_first = queues.oldest_arrival().unwrap_or(t_free);
            let trigger = (t_first + batch.max_wait.max(0.0)).min(t_full);
            Some(t_free.max(trigger))
        } else {
            None
        };
        let admit_now = match (next, start) {
            (None, None) => break,
            (Some(_), None) => true,
            (Some((t, _)), Some(s)) => t <= s,
            (None, Some(_)) => false,
        };

        if admit_now {
            let Some((t, source)) = next else { break };
            let (id, priority, row, client) = match source {
                Source::Open { pos } => {
                    open_idx += 1;
                    match open.get(pos) {
                        Some(r) => (pos, r.priority, r.row, None),
                        None => continue,
                    }
                }
                Source::Closed { client } => {
                    let id = open.len() + closed_issued;
                    let row = closed_issued;
                    closed_issued += 1;
                    if let Some(rem) = remaining.get_mut(client) {
                        *rem = rem.saturating_sub(1);
                    }
                    if let Some(slot) = next_issue.get_mut(client) {
                        *slot = f64::INFINITY;
                    }
                    (id, closed.priority, row, Some(client))
                }
            };
            let tier = priority.min(tiers_n - 1);
            let in_service = if t < t_free { in_service_count } else { 0 };
            let verdict = if queues.len().saturating_add(in_service) >= admission.max_inflight {
                Some(RequestOutcome::RejectedBackpressure)
            } else if queues.len() >= admission.tier_cap(tier) {
                Some(RequestOutcome::ShedAtAdmission)
            } else {
                None
            };
            match verdict {
                Some(o) => {
                    resolve(&mut outcomes, &mut counts, id, o);
                    if let Some(c) = client {
                        schedule_reissue(&mut next_issue, &remaining, c, t + closed.think);
                    }
                }
                None => {
                    queues.admit(tier, QueuedRequest { id, arrival: t, row, client });
                    if queues.len() >= bmax && t_full.is_infinite() {
                        t_full = t;
                    }
                }
            }
            continue;
        }

        let Some(start) = start else { break };

        // Assemble a batch at `start`, shedding expired requests as they
        // are drained — a shed request resolves without a batch slot.
        let mut members: Vec<QueuedRequest> = Vec::with_capacity(bmax.min(queues.len()));
        while members.len() < bmax {
            let Some(r) = queues.pop_next() else { break };
            if r.arrival + admission.deadline < start {
                resolve(&mut outcomes, &mut counts, r.id, RequestOutcome::ShedDeadlineExceeded);
                if let Some(c) = r.client {
                    schedule_reissue(&mut next_issue, &remaining, c, start + closed.think);
                }
                continue;
            }
            members.push(r);
        }

        if members.is_empty() {
            // Every drained request had expired: no dispatch, the server
            // stays free. Progress is guaranteed — the shed requests left
            // the queue.
            t_full = if queues.len() >= bmax { start } else { f64::INFINITY };
            continue;
        }

        let rows: Vec<usize> = members.iter().map(|r| r.row).collect();
        let (out, secs, label) = service.serve(&rows);
        let finish = start + secs;
        for (k, r) in members.iter().enumerate() {
            let latency = finish - r.arrival;
            resolve(&mut outcomes, &mut counts, r.id, RequestOutcome::Completed { latency });
            latencies.push(latency);
            decisions.push(out.get(k).copied().unwrap_or(f64::NAN));
            if let Some(c) = r.client {
                schedule_reissue(&mut next_issue, &remaining, c, finish + closed.think);
            }
        }
        batches += 1;
        max_batch_seen = max_batch_seen.max(members.len());
        batch_backends.push(label);
        service_secs += secs;
        in_service_count = members.len();
        t_free = finish;
        last_finish = last_finish.max(finish);
        t_full = if queues.len() >= bmax { start } else { f64::INFINITY };
    }

    // Every offered request was resolved above (the loop only ends with
    // empty queues and no arrivals left); the fallback is defensive and
    // keeps `counts` the authoritative ledger.
    let outcomes: Vec<RequestOutcome> =
        outcomes.into_iter().map(|o| o.unwrap_or(RequestOutcome::RejectedBackpressure)).collect();
    let makespan = (last_finish - first_arrival).max(0.0);
    let summary =
        LatencySummary::from_latencies_with_shed(&latencies, makespan, counts.shed_total());
    ServeOutcome {
        latencies,
        decisions,
        batches,
        max_batch_seen,
        batch_backends,
        service_secs,
        makespan,
        summary,
        outcomes,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{run_open_loop, ServeBackend, ServeTiming};
    use crate::checkpoint::Checkpoint;
    use crate::model::TaskDescriptor;
    use sgd_linalg::Matrix;

    fn lr_model(dim: usize) -> ServableModel {
        let w: Vec<Scalar> = (0..dim).map(|i| 0.1 * (i as Scalar + 1.0)).collect();
        let ck = Checkpoint::new(TaskDescriptor::LogisticRegression { dim: dim as u64 }, w)
            .expect("dims");
        ServableModel::from_checkpoint(&ck).expect("valid")
    }

    fn toy_pool() -> RequestPool {
        RequestPool::dense(Matrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[0.0, -1.0, 0.5],
            &[3.0, 1.0, 0.0],
        ]))
    }

    fn open_reqs(arrivals: &[f64]) -> Vec<OfferedRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &t)| OfferedRequest { arrival: t, priority: 0, row: i })
            .collect()
    }

    #[test]
    fn unbounded_policy_reproduces_the_legacy_open_loop_bitwise() {
        let model = lr_model(3);
        let pool = toy_pool();
        for policy in
            [BatchPolicy::unbatched(), BatchPolicy::new(4, 1e-4), BatchPolicy::new(8, 0.05)]
        {
            let arrivals: Vec<f64> = (0..64).map(|i| (i as f64) * 7e-6).collect();
            let legacy = run_open_loop(
                &mut Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled),
                &model,
                &pool,
                &policy,
                &arrivals,
            );
            let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
            let mut svc = ComputeService::new(&mut srv, &model, &pool);
            let admitted = run_admitted(
                &mut svc,
                &policy,
                &AdmissionPolicy::unbounded(),
                &open_reqs(&arrivals),
                &ClosedClients::none(),
            );
            assert_eq!(admitted.counts.offered(), 64);
            assert_eq!(admitted.counts.completed, 64);
            assert_eq!(admitted.batches, legacy.batches, "policy {policy:?}");
            assert_eq!(admitted.max_batch_seen, legacy.max_batch_seen);
            // Outcome i corresponds to legacy latency i (arrival order).
            for (i, (o, l)) in admitted.outcomes.iter().zip(&legacy.latencies).enumerate() {
                let RequestOutcome::Completed { latency } = *o else {
                    panic!("request {i} must complete under the unbounded policy")
                };
                assert_eq!(latency.to_bits(), l.to_bits(), "latency {i}, policy {policy:?}");
            }
            // Open-loop batches drain in arrival order, so completion
            // order == arrival order and decisions align bitwise.
            for (d, l) in admitted.decisions.iter().zip(&legacy.decisions) {
                assert_eq!(d.to_bits(), l.to_bits());
            }
            assert_eq!(admitted.summary.p99.to_bits(), legacy.summary.p99.to_bits());
        }
    }

    #[test]
    fn tier_caps_grade_linearly_and_unbounded_never_sheds() {
        let p = AdmissionPolicy::new(100, 1000, 1.0, 4);
        assert_eq!(p.tier_cap(0), 100);
        assert_eq!(p.tier_cap(1), 75);
        assert_eq!(p.tier_cap(2), 50);
        assert_eq!(p.tier_cap(3), 25);
        assert_eq!(p.tier_cap(99), 25, "priorities clamp to the last tier");
        let u = AdmissionPolicy::unbounded();
        assert_eq!(u.tier_cap(0), usize::MAX);
    }

    #[test]
    fn queue_bound_sheds_and_conserves() {
        let model = lr_model(3);
        let pool = toy_pool();
        // 32 simultaneous arrivals, queue bound 4, slow service: most
        // must shed at admission, and the ledger must balance.
        let arrivals = vec![0.0; 32];
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let mut svc = ComputeService::new(&mut srv, &model, &pool);
        let admission = AdmissionPolicy::new(4, usize::MAX, f64::INFINITY, 1);
        let out = run_admitted(
            &mut svc,
            &BatchPolicy::new(2, 1e-3),
            &admission,
            &open_reqs(&arrivals),
            &ClosedClients::none(),
        );
        assert_eq!(out.counts.offered(), 32, "conservation");
        assert_eq!(out.outcomes.len(), 32);
        assert!(out.counts.shed_admission > 0, "queue bound must shed");
        assert!(out.counts.completed > 0, "queue share must complete");
        assert_eq!(out.counts.completed, out.latencies.len());
        assert_eq!(
            out.counts.completed + out.counts.shed_total(),
            32,
            "every request resolves exactly once"
        );
        assert!(out.summary.shed_fraction() > 0.0);
    }

    #[test]
    fn backpressure_bound_rejects_before_the_queue_fills() {
        let model = lr_model(3);
        let pool = toy_pool();
        let arrivals = vec![0.0; 16];
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let mut svc = ComputeService::new(&mut srv, &model, &pool);
        let admission = AdmissionPolicy::new(usize::MAX, 3, f64::INFINITY, 1);
        let out = run_admitted(
            &mut svc,
            &BatchPolicy::unbatched(),
            &admission,
            &open_reqs(&arrivals),
            &ClosedClients::none(),
        );
        assert_eq!(out.counts.offered(), 16);
        assert_eq!(out.counts.rejected, 13, "3 in flight, 13 rejected");
        assert_eq!(out.counts.completed, 3);
        assert!(out.outcomes.iter().skip(3).all(|o| *o == RequestOutcome::RejectedBackpressure));
    }

    #[test]
    fn deadline_sheds_stale_requests_and_bounds_the_admitted_tail() {
        let model = lr_model(3);
        let pool = toy_pool();
        // A large simultaneous burst through a single-file server: late
        // queue positions wait far beyond the deadline and must shed at
        // assembly, keeping completed latencies under deadline + service.
        // Modeled cpu-seq service is ~2µs/request, so the burst drains
        // in ~128µs; a 40µs deadline sheds roughly the back two thirds.
        let arrivals = vec![0.0; 64];
        let deadline = 4e-5;
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let mut svc = ComputeService::new(&mut srv, &model, &pool);
        let admission = AdmissionPolicy::new(usize::MAX, usize::MAX, deadline, 1);
        let out = run_admitted(
            &mut svc,
            &BatchPolicy::unbatched(),
            &admission,
            &open_reqs(&arrivals),
            &ClosedClients::none(),
        );
        assert_eq!(out.counts.offered(), 64);
        assert!(out.counts.shed_deadline > 0, "stale requests must shed");
        assert!(out.counts.completed > 0);
        let slack = 10.0 * deadline;
        assert!(
            out.latencies.iter().all(|&l| l <= deadline + slack),
            "admitted tail is bounded by the deadline (max {})",
            out.summary.max
        );
    }

    #[test]
    fn lower_priority_tiers_shed_first() {
        let model = lr_model(3);
        let pool = toy_pool();
        // Alternating priorities, simultaneous burst: tier 1's share of
        // the queue is half of tier 0's, so tier 1 sheds more.
        let open: Vec<OfferedRequest> =
            (0..32).map(|i| OfferedRequest { arrival: 0.0, priority: i % 2, row: i }).collect();
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let mut svc = ComputeService::new(&mut srv, &model, &pool);
        let admission = AdmissionPolicy::new(8, usize::MAX, f64::INFINITY, 2);
        let out = run_admitted(
            &mut svc,
            &BatchPolicy::new(4, 1e-3),
            &admission,
            &open,
            &ClosedClients::none(),
        );
        let shed_by_tier = |tier: usize| {
            open.iter()
                .zip(&out.outcomes)
                .filter(|(r, o)| r.priority == tier && **o == RequestOutcome::ShedAtAdmission)
                .count()
        };
        assert_eq!(out.counts.offered(), 32);
        assert!(
            shed_by_tier(1) > shed_by_tier(0),
            "tier 1 shed {} must exceed tier 0 shed {}",
            shed_by_tier(1),
            shed_by_tier(0)
        );
    }

    #[test]
    fn closed_clients_resolve_every_issue_even_when_shed() {
        let model = lr_model(3);
        let pool = toy_pool();
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let mut svc = ComputeService::new(&mut srv, &model, &pool);
        // Tiny in-flight bound: many closed issues are rejected, but the
        // clients keep their cadence and every issue resolves.
        let admission = AdmissionPolicy::new(2, 2, f64::INFINITY, 1);
        let closed = ClosedClients { clients: 4, per_client: 6, think: 0.0, priority: 0 };
        let out = run_admitted(
            &mut svc,
            &BatchPolicy::new(2, 1e-5),
            &admission,
            &[],
            &ClosedClients { ..closed },
        );
        assert_eq!(out.counts.offered(), 24, "4 clients x 6 requests all resolve");
        assert_eq!(out.outcomes.len(), 24);
        assert!(out.counts.completed > 0);
    }

    #[test]
    fn mixed_scenario_is_bit_deterministic() {
        let model = lr_model(3);
        let pool = toy_pool();
        let open: Vec<OfferedRequest> = (0..48)
            .map(|i| OfferedRequest { arrival: i as f64 * 5e-6, priority: i % 3, row: i })
            .collect();
        let closed = ClosedClients { clients: 3, per_client: 8, think: 1e-5, priority: 1 };
        let admission = AdmissionPolicy::new(12, 24, 5e-4, 3);
        let run = || {
            let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
            let mut svc = ComputeService::new(&mut srv, &model, &pool);
            run_admitted(&mut svc, &BatchPolicy::new(4, 1e-4), &admission, &open, &closed)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outcomes, b.outcomes, "bit-identical shed decisions");
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.counts.offered(), 48 + 24);
        for (x, y) in a.latencies.iter().zip(&b.latencies) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.summary.p999.to_bits(), b.summary.p999.to_bits());
    }

    #[test]
    fn modeled_service_agrees_with_the_modeled_compute_path() {
        let model = lr_model(3);
        let pool = toy_pool();
        let arrivals: Vec<f64> = (0..32).map(|i| i as f64 * 1e-5).collect();
        let policy = BatchPolicy::new(4, 1e-4);
        let mut srv = Server::new(ServeBackend::CpuSeq, ServeTiming::Modeled);
        let mut real = ComputeService::new(&mut srv, &model, &pool);
        let a = run_admitted(
            &mut real,
            &policy,
            &AdmissionPolicy::unbounded(),
            &open_reqs(&arrivals),
            &ClosedClients::none(),
        );
        let mut modeled = ModeledService::for_predict(vec![ComputeBackend::CpuSeq], &model, &pool);
        let b = run_admitted(
            &mut modeled,
            &policy,
            &AdmissionPolicy::unbounded(),
            &open_reqs(&arrivals),
            &ClosedClients::none(),
        );
        assert_eq!(a.batches, b.batches);
        // Dense linear predict is affine in batch size, so the modeled
        // service's affine calibration is exact: bit-identical latencies.
        for (x, y) in a.latencies.iter().zip(&b.latencies) {
            assert_eq!(x.to_bits(), y.to_bits(), "modeled service must price like the server");
        }
        assert!(b.decisions.iter().all(|d| d.is_nan()), "modeled decisions record as NaN");
    }
}
