//! In-tree stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic PRNG behind the same API
//! surface: [`Rng`] (`gen`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for the
//! study's synthetic data generation, though its streams differ from the
//! real `rand` 0.8 `StdRng` (ChaCha12), so seeded datasets are not
//! bit-compatible with runs made against the upstream crate.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the generator's "standard"
/// distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Uniform integer in `[0, n)` by rejection sampling (avoids modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
int_range!(u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_u64, Rng};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_samples_stay_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn int_ranges_are_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0u32..5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
        }
        // The degenerate-but-legal range used by Box-Muller sampling.
        let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(42));
        b.shuffle(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 100-element shuffle should not be identity");
    }
}
