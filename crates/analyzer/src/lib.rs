//! `sgd-analyzer` — in-tree static enforcement of the repo's
//! concurrency, determinism, and panic-freedom contracts.
//!
//! The paper's asynchronous corners (Hogwild-style lock-free updates)
//! are only sound as an *experiment* if a handful of hand-rolled
//! invariants hold; this crate turns them from reviewer memory into a
//! machine-checked gate. Zero dependencies: the container is offline,
//! so the scanner in [`source`] is a purpose-built comment/string/
//! `cfg(test)` stripper, not a real parser — precise enough for the
//! five line-level passes in [`passes`], and honest about being a
//! heuristic (every rule has the `// analyzer: allow(<pass>) -- <reason>`
//! escape hatch).
//!
//! Entry points: [`run_check`] (the CI gate) and the `sgd-analyzer`
//! binary (`cargo run -p sgd-analyzer -- check`).

pub mod baseline;
pub mod passes;
pub mod semantic;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

use baseline::{Baseline, StaleEntry};
use passes::{AllowedFinding, Finding};

/// Outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the gate.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by baseline entries (enumerated, not failing).
    pub grandfathered: Vec<Finding>,
    /// Baseline entries nothing matched — stale debt to delete.
    pub stale: Vec<StaleEntry>,
    /// Findings suppressed by `allow` annotations, with their reasons —
    /// the audit trail `--json` exposes.
    pub allowed: Vec<AllowedFinding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// The gate: clean means no fresh findings. Stale entries warn but
    /// do not fail (deleting them is a follow-up, not an emergency).
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty()
    }

    /// Machine-readable rendering for `check --json` (the CI artifact).
    /// Hand-rolled — the container is offline, so no serde — but
    /// escaping-complete for the strings this tree produces.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        let finding_obj = |f: &Finding, extra: &str| {
            format!(
                "{{\"pass\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \
                 \"snippet\": {}{extra}}}",
                json_str(f.pass),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet),
            )
        };
        let list = |name: &str, items: &[Finding], last: bool| {
            let body: Vec<String> =
                items.iter().map(|f| format!("    {}", finding_obj(f, ""))).collect();
            format!("  \"{name}\": [\n{}\n  ]{}\n", body.join(",\n"), if last { "" } else { "," })
        };
        if self.fresh.is_empty() {
            s.push_str("  \"fresh\": [],\n");
        } else {
            s.push_str(&list("fresh", &self.fresh, false));
        }
        if self.grandfathered.is_empty() {
            s.push_str("  \"grandfathered\": [],\n");
        } else {
            s.push_str(&list("grandfathered", &self.grandfathered, false));
        }
        if self.allowed.is_empty() {
            s.push_str("  \"allowed\": [],\n");
        } else {
            let body: Vec<String> = self
                .allowed
                .iter()
                .map(|a| {
                    format!(
                        "    {}",
                        finding_obj(
                            &a.finding,
                            &format!(", \"allow_reason\": {}", json_str(&a.reason))
                        )
                    )
                })
                .collect();
            s.push_str(&format!("  \"allowed\": [\n{}\n  ],\n", body.join(",\n")));
        }
        if self.stale.is_empty() {
            s.push_str("  \"stale\": []\n");
        } else {
            let body: Vec<String> = self
                .stale
                .iter()
                .map(|e| {
                    format!(
                        "    {{\"pass\": {}, \"file\": {}, \"snippet\": {}}}",
                        json_str(&e.pass),
                        json_str(&e.file),
                        json_str(&e.snippet),
                    )
                })
                .collect();
            s.push_str(&format!("  \"stale\": [\n{}\n  ]\n", body.join(",\n")));
        }
        s.push_str("}\n");
        s
    }
}

/// JSON string literal with full control/quote/backslash escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scans every in-scope workspace file with every pass — line passes
/// per file, model passes once over the whole workspace — and splits
/// the findings against `baseline`.
pub fn run_check(root: &Path, baseline: &Baseline) -> io::Result<CheckReport> {
    let analysis = scan(root)?;
    let files_scanned = workspace::source_files(root)?.len();
    let (fresh, grandfathered, stale) = baseline.split(analysis.findings);
    Ok(CheckReport { fresh, grandfathered, stale, allowed: analysis.allowed, files_scanned })
}

/// Raw analysis for the whole workspace (pre-baseline), in file order.
pub fn scan(root: &Path) -> io::Result<passes::Analysis> {
    let passes = passes::all_passes();
    let mut files = Vec::new();
    for rel in workspace::source_files(root)? {
        files.push(source::SourceFile::load(root, &rel)?);
    }
    let deps = workspace::crate_deps(root)?;
    Ok(passes::analyze_workspace(&files, &passes, deps))
}
