//! `sgd-analyzer` — in-tree static enforcement of the repo's
//! concurrency, determinism, and panic-freedom contracts.
//!
//! The paper's asynchronous corners (Hogwild-style lock-free updates)
//! are only sound as an *experiment* if a handful of hand-rolled
//! invariants hold; this crate turns them from reviewer memory into a
//! machine-checked gate. Zero dependencies: the container is offline,
//! so the scanner in [`source`] is a purpose-built comment/string/
//! `cfg(test)` stripper, not a real parser — precise enough for the
//! five line-level passes in [`passes`], and honest about being a
//! heuristic (every rule has the `// analyzer: allow(<pass>) -- <reason>`
//! escape hatch).
//!
//! Entry points: [`run_check`] (the CI gate) and the `sgd-analyzer`
//! binary (`cargo run -p sgd-analyzer -- check`).

pub mod baseline;
pub mod passes;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

use baseline::{Baseline, StaleEntry};
use passes::Finding;

/// Outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the gate.
    pub fresh: Vec<Finding>,
    /// Findings absorbed by baseline entries (enumerated, not failing).
    pub grandfathered: Vec<Finding>,
    /// Baseline entries nothing matched — stale debt to delete.
    pub stale: Vec<StaleEntry>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// The gate: clean means no fresh findings. Stale entries warn but
    /// do not fail (deleting them is a follow-up, not an emergency).
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty()
    }
}

/// Scans every in-scope workspace file with every pass and splits the
/// findings against `baseline`.
pub fn run_check(root: &Path, baseline: &Baseline) -> io::Result<CheckReport> {
    let findings = scan(root)?;
    let files_scanned = workspace::source_files(root)?.len();
    let (fresh, grandfathered, stale) = baseline.split(findings);
    Ok(CheckReport { fresh, grandfathered, stale, files_scanned })
}

/// Raw findings for the whole workspace (pre-baseline), in file order.
pub fn scan(root: &Path) -> io::Result<Vec<Finding>> {
    let passes = passes::all_passes();
    let mut findings = Vec::new();
    for rel in workspace::source_files(root)? {
        let sf = source::SourceFile::load(root, &rel)?;
        findings.extend(passes::analyze_file(&sf, &passes));
    }
    Ok(findings)
}
