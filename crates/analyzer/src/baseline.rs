//! The ratchet baseline: `analyzer-baseline.toml`.
//!
//! Grandfathered findings are keyed by `(pass, file, snippet)` with a
//! count — deliberately *not* by line number, so unrelated edits that
//! shift lines never break the gate, while any *new* occurrence of a
//! banned construct (count exceeded) fails immediately. The file is a
//! strict TOML subset parsed in-tree (the container is offline; no toml
//! crate), written and read only by this module:
//!
//! ```toml
//! [[finding]]
//! pass = "determinism"
//! file = "crates/core/src/gpu_async.rs"
//! snippet = "use std::collections::HashMap;"
//! count = 1
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::passes::Finding;

/// `(pass, file, snippet)` → allowed occurrence count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

/// A baseline entry no live finding matched — the debt was paid down and
/// the entry should be deleted (or the snippet drifted and the gate is
/// now stricter than intended).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    pub pass: String,
    pub file: String,
    pub snippet: String,
}

/// Line/reason for a baseline file that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// Parses the strict TOML subset described in the module docs.
    /// Unknown keys, malformed strings, and entries missing a field are
    /// hard errors — a silently ignored entry would un-grandfather a
    /// finding and break the build confusingly far from the cause.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<PartialEntry> = None;
        for (line0, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = line0 + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[finding]]" {
                if let Some(p) = cur.take() {
                    let (key, count) = p.finish()?;
                    *entries.entry(key).or_insert(0) += count;
                }
                cur = Some(PartialEntry::new(lineno));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `key = value` or `[[finding]]`, got `{line}`"),
                });
            };
            let Some(p) = cur.as_mut() else {
                return Err(BaselineError {
                    line: lineno,
                    message: "key/value before the first [[finding]] header".to_string(),
                });
            };
            p.set(key.trim(), value.trim(), lineno)?;
        }
        if let Some(p) = cur.take() {
            let (key, count) = p.finish()?;
            *entries.entry(key).or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Renders findings as a fresh baseline file (the `baseline`
    /// subcommand). Deterministic order: BTreeMap key order.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.pass.to_string(), f.file.clone(), f.snippet.clone())).or_insert(0) +=
                1;
        }
        let mut out = String::from(
            "# sgd-analyzer baseline — grandfathered findings.\n\
             # Ratchet-only: entries may be removed as debt is paid down, never added.\n\
             # Regenerate with `cargo run -p sgd-analyzer -- baseline` (then review the diff).\n",
        );
        for ((pass, file, snippet), count) in &counts {
            let _ = write!(
                out,
                "\n[[finding]]\npass = \"{}\"\nfile = \"{}\"\nsnippet = \"{}\"\ncount = {}\n",
                escape(pass),
                escape(file),
                escape(snippet),
                count
            );
        }
        out
    }

    /// Splits `findings` into `(new, baselined)` and reports stale
    /// entries. Each baseline entry absorbs up to `count` matching
    /// findings; the rest are new.
    pub fn split(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<StaleEntry>) {
        let mut remaining = self.entries.clone();
        let mut fresh = Vec::new();
        let mut grandfathered = Vec::new();
        for f in findings {
            let key = (f.pass.to_string(), f.file.clone(), f.snippet.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    grandfathered.push(f);
                }
                _ => fresh.push(f),
            }
        }
        let stale = remaining
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|((pass, file, snippet), _)| StaleEntry { pass, file, snippet })
            .collect();
        (fresh, grandfathered, stale)
    }
}

struct PartialEntry {
    header_line: usize,
    pass: Option<String>,
    file: Option<String>,
    snippet: Option<String>,
    count: Option<usize>,
}

impl PartialEntry {
    fn new(header_line: usize) -> PartialEntry {
        PartialEntry { header_line, pass: None, file: None, snippet: None, count: None }
    }

    fn set(&mut self, key: &str, value: &str, lineno: usize) -> Result<(), BaselineError> {
        match key {
            "pass" => self.pass = Some(parse_string(value, lineno)?),
            "file" => self.file = Some(parse_string(value, lineno)?),
            "snippet" => self.snippet = Some(parse_string(value, lineno)?),
            "count" => {
                self.count = Some(value.parse().map_err(|_| BaselineError {
                    line: lineno,
                    message: format!("count must be a non-negative integer, got `{value}`"),
                })?)
            }
            other => {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected pass/file/snippet/count)"),
                })
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<((String, String, String), usize), BaselineError> {
        let missing = |what: &str| BaselineError {
            line: self.header_line,
            message: format!("[[finding]] at this line is missing `{what}`"),
        };
        let pass = self.pass.clone().ok_or_else(|| missing("pass"))?;
        let file = self.file.clone().ok_or_else(|| missing("file"))?;
        let snippet = self.snippet.clone().ok_or_else(|| missing("snippet"))?;
        Ok(((pass, file, snippet), self.count.unwrap_or(1)))
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, BaselineError> {
    let err = |message: String| BaselineError { line: lineno, message };
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| err(format!("expected a double-quoted string, got `{value}`")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if c == '"' {
                return Err(err("unescaped `\"` inside string".to_string()));
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(err(format!("unsupported escape `\\{}`", other.unwrap_or(' '))));
            }
        }
    }
    Ok(out)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(pass: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            pass,
            file: file.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let findings = vec![
            f("determinism", "crates/a.rs", "use std::collections::HashMap;"),
            f("determinism", "crates/a.rs", "use std::collections::HashMap;"),
            f("panic-freedom", "crates/b.rs", "let x = y.unwrap(); // \"quoted\" \\ backslash"),
        ];
        let text = Baseline::render(&findings);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        let (fresh, grandfathered, stale) = parsed.split(findings);
        assert!(fresh.is_empty());
        assert_eq!(grandfathered.len(), 3);
        assert!(stale.is_empty());
    }

    #[test]
    fn empty_file_is_empty_baseline() {
        let b = Baseline::parse("# only comments\n\n").unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn count_exceeded_findings_are_new() {
        let text = "[[finding]]\npass = \"determinism\"\nfile = \"a.rs\"\n\
                    snippet = \"HashMap\"\ncount = 1\n";
        let b = Baseline::parse(text).unwrap();
        let (fresh, grandfathered, stale) =
            b.split(vec![f("determinism", "a.rs", "HashMap"), f("determinism", "a.rs", "HashMap")]);
        assert_eq!(fresh.len(), 1);
        assert_eq!(grandfathered.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let text = "[[finding]]\npass = \"determinism\"\nfile = \"gone.rs\"\n\
                    snippet = \"HashMap\"\ncount = 1\n";
        let b = Baseline::parse(text).unwrap();
        let (fresh, _, stale) = b.split(vec![]);
        assert!(fresh.is_empty());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "gone.rs");
    }

    #[test]
    fn missing_field_is_an_error() {
        let text = "[[finding]]\npass = \"determinism\"\ncount = 1\n";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.message.contains("missing"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = "[[finding]]\npass = \"x\"\nfile = \"y\"\nsnippet = \"z\"\nline = 3\n";
        assert!(Baseline::parse(text).unwrap_err().message.contains("unknown key"));
    }

    #[test]
    fn orphan_key_is_an_error() {
        assert!(Baseline::parse("pass = \"x\"\n").unwrap_err().message.contains("before"));
    }
}
