//! `sgd-analyzer` CLI.
//!
//! ```text
//! cargo run -p sgd-analyzer -- check              # the CI gate
//! cargo run -p sgd-analyzer -- check --verbose    # also enumerate grandfathered findings
//! cargo run -p sgd-analyzer -- check --json       # machine-readable report on stdout
//! cargo run -p sgd-analyzer -- baseline           # print a fresh baseline to stdout
//! cargo run -p sgd-analyzer -- passes             # list the pass roster
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or baseline unreadable), 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;

use sgd_analyzer::baseline::Baseline;
use sgd_analyzer::passes::{all_passes, Finding};
use sgd_analyzer::workspace;

const USAGE: &str = "\
sgd-analyzer: static invariant checks for the sgd-modern-hardware workspace

USAGE:
    sgd-analyzer <check|baseline|passes> [--root <dir>] [--baseline <file>] [--verbose]

SUBCOMMANDS:
    check       scan the workspace; exit 1 on any non-baselined finding
    baseline    print a baseline file grandfathering all current findings
    passes      list the pass roster

OPTIONS:
    --root <dir>        workspace root (default: auto-detect from cwd)
    --baseline <file>   baseline path (default: <root>/analyzer-baseline.toml)
    --verbose           check: also enumerate grandfathered findings
    --json              check: print a machine-readable report to stdout
                        (exit codes unchanged; human prose goes to stderr)
";

struct Args {
    cmd: String,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    verbose: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        return Err("missing subcommand".to_string());
    };
    let mut args = Args { cmd, root: None, baseline: None, verbose: false, json: false };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--root" => {
                args.root = Some(argv.next().ok_or("--root requires a directory argument")?.into());
            }
            "--baseline" => {
                args.baseline =
                    Some(argv.next().ok_or("--baseline requires a file argument")?.into());
            }
            "--verbose" => args.verbose = true,
            "--json" => args.json = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match args
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| workspace::find_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate a workspace root; pass --root <dir>");
            return ExitCode::from(2);
        }
    };
    match args.cmd.as_str() {
        "check" => cmd_check(&args, &root),
        "baseline" => cmd_baseline(&root),
        "passes" => cmd_passes(),
        other => {
            eprintln!("error: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &Args, root: &std::path::Path) -> ExitCode {
    let baseline_path =
        args.baseline.clone().unwrap_or_else(|| root.join("analyzer-baseline.toml"));
    let baseline = if baseline_path.exists() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {}: {e}", baseline_path.display());
                return ExitCode::from(1);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(1);
            }
        }
    } else {
        Baseline::default()
    };

    let report = match sgd_analyzer::run_check(root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning workspace: {e}");
            return ExitCode::from(1);
        }
    };

    if args.json {
        // The artifact: machine-readable report on stdout, same exit
        // codes as the human mode.
        print!("{}", report.to_json());
        if report.is_clean() {
            return ExitCode::SUCCESS;
        }
        eprintln!("sgd-analyzer: {} new finding(s) (see JSON report)", report.fresh.len());
        return ExitCode::from(1);
    }
    if args.verbose && !report.grandfathered.is_empty() {
        println!("grandfathered findings ({}):", report.grandfathered.len());
        for f in &report.grandfathered {
            print_finding(f, "  ~");
        }
    }
    for s in &report.stale {
        eprintln!(
            "warning: stale baseline entry (pass={}, file={}, snippet={:?}) — nothing matches \
             it; delete it from analyzer-baseline.toml",
            s.pass, s.file, s.snippet
        );
    }
    if report.is_clean() {
        println!(
            "sgd-analyzer: clean — {} files scanned, {} finding(s) grandfathered, {} stale \
             baseline entr(ies)",
            report.files_scanned,
            report.grandfathered.len(),
            report.stale.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("sgd-analyzer: {} new finding(s):", report.fresh.len());
    for f in &report.fresh {
        print_finding(f, "  !");
    }
    eprintln!(
        "\nFix the findings, add `// analyzer: allow(<pass>) -- <reason>` with a justification, \
         or (last resort) grandfather them via `cargo run -p sgd-analyzer -- baseline`."
    );
    ExitCode::from(1)
}

fn print_finding(f: &Finding, prefix: &str) {
    eprintln!("{prefix} {}:{} [{}] {}", f.file, f.line, f.pass, f.message);
    eprintln!("{}     > {}", " ".repeat(prefix.len() - 1), f.snippet);
}

fn cmd_baseline(root: &std::path::Path) -> ExitCode {
    match sgd_analyzer::scan(root) {
        Ok(analysis) => {
            print!("{}", Baseline::render(&analysis.findings));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: scanning workspace: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_passes() -> ExitCode {
    for p in all_passes() {
        println!("{:20} {}", p.id(), p.description());
    }
    ExitCode::SUCCESS
}
