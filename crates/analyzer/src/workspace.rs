//! Workspace file discovery.
//!
//! The analyzer's contract covers *shipped library/binary code*: every
//! `.rs` file under `crates/<name>/src/` and the workspace-root `src/`
//! (if present). Integration tests, benches, and examples are out of
//! scope — test code is allowed to unwrap, spawn, and compare floats —
//! and in-file `#[cfg(test)]` regions are exempted by the scanner.
//!
//! Paths are returned sorted, `/`-separated, and workspace-relative so
//! findings and the baseline are byte-identical across machines.

use std::io;
use std::path::{Path, PathBuf};

/// Lists all in-scope `.rs` files, workspace-relative, sorted.
pub fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), root, &mut out)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (no-op if absent).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(
                rel.components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/"),
            );
        }
    }
    Ok(())
}

/// Walks upward from `start` to the workspace root (the first directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_lists_itself() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above the analyzer crate");
        let files = source_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/analyzer/src/workspace.rs"), "{files:?}");
        assert!(files.iter().any(|f| f == "crates/core/src/engine.rs"), "{files:?}");
        // Integration tests are out of scope.
        assert!(files.iter().all(|f| !f.starts_with("tests/")), "{files:?}");
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "listing must be sorted");
    }
}
