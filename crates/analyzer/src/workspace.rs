//! Workspace file discovery.
//!
//! The analyzer's contract covers *shipped library/binary code*: every
//! `.rs` file under `crates/<name>/src/` and the workspace-root `src/`
//! (if present), plus the workspace-root `examples/` — user-facing
//! idiom demos with their own, looser contract, which only passes
//! opting in via `Pass::applies_to_examples` inspect. Integration
//! tests and benches are out of scope — test code is allowed to
//! unwrap, spawn, and compare floats — and in-file `#[cfg(test)]`
//! regions are exempted by the scanner.
//!
//! Paths are returned sorted, `/`-separated, and workspace-relative so
//! findings and the baseline are byte-identical across machines.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// Lists all in-scope `.rs` files, workspace-relative, sorted.
pub fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), root, &mut out)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut out)?;
    collect_rs(&root.join("examples"), root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (no-op if absent).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(
                rel.components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/"),
            );
        }
    }
    Ok(())
}

/// Parses every `crates/<dir>/Cargo.toml` into the *transitive*
/// intra-workspace dependency closure: crate dir name → every crate dir
/// it can reach through `[dependencies]` `path = "../<dir>"` entries.
/// The call graph uses this to refuse edges that run against the
/// dependency direction — `sgd-serve` cannot call into `sgd-bench` no
/// matter what a function there is named, because bench depends on
/// serve, not the other way round.
pub fn crate_deps(root: &Path) -> io::Result<BTreeMap<String, BTreeSet<String>>> {
    // Package name → crate dir, from `[workspace.dependencies]`
    // `pkg = { path = "crates/<dir>" }` entries in the root manifest.
    let names = match std::fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) => workspace_dep_dirs(&text),
        Err(_) => BTreeMap::new(),
    };
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path();
            let Some(name) = dir.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            let manifest = dir.join("Cargo.toml");
            if !dir.is_dir() || !manifest.is_file() {
                continue;
            }
            let text = std::fs::read_to_string(&manifest)?;
            direct.insert(name, manifest_path_deps(&text, &names));
        }
    }
    // Transitive closure by iteration (the graph is tiny and acyclic).
    let mut closed = direct.clone();
    loop {
        let mut grew = false;
        for name in direct.keys() {
            let reach: Vec<String> =
                closed.get(name).map(|s| s.iter().cloned().collect()).unwrap_or_default();
            for dep in reach {
                let indirect: Vec<String> =
                    closed.get(&dep).map(|s| s.iter().cloned().collect()).unwrap_or_default();
                let set = closed.entry(name.clone()).or_default();
                for d in indirect {
                    grew |= set.insert(d);
                }
            }
        }
        if !grew {
            return Ok(closed);
        }
    }
}

/// Package name → crate dir from `[workspace.dependencies]`
/// `pkg = { path = "crates/<dir>" }` entries.
fn workspace_dep_dirs(manifest: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut in_section = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_section = t == "[workspace.dependencies]";
            continue;
        }
        if !in_section {
            continue;
        }
        let (Some(pkg), Some(dir)) = (entry_key(t), quoted_path_dir(t)) else { continue };
        out.insert(pkg.to_string(), dir.to_string());
    }
    out
}

/// Crate dir names a manifest's `[dependencies]` section references —
/// by direct `path = "../<dir>"`, or by `pkg.workspace = true` /
/// `pkg = { workspace = true }` resolved through `names`.
/// Dev-dependencies are not linked into the shipped library, so they do
/// not open call edges.
fn manifest_path_deps(manifest: &str, names: &BTreeMap<String, String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(dir) = quoted_path_dir(t) {
            out.insert(dir.to_string());
        } else if t.contains("workspace") {
            if let Some(dir) = entry_key(t).and_then(|pkg| names.get(pkg)) {
                out.insert(dir.clone());
            }
        }
    }
    out
}

/// The dependency key of a manifest line: the token before the first
/// `.` or `=` (`sgd-core.workspace = true` → `sgd-core`).
fn entry_key(line: &str) -> Option<&str> {
    let key = line.split(['.', '=']).next()?.trim();
    (!key.is_empty()).then_some(key)
}

/// The final component of a `path = "…"` value on the line, if any.
fn quoted_path_dir(line: &str) -> Option<&str> {
    let rest = line.split("path").nth(1)?;
    let q = rest.split('"').nth(1)?;
    let dir = q.rsplit('/').next()?;
    (!dir.is_empty()).then_some(dir)
}

/// Walks upward from `start` to the workspace root (the first directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_lists_itself() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above the analyzer crate");
        let files = source_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/analyzer/src/workspace.rs"), "{files:?}");
        assert!(files.iter().any(|f| f == "crates/core/src/engine.rs"), "{files:?}");
        // Examples are scanned (example-scoped passes only).
        assert!(files.iter().any(|f| f.starts_with("examples/")), "{files:?}");
        // Integration tests are out of scope.
        assert!(files.iter().all(|f| !f.starts_with("tests/")), "{files:?}");
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "listing must be sorted");
    }
}
