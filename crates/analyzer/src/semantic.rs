//! Semantic model: a conservative intra-workspace view of `fn` items,
//! call sites, lock-guard bindings, and the name-based call graph.
//!
//! The scanner below is a *token-level* pass over the blanked code view
//! of every [`SourceFile`] — still not a parser, but enough structure
//! for interprocedural passes:
//!
//! * **`fn` items** with their body's line span (brace matching),
//! * **call sites** (`foo(…)`, `path::foo(…)`, `.method(…)`) attributed
//!   to the innermost enclosing `fn`,
//! * **lock-guard bindings** (`let g = ….lock()/.read()/.write()` and
//!   the repo's poison-tolerant helpers) with the line span the guard
//!   stays live over (to the end of its innermost block, or an explicit
//!   `drop(g)`),
//! * per-line **loop depth** (`for`/`while`/`loop` body nesting).
//!
//! On top of the per-file syntax, [`SemanticModel`] builds a symbol
//! table (fn name → every definition workspace-wide) and resolves calls
//! *by name alone*: a call to `foo` edges to every `fn foo` in the
//! workspace. That is deliberately conservative — over-approximating
//! reachability never hides a finding — with two documented limits:
//! trait/std methods that no workspace `fn` defines produce no edge,
//! and a short list of ubiquitous method names ([`UBIQUITOUS`]) is
//! never traversed (a `.get(…)` would otherwise edge into every
//! container in the tree). Allow annotations on a *call line* prune
//! traversal through that call, so a justified boundary stops the walk.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::source::SourceFile;

/// One `fn` item and everything scanned out of its body.
#[derive(Debug)]
pub struct FnItem {
    /// The item's name (no path; methods and free fns look alike).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line of the body's closing brace (== `start_line` for
    /// bodyless trait-method declarations).
    pub end_line: usize,
    /// Calls made inside the body, in source order.
    pub calls: Vec<CallSite>,
    /// Whether the item sits inside `#[cfg(test)]` code.
    pub is_test: bool,
}

/// One call site inside a `fn` body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name — the last path segment (`pool::run` → `run`).
    pub callee: String,
    /// 0-based line of the call.
    pub line: usize,
    /// `true` for `.method(…)` receiver calls.
    pub is_method: bool,
}

/// One `let` binding whose initializer acquires a lock guard.
#[derive(Debug)]
pub struct GuardBinding {
    /// The bound name (`let mut g = …` → `g`).
    pub name: String,
    /// 0-based line of the `let`.
    pub line: usize,
    /// The initializer text (code view), for lock classification.
    pub init: String,
    /// 0-based line of the innermost enclosing block's closing brace —
    /// the last line the guard can be live on (see [`GuardBinding::live_end`]).
    pub scope_end: usize,
    /// Index into [`FileSyntax::fns`] of the enclosing fn, if any.
    pub fn_index: Option<usize>,
}

impl GuardBinding {
    /// The last live line: `scope_end`, or the first `drop(<name>)` in
    /// the scope if the code releases the guard early.
    pub fn live_end(&self, sf: &SourceFile) -> usize {
        let drop_tok = format!("drop({})", self.name);
        for line0 in self.line + 1..=self.scope_end.min(sf.code.len().saturating_sub(1)) {
            if sf.code.get(line0).is_some_and(|c| c.contains(&drop_tok)) {
                return line0;
            }
        }
        self.scope_end
    }
}

/// Token-level syntax scanned out of one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every lock-guard binding, in source order.
    pub guards: Vec<GuardBinding>,
    /// Per 0-based line: how many `for`/`while`/`loop` bodies enclose it.
    pub loop_depth: Vec<u32>,
}

/// A `fn` item addressed across the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into the model's file slice.
    pub file: usize,
    /// Index into that file's [`FileSyntax::fns`].
    pub item: usize,
}

/// Method/function names so ubiquitous that name-based resolution would
/// edge a call into every container/constructor in the workspace; the
/// call graph does not traverse them. Token-level rules still see the
/// *call line itself* in the caller, so e.g. a literal `Vec::new(` is
/// caught where it is written.
pub const UBIQUITOUS: [&str; 26] = [
    "new",
    "default",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "next",
    "clone",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "from",
    "into",
    "clear",
    "contains",
    "as_slice",
    "label",
    "rows",
    "cols",
    "map",
    "sum",
];

/// Keywords that look like `ident(` call sites but are not.
const KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "move", "in", "as",
    "where", "impl",
];

/// The workspace-wide semantic model handed to call-graph passes
/// alongside the per-file line view.
pub struct SemanticModel<'a> {
    /// The scanned files, exactly as handed to [`SemanticModel::build`].
    pub files: &'a [SourceFile],
    /// Per-file token-level syntax, parallel to `files`.
    pub syntax: Vec<FileSyntax>,
    /// fn name → every definition, workspace-wide.
    symbols: BTreeMap<String, Vec<FnRef>>,
    /// Transitive intra-workspace Cargo dependencies (crate dir name →
    /// reachable crate dir names). Empty = no information: every edge
    /// is allowed, which fixture-level tests rely on.
    deps: BTreeMap<String, BTreeSet<String>>,
}

impl<'a> SemanticModel<'a> {
    /// Scans every file and assembles the symbol table, with no crate
    /// dependency information (every cross-crate edge allowed).
    pub fn build(files: &'a [SourceFile]) -> SemanticModel<'a> {
        SemanticModel::build_with_deps(files, BTreeMap::new())
    }

    /// [`SemanticModel::build`], plus [`crate_deps`](crate::workspace::crate_deps)
    /// output: name-resolved call edges that run *against* the Cargo
    /// dependency direction (e.g. serve → bench, when bench depends on
    /// serve) are refused — linkable code cannot make them.
    pub fn build_with_deps(
        files: &'a [SourceFile],
        deps: BTreeMap<String, BTreeSet<String>>,
    ) -> SemanticModel<'a> {
        let syntax: Vec<FileSyntax> = files.iter().map(scan_file).collect();
        let mut symbols: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        for (fi, fs) in syntax.iter().enumerate() {
            for (ii, f) in fs.fns.iter().enumerate() {
                symbols.entry(f.name.clone()).or_default().push(FnRef { file: fi, item: ii });
            }
        }
        SemanticModel { files, syntax, symbols, deps }
    }

    /// Can code in `from_file` link against a symbol in `to_file`?
    /// Same crate: always. Into an example or the root binary: never
    /// (they are link roots, nothing calls into them). Cross-crate:
    /// only along the transitive Cargo dependency direction — unless no
    /// dependency information was provided at all.
    fn edge_allowed(&self, from_file: usize, to_file: usize) -> bool {
        if from_file == to_file {
            return true;
        }
        let to_path = &self.files[to_file].rel_path;
        if to_path.starts_with("examples/") || to_path.starts_with("src/") {
            return false;
        }
        let (from_crate, to_crate) = (crate_of(&self.files[from_file].rel_path), crate_of(to_path));
        match (from_crate, to_crate) {
            (Some(a), Some(b)) if a == b => true,
            (_, Some(b)) => {
                if self.deps.is_empty() {
                    return true;
                }
                match from_crate {
                    // Examples/root binaries may call any workspace crate.
                    None => true,
                    Some(a) => self.deps.get(a).is_some_and(|set| set.contains(b)),
                }
            }
            _ => true,
        }
    }

    /// The item a reference points at, if the ref is in range.
    pub fn item(&self, r: FnRef) -> Option<&FnItem> {
        self.syntax.get(r.file).and_then(|fs| fs.fns.get(r.item))
    }

    /// Every definition of `name`, workspace-wide.
    pub fn fns_named(&self, name: &str) -> &[FnRef] {
        self.symbols.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every fn carrying a `// analyzer: root(<pass>) -- …` annotation.
    pub fn roots_for(&self, pass: &str) -> Vec<FnRef> {
        let mut out = Vec::new();
        for (fi, fs) in self.syntax.iter().enumerate() {
            for (ii, f) in fs.fns.iter().enumerate() {
                if self.files[fi].is_root(f.start_line, pass) {
                    out.push(FnRef { file: fi, item: ii });
                }
            }
        }
        out
    }

    /// Conservative reachability: BFS over name-resolved call edges from
    /// `roots`. Returns each reached fn with the call chain that first
    /// reached it (root first). Traversal skips test fns, the
    /// [`UBIQUITOUS`] names, and calls on lines carrying an
    /// `allow(<pass>)` annotation — an annotated call line is a vetted
    /// boundary for that pass.
    pub fn reachable_from(&self, roots: &[FnRef], pass: &str) -> BTreeMap<FnRef, Vec<String>> {
        let mut reached: BTreeMap<FnRef, Vec<String>> = BTreeMap::new();
        let mut queue: VecDeque<FnRef> = VecDeque::new();
        for &r in roots {
            if let Some(f) = self.syntax.get(r.file).and_then(|fs| fs.fns.get(r.item)) {
                reached.entry(r).or_insert_with(|| vec![f.name.clone()]);
                queue.push_back(r);
            }
        }
        while let Some(r) = queue.pop_front() {
            let Some(f) = self.syntax.get(r.file).and_then(|fs| fs.fns.get(r.item)) else {
                continue;
            };
            let chain = reached.get(&r).cloned().unwrap_or_default();
            for call in &f.calls {
                if UBIQUITOUS.contains(&call.callee.as_str()) {
                    continue;
                }
                if self.files[r.file].allows(call.line, pass) {
                    continue;
                }
                for &target in self.fns_named(&call.callee) {
                    if !self.edge_allowed(r.file, target.file) {
                        continue;
                    }
                    let tf = &self.syntax[target.file].fns[target.item];
                    if tf.is_test || reached.contains_key(&target) {
                        continue;
                    }
                    let mut c = chain.clone();
                    c.push(tf.name.clone());
                    reached.insert(target, c);
                    queue.push_back(target);
                }
            }
        }
        reached
    }
}

/// The crate dir name of a `crates/<dir>/src/…` path (`None` for the
/// workspace-root `src/`, `examples/`, or anything else).
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    let (dir, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(dir)
}

/// Scans one file's code view into [`FileSyntax`].
fn scan_file(sf: &SourceFile) -> FileSyntax {
    Scanner::new(sf).run()
}

/// One open brace on the scanner's stack.
enum Frame {
    /// A `fn` body (index into `fns`).
    Fn(usize),
    /// A `for`/`while`/`loop` body.
    Loop,
    /// Any other block; carries the guard bindings opened inside it.
    Other,
}

struct Scanner<'s> {
    sf: &'s SourceFile,
    out: FileSyntax,
    /// Open braces, innermost last. Each frame carries the indices of
    /// guard bindings whose scope it closes.
    stack: Vec<(Frame, Vec<usize>)>,
    /// Enclosing fn indices, innermost last (nested fns).
    fn_stack: Vec<usize>,
    loop_count: u32,
    /// `fn` keyword seen; waiting for the name.
    pending_fn_kw: bool,
    /// fn name + line seen; waiting for `{` (body) or `;` (declaration).
    pending_fn: Option<(String, usize)>,
    /// `for`/`while`/`loop` seen; the next `{` opens a loop body.
    pending_loop: bool,
    /// `let` statement state: Some((bound name, let line)) while the
    /// initializer is still being collected (until `;` at depth 0).
    pending_let: Option<LetState>,
    paren_depth: i32,
}

struct LetState {
    name: Option<String>,
    line: usize,
    /// Initializer text accumulates here once `=` is seen.
    init: Option<String>,
    /// Paren/bracket depth when the `let` started, so the closing `;`
    /// is matched at the same level (not one inside `[u8; 4]`).
    base_paren: i32,
}

impl<'s> Scanner<'s> {
    fn new(sf: &'s SourceFile) -> Scanner<'s> {
        Scanner {
            sf,
            out: FileSyntax { loop_depth: vec![0; sf.code.len()], ..FileSyntax::default() },
            stack: Vec::new(),
            fn_stack: Vec::new(),
            loop_count: 0,
            pending_fn_kw: false,
            pending_fn: None,
            pending_loop: false,
            pending_let: None,
            paren_depth: 0,
        }
    }

    fn run(mut self) -> FileSyntax {
        for line0 in 0..self.sf.code.len() {
            self.out.loop_depth[line0] = self.loop_count;
            let line = self.sf.code[line0].clone();
            self.scan_line(line0, &line);
            // A loop body opened mid-line counts for that line too.
            if self.loop_count > self.out.loop_depth[line0] {
                self.out.loop_depth[line0] = self.loop_count;
            }
        }
        // EOF closes whatever is still open (truncated input).
        let last = self.sf.code.len().saturating_sub(1);
        while let Some((frame, guards)) = self.stack.pop() {
            self.close_frame(frame, guards, last);
        }
        self.out
    }

    fn close_frame(&mut self, frame: Frame, guards: Vec<usize>, line0: usize) {
        for g in guards {
            if let Some(b) = self.out.guards.get_mut(g) {
                b.scope_end = line0;
            }
        }
        match frame {
            Frame::Fn(idx) => {
                if let Some(f) = self.out.fns.get_mut(idx) {
                    f.end_line = line0;
                }
                self.fn_stack.pop();
            }
            Frame::Loop => self.loop_count = self.loop_count.saturating_sub(1),
            Frame::Other => {}
        }
    }

    fn scan_line(&mut self, line0: usize, line: &str) {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let next_non_ws = chars[i..].iter().find(|c| !c.is_whitespace()).copied();
                self.on_ident(line0, &word, start, next_non_ws, &chars, i);
                continue;
            }
            match c {
                '{' => self.on_open_brace(line0),
                '}' => {
                    if let Some((frame, guards)) = self.stack.pop() {
                        self.close_frame(frame, guards, line0);
                    }
                }
                '(' | '[' => self.paren_depth += 1,
                ')' | ']' => self.paren_depth -= 1,
                ';' => self.on_semicolon(line0),
                '=' => self.on_equals(line0, &chars, i),
                _ => {}
            }
            if let Some(st) = self.pending_let.as_mut() {
                if let Some(init) = st.init.as_mut() {
                    init.push(c);
                }
            }
            i += 1;
        }
        // Statement text continues on the next line.
        if let Some(st) = self.pending_let.as_mut() {
            if let Some(init) = st.init.as_mut() {
                init.push(' ');
            }
        }
    }

    fn on_ident(
        &mut self,
        line0: usize,
        word: &str,
        _start: usize,
        next_non_ws: Option<char>,
        chars: &[char],
        end: usize,
    ) {
        // Accumulate initializer text before interpreting (so the lock
        // tokens land in `init`).
        if let Some(st) = self.pending_let.as_mut() {
            if let Some(init) = st.init.as_mut() {
                init.push_str(word);
            }
        }
        if self.pending_fn_kw {
            self.pending_fn_kw = false;
            // `fn(` is a fn-pointer type, not an item.
            if word != "fn" {
                self.pending_fn = Some((word.to_string(), line0));
                return;
            }
        }
        match word {
            "fn" => {
                // `fn` directly followed by `(` is a fn-pointer type.
                if next_non_ws != Some('(') {
                    self.pending_fn_kw = true;
                    self.pending_loop = false;
                }
            }
            "for" => {
                // `for<'a>` in a higher-ranked bound is a type, not a loop.
                if next_non_ws != Some('<') {
                    self.pending_loop = true;
                }
            }
            "while" | "loop" => self.pending_loop = true,
            "let" => {
                if self.pending_let.is_none() {
                    self.pending_let = Some(LetState {
                        name: None,
                        line: line0,
                        init: None,
                        base_paren: self.paren_depth,
                    });
                }
            }
            "mut" => {}
            _ => {
                // Bind the first plain ident after `let` as the name;
                // tuple/struct patterns (`let (a, b)`, `let Some(x)`) are
                // skipped — guards live in simple bindings in this tree.
                if let Some(st) = self.pending_let.as_mut() {
                    if st.name.is_none() && st.init.is_none() {
                        if word.chars().next().is_some_and(|c| c.is_uppercase()) || word == "_" {
                            self.pending_let = None;
                        } else {
                            st.name = Some(word.to_string());
                        }
                        return;
                    }
                }
                // A call site: ident directly followed by `(` (allowing
                // whitespace), not a macro (`ident!`), not a keyword,
                // not an uppercase constructor (`Some(…)`).
                let directly_called = chars.get(end).copied() == Some('(');
                if directly_called
                    && !KEYWORDS.contains(&word)
                    && !word.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    let is_method = preceding_punct(chars, _start) == Some('.');
                    if let Some(&fn_idx) = self.fn_stack.last() {
                        if let Some(f) = self.out.fns.get_mut(fn_idx) {
                            f.calls.push(CallSite {
                                callee: word.to_string(),
                                line: line0,
                                is_method,
                            });
                        }
                    }
                }
            }
        }
    }

    fn on_equals(&mut self, _line0: usize, chars: &[char], i: usize) {
        // `=` (not `==`, `=>`, `<=`, `>=`, `!=`, `+=` …) starts the
        // initializer.
        let prev = if i > 0 { chars.get(i - 1).copied() } else { None };
        let next = chars.get(i + 1).copied();
        let is_plain = next != Some('=')
            && next != Some('>')
            && !matches!(
                prev,
                Some('=')
                    | Some('<')
                    | Some('>')
                    | Some('!')
                    | Some('+')
                    | Some('-')
                    | Some('*')
                    | Some('/')
                    | Some('%')
                    | Some('&')
                    | Some('|')
                    | Some('^')
            );
        if is_plain {
            if let Some(st) = self.pending_let.as_mut() {
                if st.name.is_some() && st.init.is_none() {
                    st.init = Some(String::new());
                }
            }
        }
    }

    fn on_semicolon(&mut self, line0: usize) {
        // A `;` at the statement level ends a bodyless trait-method
        // declaration (`fn f(&self) -> T;`) — but not one inside an
        // array type in the return position (`-> [u8; 4]`).
        if self.paren_depth <= 0 {
            self.pending_fn = None;
            self.pending_fn_kw = false;
        }
        let Some(st) = self.pending_let.take() else { return };
        if self.paren_depth > st.base_paren {
            // `;` inside an array type `[u8; 4]` — statement continues.
            self.pending_let = Some(st);
            return;
        }
        self.finish_let(st);
        let _ = line0;
    }

    /// Ends a `let` statement: records a guard binding when the
    /// initializer collected so far acquires one.
    fn finish_let(&mut self, st: LetState) {
        let (Some(name), Some(init)) = (st.name, st.init) else { return };
        if !acquires_guard(&init) {
            return;
        }
        let idx = self.out.guards.len();
        self.out.guards.push(GuardBinding {
            name,
            line: st.line,
            init,
            // Filled in when the enclosing frame closes; EOF fallback.
            scope_end: self.sf.code.len().saturating_sub(1),
            fn_index: self.fn_stack.last().copied(),
        });
        if let Some((_, guards)) = self.stack.last_mut() {
            guards.push(idx);
        }
    }

    fn on_open_brace(&mut self, line0: usize) {
        // A `{` while a let-initializer is open starts a block/struct/
        // match expression (`let x = { … };`, `let x = match y { … };`).
        // Decide guard-ness from the text before the block — an
        // acquisition *inside* the block is scoped to the block and dies
        // there — and let any `let` inside the block register normally.
        if let Some(st) = self.pending_let.take() {
            if st.init.is_some() {
                self.finish_let(st);
            }
            // `let Pat { .. } = v;` destructuring (init is None): drop.
        }
        if let Some((name, start)) = self.pending_fn.take() {
            let idx = self.out.fns.len();
            self.out.fns.push(FnItem {
                name,
                start_line: start,
                end_line: start,
                calls: Vec::new(),
                is_test: self.sf.is_test(start),
            });
            self.fn_stack.push(idx);
            self.stack.push((Frame::Fn(idx), Vec::new()));
            self.pending_loop = false;
        } else if self.pending_loop {
            self.pending_loop = false;
            self.loop_count += 1;
            self.stack.push((Frame::Loop, Vec::new()));
        } else {
            self.stack.push((Frame::Other, Vec::new()));
        }
        let _ = line0;
    }
}

/// The punct char directly before `start`, skipping whitespace.
fn preceding_punct(chars: &[char], start: usize) -> Option<char> {
    chars[..start].iter().rev().find(|c| !c.is_whitespace()).copied()
}

/// Does a `let` initializer acquire a lock guard? Matches the std guard
/// constructors (`.lock()`, `.read()`, `.write()` — exact, no-arg, so
/// `io::Write::write(buf)` does not match) and the repo's poison-tolerant
/// helpers (`lock_tolerant(…)`, `read_lock(…)`, `write_lock(…)`, and the
/// pool's bare `lock(…)`).
pub fn acquires_guard(init: &str) -> bool {
    if init.contains(".lock()") || init.contains(".read()") || init.contains(".write()") {
        return true;
    }
    for helper in ["lock_tolerant", "read_lock", "write_lock", "lock"] {
        for pos in crate::passes::ident_occurrences(init, helper) {
            if init[pos..].chars().nth(helper.len()) == Some('(') {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(text: &str) -> (Vec<SourceFile>, FileSyntax) {
        let sf = SourceFile::parse("crates/x/src/a.rs", text);
        let syn = scan_file(&sf);
        (vec![sf], syn)
    }

    #[test]
    fn fn_items_and_spans_are_found() {
        let src = "pub fn alpha() {\n    beta();\n}\n\nfn beta() {\n    let x = 1;\n}\n";
        let (_, syn) = model_of(src);
        assert_eq!(syn.fns.len(), 2, "{:#?}", syn.fns);
        assert_eq!(syn.fns[0].name, "alpha");
        assert_eq!((syn.fns[0].start_line, syn.fns[0].end_line), (0, 2));
        assert_eq!(syn.fns[1].name, "beta");
        assert_eq!((syn.fns[1].start_line, syn.fns[1].end_line), (4, 6));
    }

    #[test]
    fn calls_are_attributed_to_the_enclosing_fn() {
        let src = "fn a() {\n    helper();\n    x.method(1);\n    pool::run(|| {});\n}\n";
        let (_, syn) = model_of(src);
        let calls: Vec<(&str, bool)> =
            syn.fns[0].calls.iter().map(|c| (c.callee.as_str(), c.is_method)).collect();
        assert!(calls.contains(&("helper", false)), "{calls:?}");
        assert!(calls.contains(&("method", true)), "{calls:?}");
        assert!(calls.contains(&("run", false)), "{calls:?}");
    }

    #[test]
    fn keywords_constructors_and_macros_are_not_calls() {
        let src = "fn a() {\n    if x(1) { }\n    let y = Some(2);\n    let z = vec![3];\n    match (w) { _ => {} }\n}\n";
        let (_, syn) = model_of(src);
        let names: Vec<&str> = syn.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["x"], "{names:?}");
    }

    #[test]
    fn guard_bindings_and_scopes() {
        let src = "fn a(m: &std::sync::Mutex<u32>) {\n    {\n        let mut g = m.lock().unwrap();\n        *g += 1;\n    }\n    other();\n}\n";
        let (files, syn) = model_of(src);
        assert_eq!(syn.guards.len(), 1, "{:#?}", syn.guards);
        let g = &syn.guards[0];
        assert_eq!(g.name, "g");
        assert_eq!(g.line, 2);
        assert_eq!(g.scope_end, 4, "guard dies at the inner block's close brace");
        assert_eq!(g.live_end(&files[0]), 4);
    }

    #[test]
    fn explicit_drop_ends_liveness_early() {
        let src = "fn a(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap();\n    use_it(&g);\n    drop(g);\n    later();\n}\n";
        let (files, syn) = model_of(src);
        assert_eq!(syn.guards[0].scope_end, 5);
        assert_eq!(syn.guards[0].live_end(&files[0]), 3, "drop(g) releases at line 3");
    }

    #[test]
    fn helper_acquisitions_are_guards_io_write_is_not() {
        assert!(acquires_guard("lock_tolerant(&self.session)"));
        assert!(acquires_guard("read_lock(&self.state)"));
        assert!(acquires_guard("lock(&shared.queue)"));
        assert!(acquires_guard("state.write()"));
        assert!(!acquires_guard("writer.write(buf)"));
        assert!(!acquires_guard("file.read_to_string(&mut s)"));
        assert!(!acquires_guard("block(&x)"));
    }

    #[test]
    fn loop_depth_tracks_nesting() {
        let src = "fn a() {\n    for i in 0..3 {\n        while x {\n            body();\n        }\n    }\n    tail();\n}\n";
        let (_, syn) = model_of(src);
        assert_eq!(syn.loop_depth[0], 0);
        // A header line (`for … {` / `while … {`) counts as inside the
        // body it opens — conservative for in-loop token rules.
        assert_eq!(syn.loop_depth[1], 1);
        assert_eq!(syn.loop_depth[2], 2);
        assert_eq!(syn.loop_depth[3], 2);
        assert_eq!(syn.loop_depth[6], 0);
    }

    #[test]
    fn name_based_reachability_walks_across_files() {
        let a = SourceFile::parse(
            "crates/x/src/a.rs",
            "// analyzer: root(hot-path-alloc) -- test root\nfn entry() {\n    shared_helper();\n}\n",
        );
        let b = SourceFile::parse(
            "crates/y/src/b.rs",
            "fn shared_helper() {\n    deep();\n}\nfn deep() {}\nfn unrelated() {}\n",
        );
        let files = vec![a, b];
        let model = SemanticModel::build(&files);
        let roots = model.roots_for("hot-path-alloc");
        assert_eq!(roots.len(), 1);
        let reached = model.reachable_from(&roots, "hot-path-alloc");
        let names: Vec<String> =
            reached.keys().map(|r| model.syntax[r.file].fns[r.item].name.clone()).collect();
        assert!(names.contains(&"entry".to_string()), "{names:?}");
        assert!(names.contains(&"shared_helper".to_string()), "{names:?}");
        assert!(names.contains(&"deep".to_string()), "{names:?}");
        assert!(!names.contains(&"unrelated".to_string()), "{names:?}");
        // The chain that reached `deep` goes root → helper → deep.
        let deep = reached
            .iter()
            .find(|(r, _)| model.syntax[r.file].fns[r.item].name == "deep")
            .map(|(_, chain)| chain.clone())
            .unwrap_or_default();
        assert_eq!(deep, vec!["entry", "shared_helper", "deep"]);
    }

    #[test]
    fn allow_on_a_call_line_prunes_traversal() {
        let a = SourceFile::parse(
            "crates/x/src/a.rs",
            "// analyzer: root(hot-path-alloc) -- test root\nfn entry() {\n    vetted(); // analyzer: allow(hot-path-alloc) -- bounded\n}\nfn vetted() {}\n",
        );
        let files = vec![a];
        let model = SemanticModel::build(&files);
        let reached = model.reachable_from(&model.roots_for("hot-path-alloc"), "hot-path-alloc");
        let names: Vec<String> =
            reached.keys().map(|r| model.syntax[r.file].fns[r.item].name.clone()).collect();
        assert!(!names.contains(&"vetted".to_string()), "{names:?}");
    }

    #[test]
    fn ubiquitous_names_are_not_traversed() {
        let a = SourceFile::parse(
            "crates/x/src/a.rs",
            "// analyzer: root(panic-freedom) -- test root\nfn entry() {\n    thing.get(0);\n}\nfn get() {}\n",
        );
        let files = vec![a];
        let model = SemanticModel::build(&files);
        let reached = model.reachable_from(&model.roots_for("panic-freedom"), "panic-freedom");
        assert_eq!(reached.len(), 1, "only the root itself");
    }

    #[test]
    fn test_fns_are_excluded_from_traversal() {
        let a = SourceFile::parse(
            "crates/x/src/a.rs",
            "// analyzer: root(panic-freedom) -- test root\nfn entry() {\n    helper();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        let files = vec![a];
        let model = SemanticModel::build(&files);
        let reached = model.reachable_from(&model.roots_for("panic-freedom"), "panic-freedom");
        assert_eq!(reached.len(), 1, "the cfg(test) helper is not walked");
    }
}
