//! Source model: a lightweight Rust scanner good enough to enforce
//! line-level invariants without a full parser.
//!
//! A [`SourceFile`] carries, per line: the raw text, a *code view* with
//! comments and string/char-literal contents blanked out (so tokens inside
//! docs or format strings never trigger a pass), whether the line sits
//! inside a `#[cfg(test)]` item (test code is exempt from every pass), and
//! the set of pass ids suppressed by `// analyzer: allow(<pass>) -- <reason>`
//! annotations.
//!
//! Two annotation forms share the `// analyzer:` tag:
//!
//! * `allow(<pass>) -- <reason>` suppresses `pass` on the annotated line
//!   (and, for call-graph passes, stops traversal through calls made on
//!   that line);
//! * `root(<pass>) -- <reason>` marks the next `fn` item as an entry
//!   point the call-graph pass `pass` walks from (hot-path roots, wire
//!   request entries).

use std::fs;
use std::io;
use std::path::Path;

/// One scanned Rust source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw lines as read from disk.
    pub raw: Vec<String>,
    /// Lines with comments and string/char-literal bodies blanked.
    pub code: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    test: Vec<bool>,
    /// Per line: `(pass, reason)` pairs `allow` annotations attach to it.
    allows: Vec<Vec<(String, String)>>,
    /// Per line: pass ids a `root` annotation attaches to it (the line is
    /// expected to open a `fn` item).
    roots: Vec<Vec<String>>,
    /// 0-based lines carrying a malformed or reason-less annotation.
    pub bad_annotations: Vec<usize>,
}

impl SourceFile {
    /// Scans `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let (stripped, comment_abs) = strip(text);
        let code: Vec<String> = stripped.lines().map(str::to_string).collect();
        debug_assert_eq!(raw.len(), code.len(), "{rel_path}: stripping must preserve lines");
        let test = mark_tests(&code);
        let comment_col = comment_columns(text, raw.len(), &comment_abs);
        let (allows, roots, bad_annotations) = collect_allows(&raw, &code, &comment_col);
        SourceFile {
            rel_path: rel_path.to_string(),
            raw,
            code,
            test,
            allows,
            roots,
            bad_annotations,
        }
    }

    /// Reads and scans `root/rel_path`.
    pub fn load(root: &Path, rel_path: &str) -> io::Result<SourceFile> {
        let text = fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::parse(rel_path, &text))
    }

    /// Is the 0-based line inside a `#[cfg(test)]` item?
    pub fn is_test(&self, line0: usize) -> bool {
        self.test.get(line0).copied().unwrap_or(false)
    }

    /// Does an annotation suppress `pass` on the 0-based line?
    pub fn allows(&self, line0: usize, pass: &str) -> bool {
        self.allows.get(line0).is_some_and(|v| v.iter().any(|(p, _)| p == pass))
    }

    /// The reason attached to the `allow(pass)` annotation on the
    /// 0-based line, if one is in effect there.
    pub fn allow_reason(&self, line0: usize, pass: &str) -> Option<&str> {
        self.allows.get(line0)?.iter().find(|(p, _)| p == pass).map(|(_, reason)| reason.as_str())
    }

    /// Every `(line0, pass, reason)` allow annotation in the file, in
    /// line order — the audit trail the `--json` report emits.
    pub fn allow_entries(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.allows
            .iter()
            .enumerate()
            .flat_map(|(i, v)| v.iter().map(move |(p, r)| (i, p.as_str(), r.as_str())))
    }

    /// Does a `root(pass)` annotation target the 0-based line?
    pub fn is_root(&self, line0: usize, pass: &str) -> bool {
        self.roots.get(line0).is_some_and(|v| v.iter().any(|p| p == pass))
    }
}

/// Blanks comments and string/char-literal contents, preserving the line
/// structure exactly (every `\n` survives; stripped characters become
/// spaces). Handles line comments, nested block comments, plain, raw,
/// byte, and raw byte strings (`"…"`, `r#"…"#`, `b"…"`, `br#"…"#`), char
/// and byte literals, and leaves lifetimes (`'a`) alone.
///
/// Also returns the absolute char index of every line comment's `//`,
/// straight from the state machine — so annotation parsing never
/// mistakes a `//` inside a string literal for a comment.
fn strip(text: &str) -> (String, Vec<usize>) {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut comment_starts = Vec::new();
    let mut st = St::Code;
    let mut i = 0usize;
    let at = |k: usize| b.get(k).copied().unwrap_or('\0');
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == '/' && at(i + 1) == '/' {
                    st = St::LineComment;
                    comment_starts.push(i);
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && at(i + 1) == '*' {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if (c == 'r' || (c == 'b' && at(i + 1) == 'r'))
                    && (i == 0 || !is_ident(at(i - 1)))
                    && {
                        let after_r = if c == 'r' { i + 1 } else { i + 2 };
                        at(after_r) == '"' || at(after_r) == '#'
                    }
                {
                    // Raw string r"..." / r#"..."# (optionally with a `b`
                    // byte prefix — raw semantics, no escapes either way):
                    // count the hashes.
                    let mut h = 0u32;
                    let mut j = if c == 'r' { i + 1 } else { i + 2 };
                    while at(j) == '#' {
                        h += 1;
                        j += 1;
                    }
                    if at(j) == '"' {
                        st = St::RawStr(h);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '"'
                    || (c == 'b' && at(i + 1) == '"' && (i == 0 || !is_ident(at(i - 1))))
                {
                    // Plain or byte string — escape semantics either way.
                    st = St::Str;
                    if c == 'b' {
                        out.push(' ');
                        i += 1;
                    }
                    out.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime (`'a`, `'static`, `'_`) vs char literal: a
                    // lifetime's next char starts an identifier and the one
                    // after is not a closing quote.
                    if (is_ident(at(i + 1)) && at(i + 2) != '\'') && at(i + 1) != '\\' {
                        out.push(c);
                        i += 1;
                    } else {
                        st = St::CharLit;
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(d) => {
                if c == '/' && at(i + 1) == '*' {
                    st = St::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && at(i + 1) == '/' {
                    st = if d == 1 { St::Code } else { St::BlockComment(d - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // The escaped char may be absent at EOF (truncated
                    // input): emit exactly as many chars as are consumed.
                    out.push(' ');
                    if i + 1 < b.len() {
                        out.push(if at(i + 1) == '\n' { '\n' } else { ' ' });
                    }
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut k = 0u32;
                    while k < h && at(j) == '#' {
                        k += 1;
                        j += 1;
                    }
                    if k == h {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::CharLit => {
                if c == '\\' {
                    out.push(' ');
                    if i + 1 < b.len() {
                        out.push(if at(i + 1) == '\n' { '\n' } else { ' ' });
                    }
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    (out, comment_starts)
}

/// Converts absolute char indices of `//` starts into a per-line column
/// (char offset within the line), `None` for comment-free lines.
fn comment_columns(text: &str, n_lines: usize, comment_abs: &[usize]) -> Vec<Option<usize>> {
    let mut line_starts = vec![0usize];
    for (ci, c) in text.chars().enumerate() {
        if c == '\n' {
            line_starts.push(ci + 1);
        }
    }
    let mut cols = vec![None; n_lines];
    for &abs in comment_abs {
        let line = match line_starts.binary_search(&abs) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        if line < n_lines && cols[line].is_none() {
            cols[line] = Some(abs - line_starts[line]);
        }
    }
    cols
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks the lines of every `#[cfg(test)]` item (attribute through the
/// matching close brace, or through `;` for brace-less items).
fn mark_tests(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'item: while j < code.len() {
            test[j] = true;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => break 'item,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    test
}

const TAG: &str = "analyzer:";

/// A parsed `// analyzer: …` annotation body.
enum Annotation {
    /// `allow(<pass>) -- <reason>`.
    Allow(String, String),
    /// `root(<pass>) -- <reason>`.
    Root(String),
}

/// Extracts `// analyzer: allow(<pass>) -- <reason>` and
/// `// analyzer: root(<pass>) -- <reason>` annotations. A trailing
/// annotation attaches to its own line; a whole-line annotation attaches
/// to the next line that has code on it (for `root`, that is expected to
/// be the `fn` item it marks). A reason is mandatory — annotations
/// without one are reported, not honored. The tag must open the comment;
/// prose *mentioning* the grammar (like this doc comment) is never an
/// annotation.
#[allow(clippy::type_complexity)]
fn collect_allows(
    raw: &[String],
    code: &[String],
    comment_col: &[Option<usize>],
) -> (Vec<Vec<(String, String)>>, Vec<Vec<String>>, Vec<usize>) {
    let mut allows: Vec<Vec<(String, String)>> = vec![Vec::new(); raw.len()];
    let mut roots: Vec<Vec<String>> = vec![Vec::new(); raw.len()];
    let mut bad = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let Some(col) = comment_col.get(idx).copied().flatten() else { continue };
        let comment: String = line.chars().skip(col).collect();
        // Strip the `//` marker (and doc markers `///`/`//!`), then the
        // comment must *begin* with the tag to count as an annotation.
        let body = comment.trim_start_matches('/');
        let body = body.strip_prefix('!').unwrap_or(body).trim_start();
        let Some(rest) = body.strip_prefix(TAG) else { continue };
        let Some(parsed) = parse_annotation(rest.trim()) else {
            bad.push(idx);
            continue;
        };
        let own_line_has_code = !code[idx].trim().is_empty();
        let target = if own_line_has_code {
            idx
        } else {
            match (idx + 1..raw.len()).find(|&j| !code[j].trim().is_empty()) {
                Some(j) => j,
                None => {
                    bad.push(idx);
                    continue;
                }
            }
        };
        match parsed {
            Annotation::Allow(pass, reason) => allows[target].push((pass, reason)),
            Annotation::Root(pass) => roots[target].push(pass),
        }
    }
    (allows, roots, bad)
}

/// Parses `allow(<pass>) -- <reason>` or `root(<pass>) -- <reason>`.
fn parse_annotation(body: &str) -> Option<Annotation> {
    let (kind, rest) = if let Some(r) = body.strip_prefix("allow(") {
        ("allow", r)
    } else if let Some(r) = body.strip_prefix("root(") {
        ("root", r)
    } else {
        return None;
    };
    let close = rest.find(')')?;
    let pass = rest[..close].trim();
    if pass.is_empty() || !pass.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(match kind {
        "allow" => Annotation::Allow(pass.to_string(), reason.to_string()),
        _ => Annotation::Root(pass.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_preserving_lines() {
        let src =
            "let a = 1; // HashMap here\nlet s = \"Ordering::SeqCst\";\n/* panic!\n*/ let b = 2;\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.raw.len(), f.code.len());
        assert!(!f.code[0].contains("HashMap"));
        assert!(!f.code[1].contains("SeqCst"));
        assert!(!f.code[2].contains("panic"));
        assert!(f.code[3].contains("let b"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let r = r#\"panic!\"#; }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.code[0].contains("<'a>"), "{}", f.code[0]);
        assert!(!f.code[0].contains("panic"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test(0));
        assert!(f.is_test(1));
        assert!(f.is_test(3));
        assert!(f.is_test(4));
        assert!(!f.is_test(5));
    }

    #[test]
    fn trailing_allow_hits_its_own_line() {
        let src = "x.unwrap(); // analyzer: allow(panic-freedom) -- startup path\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows(0, "panic-freedom"));
        assert!(!f.allows(0, "determinism"));
        assert!(f.bad_annotations.is_empty());
    }

    #[test]
    fn whole_line_allow_hits_the_next_code_line() {
        let src = "// analyzer: allow(determinism) -- lookup-only map\n\nuse std::collections::HashMap;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "determinism"));
        assert!(f.allows(2, "determinism"));
    }

    #[test]
    fn reasonless_annotation_is_malformed() {
        let src = "x.unwrap(); // analyzer: allow(panic-freedom)\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "panic-freedom"));
        assert_eq!(f.bad_annotations, vec![0]);
    }

    #[test]
    fn annotation_inside_string_is_ignored() {
        let src = "let s = \"// analyzer: allow(x) -- nope\"; y.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "x"));
        assert!(f.bad_annotations.is_empty());
    }

    #[test]
    fn doc_comment_mentioning_the_grammar_is_not_an_annotation() {
        let src = "//! grammar: `// analyzer: allow(<pass>) -- <reason>`\n\
                   /// see `// analyzer: allow(x)` for details\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(2, "x"));
        assert!(f.bad_annotations.is_empty(), "{:?}", f.bad_annotations);
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        // `br#"…"#` has raw semantics (no escapes); `b"…"` has escape
        // semantics. Both previously fell into the plain-string state at
        // the `b`, leaking contents and desynchronizing on `\"`.
        let src =
            "let a = br#\"panic! \"q\" unwrap\"#; let b = b\"todo! \\\" more\"; x.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.code[0].contains("panic"), "{}", f.code[0]);
        assert!(!f.code[0].contains("todo"), "{}", f.code[0]);
        assert!(!f.code[0].contains("more"), "{}", f.code[0]);
        assert!(f.code[0].contains(".unwrap()"), "code after the literals: {}", f.code[0]);
    }

    #[test]
    fn raw_byte_string_with_interior_quote_does_not_desync() {
        let src = "let a = br\"C:\\\"; y.unwrap();\nz.expect(\"later\");\n";
        let f = SourceFile::parse("x.rs", src);
        // The raw byte string ends at its first `"` — `\` is not an
        // escape — so the unwrap on the same line stays visible.
        assert!(f.code[0].contains(".unwrap()"), "{}", f.code[0]);
        assert!(f.code[1].contains(".expect("), "{}", f.code[1]);
    }

    #[test]
    fn truncated_escape_at_eof_keeps_lines_aligned() {
        // A string whose trailing `\` is the file's last char used to
        // emit more chars than it consumed, desynchronizing raw vs code.
        let f = SourceFile::parse("x.rs", "let s = \"abc\\");
        assert_eq!(f.raw.len(), f.code.len());
        let f = SourceFile::parse("x.rs", "let c = '\\");
        assert_eq!(f.raw.len(), f.code.len());
    }

    #[test]
    fn nested_block_comments_resync_exactly() {
        let src = "/* outer /* inner */ still comment panic! */ x.unwrap();\n/*/* a */*/ y.expect(\"b\");\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.code[0].contains("panic"), "{}", f.code[0]);
        assert!(f.code[0].contains(".unwrap()"), "{}", f.code[0]);
        assert!(f.code[1].contains(".expect("), "{}", f.code[1]);
    }

    #[test]
    fn multiline_raw_string_is_blanked_line_by_line() {
        let src = "let q = r#\"line one unwrap\nline two panic!\n\"#; z.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.code[0].contains("unwrap"), "{}", f.code[0]);
        assert!(!f.code[1].contains("panic"), "{}", f.code[1]);
        assert!(f.code[2].contains(".unwrap()"), "{}", f.code[2]);
    }

    #[test]
    fn allow_reasons_are_recorded() {
        let src = "x.unwrap(); // analyzer: allow(panic-freedom) -- startup path\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allow_reason(0, "panic-freedom"), Some("startup path"));
        assert_eq!(f.allow_reason(0, "determinism"), None);
        let entries: Vec<_> = f.allow_entries().collect();
        assert_eq!(entries, vec![(0, "panic-freedom", "startup path")]);
    }

    #[test]
    fn root_annotation_targets_the_next_fn_line() {
        let src = "// analyzer: root(hot-path-alloc) -- shed path\npub fn admit() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_root(0, "hot-path-alloc"));
        assert!(f.is_root(1, "hot-path-alloc"));
        assert!(!f.is_root(1, "panic-freedom"));
        assert!(f.bad_annotations.is_empty());
    }

    #[test]
    fn reasonless_root_is_malformed() {
        let src = "// analyzer: root(hot-path-alloc)\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_root(1, "hot-path-alloc"));
        assert_eq!(f.bad_annotations, vec![0]);
    }

    #[test]
    fn string_spanning_lines_does_not_register_comments() {
        // A `//`-bearing string whose line ends inside the literal (via
        // `\` continuation) must not look like a comment.
        let src = "let s = \"add `// analyzer: allow(p) -- r` here \\\n   rest\";\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "p"));
        assert!(!f.allows(1, "p"));
        assert!(f.bad_annotations.is_empty());
    }
}
