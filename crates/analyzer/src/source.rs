//! Source model: a lightweight Rust scanner good enough to enforce
//! line-level invariants without a full parser.
//!
//! A [`SourceFile`] carries, per line: the raw text, a *code view* with
//! comments and string/char-literal contents blanked out (so tokens inside
//! docs or format strings never trigger a pass), whether the line sits
//! inside a `#[cfg(test)]` item (test code is exempt from every pass), and
//! the set of pass ids suppressed by `// analyzer: allow(<pass>) -- <reason>`
//! annotations.

use std::fs;
use std::io;
use std::path::Path;

/// One scanned Rust source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw lines as read from disk.
    pub raw: Vec<String>,
    /// Lines with comments and string/char-literal bodies blanked.
    pub code: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    test: Vec<bool>,
    /// Per line: pass ids an `allow` annotation suppresses on it.
    allows: Vec<Vec<String>>,
    /// 0-based lines carrying a malformed or reason-less annotation.
    pub bad_annotations: Vec<usize>,
}

impl SourceFile {
    /// Scans `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let (stripped, comment_abs) = strip(text);
        let code: Vec<String> = stripped.lines().map(str::to_string).collect();
        debug_assert_eq!(raw.len(), code.len(), "{rel_path}: stripping must preserve lines");
        let test = mark_tests(&code);
        let comment_col = comment_columns(text, raw.len(), &comment_abs);
        let (allows, bad_annotations) = collect_allows(&raw, &code, &comment_col);
        SourceFile { rel_path: rel_path.to_string(), raw, code, test, allows, bad_annotations }
    }

    /// Reads and scans `root/rel_path`.
    pub fn load(root: &Path, rel_path: &str) -> io::Result<SourceFile> {
        let text = fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::parse(rel_path, &text))
    }

    /// Is the 0-based line inside a `#[cfg(test)]` item?
    pub fn is_test(&self, line0: usize) -> bool {
        self.test.get(line0).copied().unwrap_or(false)
    }

    /// Does an annotation suppress `pass` on the 0-based line?
    pub fn allows(&self, line0: usize, pass: &str) -> bool {
        self.allows.get(line0).is_some_and(|v| v.iter().any(|p| p == pass))
    }
}

/// Blanks comments and string/char-literal contents, preserving the line
/// structure exactly (every `\n` survives; stripped characters become
/// spaces). Handles line comments, nested block comments, plain and raw
/// strings, char literals, and leaves lifetimes (`'a`) alone.
///
/// Also returns the absolute char index of every line comment's `//`,
/// straight from the state machine — so annotation parsing never
/// mistakes a `//` inside a string literal for a comment.
fn strip(text: &str) -> (String, Vec<usize>) {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut comment_starts = Vec::new();
    let mut st = St::Code;
    let mut i = 0usize;
    let at = |k: usize| b.get(k).copied().unwrap_or('\0');
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == '/' && at(i + 1) == '/' {
                    st = St::LineComment;
                    comment_starts.push(i);
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && at(i + 1) == '*' {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == 'r'
                    && (at(i + 1) == '"' || at(i + 1) == '#')
                    && (i == 0 || !is_ident(at(i - 1)))
                {
                    // Raw string r"..." / r#"..."# — count the hashes.
                    let mut h = 0u32;
                    let mut j = i + 1;
                    while at(j) == '#' {
                        h += 1;
                        j += 1;
                    }
                    if at(j) == '"' {
                        st = St::RawStr(h);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime (`'a`, `'static`, `'_`) vs char literal: a
                    // lifetime's next char starts an identifier and the one
                    // after is not a closing quote.
                    if (is_ident(at(i + 1)) && at(i + 2) != '\'') && at(i + 1) != '\\' {
                        out.push(c);
                        i += 1;
                    } else {
                        st = St::CharLit;
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(d) => {
                if c == '/' && at(i + 1) == '*' {
                    st = St::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && at(i + 1) == '/' {
                    st = if d == 1 { St::Code } else { St::BlockComment(d - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    out.push(if at(i + 1) == '\n' { '\n' } else { ' ' });
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut k = 0u32;
                    while k < h && at(j) == '#' {
                        k += 1;
                        j += 1;
                    }
                    if k == h {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::CharLit => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    (out, comment_starts)
}

/// Converts absolute char indices of `//` starts into a per-line column
/// (char offset within the line), `None` for comment-free lines.
fn comment_columns(text: &str, n_lines: usize, comment_abs: &[usize]) -> Vec<Option<usize>> {
    let mut line_starts = vec![0usize];
    for (ci, c) in text.chars().enumerate() {
        if c == '\n' {
            line_starts.push(ci + 1);
        }
    }
    let mut cols = vec![None; n_lines];
    for &abs in comment_abs {
        let line = match line_starts.binary_search(&abs) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        if line < n_lines && cols[line].is_none() {
            cols[line] = Some(abs - line_starts[line]);
        }
    }
    cols
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks the lines of every `#[cfg(test)]` item (attribute through the
/// matching close brace, or through `;` for brace-less items).
fn mark_tests(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'item: while j < code.len() {
            test[j] = true;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => break 'item,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    test
}

const TAG: &str = "analyzer:";

/// Extracts `// analyzer: allow(<pass>) -- <reason>` annotations. A
/// trailing annotation suppresses its own line; a whole-line annotation
/// suppresses the next line that has code on it. A reason is mandatory —
/// annotations without one are reported, not honored. The tag must open
/// the comment; prose *mentioning* the grammar (like this doc comment)
/// is never an annotation.
fn collect_allows(
    raw: &[String],
    code: &[String],
    comment_col: &[Option<usize>],
) -> (Vec<Vec<String>>, Vec<usize>) {
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); raw.len()];
    let mut bad = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let Some(col) = comment_col.get(idx).copied().flatten() else { continue };
        let comment: String = line.chars().skip(col).collect();
        // Strip the `//` marker (and doc markers `///`/`//!`), then the
        // comment must *begin* with the tag to count as an annotation.
        let body = comment.trim_start_matches('/');
        let body = body.strip_prefix('!').unwrap_or(body).trim_start();
        let Some(rest) = body.strip_prefix(TAG) else { continue };
        let Some(parsed) = parse_allow(rest.trim()) else {
            bad.push(idx);
            continue;
        };
        let own_line_has_code = !code[idx].trim().is_empty();
        let target = if own_line_has_code {
            idx
        } else {
            match (idx + 1..raw.len()).find(|&j| !code[j].trim().is_empty()) {
                Some(j) => j,
                None => {
                    bad.push(idx);
                    continue;
                }
            }
        };
        allows[target].push(parsed);
    }
    (allows, bad)
}

/// Parses `allow(<pass>) -- <reason>`; returns the pass id.
fn parse_allow(body: &str) -> Option<String> {
    let rest = body.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let pass = rest[..close].trim();
    if pass.is_empty() || !pass.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(pass.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_preserving_lines() {
        let src =
            "let a = 1; // HashMap here\nlet s = \"Ordering::SeqCst\";\n/* panic!\n*/ let b = 2;\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.raw.len(), f.code.len());
        assert!(!f.code[0].contains("HashMap"));
        assert!(!f.code[1].contains("SeqCst"));
        assert!(!f.code[2].contains("panic"));
        assert!(f.code[3].contains("let b"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let r = r#\"panic!\"#; }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.code[0].contains("<'a>"), "{}", f.code[0]);
        assert!(!f.code[0].contains("panic"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test(0));
        assert!(f.is_test(1));
        assert!(f.is_test(3));
        assert!(f.is_test(4));
        assert!(!f.is_test(5));
    }

    #[test]
    fn trailing_allow_hits_its_own_line() {
        let src = "x.unwrap(); // analyzer: allow(panic-freedom) -- startup path\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows(0, "panic-freedom"));
        assert!(!f.allows(0, "determinism"));
        assert!(f.bad_annotations.is_empty());
    }

    #[test]
    fn whole_line_allow_hits_the_next_code_line() {
        let src = "// analyzer: allow(determinism) -- lookup-only map\n\nuse std::collections::HashMap;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "determinism"));
        assert!(f.allows(2, "determinism"));
    }

    #[test]
    fn reasonless_annotation_is_malformed() {
        let src = "x.unwrap(); // analyzer: allow(panic-freedom)\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "panic-freedom"));
        assert_eq!(f.bad_annotations, vec![0]);
    }

    #[test]
    fn annotation_inside_string_is_ignored() {
        let src = "let s = \"// analyzer: allow(x) -- nope\"; y.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "x"));
        assert!(f.bad_annotations.is_empty());
    }

    #[test]
    fn doc_comment_mentioning_the_grammar_is_not_an_annotation() {
        let src = "//! grammar: `// analyzer: allow(<pass>) -- <reason>`\n\
                   /// see `// analyzer: allow(x)` for details\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(2, "x"));
        assert!(f.bad_annotations.is_empty(), "{:?}", f.bad_annotations);
    }

    #[test]
    fn string_spanning_lines_does_not_register_comments() {
        // A `//`-bearing string whose line ends inside the literal (via
        // `\` continuation) must not look like a comment.
        let src = "let s = \"add `// analyzer: allow(p) -- r` here \\\n   rest\";\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.allows(0, "p"));
        assert!(!f.allows(1, "p"));
        assert!(f.bad_annotations.is_empty());
    }
}
