//! Pass 3: panic freedom.
//!
//! A worker that panics mid-epoch poisons the scoped-thread join and
//! takes the whole run (and under the supervisor, the whole grid) down
//! with it. PR 2's fault-injection layer exists precisely to convert
//! failures into typed outcomes, so panicking shortcuts are banned in
//! `sgd-core` runner/engine code and in the LIBSVM parser (the one place
//! that consumes *user* data):
//!
//! * `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!` — convert to typed errors, or annotate with
//!   `// analyzer: allow(panic-freedom) -- <why it cannot fire>`;
//! * in `libsvm.rs` only, `[idx]` indexing into parsed fields — user
//!   input must flow through `get`/iterators, never trusted offsets.

use super::{basename_in, finding, Finding, Pass};
use crate::source::SourceFile;

const PANIC_TOKENS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// The user-data parser where indexing itself is also banned.
const PARSER_FILE: &str = "libsvm.rs";

pub struct PanicFreedom;

impl Pass for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic! in sgd-core runner paths or the LIBSVM parser"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/core/src/") && rel_path.ends_with(".rs"))
            || basename_in(rel_path, &[PARSER_FILE])
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        for tok in PANIC_TOKENS {
            if code.contains(tok) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` in a panic-free zone: convert to a typed error (EngineError/\
                         ParseError) or justify with an allow annotation"
                    ),
                ));
            }
        }
        if basename_in(&sf.rel_path, &[PARSER_FILE]) {
            if let Some(col) = user_data_index(code) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "direct `[..]` indexing at column {} in the LIBSVM parser: user input \
                         must go through `get`/iterators so malformed rows surface as ParseError",
                        col + 1
                    ),
                ));
            }
        }
    }
}

/// Detects `ident[expr]` / `)[expr]` indexing (a panic site on bad input),
/// while letting through type positions (`[Scalar]`, `Vec<[u8; 4]>`),
/// array literals (`= [0; n]`), and attribute lines (`#[derive(...)]`).
fn user_data_index(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    if chars.iter().find(|c| !c.is_whitespace()) == Some(&'#') {
        return None;
    }
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        // Indexing has an expression (ident, `)` or `]`) directly before
        // the bracket; type ascriptions (`: [u8; 4]`), slices-of (`&[T]`),
        // array literals (`= [...]`), and macros (`vec![..]`) do not.
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace()).copied();
        if matches!(prev, Some(p) if super::is_ident_char(p) || p == ')' || p == ']') {
            return Some(i);
        }
    }
    None
}
