//! Pass 3: panic freedom.
//!
//! A worker that panics mid-epoch poisons the scoped-thread join and
//! takes the whole run (and under the supervisor, the whole grid) down
//! with it. PR 2's fault-injection layer exists precisely to convert
//! failures into typed outcomes, so panicking shortcuts are banned in
//! `sgd-core` runner/engine code, in the whole serving crate (a panic
//! there takes the endpoint down mid-request), and in the parsers that
//! consume *untrusted* bytes:
//!
//! * `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!` — convert to typed errors, or annotate with
//!   `// analyzer: allow(panic-freedom) -- <why it cannot fire>`;
//! * in the untrusted-byte parsers (`libsvm.rs`, and the serving crate's
//!   `checkpoint.rs` and `wire.rs`) and in the overload decision paths
//!   (`admission.rs`, whose shed/reject/deadline branches run exactly
//!   when the system is already degraded), `[idx]` indexing into parsed
//!   fields — wire/file input and queue state must flow through
//!   `get`/iterators, never trusted offsets.

use super::{basename_in, finding, Finding, Pass};
use crate::semantic::SemanticModel;
use crate::source::SourceFile;

const PANIC_TOKENS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// The files where indexing itself is also banned: the untrusted-byte
/// parsers — LIBSVM text (datagen), checkpoint bytes and wire lines
/// (serve) — plus the overload decision paths in `admission.rs`, which
/// run exactly when the system is already degraded and must not add a
/// panic to an overload.
const PARSER_FILES: [&str; 4] = ["libsvm.rs", "checkpoint.rs", "wire.rs", "admission.rs"];

pub struct PanicFreedom;

impl Pass for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic! in sgd-core runners, sgd-serve, or the untrusted-byte parsers"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        let core = rel_path.starts_with("crates/core/src/");
        let serve = rel_path.starts_with("crates/serve/src/");
        ((core || serve) && rel_path.ends_with(".rs")) || basename_in(rel_path, &PARSER_FILES)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        for tok in PANIC_TOKENS {
            if code.contains(tok) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` in a panic-free zone: convert to a typed error (EngineError/\
                         ParseError) or justify with an allow annotation"
                    ),
                ));
            }
        }
        if basename_in(&sf.rel_path, &PARSER_FILES) {
            if let Some(col) = user_data_index(code) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "direct `[..]` indexing at column {} in an untrusted-byte parser: \
                         wire/file input must go through `get`/iterators so malformed data \
                         surfaces as a typed error",
                        col + 1
                    ),
                ));
            }
        }
    }

    /// Transitive upgrade: the file list above covers where panics are
    /// *written*; this covers where they are *reachable from*. Functions
    /// annotated `// analyzer: root(panic-freedom) -- …` (the wire
    /// request entry points) seed a call-graph walk, and panic tokens in
    /// any reached function are flagged — but only in files the line
    /// scope does not already cover, so nothing is reported twice. The
    /// analyzer's own sources are excluded (name-based resolution would
    /// chase ubiquitous names like `run` into this crate, which no
    /// request reaches).
    fn check_model(&self, model: &SemanticModel<'_>, out: &mut Vec<Finding>) {
        let roots = model.roots_for(self.id());
        let reached = model.reachable_from(&roots, self.id());
        for (r, chain) in &reached {
            let sf = &model.files[r.file];
            if self.in_scope(&sf.rel_path) || sf.rel_path.starts_with("crates/analyzer/") {
                continue;
            }
            let Some(item) = model.item(*r) else { continue };
            if item.is_test {
                continue;
            }
            for line0 in item.start_line..=item.end_line.min(sf.code.len().saturating_sub(1)) {
                let code = &sf.code[line0];
                for tok in PANIC_TOKENS {
                    if code.contains(tok) {
                        out.push(finding(
                            self.id(),
                            sf,
                            line0,
                            format!(
                                "`{tok}` is reachable from a wire entry point (as {}): a \
                                 panic here takes a request-serving thread down — convert \
                                 to a typed error or justify with an allow annotation",
                                chain.join(" -> "),
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Detects `ident[expr]` / `)[expr]` indexing (a panic site on bad input),
/// while letting through type positions (`[Scalar]`, `Vec<[u8; 4]>`),
/// array literals (`= [0; n]`), and attribute lines (`#[derive(...)]`).
fn user_data_index(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    if chars.iter().find(|c| !c.is_whitespace()) == Some(&'#') {
        return None;
    }
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        // Indexing has an expression (ident, `)` or `]`) directly before
        // the bracket; type ascriptions (`: [u8; 4]`), slices-of (`&[T]`),
        // array literals (`= [...]`), and macros (`vec![..]`) do not.
        let Some(j) = chars[..i].iter().rposition(|c| !c.is_whitespace()) else {
            continue;
        };
        let p = chars[j];
        if !(super::is_ident_char(p) || p == ')' || p == ']') {
            continue;
        }
        // A lifetime before the bracket (`&'a [u8]`) or a keyword
        // (`&mut [f64]`, `dyn [..]`, `in [..]`, `return [..]`) is a type
        // position or fresh expression, not an indexed one: skip back
        // over the identifier and inspect it.
        if super::is_ident_char(p) {
            let start = chars[..j + 1]
                .iter()
                .rposition(|c| !super::is_ident_char(*c))
                .map(|k| k + 1)
                .unwrap_or(0);
            if start > 0 && chars.get(start.wrapping_sub(1)) == Some(&'\'') {
                continue;
            }
            let ident: String = chars[start..j + 1].iter().collect();
            if ["mut", "dyn", "in", "as", "return", "break", "else", "match"]
                .contains(&ident.as_str())
            {
                continue;
            }
        }
        return Some(i);
    }
    None
}
