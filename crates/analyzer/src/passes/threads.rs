//! Pass 5: thread-spawn discipline.
//!
//! Detached `thread::spawn` threads outlive the run that created them:
//! they keep mutating the shared model after the supervisor declared an
//! outcome, and their panics vanish instead of failing the run. And
//! since the persistent worker pool landed, ad-hoc `thread::scope`
//! fork-join is banned too: scoped workers start with a fresh
//! thread-local context, so they silently drop the caller's
//! `with_threads` width (the oversubscription bug the pool fixed) and
//! bypass the pool's panic-propagation contract. Every form of thread
//! creation must therefore live in `pool.rs` (the persistent pool plus
//! its measured fork-join baseline), and everything else routes work
//! through `sgd_linalg::pool::{run, with_threads}`.

use super::{basename_in, finding, Finding, Pass};
use crate::source::SourceFile;

/// The modules that own thread creation.
const ALLOWED_MODULES: [&str; 1] = ["pool.rs"];

pub struct ThreadDiscipline;

impl Pass for ThreadDiscipline {
    fn id(&self) -> &'static str {
        "thread-discipline"
    }

    fn description(&self) -> &'static str {
        "all thread creation (spawn/Builder/scope) confined to pool.rs"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        !basename_in(rel_path, &ALLOWED_MODULES)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        for tok in ["thread::spawn", "thread::Builder", "thread::scope"] {
            if code.contains(tok) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` outside pool.rs: ad-hoc threads bypass the persistent pool's \
                         width-inheritance and panic contract; route work through \
                         sgd_linalg::pool (run/with_threads)"
                    ),
                ));
            }
        }
    }
}
