//! Pass 5: thread-spawn discipline.
//!
//! Detached `thread::spawn` threads outlive the run that created them:
//! they keep mutating the shared model after the supervisor declared an
//! outcome, and their panics vanish instead of failing the run. And
//! since the persistent worker pool landed, ad-hoc `thread::scope`
//! fork-join is banned too: scoped workers start with a fresh
//! thread-local context, so they silently drop the caller's
//! `with_threads` width (the oversubscription bug the pool fixed) and
//! bypass the pool's panic-propagation contract. Every form of thread
//! creation must therefore live in `pool.rs` (the persistent pool plus
//! its measured fork-join baseline), and everything else routes work
//! through `sgd_linalg::pool::{run, with_threads}`.
//!
//! One carve-out: the serving crate and the dist crate's wire module may
//! use `thread::scope` (and only `thread::scope`) for connection
//! handling — scoped joins keep every connection thread's panic attached
//! to its caller, while detached `thread::spawn` would let a request
//! thread outlive the registry (or parameter server) it borrows from.
//! Compute inside those threads still routes through the pool.

use super::{basename_in, finding, Finding, Pass};
use crate::source::SourceFile;

/// The modules that own thread creation.
const ALLOWED_MODULES: [&str; 1] = ["pool.rs"];

/// The modules allowed to use scoped (joined) threads for connection
/// handling: the serving crate and the dist wire transport.
const SCOPE_ALLOWED_PREFIXES: [&str; 2] = ["crates/serve/src/", "crates/dist/src/wire.rs"];

pub struct ThreadDiscipline;

impl Pass for ThreadDiscipline {
    fn id(&self) -> &'static str {
        "thread-discipline"
    }

    fn description(&self) -> &'static str {
        "all thread creation confined to pool.rs (serve and dist wire may use thread::scope)"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        !basename_in(rel_path, &ALLOWED_MODULES)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        let scope_ok = SCOPE_ALLOWED_PREFIXES.iter().any(|p| sf.rel_path.starts_with(p));
        for tok in ["thread::spawn", "thread::Builder", "thread::scope"] {
            if tok == "thread::scope" && scope_ok {
                continue;
            }
            if code.contains(tok) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` outside pool.rs: ad-hoc threads bypass the persistent pool's \
                         width-inheritance and panic contract; route work through \
                         sgd_linalg::pool (run/with_threads), or scoped threads in \
                         crates/serve or the dist wire module for connection handling"
                    ),
                ));
            }
        }
    }
}
