//! Pass 5: thread-spawn discipline.
//!
//! Detached `thread::spawn` threads outlive the run that created them:
//! they keep mutating the shared model after the supervisor declared an
//! outcome, and their panics vanish instead of failing the run. Every
//! spawn must therefore go through the audited channels:
//!
//! * `pool.rs` (the pinned worker pools, which own affinity and join
//!   semantics), or
//! * `std::thread::scope` (joins are structural — the borrow checker
//!   proves no worker outlives the epoch).

use super::{basename_in, finding, Finding, Pass};
use crate::source::SourceFile;

/// The modules that own raw spawns.
const ALLOWED_MODULES: [&str; 1] = ["pool.rs"];

pub struct ThreadDiscipline;

impl Pass for ThreadDiscipline {
    fn id(&self) -> &'static str {
        "thread-discipline"
    }

    fn description(&self) -> &'static str {
        "all thread spawns via pool.rs or std::thread::scope"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        !basename_in(rel_path, &ALLOWED_MODULES)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        // `s.spawn(...)` inside a scope is fine; only free-standing
        // `thread::spawn` / `thread::Builder` escapes structured join.
        for tok in ["thread::spawn", "thread::Builder"] {
            if code.contains(tok) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` outside pool.rs: unscoped threads escape the run's join/outcome \
                         contract; use sgd_linalg::pool or std::thread::scope"
                    ),
                ));
            }
        }
    }
}
