//! Pass 6: queue discipline (no unbounded request-queue growth).
//!
//! The overload work in PR 7 exists because a serving queue that grows
//! without an admission check is a memory leak with a latency curve:
//! under sustained overload every queued request makes the p99 worse
//! and the process bigger until something else fails for it. The
//! admission layer (`crates/serve/src/admission.rs`) therefore funnels
//! *every* enqueue through one bound-checked path
//! (`TierQueues::admit`), and this pass makes that structural: in the
//! serving queue modules, growing a queue is banned outside that path.
//!
//! Concretely, in `batcher.rs` and `admission.rs`:
//!
//! * any `.push_back(` — the `VecDeque` growth call — is flagged;
//! * `.push(` is flagged when the receiver looks like a request queue
//!   (its identifier mentions `pending`, `queue`, `backlog`, or
//!   `inbox`); result vectors (`latencies`, `decisions`, batch
//!   `members`) stay free to grow because they are bounded by work
//!   already admitted.
//!
//! The admission-checked enqueue itself carries an
//! `// analyzer: allow(queue-discipline) -- <reason>` annotation, as do
//! the legacy closed-loop reissue queues the soak bench measures
//! against; anything new that trips this pass should either route
//! through admission or argue its bound in an allow reason.

use super::{finding, Finding, Pass};
use crate::source::SourceFile;

/// The serving modules that own request queues.
const SCOPED_FILES: [&str; 2] = ["crates/serve/src/batcher.rs", "crates/serve/src/admission.rs"];

/// Receiver name fragments that mark a growable collection as a request
/// queue rather than a result buffer.
const QUEUE_NAMES: [&str; 4] = ["pending", "queue", "backlog", "inbox"];

pub struct QueueDiscipline;

impl Pass for QueueDiscipline {
    fn id(&self) -> &'static str {
        "queue-discipline"
    }

    fn description(&self) -> &'static str {
        "serving request queues grow only through the admission-checked path"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        SCOPED_FILES.contains(&rel_path)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        if code.contains(".push_back(") {
            out.push(finding(
                self.id(),
                sf,
                line0,
                "`.push_back(` in a serving queue module: every enqueue must go through \
                 the admission-checked path (TierQueues::admit) so overload sheds \
                 deterministically instead of growing memory; justify exceptions with an \
                 allow annotation"
                    .to_string(),
            ));
            return;
        }
        if let Some(recv) = push_receiver(code) {
            let lower = recv.to_lowercase();
            if QUEUE_NAMES.iter().any(|n| lower.contains(n)) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{recv}.push(` grows a request queue outside the admission-checked \
                         path: route the enqueue through admission (or argue its bound in an \
                         allow annotation)"
                    ),
                ));
            }
        }
    }
}

/// The identifier immediately before the first `.push(` on the line,
/// if any (`self.pending.push(x)` → `pending`).
fn push_receiver(code: &str) -> Option<String> {
    let i = code.find(".push(")?;
    let recv: String = code[..i]
        .chars()
        .rev()
        .take_while(|c| super::is_ident_char(*c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!recv.is_empty()).then_some(recv)
}
