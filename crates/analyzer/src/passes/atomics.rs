//! Pass 1: atomics discipline.
//!
//! The Hogwild runners are only Rust-sound because every benign race goes
//! through `SharedModel`'s `Relaxed` `AtomicU64` cells (the paper's
//! lock-free update model, Niu et al. 2011). Letting atomics leak into
//! other modules would scatter the memory-model reasoning across the
//! codebase, so:
//!
//! * `Atomic*` types and `Ordering::` arguments may appear only in the
//!   allowlisted modules (`shared_model.rs`, `faults.rs`, `pool.rs`);
//! * `SeqCst` is banned everywhere — the repo's contracts are all
//!   `Relaxed`-based, and a stray `SeqCst` usually means someone papered
//!   over a race they did not understand;
//! * read-modify-write operations (`fetch_add`, `compare_exchange`, …)
//!   belong to `SharedModel` alone, where lossy-vs-lossless update
//!   semantics are the documented point of the type.

use super::{basename_in, finding, ident_occurrences, Finding, Pass};
use crate::source::SourceFile;

/// Modules allowed to mention atomics at all.
const ALLOWED_MODULES: [&str; 3] = ["shared_model.rs", "faults.rs", "pool.rs"];

/// The only module allowed to perform atomic read-modify-writes.
const RMW_MODULE: &str = "shared_model.rs";

/// Atomic RMW method calls. Checked only on lines that also name an
/// `Ordering::`, so `Vec::swap`/`mem::swap` never false-positive.
const RMW_TOKENS: [&str; 8] = [
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_update(",
    ".compare_exchange",
    ".swap(",
];

pub struct Atomics;

impl Pass for Atomics {
    fn id(&self) -> &'static str {
        "atomics-discipline"
    }

    fn description(&self) -> &'static str {
        "atomics confined to shared_model.rs/faults.rs/pool.rs; no SeqCst; RMW only in SharedModel"
    }

    fn in_scope(&self, _rel_path: &str) -> bool {
        true
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        if !ident_occurrences(code, "SeqCst").is_empty() {
            out.push(finding(
                self.id(),
                sf,
                line0,
                "SeqCst ordering is banned: the repo's lock-free contracts are Relaxed-based \
                 (see DESIGN.md, Concurrency & determinism invariants)"
                    .to_string(),
            ));
        }

        let in_allowed = basename_in(&sf.rel_path, &ALLOWED_MODULES);
        let mentions_ordering = code.contains("Ordering::");
        if !in_allowed && (mentions_ordering || atomic_type_on(code)) {
            out.push(finding(
                self.id(),
                sf,
                line0,
                format!(
                    "atomic use outside the allowlisted modules ({}): route shared state \
                     through sgd_core::SharedModel instead",
                    ALLOWED_MODULES.join(", ")
                ),
            ));
        }

        if mentions_ordering && !basename_in(&sf.rel_path, &[RMW_MODULE]) {
            for tok in RMW_TOKENS {
                if code.contains(tok) {
                    out.push(finding(
                        self.id(),
                        sf,
                        line0,
                        format!(
                            "atomic read-modify-write (`{}`) outside SharedModel: lossy-vs-\
                             lossless update semantics must stay in one audited type",
                            tok.trim_start_matches('.').trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }
}

/// Any `Atomic`-prefixed type name at an identifier boundary
/// (`AtomicU64`, `AtomicUsize`, `AtomicBool`, …).
fn atomic_type_on(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let pat: Vec<char> = "Atomic".chars().collect();
    for i in 0..chars.len().saturating_sub(pat.len()) {
        if chars[i..i + pat.len()] == pat[..]
            && (i == 0 || !super::is_ident_char(chars[i - 1]))
            && chars.get(i + pat.len()).copied().is_some_and(|c| c.is_ascii_uppercase())
        {
            return true;
        }
    }
    false
}
