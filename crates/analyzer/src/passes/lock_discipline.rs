//! Pass 7: lock discipline (guard liveness × blocking calls × order).
//!
//! The serving and distributed stacks now share five lock families with a deliberate
//! nesting order, and the paper's latency story dies the moment a guard
//! is held across something slow: a backend dispatch under the session
//! mutex serializes *scoring* behind *fault bookkeeping*; a socket
//! write under the inflight counter turns one stalled client into a
//! server-wide stall. This pass runs on the [`SemanticModel`] (not on
//! single lines): for every lock-guard binding it scans the guard's
//! live span for
//!
//! * **blocking calls** — `ComputeBackend::{dispatch,try_dispatch}`,
//!   `pool::run*`, and `TcpStream`/`BufReader` I/O — held across any
//!   classified guard;
//! * **order inversions** — acquiring a lock of a *lower* rank while
//!   holding a higher one, per the canonical table below;
//! * **re-acquisition** of the same lock (self-deadlock on a
//!   non-reentrant `Mutex`).
//!
//! Canonical acquisition order (outermost first — a lock may only be
//! taken while holding locks of strictly lower rank):
//!
//! | rank | class      | locks (receiver name fragments)                         |
//! |------|------------|---------------------------------------------------------|
//! | 0    | `registry` | `ModelRegistry` state (`state`, `registry`, `models`)   |
//! | 1    | `wire`     | wire accounting (`inflight`, `claimed`, `handled`, `first_err`, `counter`) |
//! | 2    | `server`   | the dist `ParamServer` mutex (`server`)                 |
//! | 3    | `session`  | the scoring `BackendSession` mutex (`session`)          |
//! | 4    | `pool`     | worker-pool internals (`queue`, `stats`, `latch`, `inner`; everything in `pool.rs`) |
//!
//! `Condvar::wait` is deliberately *not* a blocking token: it releases
//! the mutex it waits on, which is the one correct way to sleep while
//! "holding" a pool lock. Scope: the serving crate, the dist crate,
//! `sgd-core`, and the linalg worker pool — the files that actually
//! share these locks.

use super::{Finding, Pass};
use crate::semantic::{acquires_guard, GuardBinding, SemanticModel};
use crate::source::SourceFile;

/// Calls that park the current thread for macroscopic time: backend
/// dispatch, worker-pool fan-out, socket/buffered-reader I/O.
const BLOCKING: [(&str, &str); 12] = [
    (".dispatch(", "a backend dispatch"),
    (".try_dispatch(", "a backend dispatch"),
    ("pool::run(", "a worker-pool fan-out"),
    ("run_workers(", "a worker-pool fan-out"),
    (".write_all(", "socket I/O"),
    (".flush(", "socket I/O"),
    (".read_line(", "socket I/O"),
    (".fill_buf(", "socket I/O"),
    (".read_to_string(", "socket I/O"),
    (".read_exact(", "socket I/O"),
    (".accept(", "a listener accept"),
    ("TcpStream::connect", "a socket connect"),
];

/// One row of the canonical lock-order table.
struct LockClass {
    rank: u8,
    name: &'static str,
    fragments: &'static [&'static str],
}

const CLASSES: [LockClass; 5] = [
    LockClass { rank: 0, name: "registry", fragments: &["state", "registry", "models"] },
    LockClass {
        rank: 1,
        name: "wire",
        fragments: &["inflight", "claimed", "handled", "first_err", "counter"],
    },
    LockClass { rank: 2, name: "server", fragments: &["server"] },
    LockClass { rank: 3, name: "session", fragments: &["session"] },
    LockClass { rank: 4, name: "pool", fragments: &["queue", "stats", "latch", "inner"] },
];

/// A classified acquisition: which class, and which fragment matched.
struct Classified {
    rank: u8,
    class: &'static str,
    fragment: &'static str,
}

/// Classifies an acquisition expression by receiver-name fragment (or
/// by file for the pool, whose internals all share one family).
fn classify(text: &str, rel_path: &str) -> Option<Classified> {
    if rel_path == "crates/linalg/src/pool.rs" {
        return Some(Classified { rank: 4, class: "pool", fragment: "pool" });
    }
    for c in &CLASSES {
        for frag in c.fragments {
            if !super::ident_occurrences(text, frag).is_empty() {
                return Some(Classified { rank: c.rank, class: c.name, fragment: frag });
            }
        }
    }
    None
}

/// The serve/core/pool files that actually share the classified locks.
fn lock_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/serve/src/")
        || rel_path.starts_with("crates/dist/src/")
        || rel_path.starts_with("crates/core/src/")
        || rel_path == "crates/linalg/src/pool.rs"
}

pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "no lock guard held across dispatch/pool/I-O, no acquisition order inversion"
    }

    /// Model-only pass: the line hook never fires.
    fn in_scope(&self, _rel_path: &str) -> bool {
        false
    }

    fn check_line(&self, _sf: &SourceFile, _line0: usize, _code: &str, _out: &mut Vec<Finding>) {}

    fn check_model(&self, model: &SemanticModel<'_>, out: &mut Vec<Finding>) {
        for (fi, syntax) in model.syntax.iter().enumerate() {
            let sf = &model.files[fi];
            if !lock_scope(&sf.rel_path) {
                continue;
            }
            for guard in &syntax.guards {
                self.check_guard(sf, guard, out);
            }
        }
    }
}

impl LockDiscipline {
    /// Scans one guard's live span for blocking calls and conflicting
    /// acquisitions.
    fn check_guard(&self, sf: &SourceFile, guard: &GuardBinding, out: &mut Vec<Finding>) {
        let held = classify(&guard.init, &sf.rel_path);
        let held_desc = match &held {
            Some(c) => format!("`{}` lock (class `{}`, rank {})", c.fragment, c.class, c.rank),
            None => "an unclassified lock".to_string(),
        };
        let end = guard.live_end(sf).min(sf.code.len().saturating_sub(1));
        for line0 in guard.line + 1..=end {
            let code = &sf.code[line0];
            if let Some((tok, what)) = BLOCKING.iter().find(|(tok, _)| code.contains(tok)) {
                out.push(super::finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` — {what} — runs while guard `{}` (line {}, {held_desc}) is \
                         held: narrow the guard's scope or drop() it before the blocking call",
                        guard.name,
                        guard.line + 1,
                    ),
                ));
            }
            // Nested acquisitions: compare against the canonical order.
            let (Some(held_c), true) = (&held, acquires_guard(code)) else { continue };
            let Some(inner) = classify(code, &sf.rel_path) else { continue };
            if inner.rank < held_c.rank {
                out.push(super::finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "acquiring `{}` (class `{}`, rank {}) while holding {held_desc} taken \
                         at line {} inverts the canonical lock order \
                         (registry < wire < server < session < pool): restructure so the lower-rank \
                         lock is taken first, or release `{}` before this acquisition",
                        inner.fragment,
                        inner.class,
                        inner.rank,
                        guard.line + 1,
                        guard.name,
                    ),
                ));
            } else if inner.rank == held_c.rank && inner.fragment == held_c.fragment {
                out.push(super::finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "re-acquiring the `{}` lock while guard `{}` (line {}) already holds \
                         it: std Mutex/RwLock are not re-entrant, this self-deadlocks",
                        inner.fragment,
                        guard.name,
                        guard.line + 1,
                    ),
                ));
            }
        }
    }
}
