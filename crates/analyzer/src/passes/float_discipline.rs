//! Pass 4: float discipline.
//!
//! Convergence decisions and report aggregation feed the paper's
//! headline tables. Two classes of silent wrongness are banned there:
//!
//! * `==`/`!=` between float-ish operands — loss values travel through
//!   reductions whose rounding differs across the 2×2×2 cube, so exact
//!   comparison is either vacuously false or accidentally true; compare
//!   against thresholds (`(a - b).abs() < eps`) or bit patterns
//!   (`to_bits`) explicitly;
//! * `partial_cmp(..).unwrap()` — NaN turns this into a panic in the
//!   middle of a grid search; use `total_cmp` or handle the `None`.

use super::{basename_in, finding, Finding, Pass};
use crate::source::SourceFile;

/// Convergence/report modules where float comparisons decide outcomes.
const SCOPED_FILES: [&str; 4] = ["convergence.rs", "report.rs", "supervisor.rs", "render.rs"];

pub struct FloatDiscipline;

impl Pass for FloatDiscipline {
    fn id(&self) -> &'static str {
        "float-discipline"
    }

    fn description(&self) -> &'static str {
        "no ==/!= on floats or NaN-unsafe comparisons in convergence/report code"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        basename_in(rel_path, &SCOPED_FILES)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        if let Some(op) = float_eq_compare(code) {
            out.push(finding(
                self.id(),
                sf,
                line0,
                format!(
                    "`{op}` on a float operand in convergence/report code: compare against a \
                     threshold or via to_bits(), never exact equality"
                ),
            ));
        }
        if code.contains("partial_cmp") && code.contains(".unwrap()") {
            out.push(finding(
                self.id(),
                sf,
                line0,
                "`partial_cmp(..).unwrap()` panics on NaN: use total_cmp or handle None"
                    .to_string(),
            ));
        }
    }
}

/// Reports `==`/`!=` when either side of the operator looks float-ish: a
/// float literal (`0.01`, `1e-6`, `1.0`), `f64::`/`f32::` consts, or an
/// explicitly float-named binding (`loss`, `eps`). Integer and enum
/// comparisons pass untouched.
fn float_eq_compare(code: &str) -> Option<&'static str> {
    let chars: Vec<char> = code.chars().collect();
    for i in 0..chars.len().saturating_sub(1) {
        let op = match (chars[i], chars[i + 1]) {
            ('=', '=') => "==",
            ('!', '=') => "!=",
            _ => continue,
        };
        // Skip `<=`, `>=`, `=>`, `===`-style runs and assignment `=`.
        if i > 0 && matches!(chars[i - 1], '<' | '>' | '=' | '!') {
            continue;
        }
        if chars.get(i + 2) == Some(&'=') {
            continue;
        }
        let left: String = chars[..i].iter().collect();
        let right: String = chars[i + 2..].iter().collect();
        let left_tok = left.rsplit([' ', '(', ',']).find(|t| !t.is_empty()).unwrap_or("");
        let right_tok = right.split([' ', ')', ',', ';']).find(|t| !t.is_empty()).unwrap_or("");
        if looks_floatish(left_tok) || looks_floatish(right_tok) {
            return Some(op);
        }
    }
    None
}

fn looks_floatish(tok: &str) -> bool {
    let tok = tok.trim();
    if tok.contains("f64::") || tok.contains("f32::") {
        return true;
    }
    // Float literal: digits with a decimal point or exponent (`0.01`,
    // `1e-6`, `2.5e3`), possibly with a trailing type suffix.
    let mut saw_digit = false;
    let mut saw_point_or_exp = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' => saw_point_or_exp = saw_digit,
            'e' | 'E' if saw_digit => saw_point_or_exp = true,
            '-' | '+' => {}
            'f' if saw_digit => {} // 1.0f64 / 2.5f32 suffix
            _ => return false,
        }
    }
    saw_digit && saw_point_or_exp
}
