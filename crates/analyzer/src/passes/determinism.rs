//! Pass 2: determinism.
//!
//! `tests/fault_determinism.rs` pins the modeled/simulated corners of the
//! configuration cube bit-for-bit: same seed, same fault plan, same
//! metrics. That guarantee dies the moment iteration-order- or
//! wall-clock-dependent state enters those paths, so inside the pinned
//! modules this pass bans:
//!
//! * `HashMap`/`HashSet` (`RandomState` seeds differ per process — even
//!   a single debug print of an iteration exposes the nondeterminism);
//! * `Instant::now`/`SystemTime` (simulated time comes from the cycle
//!   model, never the host clock).
//!
//! Wall-clock runners (`hogwild.rs`, `sync.rs`, the benches) are
//! deliberately out of scope for those rules: they measure real elapsed
//! time, which is the point of the paper's CPU measurements.
//!
//! One rule is workspace-wide: `as_ptr` may not be used outside a short
//! blessed list. Host pointer values are whatever the allocator handed
//! out this run, so any cache/map keyed on them — the pre-PR-6 serving
//! path did exactly this — silently breaks bit-pinned traces whenever an
//! allocation moves. Code that needs stable buffer identity must go
//! through `GpuDevice::bind_buffer` / transient scopes instead. The
//! blessed files are the virtual-address allocator (`GpuDevice` in
//! `crates/gpusim/src/gpu.rs`, which *converts* pointers into stable
//! names) and the SIMD kernel tier (`crates/linalg/src/simd.rs`, whose
//! intrinsics take pointers as load/store addresses for data that is
//! immediately dereferenced — never retained or compared as identity).

use super::{basename_in, finding, ident_occurrences, Finding, Pass};
use crate::source::SourceFile;

/// Modules whose outputs are pinned bit-for-bit.
const PINNED_FILES: [&str; 3] = ["modeled.rs", "gpu_async.rs", "faults.rs"];

/// Identifier tokens banned in pinned modules.
const BANNED_IDENTS: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Call tokens banned in pinned modules.
const BANNED_CALLS: [&str; 3] = ["Instant::now", "SystemTime", "UNIX_EPOCH"];

/// The files allowed to look at host pointer values: the allocator that
/// converts them into stable virtual addresses, and the SIMD kernels
/// whose intrinsics dereference pointers immediately (loads/stores and
/// gathers) without ever treating the address as an identity.
const BLESSED_PTR_FILES: [&str; 2] = ["crates/gpusim/src/gpu.rs", "crates/linalg/src/simd.rs"];

/// The pointer-identity token banned everywhere else.
const PTR_TOKEN: &str = "as_ptr";

pub struct Determinism;

/// `true` for files whose whole contents are bit-pinned (the original,
/// narrow scope of this pass).
fn bit_pinned(rel_path: &str) -> bool {
    rel_path.starts_with("crates/gpusim/src/") || basename_in(rel_path, &PINNED_FILES)
}

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet/host-clock reads in bit-pinned modules (sgd-gpusim, modeled paths); \
         no `as_ptr` outside the blessed pointer users (allocator, SIMD kernels)"
    }

    fn in_scope(&self, _rel_path: &str) -> bool {
        // The pointer-identity rule is workspace-wide; the clock/hash
        // rules gate on the pinned scope inside `check_line`.
        true
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        if bit_pinned(&sf.rel_path) {
            for tok in BANNED_IDENTS {
                if !ident_occurrences(code, tok).is_empty() {
                    out.push(finding(
                        self.id(),
                        sf,
                        line0,
                        format!(
                            "`{tok}` in a bit-pinned module: iteration order is seeded per \
                             process; use BTreeMap/BTreeSet or an index-keyed Vec"
                        ),
                    ));
                }
            }
            for tok in BANNED_CALLS {
                if code.contains(tok) {
                    out.push(finding(
                        self.id(),
                        sf,
                        line0,
                        format!(
                            "`{tok}` in a bit-pinned module: simulated paths must derive time \
                             from the cycle model, never the host clock"
                        ),
                    ));
                }
            }
        }
        if !BLESSED_PTR_FILES.contains(&sf.rel_path.as_str())
            && !ident_occurrences(code, PTR_TOKEN).is_empty()
        {
            out.push(finding(
                self.id(),
                sf,
                line0,
                format!(
                    "`{PTR_TOKEN}` outside the blessed pointer users ({}): host pointer \
                     values are not stable identities; key simulated state on \
                     `GpuDevice::bind_buffer` names or transient scopes",
                    BLESSED_PTR_FILES.join(", ")
                ),
            ));
        }
    }
}
