//! Pass 2: determinism.
//!
//! `tests/fault_determinism.rs` pins the modeled/simulated corners of the
//! configuration cube bit-for-bit: same seed, same fault plan, same
//! metrics. That guarantee dies the moment iteration-order- or
//! wall-clock-dependent state enters those paths, so inside the pinned
//! modules this pass bans:
//!
//! * `HashMap`/`HashSet` (`RandomState` seeds differ per process — even
//!   a single debug print of an iteration exposes the nondeterminism);
//! * `Instant::now`/`SystemTime` (simulated time comes from the cycle
//!   model, never the host clock).
//!
//! Wall-clock runners (`hogwild.rs`, `sync.rs`, the benches) are
//! deliberately out of scope: they measure real elapsed time, which is
//! the point of the paper's CPU measurements.

use super::{basename_in, finding, ident_occurrences, Finding, Pass};
use crate::source::SourceFile;

/// Modules whose outputs are pinned bit-for-bit.
const PINNED_FILES: [&str; 3] = ["modeled.rs", "gpu_async.rs", "faults.rs"];

/// Identifier tokens banned in pinned modules.
const BANNED_IDENTS: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Call tokens banned in pinned modules.
const BANNED_CALLS: [&str; 3] = ["Instant::now", "SystemTime", "UNIX_EPOCH"];

pub struct Determinism;

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet/host-clock reads in bit-pinned modules (sgd-gpusim, modeled paths)"
    }

    fn in_scope(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/gpusim/src/") || basename_in(rel_path, &PINNED_FILES)
    }

    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>) {
        for tok in BANNED_IDENTS {
            if !ident_occurrences(code, tok).is_empty() {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` in a bit-pinned module: iteration order is seeded per process; \
                         use BTreeMap/BTreeSet or an index-keyed Vec"
                    ),
                ));
            }
        }
        for tok in BANNED_CALLS {
            if code.contains(tok) {
                out.push(finding(
                    self.id(),
                    sf,
                    line0,
                    format!(
                        "`{tok}` in a bit-pinned module: simulated paths must derive time from \
                         the cycle model, never the host clock"
                    ),
                ));
            }
        }
    }
}
