//! The pass framework and the six invariant passes.
//!
//! Each pass is a line-level checker over a [`SourceFile`]'s code view
//! (comments and literals already blanked). The driver walks every
//! non-test line of every in-scope file, collects [`Finding`]s, and then
//! filters the ones suppressed by `// analyzer: allow(<pass>) -- <reason>`
//! annotations.

mod atomics;
mod determinism;
mod float_discipline;
mod panic_freedom;
mod queue_discipline;
mod threads;

pub use atomics::Atomics;
pub use determinism::Determinism;
pub use float_discipline::FloatDiscipline;
pub use panic_freedom::PanicFreedom;
pub use queue_discipline::QueueDiscipline;
pub use threads::ThreadDiscipline;

use crate::source::SourceFile;

/// One rule violation at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Pass id, e.g. `determinism`.
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The trimmed source line (also the baseline identity, so findings
    /// survive unrelated line-number drift).
    pub snippet: String,
}

/// A line-level invariant checker.
pub trait Pass {
    /// Stable identifier used in `allow` annotations and the baseline.
    fn id(&self) -> &'static str;
    /// One-line human description for `--help`/docs.
    fn description(&self) -> &'static str;
    /// Does this pass inspect the file at `rel_path`?
    fn in_scope(&self, rel_path: &str) -> bool;
    /// Checks one code-view line (`line0` is 0-based).
    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>);
}

/// The full pass roster, in report order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(Atomics),
        Box::new(Determinism),
        Box::new(PanicFreedom),
        Box::new(FloatDiscipline),
        Box::new(ThreadDiscipline),
        Box::new(QueueDiscipline),
    ]
}

/// Runs every in-scope pass over the file, honoring test-code exemption
/// and `allow` annotations, and reporting malformed annotations.
pub fn analyze_file(sf: &SourceFile, passes: &[Box<dyn Pass>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let scoped: Vec<&Box<dyn Pass>> = passes.iter().filter(|p| p.in_scope(&sf.rel_path)).collect();
    for (line0, code) in sf.code.iter().enumerate() {
        if sf.is_test(line0) {
            continue;
        }
        for pass in &scoped {
            let mut raw_findings = Vec::new();
            pass.check_line(sf, line0, code, &mut raw_findings);
            out.extend(raw_findings.into_iter().filter(|f| !sf.allows(line0, f.pass)));
        }
    }
    for &line0 in &sf.bad_annotations {
        out.push(finding(
            "allow-syntax",
            sf,
            line0,
            "malformed analyzer annotation: expected `// analyzer: allow(<pass>) -- <reason>` \
             (the reason is mandatory)"
                .to_string(),
        ));
    }
    out
}

/// Builds a finding for the 0-based line.
pub(crate) fn finding(
    pass: &'static str,
    sf: &SourceFile,
    line0: usize,
    message: String,
) -> Finding {
    Finding {
        pass,
        file: sf.rel_path.clone(),
        line: line0 + 1,
        message,
        snippet: sf.raw.get(line0).map(|l| l.trim().to_string()).unwrap_or_default(),
    }
}

/// Is `needle` present at an identifier boundary (not embedded in a longer
/// identifier)? Returns the positions of every boundary occurrence.
pub(crate) fn ident_occurrences(code: &str, needle: &str) -> Vec<usize> {
    let cb: Vec<char> = code.chars().collect();
    let nb: Vec<char> = needle.chars().collect();
    let mut hits = Vec::new();
    if nb.is_empty() || cb.len() < nb.len() {
        return hits;
    }
    for i in 0..=cb.len() - nb.len() {
        if cb[i..i + nb.len()] != nb[..] {
            continue;
        }
        let before_ok = i == 0 || !is_ident_char(cb[i - 1]);
        let after = cb.get(i + nb.len()).copied();
        let after_ok = match nb.last() {
            Some(c) if is_ident_char(*c) => after.is_none_or(|a| !is_ident_char(a)),
            _ => true,
        };
        if before_ok && after_ok {
            hits.push(i);
        }
    }
    hits
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `true` when the path's final component is one of `names`.
pub(crate) fn basename_in(rel_path: &str, names: &[&str]) -> bool {
    let base = rel_path.rsplit('/').next().unwrap_or(rel_path);
    names.contains(&base)
}
