//! The pass framework and the eight invariant passes.
//!
//! Each pass is a line-level checker over a [`SourceFile`]'s code view
//! (comments and literals already blanked), optionally with a
//! workspace-level hook ([`Pass::check_model`]) that sees the
//! [`SemanticModel`] — the call graph and lock-guard liveness spans.
//! The driver walks every non-test line of every in-scope file, runs
//! the model hooks once over the whole workspace, collects
//! [`Finding`]s, and then filters the ones suppressed by
//! `// analyzer: allow(<pass>) -- <reason>` annotations (recording the
//! suppressed ones with their reasons for the `--json` audit trail).

mod atomics;
mod determinism;
mod float_discipline;
mod hot_path_alloc;
mod lock_discipline;
mod panic_freedom;
mod queue_discipline;
mod threads;

pub use atomics::Atomics;
pub use determinism::Determinism;
pub use float_discipline::FloatDiscipline;
pub use hot_path_alloc::HotPathAlloc;
pub use lock_discipline::LockDiscipline;
pub use panic_freedom::PanicFreedom;
pub use queue_discipline::QueueDiscipline;
pub use threads::ThreadDiscipline;

use crate::semantic::SemanticModel;
use crate::source::SourceFile;

/// One rule violation at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Pass id, e.g. `determinism`.
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The trimmed source line (also the baseline identity, so findings
    /// survive unrelated line-number drift).
    pub snippet: String,
}

/// An invariant checker: line-level, workspace-level, or both.
pub trait Pass {
    /// Stable identifier used in `allow` annotations and the baseline.
    fn id(&self) -> &'static str;
    /// One-line human description for `--help`/docs.
    fn description(&self) -> &'static str;
    /// Does this pass inspect the file at `rel_path`?
    fn in_scope(&self, rel_path: &str) -> bool;
    /// Does this pass also apply to `examples/` files? Most invariants
    /// guard *shipped library code*; examples are user-facing idiom
    /// demos with their own, looser contract.
    fn applies_to_examples(&self) -> bool {
        false
    }
    /// Checks one code-view line (`line0` is 0-based).
    fn check_line(&self, sf: &SourceFile, line0: usize, code: &str, out: &mut Vec<Finding>);
    /// Checks the whole workspace through the semantic model (call
    /// graph, guard liveness). Default: line-level only.
    fn check_model(&self, model: &SemanticModel<'_>, out: &mut Vec<Finding>) {
        let _ = (model, out);
    }
}

/// The full pass roster, in report order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(Atomics),
        Box::new(Determinism),
        Box::new(PanicFreedom),
        Box::new(FloatDiscipline),
        Box::new(ThreadDiscipline),
        Box::new(QueueDiscipline),
        Box::new(LockDiscipline),
        Box::new(HotPathAlloc),
    ]
}

/// A finding an `allow` annotation suppressed, with its stated reason —
/// enumerated (not failing) so `--json` can emit the audit trail.
#[derive(Clone, Debug)]
pub struct AllowedFinding {
    /// The suppressed finding.
    pub finding: Finding,
    /// The reason from the annotation.
    pub reason: String,
}

/// Everything one analysis produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Violations (pre-baseline).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `allow` annotations, with reasons.
    pub allowed: Vec<AllowedFinding>,
}

/// Runs every in-scope pass over the file, honoring test-code exemption
/// and `allow` annotations, and reporting malformed annotations.
pub fn analyze_file(sf: &SourceFile, passes: &[Box<dyn Pass>]) -> Vec<Finding> {
    let mut analysis = Analysis::default();
    analyze_file_into(sf, passes, &mut analysis);
    analysis.findings
}

/// Line-pass half of the analysis, accumulating into `out`.
fn analyze_file_into(sf: &SourceFile, passes: &[Box<dyn Pass>], out: &mut Analysis) {
    let example = sf.rel_path.starts_with("examples/");
    let scoped: Vec<&Box<dyn Pass>> = passes
        .iter()
        .filter(|p| p.in_scope(&sf.rel_path) && (!example || p.applies_to_examples()))
        .collect();
    for (line0, code) in sf.code.iter().enumerate() {
        if sf.is_test(line0) {
            continue;
        }
        for pass in &scoped {
            let mut raw_findings = Vec::new();
            pass.check_line(sf, line0, code, &mut raw_findings);
            for f in raw_findings {
                match sf.allow_reason(line0, f.pass) {
                    Some(reason) => {
                        out.allowed.push(AllowedFinding { finding: f, reason: reason.to_string() })
                    }
                    None => out.findings.push(f),
                }
            }
        }
    }
    for &line0 in &sf.bad_annotations {
        out.findings.push(finding(
            "allow-syntax",
            sf,
            line0,
            "malformed analyzer annotation: expected `// analyzer: allow(<pass>) -- <reason>` \
             or `// analyzer: root(<pass>) -- <reason>` (the reason is mandatory)"
                .to_string(),
        ));
    }
}

/// Runs the full analysis over a set of files: line passes per file,
/// then every pass's workspace-level [`Pass::check_model`] hook over the
/// [`SemanticModel`] built from all of them, with the same test-code and
/// `allow` filtering applied to model findings. `deps` is the crate
/// dependency closure from [`crate::workspace::crate_deps`] (pass an
/// empty map to allow every cross-crate call edge).
pub fn analyze_workspace(
    files: &[SourceFile],
    passes: &[Box<dyn Pass>],
    deps: std::collections::BTreeMap<String, std::collections::BTreeSet<String>>,
) -> Analysis {
    let mut out = Analysis::default();
    for sf in files {
        analyze_file_into(sf, passes, &mut out);
    }
    let model = SemanticModel::build_with_deps(files, deps);
    for pass in passes {
        let mut raw = Vec::new();
        pass.check_model(&model, &mut raw);
        for f in raw {
            if f.file.starts_with("examples/") && !pass.applies_to_examples() {
                continue;
            }
            let Some(sf) = files.iter().find(|s| s.rel_path == f.file) else {
                continue;
            };
            let line0 = f.line.saturating_sub(1);
            if sf.is_test(line0) {
                continue;
            }
            match sf.allow_reason(line0, f.pass) {
                Some(reason) => {
                    out.allowed.push(AllowedFinding { finding: f, reason: reason.to_string() })
                }
                None => out.findings.push(f),
            }
        }
    }
    out
}

/// Builds a finding for the 0-based line.
pub(crate) fn finding(
    pass: &'static str,
    sf: &SourceFile,
    line0: usize,
    message: String,
) -> Finding {
    Finding {
        pass,
        file: sf.rel_path.clone(),
        line: line0 + 1,
        message,
        snippet: sf.raw.get(line0).map(|l| l.trim().to_string()).unwrap_or_default(),
    }
}

/// Is `needle` present at an identifier boundary (not embedded in a longer
/// identifier)? Returns the positions of every boundary occurrence.
pub(crate) fn ident_occurrences(code: &str, needle: &str) -> Vec<usize> {
    let cb: Vec<char> = code.chars().collect();
    let nb: Vec<char> = needle.chars().collect();
    let mut hits = Vec::new();
    if nb.is_empty() || cb.len() < nb.len() {
        return hits;
    }
    for i in 0..=cb.len() - nb.len() {
        if cb[i..i + nb.len()] != nb[..] {
            continue;
        }
        let before_ok = i == 0 || !is_ident_char(cb[i - 1]);
        let after = cb.get(i + nb.len()).copied();
        let after_ok = match nb.last() {
            Some(c) if is_ident_char(*c) => after.is_none_or(|a| !is_ident_char(a)),
            _ => true,
        };
        if before_ok && after_ok {
            hits.push(i);
        }
    }
    hits
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `true` when the path's final component is one of `names`.
pub(crate) fn basename_in(rel_path: &str, names: &[&str]) -> bool {
    let base = rel_path.rsplit('/').next().unwrap_or(rel_path);
    names.contains(&base)
}
