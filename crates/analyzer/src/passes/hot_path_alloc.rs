//! Pass 8: hot-path allocation (call-graph-transitive).
//!
//! PR 7's overload claim is that the shed/reject paths are
//! allocation-bounded — the server does *less* work per request as load
//! rises, not more. And the kernels' claim (the paper's subject) is
//! that the inner loops run at memory bandwidth, which a stray
//! `format!` or `Vec::new` per element quietly breaks. This pass makes
//! both claims machine-checked: functions annotated
//! `// analyzer: root(hot-path-alloc) -- <reason>` (admission
//! enqueue/shed/reject, wire reply formatting, kernel inner loops) seed
//! a walk over the conservative call graph, and every reachable
//! function is scanned for allocation tokens:
//!
//! * flagged anywhere: `format!(`, `vec![`, `Vec::new(`,
//!   `String::new(`, `Box::new(`, `.to_string()`, `.to_vec()`,
//!   `.to_owned()`, `.clone()`;
//! * flagged only inside a `for`/`while`/`loop` body (amortized-growth
//!   calls that are fine once but hot in a loop): `.push(`,
//!   `.with_capacity(`, `.extend(`, `.extend_from_slice(`,
//!   `.insert(`, `.collect()`.
//!
//! An `allow(hot-path-alloc)` on a *call line* prunes the walk through
//! that call (a vetted boundary — e.g. a batch-bounded predict); on an
//! allocation line it suppresses that site. Messages carry the call
//! chain from the root so a finding three hops deep is still
//! actionable. The analyzer's own sources are excluded — name-based
//! resolution would otherwise chase workspace-wide names (`run`,
//! `scan`) into this crate, which serves no request.

use std::collections::BTreeSet;

use super::{Finding, Pass};
use crate::semantic::SemanticModel;
use crate::source::SourceFile;

/// Tokens that allocate every time they execute.
const ALWAYS: [&str; 9] = [
    "format!(",
    "vec![",
    "Vec::new(",
    "String::new(",
    "Box::new(",
    ".to_string()",
    ".to_vec()",
    ".to_owned()",
    ".clone()",
];

/// Tokens that are amortized-fine once but allocation-hot in a loop.
const IN_LOOP: [&str; 6] =
    [".push(", ".with_capacity(", ".extend(", ".extend_from_slice(", ".insert(", ".collect()"];

pub struct HotPathAlloc;

impl Pass for HotPathAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn description(&self) -> &'static str {
        "no allocation reachable from annotated hot-path roots (shed paths, kernels)"
    }

    /// Model-only pass: the line hook never fires.
    fn in_scope(&self, _rel_path: &str) -> bool {
        false
    }

    fn check_line(&self, _sf: &SourceFile, _line0: usize, _code: &str, _out: &mut Vec<Finding>) {}

    fn check_model(&self, model: &SemanticModel<'_>, out: &mut Vec<Finding>) {
        let roots = model.roots_for(self.id());
        let reached = model.reachable_from(&roots, self.id());
        // One finding per line even when several fns overlap it (nested
        // items share span lines with their parent).
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (r, chain) in &reached {
            let sf = &model.files[r.file];
            if sf.rel_path.starts_with("crates/analyzer/") {
                continue;
            }
            let Some(item) = model.item(*r) else { continue };
            if item.is_test {
                continue;
            }
            let syntax = &model.syntax[r.file];
            for line0 in item.start_line..=item.end_line.min(sf.code.len().saturating_sub(1)) {
                if !seen.insert((r.file, line0)) {
                    continue;
                }
                let code = &sf.code[line0];
                let in_loop = syntax.loop_depth.get(line0).copied().unwrap_or(0) > 0;
                let hit = ALWAYS.iter().find(|tok| code.contains(*tok)).or_else(|| {
                    in_loop.then(|| IN_LOOP.iter().find(|tok| code.contains(*tok))).flatten()
                });
                if let Some(tok) = hit {
                    out.push(super::finding(
                        self.id(),
                        sf,
                        line0,
                        format!(
                            "`{tok}` allocates on a hot path (reachable as {}): preallocate \
                             or reuse a caller-owned buffer, or justify the bound with an \
                             allow annotation",
                            chain.join(" -> "),
                        ),
                    ));
                }
            }
        }
    }
}
