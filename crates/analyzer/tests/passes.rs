//! Golden fixture tests: one known-bad and one known-good snippet per
//! pass, loaded under synthetic workspace-relative paths so the scoping
//! rules engage exactly as they would on the live tree — plus the gate
//! tests: the live workspace must be clean modulo the committed
//! baseline, and reintroducing a banned construct must produce a fresh
//! (non-baselined) finding.

use std::path::Path;

use sgd_analyzer::baseline::Baseline;
use sgd_analyzer::passes::{all_passes, analyze_file, analyze_workspace, Finding};
use sgd_analyzer::source::SourceFile;
use sgd_analyzer::workspace;

/// Scans `text` as if it lived at `rel_path`, returning findings for
/// `pass` only (fixtures may legitimately trip other passes too).
fn findings_for(rel_path: &str, text: &str, pass: &str) -> Vec<Finding> {
    let sf = SourceFile::parse(rel_path, text);
    analyze_file(&sf, &all_passes()).into_iter().filter(|f| f.pass == pass).collect()
}

/// Workspace-level variant for the semantic-model passes
/// (lock-discipline, hot-path-alloc, call-graph panic-freedom): builds a
/// synthetic workspace from `(rel_path, text)` pairs with no crate
/// dependency constraints and returns findings for `pass` only.
fn model_findings_for(files: &[(&str, &str)], pass: &str) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
    let analysis = analyze_workspace(&parsed, &all_passes(), Default::default());
    analysis.findings.into_iter().filter(|f| f.pass == pass).collect()
}

#[test]
fn atomics_bad_fixture_triggers() {
    let hits = findings_for(
        "crates/core/src/sync.rs",
        include_str!("fixtures/atomics_bad.rs"),
        "atomics-discipline",
    );
    assert!(hits.len() >= 4, "expected leaked atomics, SeqCst, and RMW findings: {hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("SeqCst")), "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("read-modify-write")), "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("outside the allowlisted")), "{hits:#?}");
}

#[test]
fn atomics_good_fixture_is_clean() {
    let hits = findings_for(
        "crates/core/src/shared_model.rs",
        include_str!("fixtures/atomics_good.rs"),
        "atomics-discipline",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn determinism_bad_fixture_triggers() {
    let hits = findings_for(
        "crates/gpusim/src/gpu.rs",
        include_str!("fixtures/determinism_bad.rs"),
        "determinism",
    );
    assert!(hits.len() >= 4, "{hits:#?}");
    for needle in ["HashMap", "HashSet", "Instant::now", "SystemTime"] {
        assert!(hits.iter().any(|f| f.message.contains(needle)), "missing {needle}: {hits:#?}");
    }
}

#[test]
fn determinism_good_fixture_is_clean() {
    let hits = findings_for(
        "crates/gpusim/src/gpu.rs",
        include_str!("fixtures/determinism_good.rs"),
        "determinism",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn determinism_pass_ignores_wall_clock_runners() {
    // The same banned tokens are fine in a wall-clock runner: it is not
    // a bit-pinned module, so the pass is out of scope there.
    let hits = findings_for(
        "crates/core/src/hogwild.rs",
        include_str!("fixtures/determinism_bad.rs"),
        "determinism",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn pointer_identity_keying_is_banned_outside_the_allocator() {
    // Keying simulated state on a host pointer is the bug PR 6 removed
    // from the serving path; the pass bans it workspace-wide.
    let bad = "pub fn cache_key<T>(s: &[T]) -> usize {\n    s.as_ptr() as usize\n}\n";
    let hits = findings_for("crates/serve/src/batcher.rs", bad, "determinism");
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits.iter().all(|f| f.message.contains("as_ptr")), "{hits:#?}");
    // Wall-clock runners are not exempt from the pointer rule.
    let hits = findings_for("crates/core/src/hogwild.rs", bad, "determinism");
    assert_eq!(hits.len(), 1, "{hits:#?}");
}

#[test]
fn the_blessed_pointer_users_may_read_pointers() {
    // The allocator converts pointers into stable virtual addresses; the
    // SIMD kernels hand them to load/store/gather intrinsics. Both are
    // blessed; everything else is not (previous test).
    let bad = "pub fn cache_key<T>(s: &[T]) -> usize {\n    s.as_ptr() as usize\n}\n";
    for path in ["crates/gpusim/src/gpu.rs", "crates/linalg/src/simd.rs"] {
        let hits = findings_for(path, bad, "determinism");
        assert!(hits.is_empty(), "{path}: {hits:#?}");
    }
}

#[test]
fn panic_bad_fixture_triggers() {
    let hits = findings_for(
        "crates/core/src/hogwild.rs",
        include_str!("fixtures/panic_bad.rs"),
        "panic-freedom",
    );
    assert_eq!(hits.len(), 4, "unwrap, expect, panic!, unreachable!: {hits:#?}");
}

#[test]
fn panic_good_fixture_is_clean() {
    let hits = findings_for(
        "crates/core/src/hogwild.rs",
        include_str!("fixtures/panic_good.rs"),
        "panic-freedom",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn libsvm_indexing_triggers_and_iterators_do_not() {
    let bad = "pub fn label(ds: &Dataset, i: usize) -> f64 {\n    ds.y[i]\n}\n";
    let hits = findings_for("crates/datagen/src/libsvm.rs", bad, "panic-freedom");
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].message.contains("indexing"), "{hits:#?}");

    let good = "pub fn labels(ds: &Dataset) -> Vec<f64> {\n    ds.y.iter().copied().collect()\n}\n";
    let hits = findings_for("crates/datagen/src/libsvm.rs", good, "panic-freedom");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn serve_crate_is_in_panic_freedom_scope() {
    let hits = findings_for(
        "crates/serve/src/registry.rs",
        include_str!("fixtures/panic_bad.rs"),
        "panic-freedom",
    );
    assert_eq!(hits.len(), 4, "serve request paths are panic-free zones: {hits:#?}");
}

#[test]
fn serve_parsers_ban_indexing_like_libsvm() {
    let bad = "fn word(fields: &[&str], i: usize) -> String {\n    fields[i].to_string()\n}\n";
    for path in ["crates/serve/src/checkpoint.rs", "crates/serve/src/wire.rs"] {
        let hits = findings_for(path, bad, "panic-freedom");
        assert_eq!(hits.len(), 1, "{path}: {hits:#?}");
        assert!(hits.iter().any(|f| f.message.contains("indexing")), "{path}: {hits:#?}");
    }
    // Other serve modules ban panics but not indexing (they operate on
    // data the crate itself constructed, not wire bytes).
    let hits = findings_for("crates/serve/src/batcher.rs", bad, "panic-freedom");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn float_bad_fixture_triggers() {
    let hits = findings_for(
        "crates/core/src/convergence.rs",
        include_str!("fixtures/float_bad.rs"),
        "float-discipline",
    );
    assert!(hits.len() >= 3, "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("`==`")), "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("`!=`")), "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("partial_cmp")), "{hits:#?}");
}

#[test]
fn float_good_fixture_is_clean() {
    let hits = findings_for(
        "crates/core/src/convergence.rs",
        include_str!("fixtures/float_good.rs"),
        "float-discipline",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn threads_bad_fixture_triggers() {
    let hits = findings_for(
        "crates/core/src/hogwild.rs",
        include_str!("fixtures/threads_bad.rs"),
        "thread-discipline",
    );
    assert_eq!(hits.len(), 3, "thread::spawn, thread::Builder, and thread::scope: {hits:#?}");
}

#[test]
fn threads_good_fixture_is_clean() {
    let hits = findings_for(
        "crates/core/src/hogwild.rs",
        include_str!("fixtures/threads_good.rs"),
        "thread-discipline",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn thread_spawn_is_fine_inside_pool() {
    let hits = findings_for(
        "crates/linalg/src/pool.rs",
        include_str!("fixtures/threads_bad.rs"),
        "thread-discipline",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn serve_may_scope_but_not_spawn() {
    // The serve carve-out: scoped (joined) threads are fine for
    // connection handling, detached spawn and Builder are still banned.
    let hits = findings_for(
        "crates/serve/src/wire.rs",
        include_str!("fixtures/threads_bad.rs"),
        "thread-discipline",
    );
    assert_eq!(hits.len(), 2, "spawn and Builder only; scope allowed: {hits:#?}");
    assert!(hits.iter().all(|f| !f.message.contains("thread::scope")), "{hits:#?}");
}

#[test]
fn queue_bad_fixture_triggers_in_both_queue_modules() {
    for path in ["crates/serve/src/batcher.rs", "crates/serve/src/admission.rs"] {
        let hits = findings_for(path, include_str!("fixtures/queue_bad.rs"), "queue-discipline");
        assert_eq!(hits.len(), 3, "push_back + pending.push + backlog.push: {path}: {hits:#?}");
        assert!(hits.iter().any(|f| f.message.contains("push_back")), "{hits:#?}");
        assert!(hits.iter().any(|f| f.message.contains("pending")), "{hits:#?}");
    }
}

#[test]
fn queue_good_fixture_is_clean() {
    let hits = findings_for(
        "crates/serve/src/admission.rs",
        include_str!("fixtures/queue_good.rs"),
        "queue-discipline",
    );
    assert!(hits.is_empty(), "annotated enqueue and result buffers pass: {hits:#?}");
}

#[test]
fn queue_pass_is_scoped_to_the_serving_queue_modules() {
    // The same growth patterns are fine elsewhere: training code and the
    // wire front-end have their own disciplines.
    for path in ["crates/core/src/hogwild.rs", "crates/serve/src/wire.rs"] {
        let hits = findings_for(path, include_str!("fixtures/queue_bad.rs"), "queue-discipline");
        assert!(hits.is_empty(), "{path}: {hits:#?}");
    }
}

#[test]
fn admission_module_bans_indexing_like_the_parsers() {
    // Overload decision paths run exactly when the system is degraded;
    // an out-of-bounds panic there turns shedding into an outage.
    let bad = "fn tier(caps: &[usize], t: usize) -> usize {\n    caps[t]\n}\n";
    let hits = findings_for("crates/serve/src/admission.rs", bad, "panic-freedom");
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("indexing")), "{hits:#?}");
    // `&mut [T]` parameters are type positions, not indexing.
    let good = "fn fill(out: &mut [f64]) {\n    for v in out.iter_mut() { *v = 0.0; }\n}\n";
    let hits = findings_for("crates/serve/src/admission.rs", good, "panic-freedom");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn lock_bad_fixture_triggers() {
    let hits = model_findings_for(
        &[("crates/serve/src/wire.rs", include_str!("fixtures/lock_bad.rs"))],
        "lock-discipline",
    );
    assert!(hits.len() >= 4, "dispatch, write_all, inversion, re-acquisition: {hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains(".dispatch(")), "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains(".write_all(")), "{hits:#?}");
    assert!(
        hits.iter().any(|f| f.message.contains("inverts the canonical lock order")),
        "{hits:#?}"
    );
    assert!(hits.iter().any(|f| f.message.contains("re-acquiring")), "{hits:#?}");
}

#[test]
fn lock_good_fixture_is_clean() {
    let hits = model_findings_for(
        &[("crates/serve/src/wire.rs", include_str!("fixtures/lock_good.rs"))],
        "lock-discipline",
    );
    assert!(hits.is_empty(), "scoped guards and canonical order pass: {hits:#?}");
}

#[test]
fn lock_pass_is_scoped_to_the_lock_sharing_modules() {
    // The same patterns outside serve/core/pool concern locks the table
    // does not rank; the pass stays silent rather than guessing.
    let hits = model_findings_for(
        &[("crates/datagen/src/libsvm.rs", include_str!("fixtures/lock_bad.rs"))],
        "lock-discipline",
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn hotpath_bad_fixture_triggers() {
    let hits = model_findings_for(
        &[("crates/serve/src/wire.rs", include_str!("fixtures/hotpath_bad.rs"))],
        "hot-path-alloc",
    );
    assert!(hits.len() >= 2, "direct root format! and one-hop format!: {hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("busy_reply")), "{hits:#?}");
    assert!(
        hits.iter().any(|f| f.message.contains("shed -> render_reply")),
        "reaching chain must name the path from the root: {hits:#?}"
    );
}

#[test]
fn hotpath_good_fixture_is_clean() {
    let hits = model_findings_for(
        &[("crates/serve/src/wire.rs", include_str!("fixtures/hotpath_good.rs"))],
        "hot-path-alloc",
    );
    assert!(hits.is_empty(), "construction-time formatting and push_str pass: {hits:#?}");
}

#[test]
fn hotpath_pass_needs_a_root_annotation() {
    // Without a root annotation nothing is reachable: the pass only
    // polices paths the code has explicitly marked hot.
    let unrooted = "pub fn reply(limit: usize) -> String {\n    format!(\"ERR BUSY {limit}\")\n}\n";
    let hits = model_findings_for(&[("crates/serve/src/wire.rs", unrooted)], "hot-path-alloc");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn reasonless_allow_is_reported_not_honored() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // analyzer: allow(panic-freedom)\n    x.unwrap()\n}\n";
    let sf = SourceFile::parse("crates/core/src/engine.rs", src);
    let all = analyze_file(&sf, &all_passes());
    assert!(all.iter().any(|f| f.pass == "allow-syntax"), "{all:#?}");
    assert!(all.iter().any(|f| f.pass == "panic-freedom"), "not suppressed: {all:#?}");
}

fn repo_root() -> std::path::PathBuf {
    workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn committed_baseline(root: &Path) -> Baseline {
    let path = root.join("analyzer-baseline.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).expect("committed baseline parses"),
        Err(_) => Baseline::default(),
    }
}

/// The gate itself: the live tree must be clean modulo the committed
/// baseline (exactly what CI's `analyze` job enforces).
#[test]
fn live_workspace_is_clean_modulo_baseline() {
    let root = repo_root();
    let report = sgd_analyzer::run_check(&root, &committed_baseline(&root)).expect("scan");
    assert!(report.files_scanned > 50, "suspiciously small scan: {}", report.files_scanned);
    assert!(report.is_clean(), "new analyzer findings on the live tree:\n{:#?}", report.fresh);
}

/// Acceptance check from the issue: reintroducing a `HashMap` into
/// sgd-gpusim or an `unwrap()` into a runner hot path must come out as a
/// *fresh* finding against the committed baseline, i.e. fail CI.
#[test]
fn reintroduced_violations_are_not_grandfathered() {
    let baseline = committed_baseline(&repo_root());

    let gpusim = "pub struct D {\n    m: std::collections::HashMap<u64, u64>,\n}\n";
    let sf = SourceFile::parse("crates/gpusim/src/gpu.rs", gpusim);
    let (fresh, _, _) = baseline.split(analyze_file(&sf, &all_passes()));
    assert!(fresh.iter().any(|f| f.pass == "determinism"), "{fresh:#?}");

    let runner = "pub fn epoch(g: Option<f64>) -> f64 {\n    g.unwrap()\n}\n";
    let sf = SourceFile::parse("crates/core/src/hogwild.rs", runner);
    let (fresh, _, _) = baseline.split(analyze_file(&sf, &all_passes()));
    assert!(fresh.iter().any(|f| f.pass == "panic-freedom"), "{fresh:#?}");
}

/// Acceptance check from the issue, semantic-pass edition: a guard held
/// across dispatch or a shed-path `format!` in fixture-mirrored form
/// must come out as a *fresh* finding against the committed baseline.
#[test]
fn reintroduced_semantic_violations_are_not_grandfathered() {
    let baseline = committed_baseline(&repo_root());
    let fresh_for = |text: &str, pass: &str| -> Vec<Finding> {
        let parsed = vec![SourceFile::parse("crates/serve/src/wire.rs", text)];
        let analysis = analyze_workspace(&parsed, &all_passes(), Default::default());
        let (fresh, _, _) = baseline.split(analysis.findings);
        fresh.into_iter().filter(|f| f.pass == pass).collect()
    };

    let fresh = fresh_for(include_str!("fixtures/lock_bad.rs"), "lock-discipline");
    assert!(!fresh.is_empty(), "guard-across-dispatch must fail the gate");

    let fresh = fresh_for(include_str!("fixtures/hotpath_bad.rs"), "hot-path-alloc");
    assert!(!fresh.is_empty(), "shed-path allocation must fail the gate");
}

/// The live-tree gate covers the semantic passes too: they must be
/// registered in `all_passes`, so `live_workspace_is_clean_modulo_baseline`
/// really does gate them.
#[test]
fn semantic_passes_are_registered() {
    let ids: Vec<&str> = all_passes().iter().map(|p| p.id()).collect();
    for id in ["lock-discipline", "hot-path-alloc", "panic-freedom"] {
        assert!(ids.contains(&id), "{id} missing from all_passes: {ids:?}");
    }
}
