// Fixture: loaded by tests/passes.rs under a runner path
// (crates/core/src/hogwild.rs). All three thread-creation forms must
// trigger thread-discipline.
use std::thread;

pub fn fire_and_forget(n: usize) {
    for i in 0..n {
        thread::spawn(move || {
            let _ = i * 2;
        });
    }
}

pub fn named_detached() -> std::io::Result<()> {
    let b = thread::Builder::new().name("worker".into());
    b.spawn(|| {})?;
    Ok(())
}

pub fn ad_hoc_fork_join(chunks: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    thread::scope(|s| {
        let handles: Vec<_> =
            chunks.iter().map(|c| s.spawn(move || c.iter().sum::<f64>())).collect();
        for h in handles {
            if let Ok(part) = h.join() {
                total += part;
            }
        }
    });
    total
}
