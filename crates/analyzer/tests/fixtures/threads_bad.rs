// Fixture: loaded by tests/passes.rs under a runner path
// (crates/core/src/hogwild.rs). Both spawn forms must trigger
// thread-discipline.
use std::thread;

pub fn fire_and_forget(n: usize) {
    for i in 0..n {
        thread::spawn(move || {
            let _ = i * 2;
        });
    }
}

pub fn named_detached() -> std::io::Result<()> {
    let b = thread::Builder::new().name("worker".into());
    b.spawn(|| {})?;
    Ok(())
}
