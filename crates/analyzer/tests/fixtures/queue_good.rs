// Fixture: queue growth done right — result buffers may grow freely
// (they are bounded by admitted work), and the one true enqueue carries
// an allow annotation naming its bound.

pub struct Tiers {
    queue: std::collections::VecDeque<usize>,
}

impl Tiers {
    pub fn admit(&mut self, id: usize, cap: usize) -> bool {
        if self.queue.len() >= cap {
            return false;
        }
        // analyzer: allow(queue-discipline) -- the one admission-checked enqueue
        self.queue.push_back(id);
        true
    }

    pub fn account(latencies: &mut Vec<f64>, decisions: &mut Vec<f64>, l: f64) {
        latencies.push(l);
        decisions.push(l);
    }
}
