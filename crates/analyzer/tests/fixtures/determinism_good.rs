// Fixture: loaded by tests/passes.rs under the same bit-pinned path as
// determinism_bad.rs — the deterministic equivalents produce no findings.
use std::collections::{BTreeMap, BTreeSet};

pub struct Device {
    buffers: BTreeMap<(usize, usize), u64>,
    seen: BTreeSet<u64>,
    cycles: u64,
}

impl Device {
    pub fn stamp(&mut self) -> f64 {
        // Simulated time comes from the cycle model, not the host clock.
        self.cycles += 1;
        self.cycles as f64 * 1.0e-9
    }
}
