// Fixture: loaded by tests/passes.rs under the same path as
// float_bad.rs — threshold and bit-pattern comparisons are clean, and so
// are integer/enum equality.
pub fn reached(loss: f64, target: f64, eps: f64) -> bool {
    (loss - 1.01 * target).abs() < eps
}

pub fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn epochs_match(a: usize, b: usize) -> bool {
    a == b
}

pub fn best(xs: &[f64]) -> f64 {
    let mut best = xs[0];
    for &x in xs {
        if x.total_cmp(&best).is_lt() {
            best = x;
        }
    }
    best
}
