// Fixture: loaded by tests/passes.rs under a bit-pinned path
// (crates/gpusim/src/gpu.rs). Every construct here must trigger the
// determinism pass.
use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub struct Device {
    buffers: HashMap<(usize, usize), u64>,
    seen: HashSet<u64>,
}

impl Device {
    pub fn stamp(&mut self) -> f64 {
        let t0 = Instant::now();
        let _wall = SystemTime::now();
        t0.elapsed().as_secs_f64()
    }
}
