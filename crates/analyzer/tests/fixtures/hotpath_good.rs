//! Known-good shed path: replies are formatted once at construction and
//! reused; the per-request path only appends into caller-owned buffers.

pub struct Replies {
    busy: String,
}

impl Replies {
    pub fn new(limit: usize) -> Replies {
        Replies { busy: build_busy(limit) }
    }
}

fn build_busy(limit: usize) -> String {
    format!("ERR BUSY retry_after={limit}")
}

// analyzer: root(hot-path-alloc) -- fixture: shed path
pub fn shed(replies: &Replies, out: &mut String) {
    out.push_str(&replies.busy);
}
