//! Known-good lock usage: guards scoped tightly in their own blocks,
//! blocking work done lock-free, acquisitions in canonical order
//! (registry < wire < session < pool).

pub fn dispatch_outside_session_lock(srv: &Server, job: &mut ScoreJob) -> f64 {
    let dilation = {
        let mut session = srv.session.lock().unwrap();
        session.draw_fault()
    };
    let mut scratch = BackendSession::new();
    let d = ComputeBackend::CpuSeq.dispatch(&mut scratch, job);
    d.out[0] * dilation
}

pub fn canonical_order(srv: &Server) -> usize {
    let snap = srv.registry.read().unwrap();
    let mut inflight = srv.inflight.lock().unwrap();
    *inflight += 1;
    snap.len()
}
