//! Known-bad lock usage: guards held across blocking calls, a canonical
//! order inversion, and a self-deadlocking re-acquisition. Loaded under
//! a serve path so the lock-discipline scope engages.

pub fn dispatch_under_session_lock(srv: &Server, job: &mut ScoreJob) -> f64 {
    let mut session = srv.session.lock().unwrap();
    let d = ComputeBackend::CpuSeq.dispatch(&mut session, job);
    d.out[0]
}

pub fn write_under_wire_lock(srv: &Server, stream: &mut TcpStream) {
    let mut inflight = srv.inflight.lock().unwrap();
    stream.write_all(b"OK 1.0\n").unwrap();
    *inflight -= 1;
}

pub fn registry_under_session_lock(srv: &Server) -> usize {
    let session = srv.session.lock().unwrap();
    let snap = srv.registry.read().unwrap();
    session.epoch + snap.len()
}

pub fn reacquire_session(srv: &Server) {
    let first = srv.session.lock().unwrap();
    let second = srv.session.lock().unwrap();
    drop((first, second));
}
