// Fixture: loaded by tests/passes.rs under the same runner path as
// threads_bad.rs — scoped spawns join structurally and are clean.
use std::thread;

pub fn scoped_epoch(chunks: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| s.spawn(move || c.iter().sum::<f64>()))
            .collect();
        for h in handles {
            if let Ok(part) = h.join() {
                total += part;
            }
        }
    });
    total
}
