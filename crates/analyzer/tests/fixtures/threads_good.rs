// Fixture: loaded by tests/passes.rs under the same runner path as
// threads_bad.rs — work routed through the persistent pool helpers
// creates no threads of its own and is clean.
use std::sync::Mutex;

pub fn pooled_epoch(chunks: &[Vec<f64>]) -> f64 {
    let partials: Vec<Mutex<f64>> = chunks.iter().map(|_| Mutex::new(0.0)).collect();
    sgd_linalg::pool::run(chunks.len(), |i| {
        if let Ok(mut p) = partials[i].lock() {
            *p = chunks[i].iter().sum::<f64>();
        }
    });
    partials.into_iter().filter_map(|m| m.into_inner().ok()).sum()
}

pub fn scoped_width(chunks: &[Vec<f64>]) -> f64 {
    sgd_linalg::pool::with_threads(2, || pooled_epoch(chunks))
}
