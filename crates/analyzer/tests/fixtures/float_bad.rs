// Fixture: loaded by tests/passes.rs under convergence/report code
// (crates/core/src/convergence.rs). Every comparison here must trigger
// float-discipline.
pub fn reached(loss: f64, target: f64) -> bool {
    loss == 1.01 * target
}

pub fn stalled(prev: f64, cur: f64) -> bool {
    0.0 != cur - prev
}

pub fn best(xs: &[f64]) -> f64 {
    let mut best = xs[0];
    for &x in xs {
        if x.partial_cmp(&best).unwrap() == std::cmp::Ordering::Less {
            best = x;
        }
    }
    best
}
