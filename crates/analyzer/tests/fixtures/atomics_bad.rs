// Fixture: loaded by tests/passes.rs under a non-allowlisted path
// (crates/core/src/sync.rs). Every construct here must trigger
// atomics-discipline.
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Leaked {
    hits: AtomicUsize,
}

impl Leaked {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read_seqcst(&self) -> usize {
        self.hits.load(Ordering::SeqCst)
    }

    pub fn reset(&self, cell: &AtomicU64) -> u64 {
        cell.swap(0, Ordering::Relaxed)
    }
}
