//! Known-bad hot-path allocation: the shed/busy reply formats a fresh
//! string per rejected request — exactly the overload-path bug the
//! hot-path-alloc pass exists to catch, both directly in a root and one
//! call-graph hop away.

// analyzer: root(hot-path-alloc) -- fixture: overload reply path
pub fn busy_reply(limit: usize) -> String {
    format!("ERR BUSY retry_after={limit}")
}

// analyzer: root(hot-path-alloc) -- fixture: shed path
pub fn shed(out: &mut Vec<u8>, limit: usize) {
    let reply = render_reply(limit);
    out.extend_from_slice(reply.as_bytes());
}

fn render_reply(limit: usize) -> String {
    format!("ERR BUSY retry_after={limit}")
}
