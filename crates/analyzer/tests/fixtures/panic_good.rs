// Fixture: loaded by tests/passes.rs under the same hot path as
// panic_bad.rs — the typed-error / annotated equivalents are clean.
pub enum EngineError {
    EmptyModel,
    MissingGradient,
}

pub fn epoch(weights: &mut [f64], grads: Option<&[f64]>) -> Result<f64, EngineError> {
    let g = grads.ok_or(EngineError::MissingGradient)?;
    let Some(first) = g.first() else {
        return Err(EngineError::MissingGradient);
    };
    if weights.is_empty() {
        return Err(EngineError::EmptyModel);
    }
    Ok(*first)
}

pub fn startup(path: &str) -> String {
    // analyzer: allow(panic-freedom) -- startup path, before any worker exists
    std::fs::read_to_string(path).expect("config file")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
