// Fixture: unbounded queue growth in a serving queue module — every
// line here should trip the queue-discipline pass.

pub struct Mailbox {
    queue: std::collections::VecDeque<usize>,
    pending: Vec<usize>,
}

impl Mailbox {
    pub fn enqueue_unchecked(&mut self, id: usize) {
        self.queue.push_back(id);
    }

    pub fn defer(&mut self, id: usize) {
        self.pending.push(id);
    }

    pub fn backlog_grow(backlog: &mut Vec<usize>, id: usize) {
        backlog.push(id);
    }
}
