// Fixture: loaded by tests/passes.rs under the allowlisted path
// crates/core/src/shared_model.rs — identical constructs, zero findings
// (minus SeqCst, which is banned everywhere).
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Model {
    cells: Vec<AtomicU64>,
}

impl Model {
    pub fn add(&self, i: usize, delta: f64) {
        let cell = &self.cells[i];
        let cur = f64::from_bits(cell.load(Ordering::Relaxed));
        cell.store((cur + delta).to_bits(), Ordering::Relaxed);
    }

    pub fn add_lossless(&self, i: usize, delta: f64) {
        let r = self.cells[i].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
            Some((f64::from_bits(b) + delta).to_bits())
        });
        let _ = r;
    }

    pub fn non_atomic_swap(&self, a: &mut Vec<f64>, b: &mut Vec<f64>) {
        // `mem::swap` without an Ordering:: on the line is not an atomic
        // RMW and must not trip the pass anywhere.
        std::mem::swap(a, b);
    }
}
