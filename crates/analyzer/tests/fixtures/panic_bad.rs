// Fixture: loaded by tests/passes.rs under a runner hot path
// (crates/core/src/hogwild.rs). Every construct here must trigger
// panic-freedom.
pub fn epoch(weights: &mut [f64], grads: Option<&[f64]>) -> f64 {
    let g = grads.unwrap();
    let first = g.first().expect("non-empty gradient");
    if weights.is_empty() {
        panic!("empty model");
    }
    match first {
        f if f.is_finite() => *f,
        _ => unreachable!("gradients are finite"),
    }
}
