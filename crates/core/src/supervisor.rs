//! Run supervision: divergence sentinel, budget enforcement, and
//! best-model checkpointing shared by every runner's epoch loop.
//!
//! Before this layer, every runner ended its epoch loop with the same
//! four-way check and a silent `break` on a non-finite loss — a diverged
//! run was indistinguishable from a converged short one. The
//! [`Supervisor`] reproduces the legacy check order exactly (so fault-free
//! reports stay bit-identical) while classifying *why* the loop ended into
//! a [`RunOutcome`] and checkpointing the best finite-loss model seen.

use sgd_linalg::Scalar;

use crate::config::RunOptions;
use crate::convergence::LossTrace;
use crate::metrics::Recorder;
use crate::report::RunOutcome;

/// A finite loss this many times the initial loss counts as diverged even
/// before it overflows to `inf`/`NaN`.
pub const LOSS_EXPLOSION_FACTOR: f64 = 1e4;

/// Watches one epoch loop: decides when to stop and why, and checkpoints
/// the best model.
pub struct Supervisor {
    stop: Option<f64>,
    max_secs: f64,
    plateau: Option<(usize, f64)>,
    explosion_limit: f64,
    decided: Option<RunOutcome>,
    best_loss: f64,
    best_model: Option<Vec<Scalar>>,
}

/// What the supervisor concluded once the loop ended.
pub struct Verdict {
    pub outcome: RunOutcome,
    /// Legacy flag: the run had a convergence target and did not reach it.
    pub timed_out: bool,
    /// Best finite-loss model seen, when some epoch improved on the
    /// initial loss (`None` means the initial model was never beaten).
    pub best_model: Option<Vec<Scalar>>,
}

impl Supervisor {
    pub fn new(opts: &RunOptions, initial_loss: f64) -> Self {
        let explosion_limit = if initial_loss.is_finite() {
            LOSS_EXPLOSION_FACTOR * initial_loss.abs().max(1.0)
        } else {
            f64::INFINITY
        };
        Supervisor {
            stop: opts.stop_loss(),
            max_secs: opts.max_secs,
            plateau: opts.plateau,
            explosion_limit,
            decided: None,
            best_loss: initial_loss,
            best_model: None,
        }
    }

    /// Observes one completed epoch; returns `true` when the run must
    /// stop. The check order replicates the legacy epoch loop exactly:
    /// divergence, then convergence target, then time/plateau budgets.
    /// When the epoch improves on the best loss so far, the improvement is
    /// forwarded to the run's observer through `rec` (the serving layer's
    /// publish hook) before the stop decision.
    pub fn observe(
        &mut self,
        epoch: usize,
        secs: f64,
        loss: f64,
        model: &[Scalar],
        trace: &LossTrace,
        rec: &mut Recorder<'_>,
    ) -> bool {
        if loss.is_finite() && loss < self.best_loss {
            self.best_loss = loss;
            match &mut self.best_model {
                Some(m) => m.copy_from_slice(model),
                None => self.best_model = Some(model.to_vec()),
            }
            rec.on_best_model(epoch, loss, model);
        }
        if !loss.is_finite() || loss > self.explosion_limit {
            self.decided = Some(RunOutcome::Diverged { epoch });
            return true;
        }
        if self.stop.is_some_and(|s| loss <= s) {
            self.decided = Some(RunOutcome::Converged);
            return true;
        }
        if secs > self.max_secs || self.plateau.is_some_and(|(w, tol)| trace.plateaued(w, tol)) {
            self.decided = Some(RunOutcome::BudgetExhausted);
            return true;
        }
        false
    }

    /// Records that a fault made further progress impossible (e.g. a dead
    /// worker stalling a synchronous barrier).
    pub fn abort(&mut self, epoch: usize) {
        self.decided = Some(RunOutcome::FaultAborted { epoch });
    }

    /// Concludes the run. A loop that ran out of `max_epochs` without any
    /// stop decision is a budget exhaustion; `timed_out` keeps the legacy
    /// meaning `target set && target not reached`.
    pub fn finish(self) -> Verdict {
        let outcome = self.decided.unwrap_or(RunOutcome::BudgetExhausted);
        let timed_out = self.stop.is_some() && outcome != RunOutcome::Converged;
        Verdict { outcome, timed_out, best_model: self.best_model }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EpochMetrics, EpochObserver, NullObserver};

    fn opts(target: Option<f64>) -> RunOptions {
        RunOptions { target_loss: target, max_secs: 10.0, plateau: None, ..Default::default() }
    }

    fn trace_with(losses: &[f64]) -> LossTrace {
        let mut t = LossTrace::new();
        for (i, &l) in losses.iter().enumerate() {
            t.push(i as f64, l);
        }
        t
    }

    #[test]
    fn non_finite_loss_is_diverged() {
        let mut sup = Supervisor::new(&opts(None), 1.0);
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[1.0, f64::NAN]);
        assert!(sup.observe(1, 0.1, f64::NAN, &[0.0], &t, &mut rec));
        let v = sup.finish();
        assert_eq!(v.outcome, RunOutcome::Diverged { epoch: 1 });
        assert!(!v.timed_out, "no target was set");
    }

    #[test]
    fn finite_explosion_is_diverged() {
        let mut sup = Supervisor::new(&opts(None), 1.0);
        let bad = 2.0 * LOSS_EXPLOSION_FACTOR;
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[1.0, bad]);
        assert!(sup.observe(1, 0.1, bad, &[0.0], &t, &mut rec));
        assert_eq!(sup.finish().outcome, RunOutcome::Diverged { epoch: 1 });
    }

    #[test]
    fn reaching_target_is_converged() {
        let mut sup = Supervisor::new(&opts(Some(0.5)), 1.0);
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[1.0, 0.4]);
        assert!(!sup.observe(1, 0.1, 0.9, &[0.0], &t, &mut rec));
        assert!(sup.observe(2, 0.2, 0.4, &[0.1], &t, &mut rec));
        let v = sup.finish();
        assert_eq!(v.outcome, RunOutcome::Converged);
        assert!(!v.timed_out);
    }

    #[test]
    fn time_budget_is_budget_exhausted_and_times_out_with_target() {
        let mut sup = Supervisor::new(&opts(Some(0.01)), 1.0);
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[1.0, 0.9]);
        assert!(sup.observe(1, 11.0, 0.9, &[0.0], &t, &mut rec));
        let v = sup.finish();
        assert_eq!(v.outcome, RunOutcome::BudgetExhausted);
        assert!(v.timed_out, "target set but unreached");
    }

    #[test]
    fn epoch_cap_without_decision_is_budget_exhausted() {
        let mut sup = Supervisor::new(&opts(None), 1.0);
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[1.0, 0.9]);
        assert!(!sup.observe(1, 0.1, 0.9, &[0.0], &t, &mut rec));
        let v = sup.finish();
        assert_eq!(v.outcome, RunOutcome::BudgetExhausted);
        assert!(!v.timed_out);
    }

    #[test]
    fn abort_wins_over_budget() {
        let mut sup = Supervisor::new(&opts(Some(0.1)), 1.0);
        sup.abort(3);
        let v = sup.finish();
        assert_eq!(v.outcome, RunOutcome::FaultAborted { epoch: 3 });
        assert!(v.timed_out);
    }

    #[test]
    fn best_model_tracks_lowest_finite_loss() {
        let mut sup = Supervisor::new(&opts(None), 1.0);
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[1.0]);
        sup.observe(1, 0.1, 0.5, &[1.0, 1.0], &t, &mut rec);
        sup.observe(2, 0.2, 0.8, &[2.0, 2.0], &t, &mut rec); // worse: not checkpointed
        sup.observe(3, 0.3, f64::INFINITY, &[9.0, 9.0], &t, &mut rec);
        let v = sup.finish();
        assert_eq!(v.best_model.as_deref(), Some(&[1.0, 1.0][..]));
        assert_eq!(v.outcome, RunOutcome::Diverged { epoch: 3 });
    }

    #[test]
    fn best_model_is_none_when_initial_loss_never_beaten() {
        let mut sup = Supervisor::new(&opts(None), 0.1);
        let mut obs = NullObserver;
        let mut rec = Recorder::new(&mut obs);
        let t = trace_with(&[0.1]);
        sup.observe(1, 0.1, 0.5, &[1.0], &t, &mut rec);
        assert!(sup.finish().best_model.is_none());
    }

    #[test]
    fn improvements_notify_the_observer() {
        struct Capture(Vec<(usize, f64, Vec<Scalar>)>);
        impl EpochObserver for Capture {
            fn on_epoch(&mut self, _m: &EpochMetrics) {}
            fn on_best_model(&mut self, epoch: usize, loss: f64, model: &[Scalar]) {
                self.0.push((epoch, loss, model.to_vec()));
            }
        }
        let mut sup = Supervisor::new(&opts(None), 1.0);
        let mut obs = Capture(Vec::new());
        {
            let mut rec = Recorder::new(&mut obs);
            let t = trace_with(&[1.0]);
            sup.observe(1, 0.1, 0.5, &[1.0, 2.0], &t, &mut rec);
            sup.observe(2, 0.2, 0.8, &[3.0, 4.0], &t, &mut rec); // no improvement
            sup.observe(3, 0.3, 0.25, &[5.0, 6.0], &t, &mut rec);
        }
        assert_eq!(obs.0.len(), 2, "only improving epochs publish");
        assert_eq!(obs.0.first(), Some(&(1, 0.5, vec![1.0, 2.0])));
        assert_eq!(obs.0.get(1), Some(&(3, 0.25, vec![5.0, 6.0])));
    }
}
