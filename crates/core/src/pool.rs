//! Thread-pool helper for the parallel CPU configurations.

/// Runs `f` with the parallel backend limited to `n` threads, so every
/// `Backend::par()` primitive invoked within uses exactly that degree of
/// parallelism (the study's equivalent of setting `OMP_NUM_THREADS`).
/// Delegates to [`sgd_linalg::pool::with_threads`].
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    sgd_linalg::pool::with_threads(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_width() {
        let n = with_threads(3, sgd_linalg::pool::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn zero_is_clamped_to_one() {
        let n = with_threads(0, sgd_linalg::pool::current_num_threads);
        assert_eq!(n, 1);
    }

    #[test]
    fn returns_closure_value() {
        assert_eq!(with_threads(2, || 41 + 1), 42);
    }
}
