//! Thread-pool helper for the parallel CPU configurations.

/// Runs `f` inside a dedicated rayon pool of `n` threads, so every
/// `Backend::par()` primitive invoked within uses exactly that degree of
/// parallelism (the study's equivalent of setting `OMP_NUM_THREADS`).
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n.max(1))
        .build()
        .expect("thread pool construction cannot fail for a positive thread count")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_width() {
        let n = with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn zero_is_clamped_to_one() {
        let n = with_threads(0, rayon::current_num_threads);
        assert_eq!(n, 1);
    }

    #[test]
    fn returns_closure_value() {
        assert_eq!(with_threads(2, || 41 + 1), 42);
    }
}
