//! Thread-pool helpers for the parallel CPU configurations.

/// Runs `f` with the parallel backend limited to `n` threads, so every
/// `Backend::par()` primitive invoked within uses exactly that degree of
/// parallelism (the study's equivalent of setting `OMP_NUM_THREADS`).
/// The width is inherited by pool tasks submitted inside the scope, so
/// kernels invoked from a runner's workers honor it too. Delegates to
/// [`sgd_linalg::pool::with_threads`].
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    sgd_linalg::pool::with_threads(n, f)
}

/// Runs `f(0)`, …, `f(workers - 1)` concurrently on the persistent worker
/// pool and blocks until every invocation returns. Runner epochs
/// (Hogwild, Hogbatch, replicated) dispatch their per-partition workers
/// through this instead of forking scoped threads every epoch. A
/// panicking worker propagates to the caller after the surviving workers
/// finish, so a run never deadlocks on a failed partition. Delegates to
/// [`sgd_linalg::pool::run`].
pub fn run_workers<F>(workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    sgd_linalg::pool::run(workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_width() {
        let n = with_threads(3, sgd_linalg::pool::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn zero_is_clamped_to_one() {
        let n = with_threads(0, sgd_linalg::pool::current_num_threads);
        assert_eq!(n, 1);
    }

    #[test]
    fn returns_closure_value() {
        assert_eq!(with_threads(2, || 41 + 1), 42);
    }

    #[test]
    fn workers_inherit_the_runner_width() {
        use std::sync::Mutex;
        let widths = Mutex::new(Vec::new());
        with_threads(2, || {
            run_workers(3, |_| {
                widths.lock().unwrap().push(sgd_linalg::pool::current_num_threads());
            });
        });
        let widths = widths.into_inner().unwrap();
        assert_eq!(widths.len(), 3);
        assert!(widths.iter().all(|&w| w == 2), "{widths:?}");
    }

    #[test]
    fn engine_runs_never_execute_kernels_beyond_the_requested_width() {
        use crate::config::{DeviceKind, RunOptions};
        use crate::engine::{Configuration, Engine, Strategy};
        use sgd_linalg::{Matrix, Scalar, MIN_PARALLEL_LEN};
        use sgd_models::{Batch, Examples};

        // Enough rows that the eval/gradient kernels actually cross the
        // parallel threshold: an un-inherited width would show up as a
        // machine-width submission.
        let n = MIN_PARALLEL_LEN + 101;
        let x = Matrix::from_fn(n, 4, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * 7 + j * 3) % 5 + 1) as Scalar) / 5.0
        });
        let y: Vec<Scalar> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = sgd_models::lr(4);
        let opts = RunOptions { max_epochs: 2, threads: 2, ..Default::default() };

        let stats = sgd_linalg::pool::PoolStats::new();
        sgd_linalg::pool::with_stats(&stats, || {
            for strategy in [Strategy::Sync, Strategy::Hogwild] {
                let cfg = Configuration::new(DeviceKind::CpuPar, strategy);
                let rep = Engine::run(&cfg, &task, &b, 0.5, &opts);
                assert!(rep.best_loss().is_finite());
            }
        });
        assert!(stats.submissions() > 0, "large kernels must dispatch to the pool");
        assert!(
            stats.max_width() <= 2,
            "kernel ran at width {} under threads = 2 (ambient width leak)",
            stats.max_width()
        );
    }
}
