//! Run reports and step-size grid search.

use crate::config::DeviceKind;
use crate::convergence::{ConvergenceSummary, LossTrace};
use crate::metrics::RunMetrics;

/// The outcome of one optimizer run: everything needed to fill one cell
/// block of the paper's Tables II/III.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Configuration label, e.g. `LR sync gpu`.
    pub label: String,
    /// Device the run executed on.
    pub device: DeviceKind,
    /// Step size used.
    pub step_size: f64,
    /// Loss trajectory (time excludes loss evaluation; GPU time is
    /// simulated kernel time).
    pub trace: LossTrace,
    /// Seconds spent in optimization (sum of epoch times).
    pub opt_seconds: f64,
    /// `true` when the run hit its time budget before reaching the 1 %
    /// threshold (reported as `∞` in the tables).
    pub timed_out: bool,
    /// Per-epoch hardware and staleness counters (see
    /// [`crate::EpochMetrics`]).
    pub metrics: RunMetrics,
}

impl RunReport {
    /// Hardware efficiency: average seconds per epoch. `NaN` when the run
    /// completed no epochs (an empty trace has no meaningful rate).
    pub fn time_per_epoch(&self) -> f64 {
        let epochs = self.trace.epochs();
        if epochs == 0 {
            f64::NAN
        } else {
            self.opt_seconds / epochs as f64
        }
    }

    /// Convergence summary against a reference optimum.
    pub fn summarize(&self, optimum: f64) -> ConvergenceSummary {
        self.trace.summarize(optimum)
    }

    /// Best loss this run reached.
    pub fn best_loss(&self) -> f64 {
        self.trace.best_loss().unwrap_or(f64::INFINITY)
    }

    /// Total model updates lost to (or serialized by) intra-warp
    /// conflicts; tracked exactly by the GPU asynchronous kernels, `None`
    /// for every other configuration.
    pub fn update_conflicts(&self) -> Option<u64> {
        self.metrics.update_conflicts
    }
}

/// The paper's step-size grid: powers of ten from `1e-6` to `1e2`.
pub fn step_size_grid() -> Vec<f64> {
    (-6..=2).map(|e| 10f64.powi(e)).collect()
}

/// Runs `run` at every step size in `grid` and returns the report with the
/// fastest time to 1 % above `optimum`; when no step size converges, the
/// report with the lowest final loss is returned (it carries
/// `timed_out`/`∞` semantics for the tables).
pub fn grid_search(optimum: f64, grid: &[f64], mut run: impl FnMut(f64) -> RunReport) -> RunReport {
    assert!(!grid.is_empty(), "empty step-size grid");
    let mut best: Option<(Option<f64>, f64, RunReport)> = None;
    for &alpha in grid {
        let rep = run(alpha);
        let t = rep.summarize(optimum).time_to_1pct();
        let loss = rep.best_loss();
        let better = match &best {
            None => true,
            Some((bt, bloss, _)) => match (t, bt) {
                (Some(a), Some(b)) => a < *b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => loss < *bloss,
            },
        };
        if better {
            best = Some((t, loss, rep));
        }
    }
    best.expect("non-empty grid produced at least one report").2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(alpha: f64, times_losses: &[(f64, f64)]) -> RunReport {
        let mut trace = LossTrace::new();
        for &(t, l) in times_losses {
            trace.push(t, l);
        }
        RunReport {
            label: "test".into(),
            device: DeviceKind::CpuSeq,
            step_size: alpha,
            opt_seconds: times_losses.last().map(|&(t, _)| t).unwrap_or(0.0),
            trace,
            timed_out: false,
            metrics: RunMetrics::default(),
        }
    }

    #[test]
    fn time_per_epoch_averages() {
        let r = report(0.1, &[(0.0, 1.0), (2.0, 0.5), (4.0, 0.2)]);
        assert!((r.time_per_epoch() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_per_epoch_of_empty_trace_is_nan() {
        // Regression: this used to report 0.0 s/epoch — an "infinitely
        // fast" run — which silently corrupted speedup ratios.
        assert!(report(0.1, &[]).time_per_epoch().is_nan());
        assert!(report(0.1, &[(0.0, 1.0)]).time_per_epoch().is_nan(), "no completed epoch");
    }

    #[test]
    fn update_conflicts_reads_metrics_aggregate() {
        let mut r = report(0.1, &[(0.0, 1.0), (1.0, 0.5)]);
        assert_eq!(r.update_conflicts(), None);
        r.metrics.update_conflicts = Some(11);
        assert_eq!(r.update_conflicts(), Some(11));
    }

    #[test]
    fn grid_is_powers_of_ten() {
        let g = step_size_grid();
        assert_eq!(g.len(), 9);
        assert!((g[0] - 1e-6).abs() < 1e-18);
        assert!((g[8] - 1e2).abs() < 1e-9);
    }

    #[test]
    fn grid_search_prefers_fastest_convergence() {
        // optimum 1.0 -> 1 % threshold at 1.01.
        let best = grid_search(1.0, &[0.1, 1.0, 10.0], |alpha| {
            if alpha == 1.0 {
                report(alpha, &[(0.0, 2.0), (1.0, 1.005)]) // converges at t=1
            } else if alpha == 10.0 {
                report(alpha, &[(0.0, 2.0), (0.5, 1.009)]) // converges at t=0.5
            } else {
                report(alpha, &[(0.0, 2.0), (1.0, 1.5)]) // never converges
            }
        });
        assert_eq!(best.step_size, 10.0);
    }

    #[test]
    fn grid_search_falls_back_to_lowest_loss() {
        let best = grid_search(0.0, &[0.1, 1.0], |alpha| {
            report(alpha, &[(0.0, 2.0), (1.0, if alpha == 1.0 { 0.5 } else { 0.9 })])
        });
        assert_eq!(best.step_size, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty step-size grid")]
    fn empty_grid_rejected() {
        let _ = grid_search(0.0, &[], |a| report(a, &[(0.0, 1.0)]));
    }
}
