//! Run reports and step-size grid search.

use sgd_linalg::Scalar;

use crate::config::DeviceKind;
use crate::convergence::{ConvergenceSummary, LossTrace};
use crate::metrics::RunMetrics;

/// Why an optimizer run's epoch loop ended.
///
/// Before this taxonomy existed every runner silently `break`ed on a
/// non-finite loss, making a diverged run indistinguishable from a
/// converged short one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Reached the configured convergence target.
    Converged,
    /// Ran out of epochs, wall-clock/simulated seconds, or plateaued
    /// before reaching a target (or had no target at all).
    BudgetExhausted,
    /// The loss went non-finite (or exploded past the supervisor's
    /// explosion limit) after `epoch` completed epochs.
    Diverged {
        /// 1-based epoch at which divergence was detected.
        epoch: usize,
    },
    /// An injected fault made further progress impossible (e.g. a dead
    /// worker stalling a synchronous barrier) at `epoch`.
    FaultAborted {
        /// 1-based epoch at which the run aborted.
        epoch: usize,
    },
}

impl RunOutcome {
    /// `true` for [`RunOutcome::Diverged`].
    pub fn is_diverged(&self) -> bool {
        matches!(self, RunOutcome::Diverged { .. })
    }

    /// Human-readable tag for tables and logs.
    pub fn label(&self) -> String {
        match self {
            RunOutcome::Converged => "converged".into(),
            RunOutcome::BudgetExhausted => "budget-exhausted".into(),
            RunOutcome::Diverged { epoch } => format!("diverged@{epoch}"),
            RunOutcome::FaultAborted { epoch } => format!("fault-aborted@{epoch}"),
        }
    }

    /// Classifies a legacy epoch loop that tracked only "diverged at" and
    /// "reached target" flags (used by the external-framework
    /// comparators, which do not run under the supervisor).
    pub fn classify(diverged_at: Option<usize>, converged: bool) -> RunOutcome {
        match diverged_at {
            Some(epoch) => RunOutcome::Diverged { epoch },
            None if converged => RunOutcome::Converged,
            None => RunOutcome::BudgetExhausted,
        }
    }
}

/// The outcome of one optimizer run: everything needed to fill one cell
/// block of the paper's Tables II/III.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Configuration label, e.g. `LR sync gpu`.
    pub label: String,
    /// Device the run executed on.
    pub device: DeviceKind,
    /// Step size used.
    pub step_size: f64,
    /// Loss trajectory (time excludes loss evaluation; GPU time is
    /// simulated kernel time).
    pub trace: LossTrace,
    /// Seconds spent in optimization (sum of epoch times).
    pub opt_seconds: f64,
    /// `true` when the run hit its time budget before reaching the 1 %
    /// threshold (reported as `∞` in the tables).
    pub timed_out: bool,
    /// Per-epoch hardware and staleness counters (see
    /// [`crate::EpochMetrics`]).
    pub metrics: RunMetrics,
    /// Why the epoch loop ended.
    pub outcome: RunOutcome,
    /// Best finite-loss model the supervisor checkpointed; `None` when no
    /// epoch improved on the initial model (including legacy shims that
    /// predate the supervisor).
    pub best_model: Option<Vec<Scalar>>,
}

impl RunReport {
    /// Hardware efficiency: average seconds per epoch. `NaN` when the run
    /// completed no epochs (an empty trace has no meaningful rate).
    pub fn time_per_epoch(&self) -> f64 {
        let epochs = self.trace.epochs();
        if epochs == 0 {
            f64::NAN
        } else {
            self.opt_seconds / epochs as f64
        }
    }

    /// Convergence summary against a reference optimum.
    pub fn summarize(&self, optimum: f64) -> ConvergenceSummary {
        self.trace.summarize(optimum)
    }

    /// Best loss this run reached.
    pub fn best_loss(&self) -> f64 {
        self.trace.best_loss().unwrap_or(f64::INFINITY)
    }

    /// Total model updates lost to (or serialized by) intra-warp
    /// conflicts; tracked exactly by the GPU asynchronous kernels, `None`
    /// for every other configuration.
    pub fn update_conflicts(&self) -> Option<u64> {
        self.metrics.update_conflicts
    }

    /// `true` when the run ended in [`RunOutcome::Diverged`].
    pub fn diverged(&self) -> bool {
        self.outcome.is_diverged()
    }
}

/// The paper's step-size grid: powers of ten from `1e-6` to `1e2`.
pub fn step_size_grid() -> Vec<f64> {
    (-6..=2).map(|e| 10f64.powi(e)).collect()
}

/// Halvings of α a diverged grid cell is retried at before the cell is
/// written off.
const GRID_BACKOFF_RETRIES: usize = 2;

/// Halvings of the smallest grid α the rescue pass tries when *every*
/// cell diverged. `2^-40` of the smallest α drives the update toward a
/// no-op, whose loss stays at the finite initial value, so the rescue
/// essentially always finds a non-diverged report.
const GRID_RESCUE_HALVINGS: usize = 40;

/// Reruns a diverged cell at halved step sizes, up to
/// [`GRID_BACKOFF_RETRIES`] times.
fn run_with_backoff(alpha: f64, run: &mut impl FnMut(f64) -> RunReport) -> RunReport {
    let mut rep = run(alpha);
    let mut a = alpha;
    for _ in 0..GRID_BACKOFF_RETRIES {
        if !rep.diverged() {
            break;
        }
        a *= 0.5;
        rep = run(a);
    }
    rep
}

/// Runs `run` at every step size in `grid` and returns the report with the
/// fastest time to 1 % above `optimum`; when no step size converges, the
/// non-diverged report with the lowest final loss is returned (it carries
/// `timed_out`/`∞` semantics for the tables).
///
/// Diverged cells never win: a cell whose run ends in
/// [`RunOutcome::Diverged`] is retried at halved α (step-size backoff) and
/// excluded from the comparison if it still diverges. If *every* cell
/// diverges even after backoff, a rescue pass keeps halving the smallest
/// grid α until a run survives; only if that also fails (pathological
/// tasks whose loss is non-finite at the initial model) is a diverged
/// report returned.
pub fn grid_search(optimum: f64, grid: &[f64], mut run: impl FnMut(f64) -> RunReport) -> RunReport {
    assert!(!grid.is_empty(), "empty step-size grid");
    let mut best: Option<(Option<f64>, f64, RunReport)> = None;
    let mut diverged_fallback: Option<RunReport> = None;
    let mut min_alpha = f64::INFINITY;
    for &alpha in grid {
        min_alpha = min_alpha.min(alpha);
        let rep = run_with_backoff(alpha, &mut run);
        if rep.diverged() {
            if diverged_fallback.is_none() {
                diverged_fallback = Some(rep);
            }
            continue;
        }
        let t = rep.summarize(optimum).time_to_1pct();
        let loss = rep.best_loss();
        let better = match &best {
            None => true,
            Some((bt, bloss, _)) => match (t, bt) {
                (Some(a), Some(b)) => a < *b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => loss < *bloss,
            },
        };
        if better {
            best = Some((t, loss, rep));
        }
    }
    if let Some((_, _, rep)) = best {
        return rep;
    }
    let mut alpha = min_alpha;
    for _ in 0..GRID_RESCUE_HALVINGS {
        alpha *= 0.5;
        let rep = run(alpha);
        if !rep.diverged() {
            return rep;
        }
    }
    // analyzer: allow(panic-freedom) -- the non-empty-grid assert at the top guarantees at least one report was produced
    diverged_fallback.expect("non-empty grid produced at least one report")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(alpha: f64, times_losses: &[(f64, f64)]) -> RunReport {
        let mut trace = LossTrace::new();
        for &(t, l) in times_losses {
            trace.push(t, l);
        }
        RunReport {
            label: "test".into(),
            device: DeviceKind::CpuSeq,
            step_size: alpha,
            opt_seconds: times_losses.last().map(|&(t, _)| t).unwrap_or(0.0),
            trace,
            timed_out: false,
            metrics: RunMetrics::default(),
            outcome: RunOutcome::BudgetExhausted,
            best_model: None,
        }
    }

    fn diverged(alpha: f64, times_losses: &[(f64, f64)]) -> RunReport {
        let epoch = times_losses.len().saturating_sub(1);
        RunReport { outcome: RunOutcome::Diverged { epoch }, ..report(alpha, times_losses) }
    }

    #[test]
    fn time_per_epoch_averages() {
        let r = report(0.1, &[(0.0, 1.0), (2.0, 0.5), (4.0, 0.2)]);
        assert!((r.time_per_epoch() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_per_epoch_of_empty_trace_is_nan() {
        // Regression: this used to report 0.0 s/epoch — an "infinitely
        // fast" run — which silently corrupted speedup ratios.
        assert!(report(0.1, &[]).time_per_epoch().is_nan());
        assert!(report(0.1, &[(0.0, 1.0)]).time_per_epoch().is_nan(), "no completed epoch");
    }

    #[test]
    fn update_conflicts_reads_metrics_aggregate() {
        let mut r = report(0.1, &[(0.0, 1.0), (1.0, 0.5)]);
        assert_eq!(r.update_conflicts(), None);
        r.metrics.update_conflicts = Some(11);
        assert_eq!(r.update_conflicts(), Some(11));
    }

    #[test]
    fn grid_is_powers_of_ten() {
        let g = step_size_grid();
        assert_eq!(g.len(), 9);
        assert!((g[0] - 1e-6).abs() < 1e-18);
        assert!((g[8] - 1e2).abs() < 1e-9);
    }

    #[test]
    fn grid_search_prefers_fastest_convergence() {
        // optimum 1.0 -> 1 % threshold at 1.01.
        let best = grid_search(1.0, &[0.1, 1.0, 10.0], |alpha| {
            if alpha == 1.0 {
                report(alpha, &[(0.0, 2.0), (1.0, 1.005)]) // converges at t=1
            } else if alpha == 10.0 {
                report(alpha, &[(0.0, 2.0), (0.5, 1.009)]) // converges at t=0.5
            } else {
                report(alpha, &[(0.0, 2.0), (1.0, 1.5)]) // never converges
            }
        });
        assert_eq!(best.step_size, 10.0);
    }

    #[test]
    fn grid_search_falls_back_to_lowest_loss() {
        let best = grid_search(0.0, &[0.1, 1.0], |alpha| {
            report(alpha, &[(0.0, 2.0), (1.0, if alpha == 1.0 { 0.5 } else { 0.9 })])
        });
        assert_eq!(best.step_size, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty step-size grid")]
    fn empty_grid_rejected() {
        let _ = grid_search(0.0, &[], |a| report(a, &[(0.0, 1.0)]));
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(RunOutcome::Converged.label(), "converged");
        assert_eq!(RunOutcome::Diverged { epoch: 3 }.label(), "diverged@3");
        assert_eq!(RunOutcome::FaultAborted { epoch: 2 }.label(), "fault-aborted@2");
        assert!(RunOutcome::Diverged { epoch: 1 }.is_diverged());
        assert!(!RunOutcome::BudgetExhausted.is_diverged());
    }

    #[test]
    fn classify_maps_legacy_flags() {
        assert_eq!(RunOutcome::classify(Some(4), false), RunOutcome::Diverged { epoch: 4 });
        assert_eq!(RunOutcome::classify(None, true), RunOutcome::Converged);
        assert_eq!(RunOutcome::classify(None, false), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn grid_search_never_selects_a_diverged_cell() {
        // The diverged cell has a (bogus) low intermediate loss AND a fast
        // time-to-threshold — the old comparison would have picked it.
        let best = grid_search(1.0, &[0.1, 10.0], |alpha| {
            if alpha >= 10.0 * 0.5f64.powi(GRID_BACKOFF_RETRIES as i32) {
                diverged(alpha, &[(0.0, 2.0), (0.1, 1.001), (0.2, f64::INFINITY)])
            } else {
                report(alpha, &[(0.0, 2.0), (1.0, 1.5)])
            }
        });
        assert_eq!(best.step_size, 0.1);
        assert!(!best.diverged());
    }

    #[test]
    fn grid_search_backoff_rescues_a_diverged_cell_at_halved_alpha() {
        // α = 4 diverges; one halving (α = 2) converges — faster than the
        // stable α = 0.1 cell, so the backoff result must win the grid.
        let best = grid_search(1.0, &[0.1, 4.0], |alpha| {
            if alpha >= 4.0 {
                diverged(alpha, &[(0.0, 2.0), (0.1, f64::NAN)])
            } else if alpha >= 2.0 {
                report(alpha, &[(0.0, 2.0), (0.5, 1.005)])
            } else {
                report(alpha, &[(0.0, 2.0), (3.0, 1.005)])
            }
        });
        assert_eq!(best.step_size, 2.0);
        assert_eq!(best.outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn grid_search_rescue_halves_below_the_grid_when_everything_diverges() {
        let mut calls = 0usize;
        // Backoff halves each cell only GRID_BACKOFF_RETRIES times, so with
        // everything above 0.1 diverging (0.5 → 0.25 → 0.125 all diverge)
        // only the rescue pass can reach a surviving α.
        let best = grid_search(0.0, &[0.5, 1.0], |alpha| {
            calls += 1;
            if alpha > 0.1 {
                diverged(alpha, &[(0.0, 2.0), (0.1, f64::INFINITY)])
            } else {
                report(alpha, &[(0.0, 2.0), (1.0, 1.9)])
            }
        });
        assert!(best.step_size <= 0.1, "rescued at α = {}", best.step_size);
        assert!(!best.diverged());
        assert!(calls > 2, "backoff and rescue reran the closure");
    }
}
