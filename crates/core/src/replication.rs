//! DimmWitted-style model replication for NUMA-aware Hogwild.
//!
//! The paper adopts the DimmWitted (Zhang & Ré, PVLDB 2014) implementation
//! for its NUMA CPU; DimmWitted's central design axis is *model
//! replication*: one shared model for the whole machine (PerMachine =
//! classic Hogwild), one replica per NUMA node with workers sharing their
//! node's replica, or one replica per core (equivalent to model
//! averaging). Replicas are averaged at every epoch boundary. The ablation
//! bench sweeps this axis.

use std::time::Instant;

use sgd_cpusim::{CpuSpec, HogwildCost};
use sgd_linalg::Scalar;
use sgd_models::{Batch, LinearLoss, LinearTask, PointwiseLoss, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::faults::{FaultCounters, FaultTally};
use crate::hogwild::{hogwild_worker, hogwild_worker_faulty, shuffled_order};
use crate::metrics::{EpochMetrics, EpochObserver, NullObserver, Recorder};
use crate::modeled::batch_stats;
use crate::report::RunReport;
use crate::shared_model::SharedModel;
use crate::supervisor::Supervisor;

/// Model-replication strategy (DimmWitted's axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replication {
    /// One model shared by all threads: classic Hogwild.
    PerMachine,
    /// One replica per (emulated) NUMA node; threads are assigned
    /// round-robin; replicas averaged per epoch.
    PerNode {
        /// Number of emulated NUMA nodes (the paper's machine has 2).
        nodes: usize,
    },
    /// One replica per thread, averaged per epoch (model averaging).
    PerCore,
}

impl Replication {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Replication::PerMachine => "per-machine".into(),
            Replication::PerNode { nodes } => format!("per-node({nodes})"),
            Replication::PerCore => "per-core".into(),
        }
    }

    fn replicas(&self, threads: usize) -> usize {
        match self {
            Replication::PerMachine => 1,
            Replication::PerNode { nodes } => (*nodes).clamp(1, threads),
            Replication::PerCore => threads,
        }
    }
}

/// Hogwild with the chosen replication strategy.
#[deprecated(note = "dispatch through `Engine::run` with `Strategy::ReplicatedHogwild`")]
pub fn run_replicated_hogwild<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    threads: usize,
    alpha: f64,
    replication: Replication,
    opts: &RunOptions,
) -> RunReport {
    replicated_observed(
        task,
        task.pointwise(),
        batch,
        threads,
        alpha,
        replication,
        opts,
        &mut NullObserver,
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn replicated_observed<T: Task>(
    task: &T,
    loss_fn: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    threads: usize,
    alpha: f64,
    replication: Replication,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let threads = threads.max(1);
    // Pin the ambient kernel width to the worker count for the whole run
    // (inherited by the pooled workers and the untimed loss evaluations).
    crate::pool::with_threads(threads, || {
        replicated_run(task, loss_fn, batch, threads, alpha, replication, opts, obs)
    })
}

#[allow(clippy::too_many_arguments)]
fn replicated_run<T: Task>(
    task: &T,
    loss_fn: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    threads: usize,
    alpha: f64,
    replication: Replication,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let n_replicas = replication.replicas(threads);
    let init = task.init_model();
    let replicas: Vec<SharedModel> =
        (0..n_replicas).map(|_| SharedModel::from_slice(&init)).collect();

    let n = batch.n();
    let order = shuffled_order(n, opts.seed);
    let chunk = n.div_ceil(threads);
    let parts: Vec<&[u32]> = order.chunks(chunk.max(1)).collect();

    // Contention only arises between threads sharing a replica, so the
    // coherency estimate and staleness rounds use the per-replica group
    // size (PerCore has private replicas: neither stale reads nor
    // conflicting writes within an epoch).
    let group = threads.div_ceil(n_replicas);
    let (_, avg_nnz, dim, _) = batch_stats(batch);
    let conflict_rate = HogwildCost { spec: CpuSpec::xeon_e5_2660_v4_dual(), threads: group }
        .conflict_rate(avg_nnz, dim);
    let staleness_rounds = if group > 1 { n.div_ceil(threads) as u64 } else { 0 };
    let coherency_per_epoch = n as f64 * avg_nnz * conflict_rate;

    let mut eval = sgd_linalg::CpuExec::par();
    let mut trace = LossTrace::new();
    let mut avg = init.clone();
    let initial_loss = task.loss(&mut eval, batch, &avg);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let tally = FaultTally::new();

    let mut opt_seconds = 0.0;
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        let t0 = Instant::now();
        match faults {
            None => {
                crate::pool::run_workers(parts.len(), |t| {
                    hogwild_worker(loss_fn, batch, &replicas[t % n_replicas], alpha, parts[t])
                });
            }
            Some(plan) => {
                // `avg` still holds the epoch-start averaged model (every
                // replica was reset to it at the previous boundary): the
                // stale-read target. Death decisions key on the partition
                // index, so they are taken here before dispatch; dead
                // workers' partitions are skipped, and the survivors keep
                // their original replica assignment (`t % n_replicas`).
                let mut alive: Vec<usize> = Vec::with_capacity(parts.len());
                for t in 0..parts.len() {
                    if plan.worker_dead(t, epoch) {
                        fc.dead_workers += 1;
                    } else {
                        alive.push(t);
                    }
                }
                crate::pool::run_workers(alive.len(), |i| {
                    let t = alive[i];
                    hogwild_worker_faulty(
                        loss_fn,
                        batch,
                        &replicas[t % n_replicas],
                        alpha,
                        parts[t],
                        plan,
                        epoch,
                        &avg,
                        &tally,
                    )
                });
            }
        }

        // Epoch-boundary averaging (counted in optimization time: it is
        // part of the algorithm, unlike loss evaluation).
        average_replicas(&replicas, &mut avg);
        for r in &replicas {
            r.store_from(&avg);
        }
        let mut epoch_secs = t0.elapsed().as_secs_f64();
        if let Some(plan) = faults {
            tally.drain_into(&mut fc);
            let dil = plan.async_dilation(threads);
            fc.straggler_delay_secs = epoch_secs * (dil - 1.0);
            epoch_secs *= dil;
        }
        opt_seconds += epoch_secs;

        let loss = task.loss(&mut eval, batch, &avg);
        trace.push(opt_seconds, loss);
        rec.record(EpochMetrics {
            staleness_rounds,
            coherency_conflicts: coherency_per_epoch,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, opt_seconds, loss)
        });
        if sup.observe(epoch + 1, opt_seconds, loss, &avg, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    let device = if threads == 1 { DeviceKind::CpuSeq } else { DeviceKind::CpuPar };
    RunReport {
        label: format!("{} async {} [{}]", task.name(), device.label(), replication.label()),
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

fn average_replicas(replicas: &[SharedModel], out: &mut [Scalar]) {
    let inv = 1.0 / replicas.len() as Scalar;
    out.fill(0.0);
    let mut buf = vec![0.0; out.len()];
    for r in replicas {
        r.snapshot_into(&mut buf);
        for (o, &v) in out.iter_mut().zip(&buf) {
            *o += v * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy shim entry points

    use super::*;
    use sgd_linalg::CsrMatrix;
    use sgd_models::{lr, Examples};

    fn data(n: usize, d: usize) -> (CsrMatrix, Vec<Scalar>) {
        let entries: Vec<Vec<(u32, Scalar)>> = (0..n)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                vec![((i % d) as u32, sign), (((i + 3) % d) as u32, sign * 0.5)]
            })
            .map(|mut v| {
                v.sort_by_key(|e| e.0);
                v.dedup_by_key(|e| e.0);
                v
            })
            .collect();
        let y = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (CsrMatrix::from_row_entries(n, d, &entries), y)
    }

    #[test]
    fn replica_counts() {
        assert_eq!(Replication::PerMachine.replicas(8), 1);
        assert_eq!(Replication::PerNode { nodes: 2 }.replicas(8), 2);
        assert_eq!(Replication::PerNode { nodes: 16 }.replicas(8), 8);
        assert_eq!(Replication::PerCore.replicas(8), 8);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Replication::PerMachine.label(), "per-machine");
        assert_eq!(Replication::PerNode { nodes: 2 }.label(), "per-node(2)");
        assert_eq!(Replication::PerCore.label(), "per-core");
    }

    #[test]
    fn all_strategies_converge() {
        let (x, y) = data(256, 16);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(16);
        let opts = RunOptions { max_epochs: 80, ..Default::default() };
        for repl in
            [Replication::PerMachine, Replication::PerNode { nodes: 2 }, Replication::PerCore]
        {
            let rep = run_replicated_hogwild(&task, &b, 4, 0.5, repl, &opts);
            assert!(rep.best_loss() < 0.3, "{}: loss {}", repl.label(), rep.best_loss());
        }
    }

    #[test]
    fn per_machine_single_thread_matches_plain_hogwild() {
        let (x, y) = data(128, 8);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(8);
        let opts = RunOptions { max_epochs: 10, ..Default::default() };
        let a = run_replicated_hogwild(&task, &b, 1, 0.5, Replication::PerMachine, &opts);
        let h = crate::hogwild::run_hogwild(&task, &b, 1, 0.5, &opts);
        // Single-threaded, same order and updates: identical trajectories.
        for (p, q) in a.trace.points().iter().zip(h.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-12, "{} vs {}", p.1, q.1);
        }
    }

    #[test]
    fn replicated_hogwild_degrades_gracefully_under_faults() {
        let (x, y) = data(256, 16);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(16);
        let opts = RunOptions {
            max_epochs: 60,
            faults: crate::faults::FaultPlan::default()
                .with_seed(7)
                .with_drops(0.05)
                .with_worker_death(1, 2),
            ..Default::default()
        };
        let rep =
            run_replicated_hogwild(&task, &b, 4, 0.5, Replication::PerNode { nodes: 2 }, &opts);
        assert!(
            !matches!(rep.outcome, crate::report::RunOutcome::FaultAborted { .. }),
            "async replication must absorb a dead worker, got {:?}",
            rep.outcome
        );
        let totals = rep.metrics.total_faults();
        assert!(totals.dead_workers > 0, "death never registered");
        assert!(totals.dropped_updates > 0, "drops never fired");
        assert!(rep.best_loss() < 0.4, "loss {}", rep.best_loss());
    }

    #[test]
    fn averaging_averages() {
        let a = SharedModel::from_slice(&[1.0, 3.0]);
        let b = SharedModel::from_slice(&[3.0, 5.0]);
        let mut out = vec![0.0; 2];
        average_replicas(&[a, b], &mut out);
        assert_eq!(out, vec![2.0, 4.0]);
    }
}
