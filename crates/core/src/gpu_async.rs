//! Asynchronous SGD on the simulated GPU.
//!
//! Two kernels, mirroring the paper's GPU asynchronous implementations:
//!
//! * **warp-Hogwild** for the linear tasks: one thread per example, warps
//!   execute in lockstep. All 32 lanes read the model *before* any of them
//!   writes (lockstep loads), and the unsynchronized read-modify-write
//!   update means that when several lanes touch the same coordinate only
//!   the last lane's write survives — the intra-warp update conflicts that
//!   destroy statistical efficiency on dense data. On sparse data the
//!   conflicts vanish but the warp pays divergence (high nnz variance) and
//!   non-coalesced model gathers — the hardware-efficiency penalty.
//! * **Hogbatch** for the MLP: mini-batches dispatched kernel-by-kernel.
//!   Although many host threads enqueue work, only one kernel executes at
//!   a time (the paper's observation), so the updates are effectively
//!   sequential — statistical efficiency matches sequential mini-batch SGD
//!   and each small kernel pays a host dispatch/synchronization overhead.

use std::collections::BTreeMap;

use sgd_gpusim::kernels::GpuExec;
use sgd_gpusim::WarpCtx;
use sgd_linalg::{CpuExec, Exec, Scalar};
use sgd_models::{Batch, Examples, LinearLoss, LinearTask, PointwiseLoss, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::faults::{FaultCounters, FaultPlan};
use crate::hogwild::shuffled_order;
use crate::metrics::{EpochMetrics, EpochObserver, GpuEpochProbe, NullObserver, Recorder};
use crate::report::RunReport;
use crate::supervisor::Supervisor;

/// Options specific to the GPU asynchronous kernels.
#[derive(Clone, Debug)]
pub struct GpuAsyncOptions {
    /// Resolve intra-warp conflicts with atomic adds (lossless, serialized)
    /// instead of the default last-write-wins races. Ablation knob.
    pub atomic_updates: bool,
    /// Host-side dispatch + synchronization cost charged per kernel launch
    /// in the Hogbatch path. The paper's asynchronous MLP launches
    /// thousands of small dependent kernels from contending host threads;
    /// this overhead is why its GPU Hogbatch is only ~2X faster than one
    /// CPU core despite the device's raw throughput.
    pub host_sync_overhead_secs: f64,
}

impl Default for GpuAsyncOptions {
    fn default() -> Self {
        GpuAsyncOptions { atomic_updates: false, host_sync_overhead_secs: 150e-6 }
    }
}

const F64: u64 = std::mem::size_of::<Scalar>() as u64;
const U32: u64 = std::mem::size_of::<u32>() as u64;

/// Processes one warp of examples functionally, optionally reporting its
/// memory/compute behaviour to a tracing context. `stale_from` redirects
/// the phase-1 model reads to a stale snapshot (fault injection);
/// `dropped` discards the warp's phase-2 store after the gradient work is
/// done. Returns the number of updates lost to (or serialized by)
/// intra-warp conflicts.
#[allow(clippy::too_many_arguments)]
fn process_warp(
    loss: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    w: &mut [Scalar],
    alpha: f64,
    lanes: &[u32],
    atomic: bool,
    ctx: &mut Option<&mut WarpCtx<'_>>,
    addrs: TraceAddrs,
    stale_from: Option<&[Scalar]>,
    dropped: bool,
) -> u64 {
    // Phase 1: lockstep gradient computation — every lane's margin is
    // computed against the model as it stood when the warp arrived (or a
    // stale snapshot of it, when the fault plan says so).
    let mut coeffs: Vec<Scalar> = Vec::with_capacity(lanes.len());
    let rw: &[Scalar] = match stale_from {
        Some(s) => s,
        None => w,
    };
    match batch.x {
        Examples::Sparse(m) => {
            for &i in lanes {
                let row = m.row(i as usize);
                let margin: Scalar =
                    row.cols.iter().zip(row.vals).map(|(&c, &v)| v * rw[c as usize]).sum();
                coeffs.push(loss.dloss_at(margin, batch.y[i as usize]));
            }
            if let Some(ctx) = ctx.as_deref_mut() {
                trace_sparse_pass(m, lanes, ctx, addrs);
            }
        }
        Examples::Dense(m) => {
            for &i in lanes {
                let row = m.row(i as usize);
                let margin: Scalar = row.iter().zip(rw.iter()).map(|(&v, &wj)| v * wj).sum();
                coeffs.push(loss.dloss_at(margin, batch.y[i as usize]));
            }
            if let Some(ctx) = ctx.as_deref_mut() {
                trace_dense_pass(m, lanes, ctx, addrs);
            }
        }
    }
    if dropped {
        // The gradient work happened but the warp's store phase is lost.
        if let Some(ctx) = ctx.as_deref_mut() {
            ctx.record_conflicts(0);
        }
        return 0;
    }

    // Phase 2: lockstep unsynchronized updates. Without atomics, lanes that
    // touch the same coordinate all start from the pre-warp value and the
    // last store wins (lost updates). BTreeMap, not HashMap: this path is
    // pinned bit-for-bit by tests/fault_determinism.rs, and ordered
    // containers keep iteration-order nondeterminism out by construction.
    let mut pre: BTreeMap<u32, Scalar> = BTreeMap::new();
    let mut touches: u64 = 0;
    for (lane, &i) in lanes.iter().enumerate() {
        let s = coeffs[lane];
        if s == 0.0 {
            continue;
        }
        let step = -alpha * s;
        let mut apply = |c: u32, v: Scalar| {
            touches += 1;
            if atomic {
                w[c as usize] += step * v;
                pre.entry(c).or_insert(0.0);
            } else {
                let base = *pre.entry(c).or_insert(w[c as usize]);
                w[c as usize] = base + step * v;
            }
        };
        match batch.x {
            Examples::Sparse(m) => {
                let row = m.row(i as usize);
                for (&c, &v) in row.cols.iter().zip(row.vals) {
                    apply(c, v);
                }
            }
            Examples::Dense(m) => {
                for (j, &v) in m.row(i as usize).iter().enumerate() {
                    if v != 0.0 {
                        apply(j as u32, v);
                    }
                }
            }
        }
    }
    let conflicts = touches.saturating_sub(pre.len() as u64);
    if let Some(ctx) = ctx.as_deref_mut() {
        ctx.record_conflicts(conflicts);
        if atomic && conflicts > 0 {
            // Serialized atomic retries on the conflicting coordinates.
            ctx.compute(conflicts * 8, 1);
        }
    }
    conflicts
}

/// Resolves the fault plan's per-warp decisions (the warp index is the
/// async worker id), tallies them, and runs the warp with the resulting
/// effects applied.
#[allow(clippy::too_many_arguments)]
fn process_faulty_warp(
    loss: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    w: &mut [Scalar],
    alpha: f64,
    lanes: &[u32],
    atomic: bool,
    ctx: &mut Option<&mut WarpCtx<'_>>,
    addrs: TraceAddrs,
    plan: &FaultPlan,
    epoch: usize,
    wi: usize,
    epoch_start: &[Scalar],
    fc: &mut FaultCounters,
) -> u64 {
    let mut a = alpha;
    if let Some(f) = plan.corrupt_factor(epoch, wi) {
        a *= f;
        fc.corrupted_updates += 1;
    }
    let stale = plan.stale_read(epoch, wi);
    if stale {
        fc.stale_reads += 1;
    }
    let dropped = plan.drops_update(epoch, wi);
    if dropped {
        fc.dropped_updates += 1;
    }
    let stale_from = if stale { Some(epoch_start) } else { None };
    process_warp(loss, batch, w, a, lanes, atomic, ctx, addrs, stale_from, dropped)
}

/// Simulated device addresses of the buffers a traced warp touches,
/// resolved once per run through the device's deterministic buffer
/// registry (host pointer values must never reach the cost model: their
/// run-to-run placement would make simulated cycles irreproducible).
/// Stale reads trace against the model's device buffer — the host-side
/// staleness snapshot is a modelling artifact with no device presence.
#[derive(Clone, Copy)]
struct TraceAddrs {
    /// Values array (sparse) or the row-major example matrix (dense).
    x: u64,
    /// Column-index array; unused for dense batches.
    cols: u64,
    /// The shared model vector.
    w: u64,
}

impl TraceAddrs {
    fn resolve(dev: &mut sgd_gpusim::GpuDevice, batch: &Batch<'_>, w: &[Scalar]) -> TraceAddrs {
        match batch.x {
            Examples::Sparse(m) => TraceAddrs {
                x: dev.buffer_addr(m.values()),
                cols: dev.buffer_addr(m.col_idx()),
                w: dev.buffer_addr(w),
            },
            Examples::Dense(m) => {
                TraceAddrs { x: dev.buffer_addr(m.as_slice()), cols: 0, w: dev.buffer_addr(w) }
            }
        }
    }
}

/// Memory/divergence trace of one warp's pass over sparse rows
/// (thread-per-example layout: value/index loads scatter across rows, the
/// model gather scatters across coordinates, trip count is the warp max).
fn trace_sparse_pass(
    m: &sgd_linalg::CsrMatrix,
    lanes: &[u32],
    ctx: &mut WarpCtx<'_>,
    addrs: TraceAddrs,
) {
    let TraceAddrs { x: vals_p, cols: cols_p, w: w_p } = addrs;
    let trips: Vec<u64> = lanes.iter().map(|&i| m.row_nnz(i as usize) as u64).collect();
    let max_trip = trips.iter().copied().max().unwrap_or(0);
    let mut acc: Vec<(u64, u32)> = Vec::with_capacity(lanes.len());
    for k in 0..max_trip {
        for (l, &i) in lanes.iter().enumerate() {
            if trips[l] > k {
                let off = m.row_ptr()[i as usize] as u64 + k;
                acc.push((vals_p + off * F64, F64 as u32));
            }
        }
        ctx.load(&acc);
        acc.clear();
        for (l, &i) in lanes.iter().enumerate() {
            if trips[l] > k {
                let off = m.row_ptr()[i as usize] as u64 + k;
                acc.push((cols_p + off * U32, U32 as u32));
            }
        }
        ctx.load(&acc);
        acc.clear();
        // Gather model coordinates, then scatter the updates back: the
        // same scattered addresses cost a load and a store each.
        for (l, &i) in lanes.iter().enumerate() {
            if trips[l] > k {
                let c = m.col_idx()[m.row_ptr()[i as usize] + k as usize];
                acc.push((w_p + c as u64 * F64, F64 as u32));
            }
        }
        ctx.load(&acc);
        ctx.store(&acc);
        acc.clear();
    }
    // fma for the margin + fma for the update per element.
    ctx.diverged_loop(&trips, 4);
}

/// Memory trace for dense rows: lanes stride by the row pitch (32
/// transactions per element column), the model access is a broadcast (one
/// transaction), updates store to the same broadcast coordinate.
fn trace_dense_pass(
    m: &sgd_linalg::Matrix,
    lanes: &[u32],
    ctx: &mut WarpCtx<'_>,
    addrs: TraceAddrs,
) {
    let TraceAddrs { x: x_p, w: w_p, .. } = addrs;
    let d = m.cols() as u64;
    let mut acc: Vec<(u64, u32)> = Vec::with_capacity(lanes.len());
    for k in 0..d {
        for &i in lanes {
            acc.push((x_p + (i as u64 * d + k) * F64, F64 as u32));
        }
        ctx.load(&acc);
        acc.clear();
        let coord = [(w_p + k * F64, F64 as u32)];
        ctx.load(&coord); // broadcast model read
        ctx.store(&coord); // conflicting lockstep writes coalesce to one tx
    }
    ctx.diverged_loop(&vec![d; lanes.len()], 4);
}

/// Runs warp-Hogwild for a linear task on the simulated GPU.
///
/// The whole epoch is a single kernel (one thread per example). The first
/// two epochs are traced (cold/warm L2); later epochs replay the warm cost
/// while computing functionally identical updates.
#[deprecated(note = "dispatch through `Engine::run` with `Strategy::Hogwild` on `DeviceKind::Gpu`")]
pub fn run_gpu_hogwild<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    alpha: f64,
    opts: &RunOptions,
    gopts: &GpuAsyncOptions,
) -> RunReport {
    gpu_hogwild_observed(task, task.pointwise(), batch, alpha, opts, gopts, &mut NullObserver)
}

pub(crate) fn gpu_hogwild_observed<T: Task>(
    task: &T,
    loss_fn: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    alpha: f64,
    opts: &RunOptions,
    gopts: &GpuAsyncOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let mut dev = opts.gpu_device();
    let warp_size = dev.spec().warp_size;
    let order = shuffled_order(batch.n(), opts.seed);
    let warps: Vec<&[u32]> = order.chunks(warp_size).collect();

    let mut w = task.init_model();
    let mut eval = CpuExec::par();
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, batch, &w);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut probe = GpuEpochProbe::new();
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let mut epoch_start: Vec<Scalar> = Vec::new();
    let addrs = TraceAddrs::resolve(&mut dev, batch, &w);

    let mut warm_cost = 0.0;
    let mut conflicts_total: u64 = 0;
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        probe.begin(&dev);
        let epoch_conflicts: u64;
        match faults {
            None => {
                if epoch < 2 {
                    let t0 = dev.elapsed_secs();
                    let w_cell = &mut w;
                    let mut conflicts = 0u64;
                    dev.run_kernel(warps.len(), |wi, ctx| {
                        let mut c = Some(ctx);
                        conflicts += process_warp(
                            loss_fn,
                            batch,
                            w_cell,
                            alpha,
                            warps[wi],
                            gopts.atomic_updates,
                            &mut c,
                            addrs,
                            None,
                            false,
                        );
                    });
                    epoch_conflicts = conflicts;
                    warm_cost = dev.elapsed_secs() - t0;
                } else {
                    let mut conflicts = 0u64;
                    for lanes in &warps {
                        conflicts += process_warp(
                            loss_fn,
                            batch,
                            &mut w,
                            alpha,
                            lanes,
                            gopts.atomic_updates,
                            &mut None,
                            addrs,
                            None,
                            false,
                        );
                    }
                    epoch_conflicts = conflicts;
                    dev.advance_secs(warm_cost);
                }
            }
            Some(plan) => {
                // One warp = one asynchronous worker: dead warps are
                // removed from the launch list (the device absorbs the
                // loss of work), stale/corrupt/drop decisions hash on the
                // warp index, and a straggler stretches the epoch by the
                // harmonic dilation instead of stalling a barrier.
                let epoch_t0 = dev.elapsed_secs();
                if plan.stale_rate > 0.0 {
                    epoch_start.resize(w.len(), 0.0);
                    epoch_start.copy_from_slice(&w);
                }
                let live: Vec<usize> =
                    (0..warps.len()).filter(|&wi| !plan.worker_dead(wi, epoch)).collect();
                fc.dead_workers = (warps.len() - live.len()) as u64;
                let mut conflicts = 0u64;
                if epoch < 2 {
                    let t0 = dev.elapsed_secs();
                    let w_cell = &mut w;
                    let snap = &epoch_start;
                    let fcr = &mut fc;
                    let live_ref = &live;
                    dev.run_kernel(live.len(), |k, ctx| {
                        let wi = live_ref[k];
                        let mut c = Some(ctx);
                        conflicts += process_faulty_warp(
                            loss_fn,
                            batch,
                            w_cell,
                            alpha,
                            warps[wi],
                            gopts.atomic_updates,
                            &mut c,
                            addrs,
                            plan,
                            epoch,
                            wi,
                            snap,
                            fcr,
                        );
                    });
                    warm_cost = dev.elapsed_secs() - t0;
                } else {
                    for &wi in &live {
                        conflicts += process_faulty_warp(
                            loss_fn,
                            batch,
                            &mut w,
                            alpha,
                            warps[wi],
                            gopts.atomic_updates,
                            &mut None,
                            addrs,
                            plan,
                            epoch,
                            wi,
                            &epoch_start,
                            &mut fc,
                        );
                    }
                    dev.advance_secs(warm_cost);
                }
                epoch_conflicts = conflicts;
                let es = dev.elapsed_secs() - epoch_t0;
                let dil = plan.async_dilation(warps.len());
                fc.straggler_delay_secs = es * (dil - 1.0);
                dev.advance_secs(fc.straggler_delay_secs);
            }
        }
        conflicts_total += epoch_conflicts;
        let (cycles, l2) = probe.end(&dev);
        let loss = task.loss(&mut eval, batch, &w); // untimed
        trace.push(dev.elapsed_secs(), loss);
        rec.record(EpochMetrics {
            update_conflicts: epoch_conflicts,
            simulated_cycles: cycles,
            l2_hit_ratio: l2,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, dev.elapsed_secs(), loss)
        });
        if sup.observe(epoch + 1, dev.elapsed_secs(), loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    rec.set_update_conflicts(conflicts_total);
    RunReport {
        label: format!("{} async gpu (warp-hogwild)", task.name()),
        device: DeviceKind::Gpu,
        step_size: alpha,
        trace,
        opt_seconds: dev.elapsed_secs(),
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

/// Runs Hogbatch for any task on the simulated GPU: batches are processed
/// strictly in sequence (only one kernel executes at a time), each batch's
/// primitive stream paying the per-kernel host dispatch overhead.
#[deprecated(
    note = "dispatch through `Engine::run` with `Strategy::Hogbatch` on `DeviceKind::Gpu`"
)]
pub fn run_gpu_hogbatch<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    alpha: f64,
    opts: &RunOptions,
    gopts: &GpuAsyncOptions,
) -> RunReport {
    gpu_hogbatch_observed(task, full, batches, alpha, opts, gopts, &mut NullObserver)
}

pub(crate) fn gpu_hogbatch_observed<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    alpha: f64,
    opts: &RunOptions,
    gopts: &GpuAsyncOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    assert!(!batches.is_empty(), "at least one mini-batch required");
    let mut dev = opts.gpu_device();
    let mut w = task.init_model();
    let mut g = vec![0.0; task.dim()];
    let mut eval = CpuExec::par();
    let mut trace = LossTrace::new();
    let initial_loss = task.loss(&mut eval, full, &w);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut probe = GpuEpochProbe::new();
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let mut epoch_start: Vec<Scalar> = Vec::new();

    let mut warm_cost = 0.0;
    let mut cpu = CpuExec::seq();
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        probe.begin(&dev);
        match faults {
            None => {
                if epoch == 0 {
                    let t0 = dev.elapsed_secs();
                    for b in batches {
                        let k0 = dev.stats().kernels_launched;
                        let mut e = GpuExec::new(&mut dev);
                        task.gradient(&mut e, b, &w, &mut g);
                        e.axpy(-alpha, &g, &mut w);
                        let launches = dev.stats().kernels_launched - k0;
                        dev.advance_secs(gopts.host_sync_overhead_secs * launches as f64);
                    }
                    warm_cost = dev.elapsed_secs() - t0;
                } else {
                    for b in batches {
                        task.gradient(&mut cpu, b, &w, &mut g);
                        cpu.axpy(-alpha, &g, &mut w);
                    }
                    dev.advance_secs(warm_cost);
                }
            }
            Some(plan) => {
                // Batches are enqueued round-robin by `opts.threads` host
                // workers: a dead worker's batches never launch, decisions
                // hash on the batch index, a straggling enqueuer stretches
                // the serialized stream by the harmonic dilation.
                let epoch_t0 = dev.elapsed_secs();
                let workers = opts.threads.max(1);
                if plan.has_dead_worker(workers, epoch) {
                    fc.dead_workers = 1;
                }
                if plan.stale_rate > 0.0 {
                    epoch_start.resize(w.len(), 0.0);
                    epoch_start.copy_from_slice(&w);
                }
                if epoch == 0 {
                    let t0 = dev.elapsed_secs();
                    for (bi, b) in batches.iter().enumerate() {
                        if plan.worker_dead(bi % workers, epoch) {
                            continue;
                        }
                        let k0 = dev.stats().kernels_launched;
                        let mut e = GpuExec::new(&mut dev);
                        let read: &[Scalar] = if plan.stale_read(epoch, bi) {
                            fc.stale_reads += 1;
                            &epoch_start
                        } else {
                            &w
                        };
                        task.gradient(&mut e, b, read, &mut g);
                        let mut a = alpha;
                        if let Some(f) = plan.corrupt_factor(epoch, bi) {
                            a *= f;
                            fc.corrupted_updates += 1;
                        }
                        if plan.drops_update(epoch, bi) {
                            fc.dropped_updates += 1;
                        } else {
                            e.axpy(-a, &g, &mut w);
                        }
                        let launches = dev.stats().kernels_launched - k0;
                        dev.advance_secs(gopts.host_sync_overhead_secs * launches as f64);
                    }
                    warm_cost = dev.elapsed_secs() - t0;
                } else {
                    for (bi, b) in batches.iter().enumerate() {
                        if plan.worker_dead(bi % workers, epoch) {
                            continue;
                        }
                        let read: &[Scalar] = if plan.stale_read(epoch, bi) {
                            fc.stale_reads += 1;
                            &epoch_start
                        } else {
                            &w
                        };
                        task.gradient(&mut cpu, b, read, &mut g);
                        let mut a = alpha;
                        if let Some(f) = plan.corrupt_factor(epoch, bi) {
                            a *= f;
                            fc.corrupted_updates += 1;
                        }
                        if plan.drops_update(epoch, bi) {
                            fc.dropped_updates += 1;
                        } else {
                            cpu.axpy(-a, &g, &mut w);
                        }
                    }
                    dev.advance_secs(warm_cost);
                }
                let es = dev.elapsed_secs() - epoch_t0;
                let dil = plan.async_dilation(workers);
                fc.straggler_delay_secs = es * (dil - 1.0);
                dev.advance_secs(fc.straggler_delay_secs);
            }
        }
        let (cycles, l2) = probe.end(&dev);
        let loss = task.loss(&mut eval, full, &w);
        trace.push(dev.elapsed_secs(), loss);
        rec.record(EpochMetrics {
            simulated_cycles: cycles,
            l2_hit_ratio: l2,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, dev.elapsed_secs(), loss)
        });
        if sup.observe(epoch + 1, dev.elapsed_secs(), loss, &w, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    // The serialized kernel stream loses no updates.
    rec.set_update_conflicts(0);
    RunReport {
        label: format!("{} async gpu (hogbatch)", task.name()),
        device: DeviceKind::Gpu,
        step_size: alpha,
        trace,
        opt_seconds: dev.elapsed_secs(),
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy shim entry points

    use super::*;
    use crate::hogbatch::{make_batches, run_hogbatch};
    use crate::hogwild::run_hogwild;
    use sgd_linalg::{CsrMatrix, Matrix};
    use sgd_models::{lr, MlpTask};

    fn dense_data(n: usize, d: usize) -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_fn(n, d, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * 3 + j) % 5) as Scalar + 1.0) / 5.0
        });
        let y = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    #[test]
    fn dense_warps_lose_most_updates() {
        // Every lane updates every coordinate: in a 32-wide warp,
        // 31/32 of updates are lost to last-write-wins.
        let (x, y) = dense_data(64, 6);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        let opts = RunOptions { max_epochs: 1, ..Default::default() };
        let rep = run_gpu_hogwild(&task, &b, 0.1, &opts, &GpuAsyncOptions::default());
        let conflicts = rep.update_conflicts().expect("gpu run records conflicts");
        // 64 examples, 6 coords each = 384 touches; 2 warps x 6 unique.
        assert_eq!(conflicts, 384 - 12);
        // The per-epoch metrics carry the same count.
        assert_eq!(rep.metrics.epochs[0].update_conflicts, 384 - 12);
    }

    #[test]
    fn dense_gpu_hogwild_needs_more_epochs_than_sequential() {
        // The statistical-efficiency gap of Table III on dense data: with
        // last-write-wins warps, the GPU makes far less progress per epoch
        // than sequential incremental SGD at the same step size.
        let (x, y) = dense_data(256, 8);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(8);
        let alpha = 0.02;
        let epochs = 3;
        let opts = RunOptions { max_epochs: epochs, ..Default::default() };
        let seq = run_hogwild(&task, &b, 1, alpha, &opts);
        let gpu = run_gpu_hogwild(&task, &b, alpha, &opts, &GpuAsyncOptions::default());
        let l_seq = seq.trace.points()[epochs].1;
        let l_gpu = gpu.trace.points()[epochs].1;
        let l0 = seq.trace.points()[0].1;
        assert!(l_seq < l0, "sequential must make progress");
        // GPU progress from the start must be a small fraction of the
        // sequential progress (31/32 of its updates are lost).
        assert!(
            (l0 - l_gpu) < 0.5 * (l0 - l_seq),
            "gpu progress {} vs seq progress {}",
            l0 - l_gpu,
            l0 - l_seq
        );
        assert!(gpu.update_conflicts().expect("recorded") > 0);
    }

    #[test]
    fn disjoint_sparse_matches_sequential_hogwild() {
        // With disjoint per-example supports the warp semantics are
        // invisible: trajectories match sequential Hogwild exactly.
        let n = 96;
        let d = 96;
        let entries: Vec<Vec<(u32, Scalar)>> = (0..n).map(|i| vec![(i as u32, 1.0)]).collect();
        let y: Vec<Scalar> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let xs = CsrMatrix::from_row_entries(n, d, &entries);
        let b = Batch::new(Examples::Sparse(&xs), &y);
        let task = lr(d);
        let opts = RunOptions { max_epochs: 5, ..Default::default() };
        let seq = run_hogwild(&task, &b, 1, 0.5, &opts);
        let gpu = run_gpu_hogwild(&task, &b, 0.5, &opts, &GpuAsyncOptions::default());
        assert_eq!(gpu.update_conflicts(), Some(0));
        for (p, q) in seq.trace.points().iter().zip(gpu.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-12, "{} vs {}", p.1, q.1);
        }
    }

    #[test]
    fn atomic_updates_keep_all_updates() {
        let (x, y) = dense_data(64, 6);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(6);
        let opts = RunOptions { max_epochs: 20, ..Default::default() };
        let lww = run_gpu_hogwild(&task, &b, 0.5, &opts, &GpuAsyncOptions::default());
        let atomic = run_gpu_hogwild(
            &task,
            &b,
            0.5,
            &opts,
            &GpuAsyncOptions { atomic_updates: true, ..Default::default() },
        );
        // Atomic (mini-batch-like) updates make faster statistical progress
        // on dense data than last-write-wins.
        assert!(atomic.best_loss() < lww.best_loss() + 1e-12);
    }

    #[test]
    fn epoch_cost_replay_is_consistent() {
        let (x, y) = dense_data(128, 4);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 6, ..Default::default() };
        let rep = run_gpu_hogwild(&task, &b, 0.1, &opts, &GpuAsyncOptions::default());
        let pts = rep.trace.points();
        assert!(pts.len() >= 6);
        let d4 = pts[4].0 - pts[3].0;
        let d5 = pts[5].0 - pts[4].0;
        assert!((d4 - d5).abs() < 1e-15);
    }

    #[test]
    fn gpu_hogwild_metrics_cover_conflicts_cycles_and_l2() {
        let (x, y) = dense_data(128, 4);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 5, ..Default::default() };
        let rep = run_gpu_hogwild(&task, &b, 0.1, &opts, &GpuAsyncOptions::default());
        let m = &rep.metrics;
        assert_eq!(m.epochs.len(), rep.trace.epochs());
        let total: u64 = m.epochs.iter().map(|e| e.update_conflicts).sum();
        assert_eq!(Some(total), rep.update_conflicts(), "per-epoch conflicts sum to the total");
        for e in &m.epochs {
            assert!(e.update_conflicts > 0, "dense warps conflict every epoch");
            assert!(e.simulated_cycles > 0.0);
            assert!(e.l2_hit_ratio.is_finite());
        }
    }

    #[test]
    fn gpu_hogbatch_statistics_match_sequential_hogbatch() {
        let (x, y) = dense_data(96, 6);
        let task = MlpTask::new(vec![6, 5, 2], 1);
        let owned = make_batches(&x, &y, 16);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions { max_epochs: 10, ..Default::default() };
        let cpu = run_hogbatch(&task, &full, &batches, 1, 1.0, &opts);
        let gpu = run_gpu_hogbatch(&task, &full, &batches, 1.0, &opts, &GpuAsyncOptions::default());
        for (p, q) in cpu.trace.points().iter().zip(gpu.trace.points()) {
            assert!((p.1 - q.1).abs() < 1e-9, "{} vs {}", p.1, q.1);
        }
    }

    #[test]
    fn gpu_straggler_dilates_async_time_by_the_harmonic_mean() {
        let (x, y) = dense_data(128, 4);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(4);
        let opts = RunOptions { max_epochs: 4, plateau: None, ..Default::default() };
        let clean = run_gpu_hogwild(&task, &b, 0.1, &opts, &GpuAsyncOptions::default());
        let lag_opts =
            RunOptions { faults: FaultPlan::default().with_straggler(0, 4.0), ..opts.clone() };
        let lag = run_gpu_hogwild(&task, &b, 0.1, &lag_opts, &GpuAsyncOptions::default());
        // A straggler-only plan changes no updates: same trajectory.
        assert_eq!(clean.trace.epochs(), lag.trace.epochs());
        for (p, q) in clean.trace.points().iter().zip(lag.trace.points()) {
            assert_eq!(p.1, q.1);
        }
        // 128 examples / 32-lane warps = 4 async workers; one 4x straggler
        // dilates time by 4/(3 + 1/4), far below the 4x a barrier pays.
        let dil = lag_opts.faults.async_dilation(4);
        assert!(dil > 1.0 && dil < 4.0, "dilation {dil}");
        let ratio = lag.opt_seconds / clean.opt_seconds;
        assert!((ratio - dil).abs() < 1e-9, "ratio {ratio} vs dilation {dil}");
    }

    #[test]
    fn gpu_warp_hogwild_absorbs_update_faults() {
        let (x, y) = dense_data(256, 8);
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(8);
        let opts = RunOptions {
            max_epochs: 8,
            plateau: None,
            faults: FaultPlan::default()
                .with_seed(5)
                .with_drops(0.2)
                .with_stale_reads(0.2)
                .with_corruption(0.2, 0.5)
                .with_worker_death(0, 1),
            ..Default::default()
        };
        let rep = run_gpu_hogwild(&task, &b, 0.02, &opts, &GpuAsyncOptions::default());
        assert!(
            !matches!(rep.outcome, crate::report::RunOutcome::FaultAborted { .. }),
            "async gpu must absorb a dead warp, got {:?}",
            rep.outcome
        );
        let totals = rep.metrics.total_faults();
        assert!(totals.dropped_updates > 0, "drops never fired");
        assert!(totals.stale_reads > 0, "stale reads never fired");
        assert!(totals.corrupted_updates > 0, "corruption never fired");
        assert!(totals.dead_workers > 0, "death never registered");
    }

    #[test]
    fn gpu_hogbatch_supervises_faults() {
        let (x, y) = dense_data(96, 6);
        let task = lr(6);
        let owned = make_batches(&x, &y, 8);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions {
            max_epochs: 10,
            threads: 4,
            plateau: None,
            faults: FaultPlan::default()
                .with_seed(11)
                .with_drops(0.2)
                .with_corruption(0.2, 0.5)
                .with_worker_death(1, 2),
            ..Default::default()
        };
        let rep = run_gpu_hogbatch(&task, &full, &batches, 0.5, &opts, &GpuAsyncOptions::default());
        assert!(
            !matches!(rep.outcome, crate::report::RunOutcome::FaultAborted { .. }),
            "serialized gpu stream must absorb a dead enqueuer, got {:?}",
            rep.outcome
        );
        let totals = rep.metrics.total_faults();
        assert!(totals.dropped_updates > 0, "drops never fired");
        assert!(totals.corrupted_updates > 0, "corruption never fired");
        assert!(totals.dead_workers > 0, "death never registered");
        assert!(rep.best_loss() < rep.trace.points()[0].1, "still makes progress");
    }

    #[test]
    fn host_sync_overhead_slows_hogbatch() {
        let (x, y) = dense_data(96, 6);
        let task = MlpTask::new(vec![6, 5, 2], 1);
        let owned = make_batches(&x, &y, 8);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions { max_epochs: 3, ..Default::default() };
        let fast = run_gpu_hogbatch(
            &task,
            &full,
            &batches,
            1.0,
            &opts,
            &GpuAsyncOptions { host_sync_overhead_secs: 0.0, ..Default::default() },
        );
        let slow =
            run_gpu_hogbatch(&task, &full, &batches, 1.0, &opts, &GpuAsyncOptions::default());
        assert!(slow.time_per_epoch() > 2.0 * fast.time_per_epoch());
    }
}
