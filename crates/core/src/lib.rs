//! The parallel-SGD study harness — the paper's primary contribution.
//!
//! Implements all eight corners of the paper's exploratory cube (Fig. 1):
//!
//! | axis | values |
//! |---|---|
//! | architecture | sequential CPU, parallel CPU (rayon), simulated GPU |
//! | update strategy | synchronous (batch GD) / asynchronous (Hogwild, Hogbatch) |
//! | sparsity | dense / CSR |
//!
//! and measures the three performance axes (Fig. 2): **hardware
//! efficiency** (time per epoch), **statistical efficiency** (epochs to a
//! loss threshold) and **time to convergence**, under the paper's
//! methodology: identical initial models, step size gridded in powers of
//! ten, loss-evaluation time excluded, convergence measured at 10/5/2/1 %
//! above the optimal loss.
//!
//! Entry points: [`run_sync`], [`run_hogwild`], [`run_hogbatch`],
//! [`run_gpu_hogwild`], [`run_gpu_hogbatch`], with [`grid_search`] and the
//! convergence utilities on top.

mod config;
mod convergence;
mod gpu_async;
mod hogbatch;
mod hogwild;
mod modeled;
pub mod pool;
mod replication;
mod report;
mod shared_model;
mod sync;

pub use config::{DeviceKind, RunOptions};
pub use convergence::{reference_optimum, ConvergenceSummary, LossTrace, THRESHOLDS};
pub use gpu_async::{run_gpu_hogbatch, run_gpu_hogwild, GpuAsyncOptions};
pub use hogbatch::{make_batches, run_hogbatch};
pub use hogwild::run_hogwild;
pub use modeled::{run_hogbatch_modeled, run_hogwild_modeled, run_sync_modeled, CpuModelConfig};
pub use replication::{run_replicated_hogwild, Replication};
pub use report::{grid_search, step_size_grid, RunReport};
pub use shared_model::SharedModel;
pub use sync::run_sync;
