//! The parallel-SGD study harness — the paper's primary contribution.
//!
//! Implements all eight corners of the paper's exploratory cube (Fig. 1):
//!
//! | axis | values |
//! |---|---|
//! | architecture | sequential CPU, thread-parallel CPU, simulated GPU |
//! | update strategy | synchronous (batch GD) / asynchronous (Hogwild, Hogbatch) |
//! | sparsity | dense / CSR |
//!
//! and measures the three performance axes (Fig. 2): **hardware
//! efficiency** (time per epoch), **statistical efficiency** (epochs to a
//! loss threshold) and **time to convergence**, under the paper's
//! methodology: identical initial models, step size gridded in powers of
//! ten, loss-evaluation time excluded, convergence measured at 10/5/2/1 %
//! above the optimal loss.
//!
//! Every corner is named by a [`Configuration`] (device × [`Strategy`] ×
//! [`Sparsity`] × [`Timing`]) and executed through [`Engine::run`], which
//! owns the whole dispatch fan-out and threads an [`EpochObserver`]
//! through every optimizer so per-epoch hardware counters
//! ([`EpochMetrics`]) land in each [`RunReport`]:
//!
//! ```
//! use sgd_core::{Configuration, DeviceKind, Engine, RunOptions, Strategy, Timing};
//! use sgd_core::CpuModelConfig;
//! use sgd_models::{lr, Batch, Examples};
//! use sgd_linalg::Matrix;
//!
//! let x = Matrix::from_fn(32, 4, |i, j| (((i + j) % 3) as f64 - 1.0));
//! let y: Vec<f64> = (0..32).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
//! let batch = Batch::new(Examples::Dense(&x), &y);
//!
//! // Modeled 56-thread Hogwild on the paper's Xeon, dense data.
//! let cfg = Configuration::new(sgd_core::DeviceKind::CpuPar, Strategy::Hogwild)
//!     .with_timing(Timing::Modeled(CpuModelConfig::paper_machine(56)));
//! let opts = RunOptions { max_epochs: 2, ..Default::default() };
//! let report = Engine::run(&cfg, &lr(4), &batch, 0.1, &opts);
//! assert!(report.metrics.total_coherency_conflicts() > 0.0);
//! # let _ = DeviceKind::CpuSeq;
//! ```
//!
//! The direct entry points (`run_sync`, `run_hogwild`, `run_hogbatch`,
//! `run_gpu_hogwild`, `run_gpu_hogbatch`, the `*_modeled` variants and
//! `run_replicated_hogwild`) remain as deprecated shims over the engine's
//! internals; new code should dispatch through [`Engine::run`] (or
//! [`Engine::grid_search`] with the convergence utilities on top).

mod backend;
mod config;
mod convergence;
mod engine;
mod faults;
mod gpu_async;
mod hogbatch;
mod hogwild;
mod metrics;
mod modeled;
pub mod pool;
mod replication;
mod report;
mod shared_model;
mod supervisor;
mod sync;

pub use backend::{
    apply_dilation, BackendFault, BackendSession, ComputeBackend, CostModel, Dispatch,
    DispatchFaults, ExecTask, GpuDispatch, Workload, CPU_FLOPS_PER_CORE, CPU_PAR_DISPATCH_SECS,
    CPU_PAR_EFFICIENCY, CPU_SEQ_DISPATCH_SECS, CPU_SIMD_FLOPS_PER_CORE, CPU_SIMD_GEMV_SPEEDUP,
};
pub use config::{DeviceKind, RunOptions};
pub use convergence::{reference_optimum, ConvergenceSummary, LossTrace, THRESHOLDS};
pub use engine::{Configuration, Engine, EngineError, Sparsity, Strategy, Timing, TimingMode};
pub use faults::{FaultCounters, FaultPlan, Straggler, WorkerDeath, WorkerRejoin};
pub use gpu_async::GpuAsyncOptions;
#[allow(deprecated)]
pub use gpu_async::{run_gpu_hogbatch, run_gpu_hogwild};
pub use hogbatch::make_batches;
#[allow(deprecated)]
pub use hogbatch::run_hogbatch;
#[allow(deprecated)]
pub use hogwild::run_hogwild;
pub use metrics::{EpochMetrics, EpochObserver, NullObserver, Recorder, RunMetrics};
pub use modeled::CpuModelConfig;
#[allow(deprecated)]
pub use modeled::{run_hogbatch_modeled, run_hogwild_modeled, run_sync_modeled};
#[allow(deprecated)]
pub use replication::run_replicated_hogwild;
pub use replication::Replication;
pub use report::{grid_search, step_size_grid, RunOutcome, RunReport};
pub use shared_model::SharedModel;
pub use supervisor::{Supervisor, Verdict, LOSS_EXPLOSION_FACTOR};
#[allow(deprecated)]
pub use sync::run_sync;
