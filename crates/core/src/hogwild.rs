//! Hogwild: asynchronous, lock-free incremental SGD on the CPU.
//!
//! The exact `Incremental SGD Optimization Epoch` (Algorithm 3) with the
//! loop iterations executed concurrently by several threads over a shared
//! model, with no synchronization whatsoever — reads may be stale, writes
//! may be lost. On sparse data the per-example updates touch few
//! coordinates and rarely collide (near-linear scaling); on dense data
//! every update touches every coordinate and cache-coherency traffic plus
//! lost updates erase the benefit of parallelism — the central asynchronous
//! finding of the paper.

use std::time::Instant;

use sgd_cpusim::{CpuSpec, HogwildCost};
use sgd_linalg::Scalar;
use sgd_models::{Batch, Examples, LinearLoss, LinearTask, PointwiseLoss, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::faults::{FaultCounters, FaultPlan, FaultTally};
use crate::metrics::{EpochMetrics, EpochObserver, NullObserver, Recorder};
use crate::modeled::batch_stats;
use crate::report::RunReport;
use crate::shared_model::SharedModel;
use crate::supervisor::Supervisor;

/// Deterministic Fisher–Yates shuffle of `0..n` (the single random pass
/// order shared by all epochs; DimmWitted's data access strategy).
pub(crate) fn shuffled_order(n: usize, seed: u64) -> Vec<u32> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    order
}

/// One thread's pass over its partition of the examples.
pub(crate) fn hogwild_worker<L: PointwiseLoss + ?Sized>(
    loss: &L,
    batch: &Batch<'_>,
    model: &SharedModel,
    alpha: f64,
    part: &[u32],
) {
    match batch.x {
        Examples::Sparse(m) => {
            for &i in part {
                let i = i as usize;
                let row = m.row(i);
                let mut margin = 0.0;
                for (&c, &v) in row.cols.iter().zip(row.vals) {
                    margin += v * model.read(c as usize);
                }
                let s = loss.dloss_at(margin, batch.y[i]);
                if s != 0.0 {
                    let step = -alpha * s;
                    for (&c, &v) in row.cols.iter().zip(row.vals) {
                        model.add(c as usize, step * v);
                    }
                }
            }
        }
        Examples::Dense(m) => {
            for &i in part {
                let i = i as usize;
                let row = m.row(i);
                let mut margin = 0.0;
                for (j, &v) in row.iter().enumerate() {
                    margin += v * model.read(j);
                }
                let s = loss.dloss_at(margin, batch.y[i]);
                if s != 0.0 {
                    let step = -alpha * s;
                    for (j, &v) in row.iter().enumerate() {
                        if v != 0.0 {
                            model.add(j, step * v);
                        }
                    }
                }
            }
        }
    }
}

/// [`hogwild_worker`] with per-example fault injection: stale margins are
/// computed against the epoch-start model, corrupted steps are scaled by
/// the plan's noise factor, and dropped updates are computed but never
/// written back (the Hogwild failure mode HOGWILD! claims to tolerate).
#[allow(clippy::too_many_arguments)]
pub(crate) fn hogwild_worker_faulty<L: PointwiseLoss + ?Sized>(
    loss: &L,
    batch: &Batch<'_>,
    model: &SharedModel,
    alpha: f64,
    part: &[u32],
    plan: &FaultPlan,
    epoch: usize,
    stale_model: &[Scalar],
    tally: &FaultTally,
) {
    let (mut dropped, mut stale_n, mut corrupted) = (0u64, 0u64, 0u64);
    match batch.x {
        Examples::Sparse(m) => {
            for &i in part {
                let i = i as usize;
                let row = m.row(i);
                let stale = plan.stale_read(epoch, i);
                let mut margin = 0.0;
                if stale {
                    stale_n += 1;
                    for (&c, &v) in row.cols.iter().zip(row.vals) {
                        margin += v * stale_model[c as usize];
                    }
                } else {
                    for (&c, &v) in row.cols.iter().zip(row.vals) {
                        margin += v * model.read(c as usize);
                    }
                }
                let s = loss.dloss_at(margin, batch.y[i]);
                if s != 0.0 {
                    let mut step = -alpha * s;
                    if let Some(f) = plan.corrupt_factor(epoch, i) {
                        step *= f;
                        corrupted += 1;
                    }
                    if plan.drops_update(epoch, i) {
                        dropped += 1;
                        continue;
                    }
                    for (&c, &v) in row.cols.iter().zip(row.vals) {
                        model.add(c as usize, step * v);
                    }
                }
            }
        }
        Examples::Dense(m) => {
            for &i in part {
                let i = i as usize;
                let row = m.row(i);
                let stale = plan.stale_read(epoch, i);
                let mut margin = 0.0;
                if stale {
                    stale_n += 1;
                    for (j, &v) in row.iter().enumerate() {
                        margin += v * stale_model[j];
                    }
                } else {
                    for (j, &v) in row.iter().enumerate() {
                        margin += v * model.read(j);
                    }
                }
                let s = loss.dloss_at(margin, batch.y[i]);
                if s != 0.0 {
                    let mut step = -alpha * s;
                    if let Some(f) = plan.corrupt_factor(epoch, i) {
                        step *= f;
                        corrupted += 1;
                    }
                    if plan.drops_update(epoch, i) {
                        dropped += 1;
                        continue;
                    }
                    for (j, &v) in row.iter().enumerate() {
                        if v != 0.0 {
                            model.add(j, step * v);
                        }
                    }
                }
            }
        }
    }
    tally.add(dropped, stale_n, corrupted);
}

/// Runs Hogwild over `batch` with `threads` concurrent workers
/// (`threads == 1` is exactly sequential incremental SGD, the paper's
/// `cpu-seq` asynchronous baseline).
#[deprecated(note = "dispatch through `Engine::run` with `Strategy::Hogwild`")]
pub fn run_hogwild<L: LinearLoss>(
    task: &LinearTask<L>,
    batch: &Batch<'_>,
    threads: usize,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    hogwild_observed(task, task.pointwise(), batch, threads, alpha, opts, &mut NullObserver)
}

pub(crate) fn hogwild_observed<T: Task>(
    task: &T,
    loss_fn: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    threads: usize,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let threads = threads.max(1);
    // Pin the ambient kernel width to the worker count for the whole run:
    // pool tasks inherit it, so neither the per-partition workers nor the
    // (untimed) loss evaluations ever fan out to machine width.
    crate::pool::with_threads(threads, || {
        hogwild_run(task, loss_fn, batch, threads, alpha, opts, obs)
    })
}

fn hogwild_run<T: Task>(
    task: &T,
    loss_fn: &dyn PointwiseLoss,
    batch: &Batch<'_>,
    threads: usize,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let device = if threads == 1 { DeviceKind::CpuSeq } else { DeviceKind::CpuPar };
    let n = batch.n();
    let order = shuffled_order(n, opts.seed);
    let chunk = n.div_ceil(threads);
    let parts: Vec<&[u32]> = order.chunks(chunk.max(1)).collect();

    // Per-epoch instrumentation: rounds of concurrent (potentially stale)
    // updates, and the cost model's *expected* cross-core invalidation
    // count for this batch shape on the paper's machine (wall-clock
    // execution cannot observe real invalidations, so this is the same
    // analytical estimate the modeled runners charge time for).
    let (_, avg_nnz, dim, _) = batch_stats(batch);
    let conflict_rate =
        HogwildCost { spec: CpuSpec::xeon_e5_2660_v4_dual(), threads }.conflict_rate(avg_nnz, dim);
    let staleness_rounds = if threads > 1 { n.div_ceil(threads) as u64 } else { 0 };
    let coherency_per_epoch = n as f64 * avg_nnz * conflict_rate;

    let model = SharedModel::from_slice(&task.init_model());
    let mut eval = sgd_linalg::CpuExec::par();
    let mut trace = LossTrace::new();
    let mut snapshot: Vec<Scalar> = vec![0.0; task.dim()];
    model.snapshot_into(&mut snapshot);
    let initial_loss = task.loss(&mut eval, batch, &snapshot);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let tally = FaultTally::new();

    let mut opt_seconds = 0.0;
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        let t0 = Instant::now();
        match faults {
            None => {
                if threads == 1 {
                    hogwild_worker(loss_fn, batch, &model, alpha, &order);
                } else {
                    crate::pool::run_workers(parts.len(), |t| {
                        hogwild_worker(loss_fn, batch, &model, alpha, parts[t])
                    });
                }
            }
            Some(plan) => {
                // `snapshot` still holds the epoch-start model here (it is
                // refreshed only after the epoch) — reuse it as the stale
                // target. A dead worker's partition is simply skipped: the
                // surviving workers carry on (graceful degradation).
                if threads == 1 {
                    if plan.worker_dead(0, epoch) {
                        fc.dead_workers = 1;
                    } else {
                        hogwild_worker_faulty(
                            loss_fn, batch, &model, alpha, &order, plan, epoch, &snapshot, &tally,
                        );
                    }
                } else {
                    // Death decisions key on the partition index, so they
                    // are taken here before dispatch; only the surviving
                    // partitions are handed to the pool.
                    let mut alive: Vec<&[u32]> = Vec::with_capacity(parts.len());
                    for (t, part) in parts.iter().enumerate() {
                        if plan.worker_dead(t, epoch) {
                            fc.dead_workers += 1;
                        } else {
                            alive.push(part);
                        }
                    }
                    crate::pool::run_workers(alive.len(), |t| {
                        hogwild_worker_faulty(
                            loss_fn, batch, &model, alpha, alive[t], plan, epoch, &snapshot, &tally,
                        )
                    });
                }
            }
        }
        let mut epoch_secs = t0.elapsed().as_secs_f64();
        if let Some(plan) = faults {
            tally.drain_into(&mut fc);
            // Independent workers absorb a straggler: only its throughput
            // share is lost, never the whole barrier.
            let dil = plan.async_dilation(threads);
            fc.straggler_delay_secs = epoch_secs * (dil - 1.0);
            epoch_secs *= dil;
        }
        opt_seconds += epoch_secs;

        model.snapshot_into(&mut snapshot);
        let loss = task.loss(&mut eval, batch, &snapshot); // untimed
        trace.push(opt_seconds, loss);
        rec.record(EpochMetrics {
            staleness_rounds,
            coherency_conflicts: coherency_per_epoch,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, opt_seconds, loss)
        });
        if sup.observe(epoch + 1, opt_seconds, loss, &snapshot, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: format!("{} async {}", task.name(), device.label()),
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy shim entry points

    use super::*;
    use sgd_linalg::{CsrMatrix, Matrix};
    use sgd_models::lr;

    fn sparse_separable(n: usize, d: usize) -> (CsrMatrix, Vec<Scalar>) {
        // Each example touches 2 coordinates; label decided by the first.
        let entries: Vec<Vec<(u32, Scalar)>> = (0..n)
            .map(|i| {
                let c1 = (i % d) as u32;
                let c2 = ((i * 7 + 3) % d) as u32;
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                if c1 == c2 {
                    vec![(c1, sign)]
                } else {
                    vec![(c1.min(c2), sign), (c1.max(c2), sign * 0.25)]
                }
            })
            .collect();
        let y = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (CsrMatrix::from_row_entries(n, d, &entries), y)
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let a = shuffled_order(100, 1);
        let b = shuffled_order(100, 1);
        let c = shuffled_order(100, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sequential_hogwild_converges_on_sparse_data() {
        let (x, y) = sparse_separable(256, 32);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(32);
        let opts = RunOptions { max_epochs: 60, ..Default::default() };
        let rep = run_hogwild(&task, &b, 1, 0.5, &opts);
        assert_eq!(rep.device, DeviceKind::CpuSeq);
        assert!(rep.best_loss() < 0.15, "loss {}", rep.best_loss());
        // Sequential execution has no staleness and no coherency traffic.
        assert_eq!(rep.metrics.total_staleness_rounds(), 0);
        assert_eq!(rep.metrics.total_coherency_conflicts(), 0.0);
    }

    #[test]
    fn parallel_hogwild_converges_on_sparse_data() {
        let (x, y) = sparse_separable(512, 64);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(64);
        let opts = RunOptions { max_epochs: 60, ..Default::default() };
        let rep = run_hogwild(&task, &b, 4, 0.5, &opts);
        assert_eq!(rep.device, DeviceKind::CpuPar);
        assert!(rep.best_loss() < 0.2, "loss {}", rep.best_loss());
        // Four workers over 512 examples: 128 concurrent-update rounds per
        // epoch, every epoch.
        let epochs = rep.trace.epochs() as u64;
        assert_eq!(rep.metrics.total_staleness_rounds(), 128 * epochs);
    }

    #[test]
    fn dense_hogwild_converges() {
        let x = Matrix::from_fn(128, 8, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i + j) % 3) as Scalar + 1.0) / 3.0
        });
        let y: Vec<Scalar> = (0..128).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let b = Batch::new(Examples::Dense(&x), &y);
        let task = lr(8);
        let opts = RunOptions { max_epochs: 40, ..Default::default() };
        let rep = run_hogwild(&task, &b, 2, 0.5, &opts);
        assert!(rep.best_loss() < 0.2, "loss {}", rep.best_loss());
        // Dense low-dimensional data drives the coherency estimate up:
        // every touch is expected to invalidate a remote cacheline.
        let per_epoch = rep.metrics.epochs[0].coherency_conflicts;
        assert!(per_epoch > 0.0, "dense parallel Hogwild must report coherency traffic");
    }

    #[test]
    fn disjoint_support_parallel_equals_expectations() {
        // When threads touch disjoint model coordinates there are no
        // conflicts at all: parallel Hogwild must converge exactly like a
        // partitioned sequential run would.
        let n = 128;
        let d = 16;
        // Example i touches only coordinate i % d, examples are assigned to
        // threads by contiguous chunks of the shuffled order, but every
        // update is a single-coordinate op so conflicts cannot corrupt.
        let entries: Vec<Vec<(u32, Scalar)>> =
            (0..n).map(|i| vec![((i % d) as u32, 1.0)]).collect();
        let y: Vec<Scalar> = (0..n).map(|i| if (i % d) < d / 2 { 1.0 } else { -1.0 }).collect();
        let x = CsrMatrix::from_row_entries(n, d, &entries);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(d);
        let opts = RunOptions { max_epochs: 80, ..Default::default() };
        let rep = run_hogwild(&task, &b, 4, 1.0, &opts);
        assert!(rep.best_loss() < 0.1, "loss {}", rep.best_loss());
    }

    #[test]
    fn early_stop_and_timeout_flags() {
        let (x, y) = sparse_separable(256, 32);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(32);
        let opts = RunOptions { max_epochs: 200, target_loss: Some(0.3), ..Default::default() };
        let rep = run_hogwild(&task, &b, 2, 0.5, &opts);
        assert!(!rep.timed_out);

        // An impossible target within a tiny time budget reports timeout.
        let opts = RunOptions { max_epochs: 3, target_loss: Some(1e-12), ..Default::default() };
        let rep = run_hogwild(&task, &b, 2, 0.5, &opts);
        assert!(rep.timed_out, "must report the paper's ∞");
    }

    #[test]
    fn hogwild_survives_a_dead_worker() {
        // One of four workers dies at epoch 1; the async run degrades
        // gracefully instead of aborting (unlike a synchronous barrier).
        let (x, y) = sparse_separable(512, 64);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(64);
        let opts = RunOptions {
            max_epochs: 80,
            faults: crate::FaultPlan::default().with_worker_death(1, 1),
            ..Default::default()
        };
        let rep = run_hogwild(&task, &b, 4, 0.5, &opts);
        assert!(!matches!(rep.outcome, crate::RunOutcome::FaultAborted { .. }));
        assert!(rep.best_loss() < 0.3, "loss {}", rep.best_loss());
        assert!(rep.metrics.total_faults().dead_workers > 0);
    }

    #[test]
    fn hogwild_counts_injected_update_faults() {
        let (x, y) = sparse_separable(256, 32);
        let b = Batch::new(Examples::Sparse(&x), &y);
        let task = lr(32);
        let opts = RunOptions {
            max_epochs: 10,
            plateau: None,
            faults: crate::FaultPlan::default()
                .with_seed(9)
                .with_drops(0.1)
                .with_stale_reads(0.1)
                .with_corruption(0.1, 0.5),
            ..Default::default()
        };
        let rep = run_hogwild(&task, &b, 2, 0.5, &opts);
        let total = rep.metrics.total_faults();
        assert!(total.dropped_updates > 0);
        assert!(total.stale_reads > 0);
        assert!(total.corrupted_updates > 0);
        // A 10% fault mix must not destroy convergence on separable data.
        assert!(rep.best_loss() < 0.5, "loss {}", rep.best_loss());
    }
}
