//! Hogbatch: asynchronous mini-batch SGD over a shared model.
//!
//! The paper executes asynchronous MLP training as Hogbatch (after
//! Sallinen et al., IPDPS 2016): worker threads pull mini-batches, compute
//! the batch gradient against a (possibly stale) snapshot of the shared
//! model, and apply the update without locks. With one thread this is
//! plain sequential mini-batch SGD — the paper's `cpu-seq` asynchronous
//! MLP baseline.

use std::time::Instant;

use sgd_linalg::{CpuExec, Scalar};
use sgd_models::{Batch, Task};

use crate::config::{DeviceKind, RunOptions};
use crate::convergence::LossTrace;
use crate::faults::{FaultCounters, FaultTally};
use crate::metrics::{EpochMetrics, EpochObserver, NullObserver, Recorder};
use crate::report::RunReport;
use crate::shared_model::SharedModel;
use crate::supervisor::Supervisor;

/// Splits `full` (dense examples required for MLP) into owned mini-batch
/// matrices of `batch_size` rows. Returns `(matrices, label_slices)` to
/// borrow `Batch`es from.
pub fn make_batches(
    x: &sgd_linalg::Matrix,
    y: &[Scalar],
    batch_size: usize,
) -> Vec<(sgd_linalg::Matrix, Vec<Scalar>)> {
    assert!(batch_size > 0, "batch size must be positive");
    let n = x.rows();
    let mut out = Vec::with_capacity(n.div_ceil(batch_size));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + batch_size).min(n);
        out.push((x.row_range(lo, hi), y[lo..hi].to_vec()));
        lo = hi;
    }
    out
}

/// Runs Hogbatch with `threads` workers over the given mini-batches.
/// `full` is the whole dataset, used only for (untimed) loss evaluation.
#[deprecated(note = "dispatch through `Engine::run` with `Strategy::Hogbatch`")]
pub fn run_hogbatch<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    threads: usize,
    alpha: f64,
    opts: &RunOptions,
) -> RunReport {
    hogbatch_observed(task, full, batches, threads, alpha, opts, &mut NullObserver)
}

pub(crate) fn hogbatch_observed<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    threads: usize,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    assert!(!batches.is_empty(), "at least one mini-batch required");
    let threads = threads.max(1);
    // Pin the ambient kernel width to the worker count for the whole run
    // (inherited by the pooled workers and the untimed loss evaluations).
    crate::pool::with_threads(threads, || {
        hogbatch_run(task, full, batches, threads, alpha, opts, obs)
    })
}

fn hogbatch_run<T: Task>(
    task: &T,
    full: &Batch<'_>,
    batches: &[Batch<'_>],
    threads: usize,
    alpha: f64,
    opts: &RunOptions,
    obs: &mut dyn EpochObserver,
) -> RunReport {
    let device = if threads == 1 { DeviceKind::CpuSeq } else { DeviceKind::CpuPar };
    let dim = task.dim();
    let model = SharedModel::from_slice(&task.init_model());
    // Concurrent workers read round-stale snapshots; with one worker every
    // snapshot is fresh.
    let staleness_rounds = if threads > 1 { batches.len().div_ceil(threads) as u64 } else { 0 };

    let mut eval = CpuExec::par();
    let mut trace = LossTrace::new();
    let mut snapshot = vec![0.0; dim];
    model.snapshot_into(&mut snapshot);
    let initial_loss = task.loss(&mut eval, full, &snapshot);
    trace.push(0.0, initial_loss);
    let mut rec = Recorder::new(obs);
    let mut sup = Supervisor::new(opts, initial_loss);
    let faults = opts.faults.active();
    let tally = FaultTally::new();

    let mut opt_seconds = 0.0;
    for epoch in 0..opts.max_epochs {
        let mut fc = FaultCounters::default();
        let t0 = Instant::now();
        match faults {
            None => {
                crate::pool::run_workers(threads, |t| {
                    let mut e = CpuExec::seq();
                    let mut w = vec![0.0; dim];
                    let mut g = vec![0.0; dim];
                    let mut b = t;
                    while b < batches.len() {
                        // Stale snapshot, gradient, lock-free scatter.
                        model.snapshot_into(&mut w);
                        task.gradient(&mut e, &batches[b], &w, &mut g);
                        for (j, &gj) in g.iter().enumerate() {
                            if gj != 0.0 {
                                model.add(j, -alpha * gj);
                            }
                        }
                        b += threads;
                    }
                });
            }
            Some(plan) => {
                // `snapshot` still holds the epoch-start model (refreshed
                // only after the epoch): the stale-read target. Death
                // decisions key on the worker index, so they are taken
                // here before dispatch; a dead worker's batches are
                // skipped and the rest carry on.
                let mut alive: Vec<usize> = Vec::with_capacity(threads);
                for t in 0..threads {
                    if plan.worker_dead(t, epoch) {
                        fc.dead_workers += 1;
                    } else {
                        alive.push(t);
                    }
                }
                crate::pool::run_workers(alive.len(), |i| {
                    let t = alive[i];
                    let mut e = CpuExec::seq();
                    let mut w = vec![0.0; dim];
                    let mut g = vec![0.0; dim];
                    let (mut dropped, mut stale_n, mut corrupted) = (0u64, 0u64, 0u64);
                    let mut b = t;
                    while b < batches.len() {
                        model.snapshot_into(&mut w);
                        let stale = plan.stale_read(epoch, b);
                        let read: &[Scalar] = if stale {
                            stale_n += 1;
                            &snapshot
                        } else {
                            &w
                        };
                        task.gradient(&mut e, &batches[b], read, &mut g);
                        let mut a = alpha;
                        if let Some(f) = plan.corrupt_factor(epoch, b) {
                            a *= f;
                            corrupted += 1;
                        }
                        if plan.drops_update(epoch, b) {
                            dropped += 1;
                        } else {
                            for (j, &gj) in g.iter().enumerate() {
                                if gj != 0.0 {
                                    model.add(j, -a * gj);
                                }
                            }
                        }
                        b += threads;
                    }
                    tally.add(dropped, stale_n, corrupted);
                });
            }
        }
        let mut epoch_secs = t0.elapsed().as_secs_f64();
        if let Some(plan) = faults {
            tally.drain_into(&mut fc);
            let dil = plan.async_dilation(threads);
            fc.straggler_delay_secs = epoch_secs * (dil - 1.0);
            epoch_secs *= dil;
        }
        opt_seconds += epoch_secs;

        model.snapshot_into(&mut snapshot);
        let loss = task.loss(&mut eval, full, &snapshot); // untimed
        trace.push(opt_seconds, loss);
        rec.record(EpochMetrics {
            staleness_rounds,
            faults: fc,
            ..EpochMetrics::new(epoch + 1, opt_seconds, loss)
        });
        if sup.observe(epoch + 1, opt_seconds, loss, &snapshot, &trace, &mut rec) {
            break;
        }
    }
    let verdict = sup.finish();
    RunReport {
        label: format!("{} async {} (hogbatch)", task.name(), device.label()),
        device,
        step_size: alpha,
        trace,
        opt_seconds,
        timed_out: verdict.timed_out,
        metrics: rec.finish(),
        outcome: verdict.outcome,
        best_model: verdict.best_model,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy shim entry points

    use super::*;
    use sgd_linalg::Matrix;
    use sgd_models::{Examples, MlpTask};

    fn toy() -> (Matrix, Vec<Scalar>) {
        let x = Matrix::from_fn(96, 6, |i, j| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (((i * 5 + j) % 4) as Scalar + 1.0) / 4.0
        });
        let y: Vec<Scalar> = (0..96).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        (x, y)
    }

    #[test]
    fn make_batches_covers_all_rows() {
        let (x, y) = toy();
        let batches = make_batches(&x, &y, 40);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.rows(), 40);
        assert_eq!(batches[2].0.rows(), 16);
        let total: usize = batches.iter().map(|(m, _)| m.rows()).sum();
        assert_eq!(total, 96);
        assert_eq!(batches[1].1.len(), 40);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let (x, y) = toy();
        let _ = make_batches(&x, &y, 0);
    }

    #[test]
    fn sequential_hogbatch_trains_mlp() {
        let (x, y) = toy();
        let task = MlpTask::new(vec![6, 5, 2], 3);
        let owned = make_batches(&x, &y, 16);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions { max_epochs: 120, ..Default::default() };
        let rep = run_hogbatch(&task, &full, &batches, 1, 2.0, &opts);
        assert_eq!(rep.device, DeviceKind::CpuSeq);
        let start = rep.trace.points()[0].1;
        assert!(rep.best_loss() < start * 0.6, "loss {} -> {}", start, rep.best_loss());
    }

    #[test]
    fn parallel_hogbatch_trains_mlp() {
        let (x, y) = toy();
        let task = MlpTask::new(vec![6, 5, 2], 3);
        let owned = make_batches(&x, &y, 8);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions { max_epochs: 120, ..Default::default() };
        let rep = run_hogbatch(&task, &full, &batches, 4, 2.0, &opts);
        assert_eq!(rep.device, DeviceKind::CpuPar);
        let start = rep.trace.points()[0].1;
        assert!(rep.best_loss() < start * 0.7, "loss {} -> {}", start, rep.best_loss());
    }

    #[test]
    fn works_for_linear_tasks_too() {
        let (x, y) = toy();
        let task = sgd_models::lr(6);
        let owned = make_batches(&x, &y, 12);
        let batches: Vec<Batch<'_>> =
            owned.iter().map(|(m, l)| Batch::new(Examples::Dense(m), l)).collect();
        let full = Batch::new(Examples::Dense(&x), &y);
        let opts = RunOptions { max_epochs: 60, ..Default::default() };
        let rep = run_hogbatch(&task, &full, &batches, 2, 1.0, &opts);
        assert!(rep.best_loss() < 0.3, "loss {}", rep.best_loss());
    }
}
